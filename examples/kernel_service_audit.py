#!/usr/bin/env python
"""Kernel-service energy audit and trace-based estimation (Section 3.3).

First characterises every kernel service per invocation (Table 5 /
Figure 8), then demonstrates the acceleration idea the paper draws from
it: because per-invocation service energy is nearly constant, a plain
*invocation trace* (the kind ``prof``/``truss`` produce) multiplied by
the per-service means estimates the scheduled kernel energy without
detailed simulation — the paper quotes an error margin of about 10 %.

    python examples/kernel_service_audit.py [benchmark]
"""

import sys

from repro import SoftWatt
from repro.kernel.modes import EXTERNAL_SERVICES, KERNEL_SERVICES


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "jack"
    softwatt = SoftWatt(window_instructions=30_000, seed=1)
    cycle_time = softwatt.config.technology.cycle_time_s

    print("Per-invocation characterisation (Table 5 / Figure 8 shape):")
    print(f"  {'service':12s} {'cycles':>8s} {'energy J':>11s} {'CoD %':>7s} "
          f"{'power W':>8s} {'kind':>9s}")
    profiles = softwatt.service_profiles(invocations=50)
    for service in KERNEL_SERVICES:
        profile = profiles[service]
        kind = "external" if service in EXTERNAL_SERVICES else "internal"
        print(f"  {service:12s} {profile.mean_cycles:8.0f} "
              f"{profile.mean_energy_j:11.4g} "
              f"{profile.coefficient_of_deviation:7.2f} "
              f"{profile.average_power_w(cycle_time):8.2f} {kind:>9s}")

    print(f"\nTrace-based estimation for {name}:")
    result = softwatt.run(name, disk=1)
    timeline = result.timeline

    estimated = 0.0
    simulated = 0.0
    print(f"  {'service':12s} {'invocations':>12s} {'estimated J':>12s} "
          f"{'simulated J':>12s}")
    for row in result.service_breakdown():
        if row.service == "utlb":
            # utlb is emergent; its invocation count comes from the
            # simulation itself, exactly like a truss/prof trace would.
            pass
        profile = profiles.get(row.service)
        if profile is None or row.invocations <= 0:
            continue
        trace_estimate = row.invocations * profile.mean_energy_j
        estimated += trace_estimate
        simulated += row.energy_j
        print(f"  {row.service:12s} {row.invocations:12.0f} "
              f"{trace_estimate:12.4g} {row.energy_j:12.4g}")

    error = abs(estimated - simulated) / simulated * 100.0
    print(f"\n  scheduled-kernel energy: estimated {estimated:.3g} J vs "
          f"simulated {simulated:.3g} J  ({error:.1f}% error)")
    print("  (The paper: per-invocation constancy makes ~10%-accurate "
          "kernel-energy estimates possible without detailed simulation. "
          "Most of the residual error here sits in utlb, whose in-run "
          "invocations carry trap-entry overhead that the isolated "
          "per-invocation profile excludes.)")
    assert timeline.invocations  # the trace the estimate was built from


if __name__ == "__main__":
    main()
