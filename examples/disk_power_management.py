#!/usr/bin/env python
"""Disk power management study (the paper's Section 4).

Sweeps the four disk configurations — conventional, IDLE-only, and
STANDBY with 2 s / 4 s spin-down thresholds — over a benchmark, plus a
finer threshold sweep, and prints the energy/performance tradeoff
table behind Figure 9.  Ends with the paper's design rule: "Disk
spindowns should be done only if the time between consecutive disk
accesses is much larger than the spin down and spin-up time."

    python examples/disk_power_management.py [benchmark]
"""

import sys

from repro import SoftWatt
from repro.config import DiskPowerPolicy, disk_configuration
from repro.workloads import benchmark as load_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "compress"
    spec = load_benchmark(name)
    softwatt = SoftWatt(window_instructions=30_000, seed=1)

    gaps = [
        later.progress_s - earlier.progress_s
        for earlier, later in zip(spec.disk_events, spec.disk_events[1:])
    ]
    print(f"{name}: {len(spec.disk_events)} disk accesses over "
          f"{spec.compute_duration_s:.1f} s of compute; "
          f"largest inactivity gap {max(gaps):.1f} s\n")

    print("The paper's four configurations:")
    print(f"  {'configuration':16s} {'disk J':>8s} {'idle cycles':>12s} "
          f"{'spindowns':>10s} {'run time s':>11s}")
    for number in (1, 2, 3, 4):
        result = softwatt.run(name, disk=number)
        disk = result.timeline.disk
        print(f"  {disk.policy.name:16s} {result.disk_energy_j:8.1f} "
              f"{result.idle_cycles:12.3g} {disk.state.spindowns:10d} "
              f"{result.timeline.duration_s:11.2f}")

    print("\nFiner spin-down threshold sweep:")
    print(f"  {'threshold s':>11s} {'disk J':>8s} {'spindowns':>10s} "
          f"{'stall s':>8s}")
    reference = softwatt.run(name, disk=2)
    for threshold in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 10.0):
        policy = DiskPowerPolicy(name=f"sweep-{threshold}",
                                 spindown_threshold_s=threshold)
        result = softwatt.run(name, disk=policy)
        stall = result.timeline.idle_wait_s - reference.timeline.idle_wait_s
        print(f"  {threshold:11.1f} {result.disk_energy_j:8.1f} "
              f"{result.timeline.disk.state.spindowns:10d} {stall:8.2f}")

    spinup = 5.0
    print(f"\nDesign rule (Section 4): spin down only when disk-inactivity "
          f"gaps greatly exceed the {spinup:.0f} s spin-down + {spinup:.0f} s "
          f"spin-up time.")
    print(f"For {name}, the largest gap is {max(gaps):.1f} s, so thresholds "
          f"below it trigger spin-downs whose spin-up cost "
          f"({disk_configuration(4).spindown_threshold_s:.0f} s x 4.2 W = 21 J "
          f"each) dwarfs the STANDBY savings.")


if __name__ == "__main__":
    main()
