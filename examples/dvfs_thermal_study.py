#!/usr/bin/env python
"""Voltage scaling and thermal headroom: closing the paper's loops.

The paper's introduction names supply-voltage scaling as the first
circuit-level power technique, defines the energy-delay product to
judge energy-vs-performance tradeoffs (Section 3.1), and justifies
average-power design by appeal to dynamic thermal management.  This
study runs a benchmark once and then answers, in post-processing:

1. What does the whole *system* gain from lowering Vdd — and when does
   the disk's fixed power start eating the CPU's quadratic savings?
2. How much thermal headroom does the package have, and would a DTM
   throttle ever engage?

    python examples/dvfs_thermal_study.py [benchmark]
"""

import sys

from repro import SoftWatt
from repro.power import ThermalModel, sweep


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mtrt"
    softwatt = SoftWatt(window_instructions=30_000, seed=1)
    result = softwatt.run(name, disk=2)
    base = softwatt.config.technology
    print(f"{name} on the IDLE-capable disk: {result.total_energy_j:.1f} J "
          f"over {result.timeline.duration_s:.1f} s "
          f"(avg {result.average_power_w:.2f} W, peak {result.peak_power_w:.2f} W)\n")

    print("DVFS sweep (alpha-power frequency scaling):")
    print(f"  {'Vdd V':>6s} {'f MHz':>6s} {'CPU J':>7s} {'disk J':>7s} "
          f"{'total J':>8s} {'dur s':>6s} {'EDP Js':>8s}")
    evaluations = sweep(result, [3.3, 3.0, 2.7, 2.4, 2.1, 1.8, 1.5, 1.2])
    for ev in evaluations:
        marker = ""
        print(f"  {ev.point.vdd:6.1f} {ev.point.clock_hz / 1e6:6.0f} "
              f"{ev.cpu_energy_j:7.1f} {ev.disk_energy_j:7.1f} "
              f"{ev.total_energy_j:8.1f} {ev.duration_s:6.1f} "
              f"{ev.energy_delay_product:8.0f}{marker}")
    best_energy = min(evaluations, key=lambda ev: ev.total_energy_j)
    best_edp = min(evaluations, key=lambda ev: ev.energy_delay_product)
    print(f"\n  energy optimum: Vdd {best_energy.point.vdd:.1f} V "
          f"({best_energy.total_energy_j:.1f} J)")
    print(f"  EDP optimum   : Vdd {best_edp.point.vdd:.1f} V "
          f"({best_edp.energy_delay_product:.0f} Js)")
    print("  Below the energy optimum the platter's fixed watts outlive "
          "the CPU's quadratic savings — the complete-system effect the "
          "paper's tool exists to expose.\n")

    model = ThermalModel()
    profile = model.profile(result.trace)
    print("Thermal headroom (lumped RC package, DTM trip "
          f"{model.trip_c:.0f} C):")
    print(f"  sustainable steady power: {model.sustainable_power_w():.1f} W")
    print(f"  validation maximum power: {softwatt.validate_max_power():.1f} W")
    print(f"  peak junction temperature this run: {profile.peak_c:.1f} C")
    print(f"  margin to the throttle: {profile.steady_state_margin_c:.1f} C")
    print(f"  DTM engaged: {'yes' if profile.dtm_engaged else 'no'}")
    print("\n  Designing the package for this *average* behaviour is safe "
          "even though the machine's theoretical maximum exceeds what the "
          "package could sustain — Section 3.1's argument, quantified.")


if __name__ == "__main__":
    main()
