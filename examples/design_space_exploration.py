#!/usr/bin/env python
"""Design-space exploration with complete-system power in the loop.

The paper's pitch (Section 1) is that power tools must see the whole
system, because an optimisation's effect on its target says little
about its effect on the machine.  This study makes that concrete: sweep
three classic design knobs and watch the *system* budget respond —
including the disk, which no CPU-only simulator would show moving.

    python examples/design_space_exploration.py
"""

from repro.core.sensitivity import sweep_parameter, sweep_spindown_threshold

KB = 1024


def main() -> None:
    print("L1 cache size (jess, IDLE-capable disk):")
    l1 = sweep_parameter("l1_size", [8 * KB, 16 * KB, 32 * KB, 64 * KB],
                         benchmark="jess")
    print(l1.format())
    for point in l1.points:
        print(f"    {point.value // KB:3d} KB: L1I share "
              f"{point.budget_shares['l1i']:4.1f}%, "
              f"disk share {point.budget_shares['disk']:4.1f}%")
    print()

    print("Issue width (db, conventional disk):")
    width = sweep_parameter("issue_width", [1, 2, 4], benchmark="db", disk=1)
    print(width.format())
    narrow, _, wide = width.points
    print(f"    narrowing 4 -> 1 moves the disk share from "
          f"{wide.budget_shares['disk']:.1f}% to "
          f"{narrow.budget_shares['disk']:.1f}% — a fixed-power platter "
          f"punishes slow CPUs.\n")

    print("TLB reach (javac):")
    tlb = sweep_parameter("tlb_entries", [16, 64, 256], benchmark="javac")
    print(tlb.format())
    for point in tlb.points:
        print(f"    {point.value:3d} entries: kernel share "
              f"{point.kernel_share_pct:5.1f}% of cycles")
    print("    The software-managed TLB is the OS power story: reach "
          "directly sets the utlb trap rate.\n")

    print("Disk spin-down threshold (compress):")
    spin = sweep_spindown_threshold([1.0, 2.0, 3.0, 4.0, 8.0])
    print(spin.format())
    best = spin.best_by_energy()
    print(f"    energy optimum at {best.value:.0f} s — anything below the "
          f"benchmark's ~2.5 s access gaps pays 21 J per spin-up.")


if __name__ == "__main__":
    main()
