#!/usr/bin/env python
"""Characterise a custom workload (the paper's 'other workloads' future work).

The paper closes by noting the tool "will be invaluable in analyzing
other workloads such as database workloads", whose hosting costs were
already a concern in 2001.  This example builds a synthetic
*file-server* workload from the library's public pieces — a custom
user-code signature, a JVM-style phase structure, and a periodic disk
access pattern — runs it under two disk policies, and reports the
complete-system picture.

    python examples/custom_workload.py
"""

from repro import SoftWatt
from repro.core.report import MODE_ORDER
from repro.isa import CodeSignature
from repro.workloads import BenchmarkSpec, DiskEvent, JVMPhases, PhaseSpec
from repro.workloads.specjvm98 import (
    PAPER_RUN_CYCLES,
    PAPER_TABLE4_INVOCATIONS,
)

KB = 1024
MB = 1024 * KB


def build_fileserver_spec() -> BenchmarkSpec:
    """A request-loop server: modest compute, periodic cold-file reads."""
    serving = CodeSignature(
        name="fileserver",
        load_fraction=0.28,
        store_fraction=0.10,
        dependency_distance=9.0,
        loop_body_mean=12,
        loop_iterations_mean=40,
        irregular_branch_fraction=0.08,
        call_fraction=0.06,
        code_footprint_bytes=192 * KB,
        hot_code_bytes=12 * KB,
        data_footprint_bytes=2 * MB,
        hot_data_bytes=32 * KB,
        temporal_locality=0.80,
        spatial_run_mean=24,
    )
    warmup = CodeSignature(
        name="fileserver-warmup",
        load_fraction=0.30,
        dependency_distance=8.0,
        code_footprint_bytes=384 * KB,
        hot_code_fraction=0.6,
        data_footprint_bytes=3 * MB,
        hot_data_bytes=32 * KB,
        temporal_locality=0.55,
        spatial_run_mean=8,
    )
    phases = JVMPhases(phases=(
        PhaseSpec(name="startup", compute_fraction=0.08, signature=warmup,
                  sync_mean_gap=20_000, cold_caches=True),
        PhaseSpec(name="steady", compute_fraction=0.84, signature=serving,
                  sync_mean_gap=9_000),
        PhaseSpec(name="gc", compute_fraction=0.08, signature=serving,
                  sync_mean_gap=20_000),
    ))
    # A request hits a cold file roughly every 700 ms: the disk never
    # idles long enough for any reasonable spin-down threshold.
    events = [DiskEvent(0.05 + 0.03 * i, 96 * KB) for i in range(4)]
    events += [DiskEvent(0.7 * i, 32 * KB) for i in range(1, 14)]
    events.sort(key=lambda event: event.progress_s)
    return BenchmarkSpec(
        name="fileserver",
        description="Request-serving loop with periodic cold-file reads",
        phases=phases,
        compute_duration_s=10.0,
        disk_events=tuple(events),
        seed=97,
    )


def main() -> None:
    spec = build_fileserver_spec()
    # Scheduled-service densities are table-driven; reuse jack's
    # OS-heavy profile for this server-style workload.
    PAPER_TABLE4_INVOCATIONS[spec.name] = PAPER_TABLE4_INVOCATIONS["jack"]
    PAPER_RUN_CYCLES[spec.name] = PAPER_RUN_CYCLES["jack"]

    softwatt = SoftWatt(window_instructions=30_000, seed=5)
    print(f"Custom workload: {spec.description}")
    print(f"  {len(spec.disk_events)} disk requests over "
          f"{spec.compute_duration_s:.0f} s of compute\n")

    for disk in (1, 2, 3):
        result = softwatt.run(spec, disk=disk)
        shares = result.power_budget_shares()
        print(f"disk policy {result.disk_policy_name!r}:")
        print(f"  total energy {result.total_energy_j:6.1f} J "
              f"(disk {result.disk_energy_j:5.1f} J, "
              f"{shares['disk']:4.1f}% of power), "
              f"run time {result.timeline.duration_s:5.2f} s, "
              f"spindowns {result.timeline.disk.state.spindowns}")

    result = softwatt.run(spec, disk=2)
    print("\nMode breakdown with the IDLE-capable disk:")
    for mode in MODE_ORDER:
        row = result.mode_breakdown()[mode]
        print(f"  {mode.value:8s} {row.cycles_pct:6.2f}% cycles  "
              f"{row.energy_pct:6.2f}% energy")
    print("\nTop kernel services:")
    for row in result.service_breakdown()[:5]:
        print(f"  {row.service:12s} {row.kernel_cycles_pct:6.2f}% kernel cycles")
    print("\nTakeaway: with sub-second request gaps, even the 2 s "
          "threshold never spins the disk down — the IDLE mode is all "
          "the power management this workload can use.")


if __name__ == "__main__":
    main()
