#!/usr/bin/env python
"""Quickstart: run one SPEC JVM98 benchmark through SoftWatt.

Simulates jess on the Table 1 machine with the conventional disk, then
prints the complete-system view the paper is built around: the mode
breakdown (Table 2), the kernel-service decomposition (Table 4), the
overall power budget (Figure 5), and a coarse power-over-time profile
(Figure 4).

    python examples/quickstart.py [benchmark]
"""

import sys

from repro import SoftWatt
from repro.core.report import MODE_ORDER


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "jess"
    print(f"Configuring SoftWatt (Table 1 machine, MXS CPU model)...")
    softwatt = SoftWatt(window_instructions=30_000, seed=1)
    print(f"R10000 max-power validation: {softwatt.validate_max_power():.1f} W "
          f"(paper: 25.3 W vs the 30 W datasheet)\n")

    print(f"Simulating {name} with the conventional disk...")
    result = softwatt.run(name, disk=1)
    print(result.format_summary())

    print("\nMode breakdown (Table 2 shape):")
    print(f"  {'mode':8s} {'%cycles':>8s} {'%energy':>8s}")
    for mode in MODE_ORDER:
        row = result.mode_breakdown()[mode]
        print(f"  {mode.value:8s} {row.cycles_pct:8.2f} {row.energy_pct:8.2f}")

    print("\nKernel services (Table 4 shape):")
    print(f"  {'service':12s} {'invocations':>12s} {'%kernel cyc':>12s} "
          f"{'%kernel en':>11s}")
    for row in result.service_breakdown()[:6]:
        print(f"  {row.service:12s} {row.invocations:12.0f} "
              f"{row.kernel_cycles_pct:12.2f} {row.kernel_energy_pct:11.2f}")

    print("\nOverall power budget (Figure 5 shape):")
    budget = result.power_budget()
    shares = result.power_budget_shares()
    for category in budget:  # registry legend order, disk included
        print(f"  {category:10s} {budget[category]:6.2f} W  "
              f"{shares[category]:5.1f}%")

    print("\nPower over time (Figure 4 shape):")
    trace = result.trace
    step = max(1, len(trace.times_s) // 12)
    for index in range(0, len(trace.times_s), step):
        total = trace.total_with_disk_w[index]
        bar = "#" * int(total * 3)
        print(f"  t={trace.times_s[index]:5.2f}s {total:6.2f} W  {bar}")


if __name__ == "__main__":
    main()
