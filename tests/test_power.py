"""Tests for the analytical power models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, SystemConfig, Technology
from repro.power import (
    ArrayEnergyModel,
    CacheEnergyModel,
    CAMEnergyModel,
    CATEGORIES,
    REGISTRY,
    ClockNetworkModel,
    ClockedUnit,
    FunctionalUnitEnergyModel,
    MemoryEnergyModel,
    ProcessorPowerModel,
    gating_factor,
    r10000_max_power,
    unit_activity,
)
from repro.stats.counters import AccessCounters

KB = 1024


def _cache_config(size=32 * KB, line=64, assoc=2):
    return CacheConfig(name="c", size_bytes=size, line_bytes=line,
                       associativity=assoc, latency_cycles=1)


class TestCacheEnergyModel:
    def test_breakdown_components_positive(self):
        model = CacheEnergyModel(_cache_config(), output_bits=128)
        breakdown = model.breakdown()
        assert breakdown.decode_j > 0
        assert breakdown.wordline_j > 0
        assert breakdown.bitline_j > 0
        assert breakdown.sense_j > 0
        assert breakdown.tag_j > 0
        assert breakdown.output_j > 0
        assert breakdown.total_j == pytest.approx(
            breakdown.decode_j + breakdown.wordline_j + breakdown.bitline_j
            + breakdown.sense_j + breakdown.tag_j + breakdown.output_j)

    def test_write_skips_sense_amps(self):
        model = CacheEnergyModel(_cache_config(), output_bits=64)
        assert model.breakdown(write=True).sense_j == 0.0

    def test_larger_cache_costs_more_per_access(self):
        small = CacheEnergyModel(_cache_config(size=8 * KB), output_bits=64)
        large = CacheEnergyModel(_cache_config(size=64 * KB), output_bits=64)
        assert large.read_energy_j() > small.read_energy_j()

    def test_l2_serial_tag_data_reads_one_way(self):
        config = SystemConfig.table1()
        l2 = CacheEnergyModel(config.l2, output_bits=1024)
        assert l2.serial_tag_data
        assert l2.data_columns == config.l2.line_bytes * 8
        l1 = CacheEnergyModel(config.l1i, output_bits=128)
        assert not l1.serial_tag_data
        assert l1.data_columns == config.l1i.line_bytes * 8 * 2

    def test_subarray_bounds_bitline_length(self):
        model = CacheEnergyModel(_cache_config(size=1 << 20, line=128),
                                 output_bits=1024)
        assert model.subarray_rows <= 256
        assert model.rows > model.subarray_rows

    def test_l2_per_access_exceeds_l1(self):
        """Section 3.2: L2 has a high per-access cost."""
        config = SystemConfig.table1()
        l1 = CacheEnergyModel(config.l1d, output_bits=64)
        l2 = CacheEnergyModel(config.l2, output_bits=1024)
        assert l2.read_energy_j() > l1.read_energy_j()

    def test_blended_access_energy(self):
        model = CacheEnergyModel(_cache_config(), output_bits=64)
        read = model.read_energy_j()
        write = model.write_energy_j()
        blended = model.access_energy_j(write_fraction=0.5)
        assert min(read, write) <= blended <= max(read, write)

    def test_blend_fraction_validated(self):
        model = CacheEnergyModel(_cache_config(), output_bits=64)
        with pytest.raises(ValueError):
            model.access_energy_j(write_fraction=1.5)

    def test_rejects_zero_output_bits(self):
        with pytest.raises(ValueError):
            CacheEnergyModel(_cache_config(), output_bits=0)


class TestArrayAndCAM:
    def test_array_read_energy_positive_and_monotone(self):
        small = ArrayEnergyModel("a", rows=16, bits_per_row=32)
        large = ArrayEnergyModel("b", rows=256, bits_per_row=32)
        assert 0 < small.access_energy_j() < large.access_energy_j()

    def test_array_latch_bits(self):
        assert ArrayEnergyModel("a", rows=64, bits_per_row=96).latch_bits == 6144

    def test_cam_search_scales_with_entries(self):
        small = CAMEnergyModel("s", entries=16, tag_bits=20)
        large = CAMEnergyModel("l", entries=128, tag_bits=20)
        assert small.search_energy_j() < large.search_energy_j()

    def test_cam_data_read_adds_energy(self):
        bare = CAMEnergyModel("s", entries=64, tag_bits=20)
        payload = CAMEnergyModel("s", entries=64, tag_bits=20, data_bits=64)
        assert payload.search_energy_j() > bare.search_energy_j()

    def test_cam_write_energy_positive(self):
        assert CAMEnergyModel("s", entries=64, tag_bits=20).write_energy_j() > 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ArrayEnergyModel("bad", rows=0, bits_per_row=8)
        with pytest.raises(ValueError):
            CAMEnergyModel("bad", entries=4, tag_bits=0)


class TestClockNetwork:
    def test_capacitance_components(self):
        clock = ClockNetworkModel(clocked_bits=30_000)
        assert clock.wire_capacitance_f > 0
        assert clock.buffer_capacitance_f > 0
        assert clock.load_capacitance_f > 0
        assert clock.total_capacitance_f == pytest.approx(
            clock.wire_capacitance_f + clock.buffer_capacitance_f
            + clock.load_capacitance_f)

    def test_gating_reduces_energy(self):
        clock = ClockNetworkModel(clocked_bits=30_000)
        full = clock.energy_per_cycle_j(gating_factor=1.0)
        gated = clock.energy_per_cycle_j(gating_factor=0.3)
        spine = clock.energy_per_cycle_j(gating_factor=0.0)
        assert spine < gated < full

    def test_spine_always_burns(self):
        clock = ClockNetworkModel(clocked_bits=1000)
        assert clock.energy_per_cycle_j(gating_factor=0.0) > 0

    def test_gating_factor_validated(self):
        clock = ClockNetworkModel(clocked_bits=1000)
        with pytest.raises(ValueError):
            clock.energy_per_cycle_j(gating_factor=1.5)

    def test_max_power_matches_ungated_energy(self):
        tech = Technology()
        clock = ClockNetworkModel(clocked_bits=10_000, technology=tech)
        assert clock.max_power_w() == pytest.approx(
            clock.energy_per_cycle_j() * tech.clock_hz)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ClockNetworkModel(clocked_bits=0)
        with pytest.raises(ValueError):
            ClockNetworkModel(clocked_bits=100, load_derating=0.0)


class TestConditionalClocking:
    def test_activity_saturates_at_one(self):
        counters = AccessCounters(l1i_access=10_000)
        unit = ClockedUnit("l1i", 1024, "l1i_access", ports=1)
        assert unit_activity(counters, 100, unit) == 1.0

    def test_activity_proportional_below_saturation(self):
        counters = AccessCounters(l1d_access=50)
        unit = ClockedUnit("l1d", 1024, "l1d_access", ports=1)
        assert unit_activity(counters, 100, unit) == pytest.approx(0.5)

    def test_ports_scale_activity(self):
        counters = AccessCounters(l1i_access=200)
        wide = ClockedUnit("l1i", 1024, "l1i_access", ports=4)
        assert unit_activity(counters, 100, wide) == pytest.approx(0.5)

    def test_gating_factor_weighted_by_latch_bits(self):
        counters = AccessCounters(l1i_access=100, l1d_access=0)
        busy = ClockedUnit("busy", 3000, "l1i_access", ports=1)
        idle = ClockedUnit("idle", 1000, "l1d_access", ports=1)
        factor = gating_factor(counters, 100, (busy, idle))
        assert factor == pytest.approx(0.75)

    def test_gating_requires_units(self):
        with pytest.raises(ValueError):
            gating_factor(AccessCounters(), 100, ())

    @given(st.integers(1, 10_000), st.integers(1, 1_000_000))
    @settings(max_examples=50, deadline=None)
    def test_gating_factor_bounded(self, cycles, accesses):
        counters = AccessCounters(l1i_access=accesses)
        unit = ClockedUnit("u", 100, "l1i_access", ports=2)
        factor = gating_factor(counters, cycles, (unit,))
        assert 0.0 <= factor <= 1.0


class TestFunctionalUnits:
    def test_relative_ordering(self):
        fus = FunctionalUnitEnergyModel()
        assert fus.ialu_energy_j() < fus.imul_energy_j()
        assert fus.falu_energy_j() < fus.fmul_energy_j()
        assert fus.ialu_energy_j() < fus.falu_energy_j()

    def test_result_bus_positive(self):
        assert FunctionalUnitEnergyModel().result_bus_energy_j() > 0


class TestMemoryEnergy:
    def test_access_energy_dominates_at_high_rate(self):
        model = MemoryEnergyModel()
        active = model.energy_j(accesses=10_000, cycles=100_000)
        idle = model.energy_j(accesses=0, cycles=100_000)
        assert active > idle * 5

    def test_refresh_accrues_with_time(self):
        model = MemoryEnergyModel()
        assert model.energy_j(0, 2_000_000) == pytest.approx(
            2 * model.energy_j(0, 1_000_000))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MemoryEnergyModel().energy_j(-1, 100)


class TestProcessorPowerModel:
    def setup_method(self):
        self.config = SystemConfig.table1()
        self.model = ProcessorPowerModel(self.config)

    def test_r10000_validation_number(self):
        """Section 2: SoftWatt reports 25.3 W vs the 30 W datasheet."""
        power = r10000_max_power()
        assert power == pytest.approx(25.3, abs=0.5)
        assert power < 30.0

    def test_all_categories_reported(self):
        counters = self.model.max_power_counters(1000)
        energies = self.model.energy_by_category(counters, 1000)
        assert set(energies) == set(REGISTRY.counter_categories)
        # The full report order additionally carries the disk, last.
        assert tuple(energies) + ("disk",) == CATEGORIES
        assert all(value >= 0 for value in energies.values())

    def test_energy_scales_with_activity(self):
        low = AccessCounters(l1i_access=100, window_dispatch=100)
        high = AccessCounters(l1i_access=10_000, window_dispatch=10_000)
        e_low = self.model.energy_by_category(low, 10_000)["l1i"]
        e_high = self.model.energy_by_category(high, 10_000)["l1i"]
        assert e_high == pytest.approx(100 * e_low)

    def test_idle_machine_burns_clock_and_refresh_only(self):
        energies = self.model.energy_by_category(AccessCounters(), 10_000)
        assert energies["clock"] > 0          # the spine always switches
        assert energies["memory"] > 0         # refresh
        assert energies["l1i"] == 0.0
        assert energies["datapath"] == 0.0

    def test_average_power_consistent_with_energy(self):
        counters = self.model.max_power_counters(1000)
        power = self.model.average_power_w(counters, 1000)
        energy = self.model.energy_by_category(counters, 1000)
        seconds = 1000 * self.config.technology.cycle_time_s
        for name in REGISTRY.counter_categories:
            assert power[name] == pytest.approx(energy[name] / seconds)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            self.model.energy_by_category(AccessCounters(), 0)

    def test_stores_cost_more_than_loads_in_l1d(self):
        loads = AccessCounters(l1d_access=1000, loads=1000)
        stores = AccessCounters(l1d_access=1000, stores=1000)
        e_loads = self.model.energy_by_category(loads, 1000)["l1d"]
        e_stores = self.model.energy_by_category(stores, 1000)["l1d"]
        assert e_loads != e_stores

    def test_total_energy_additive_over_categories(self):
        counters = self.model.max_power_counters(500)
        total = self.model.total_energy_j(counters, 500)
        parts = self.model.energy_by_category(counters, 500)
        assert total == pytest.approx(sum(parts.values()))
