"""Tests for the process-pool profiling fan-out."""

import pickle

from repro.config import SystemConfig
from repro.core.softwatt import SoftWatt
from repro.parallel import (
    ProfileBenchmarkTask,
    ProfileServiceTask,
    parallel_map,
    run_profile_benchmark_task,
    run_profile_service_task,
)
from repro.workloads.specjvm98 import benchmark

WINDOW = 4000
NAMES = ("jess", "db")


def _square(value):
    return value * value


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_pool_path_preserves_order(self):
        assert parallel_map(_square, list(range(8)), workers=4) == [
            v * v for v in range(8)
        ]

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [7], workers=4) == [49]


class TestTasks:
    def test_tasks_pickle(self):
        config = SystemConfig.table1()
        bench_task = ProfileBenchmarkTask(
            spec=benchmark("jess"), config=config, cpu_model="mxs",
            window_instructions=WINDOW, startup_chunks=4, steady_chunks=2,
            seed=1,
        )
        service_task = ProfileServiceTask(
            service="read", config=config, cpu_model="mxs",
            invocations=10, warmup=6, seed=1,
        )
        assert pickle.loads(pickle.dumps(bench_task)) == bench_task
        assert pickle.loads(pickle.dumps(service_task)) == service_task

    def test_benchmark_task_matches_shared_profiler(self):
        sw = SoftWatt(window_instructions=WINDOW, seed=1, use_cache=False)
        direct = sw.profile("jess")
        task_result = run_profile_benchmark_task(
            ProfileBenchmarkTask(
                spec=benchmark("jess"), config=sw.config, cpu_model="mxs",
                window_instructions=WINDOW,
                startup_chunks=sw.profiler.startup_chunks,
                steady_chunks=sw.profiler.steady_chunks,
                seed=1,
            )
        )
        for name, phase in direct.phases.items():
            other = task_result.phases[name]
            assert other.aggregate.cycles == phase.aggregate.cycles
            assert other.aggregate.instructions == phase.aggregate.instructions

    def test_service_task_matches_shared_profiler(self):
        sw = SoftWatt(window_instructions=WINDOW, seed=1, use_cache=False)
        direct = sw.profiler.profile_service(
            "read", sw.model, invocations=10
        )
        task_result = run_profile_service_task(
            ProfileServiceTask(
                service="read", config=sw.config, cpu_model="mxs",
                invocations=10, warmup=6, seed=1,
            )
        )
        assert task_result.mean_cycles == direct.mean_cycles
        assert task_result.energies_j == direct.energies_j


class TestSuiteBitIdentity:
    def test_parallel_suite_equals_serial(self):
        serial = SoftWatt(
            window_instructions=WINDOW, seed=1, use_cache=False
        ).run_suite(names=NAMES, workers=1)
        parallel = SoftWatt(
            window_instructions=WINDOW, seed=1, use_cache=False
        ).run_suite(names=NAMES, workers=4)
        assert set(serial) == set(parallel) == set(NAMES)
        for name in NAMES:
            a, b = serial[name], parallel[name]
            assert b.total_energy_j == a.total_energy_j
            assert b.disk_energy_j == a.disk_energy_j
            assert b.idle_cycles == a.idle_cycles
            assert b.timeline.duration_s == a.timeline.duration_s

    def test_service_profiles_parallel_equals_serial(self):
        serial = SoftWatt(
            window_instructions=WINDOW, seed=1, use_cache=False
        ).service_profiles(("read", "write", "utlb"), invocations=8, workers=1)
        parallel = SoftWatt(
            window_instructions=WINDOW, seed=1, use_cache=False
        ).service_profiles(("read", "write", "utlb"), invocations=8, workers=4)
        for name, profile in serial.items():
            assert parallel[name].mean_cycles == profile.mean_cycles
            assert parallel[name].energies_j == profile.energies_j
