"""Tests for the estimation server (`repro serve`).

The deterministic :class:`ServeFaultPlan` harness drives every
degradation path — pool-kill opening the circuit breaker, slow
requests breaching deadlines, queue floods tripping admission control,
drain completing in-flight work — and the central acceptance check:
a degraded answer is *bit-identical* to the same fidelity rung run
offline.
"""

import threading
import time

import pytest

from repro.core.softwatt import SoftWatt
from repro.resilience.faults import ServeFaultPlan, ServeFaultSpec
from repro.serve import (
    AdmissionGate,
    CircuitBreaker,
    EstimateRequest,
    EstimationEngine,
    EstimationHTTPServer,
    RequestError,
    ServeClient,
    UnixEstimationHTTPServer,
    serve_forever,
)

WINDOW = 2000
SEED = 1


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One persistent cache shared by every engine in this module, so
    each fidelity rung pays its cold simulation exactly once."""
    return tmp_path_factory.mktemp("serve-cache")


@pytest.fixture(scope="module")
def offline(cache_dir):
    """Ground truth: each fidelity rung run directly, no server."""
    results = {}
    for rung in ("detailed", "sampled", "atomic"):
        sw = SoftWatt(
            window_instructions=WINDOW,
            seed=SEED,
            cache_dir=cache_dir,
            fidelity=None if rung == "detailed" else rung,
        )
        results[rung] = sw.run("jess").total_energy_j
    return results


def make_engine(cache_dir, **overrides):
    params = dict(
        window_instructions=WINDOW, seed=SEED, cache_dir=cache_dir
    )
    params.update(overrides)
    return EstimationEngine(**params)


class TestServeFaultPlan:
    def test_parse_with_aliases_and_spans(self):
        plan = ServeFaultPlan.parse("slow@2x3, kill@5, flood@0")
        assert plan.specs == (
            ServeFaultSpec("slow-request", 2, span=3),
            ServeFaultSpec("pool-kill", 5),
            ServeFaultSpec("queue-flood", 0),
        )
        assert plan.action(0) == "queue-flood"
        assert plan.action(2) == plan.action(4) == "slow-request"
        assert plan.action(5) == "pool-kill"
        assert plan.action(1) is None and plan.action(6) is None

    def test_negative_ordinals_never_fault(self):
        plan = ServeFaultPlan.parse("kill@0x100")
        assert plan.action(-1) is None  # warm-up traffic

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="serve fault"):
            ServeFaultPlan.parse("slow@x")
        with pytest.raises(ValueError, match="unknown serve fault kind"):
            ServeFaultPlan.parse("explode@1")
        with pytest.raises(ValueError):
            ServeFaultSpec("slow-request", 0, span=0)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_s=10.0, clock=lambda: now[0]
        )
        assert breaker.allow() and breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"  # 1 of 2
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 1
        assert not breaker.allow()
        now[0] = 10.0
        assert breaker.state == "half-open"
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # everyone else still degrades
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 2
        now[0] = 9.0  # cooldown restarted at t=5
        assert breaker.state == "open"
        now[0] = 10.0
        assert breaker.state == "half-open"

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two in a row
        snapshot = breaker.snapshot()
        assert snapshot["consecutive_failures"] == 1
        assert snapshot["opens"] == 0


class TestEstimateRequest:
    def test_validates_fields(self):
        request = EstimateRequest.from_payload(
            {"benchmark": "jess", "disk": 3, "fidelity": "sampled",
             "deadline_s": 2.5}
        )
        assert request.disk == 3 and request.deadline_s == 2.5

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},
        {"benchmark": "nope"},
        {"benchmark": "jess", "surprise": 1},
        {"benchmark": "jess", "disk": 9},
        {"benchmark": "jess", "disk": True},
        {"benchmark": "jess", "fidelity": "ledger"},
        {"benchmark": "jess", "cpu_model": "gem5"},
        {"benchmark": "jess", "deadline_s": -1},
        {"benchmark": "jess", "idle_policy": "nap"},
    ])
    def test_rejects_bad_payloads(self, payload):
        with pytest.raises(RequestError):
            EstimateRequest.from_payload(payload)

    def test_engine_maps_request_error_to_400(self, cache_dir):
        reply = make_engine(cache_dir).estimate({"benchmark": "nope"})
        assert reply["status"] == 400 and "unknown benchmark" in reply["error"]


class TestDegradation:
    def test_pool_kill_degrades_bit_identical_to_offline_rung(
        self, cache_dir, offline
    ):
        """The acceptance criterion: under injected pool-kill the
        breaker opens and degraded answers equal the same fidelity rung
        run offline, bit for bit."""
        now = [0.0]
        engine = make_engine(
            cache_dir,
            breaker=CircuitBreaker(
                failure_threshold=2, cooldown_s=30.0, clock=lambda: now[0]
            ),
            fault_plan=ServeFaultPlan.parse("kill@0x2"),
        )
        # Request 0: detailed dies, ladder answers at sampled.
        reply = engine.estimate({"benchmark": "jess"}, index=0)
        assert reply["status"] == 200
        assert reply["fidelity_used"] == "sampled" and reply["degraded"]
        assert reply["result"]["total_energy_j"] == offline["sampled"]
        kinds = [d["kind"] for d in reply["run_report"]["degradations"]]
        assert kinds == ["rung-failed"]
        assert engine.breaker.state == "closed"  # 1 of 2 failures

        # Request 1: second kill opens the breaker.
        reply = engine.estimate({"benchmark": "jess"}, index=1)
        assert reply["fidelity_used"] == "sampled"
        assert engine.breaker.state == "open"

        # Request 2: breaker open -> no detailed attempt, still the
        # exact offline sampled answer.
        reply = engine.estimate({"benchmark": "jess"}, index=2)
        assert reply["status"] == 200 and reply["degraded"]
        assert reply["result"]["total_energy_j"] == offline["sampled"]
        kinds = [d["kind"] for d in reply["run_report"]["degradations"]]
        assert kinds == ["breaker-open"]

        # Cooldown elapses: the half-open probe succeeds (the fault
        # plan is exhausted), the breaker closes, answers are detailed
        # again — and equal the offline detailed run.
        now[0] = 31.0
        reply = engine.estimate({"benchmark": "jess"}, index=5)
        assert reply["fidelity_used"] == "detailed"
        assert not reply["degraded"]
        assert reply["result"]["total_energy_j"] == offline["detailed"]
        assert engine.breaker.state == "closed"

    def test_explicit_sub_detailed_fidelity_is_not_degraded(
        self, cache_dir, offline
    ):
        engine = make_engine(cache_dir)
        reply = engine.estimate({"benchmark": "jess", "fidelity": "atomic"})
        assert reply["status"] == 200
        assert reply["fidelity_used"] == "atomic"
        assert not reply["degraded"]  # the caller asked for this rung
        assert reply["result"]["total_energy_j"] == offline["atomic"]

    def test_expired_deadline_is_504(self, cache_dir):
        engine = make_engine(cache_dir)
        reply = engine.estimate({"benchmark": "jess", "deadline_s": 0})
        assert reply["status"] == 504 and "deadline" in reply["error"]

    def test_deadline_breach_on_detailed_tier_trips_breaker(self, cache_dir):
        engine = make_engine(
            cache_dir,
            breaker=CircuitBreaker(failure_threshold=1),
            fault_plan=ServeFaultPlan.parse("slow@0", slow_seconds=0.2),
        )
        engine.warm(("jess",))
        reply = engine.estimate(
            {"benchmark": "jess", "deadline_s": 0.05}, index=0
        )
        # The work finished, so the answer is served — flagged — but
        # the breach counts as a breaker failure.
        assert reply["status"] == 200 and reply["deadline_exceeded"]
        assert engine.breaker.state == "open"

    def test_deadline_propagates_into_task_timeout(self, cache_dir):
        engine = make_engine(cache_dir)
        instance = engine._instance("mxs", "detailed")
        seen = []
        original = instance.softwatt.run

        def spy(*args, **kwargs):
            seen.append(instance.softwatt.task_timeout)
            return original(*args, **kwargs)

        instance.softwatt.run = spy
        engine.estimate({"benchmark": "jess", "deadline_s": 60.0})
        instance.softwatt.run = original
        assert len(seen) == 1
        assert seen[0] is not None and 0 < seen[0] <= 60.0
        assert instance.softwatt.task_timeout is None  # restored

    def test_ledger_fallback_serves_last_good_marked_stale(self, cache_dir):
        engine = make_engine(
            cache_dir,
            degrade_ladder=(),
            breaker=CircuitBreaker(failure_threshold=100),
            fault_plan=ServeFaultPlan.parse("kill@1x10"),
        )
        good = engine.estimate({"benchmark": "jess"}, index=0)
        assert good["status"] == 200
        reply = engine.estimate({"benchmark": "jess"}, index=1)
        assert reply["status"] == 200
        assert reply["fidelity_used"] == "ledger"
        assert reply["degraded"] and reply["stale"]
        assert (reply["result"]["total_energy_j"]
                == good["result"]["total_energy_j"])

    def test_unavailable_when_nothing_cached(self, cache_dir):
        engine = make_engine(
            cache_dir,
            degrade_ladder=(),
            breaker=CircuitBreaker(failure_threshold=100),
            fault_plan=ServeFaultPlan.parse("kill@0x10"),
        )
        reply = engine.estimate({"benchmark": "jess"}, index=0)
        assert reply["status"] == 503

    def test_rejects_detailed_rung_in_ladder(self, cache_dir):
        with pytest.raises(ValueError, match="sub-detailed"):
            make_engine(cache_dir, degrade_ladder=("detailed",))

    def test_sweep_endpoint_reuses_warm_state(self, cache_dir):
        engine = make_engine(cache_dir)
        reply = engine.sweep({"parameter": "vdd", "values": [3.0, 3.3]})
        assert reply["status"] == 200
        points = reply["sweep"]["points"]
        assert len(points) == 2
        assert points[0]["energy_j"] < points[1]["energy_j"]
        assert reply["sweep"]["tiers"] == ["LEDGER", "LEDGER"]
        bad = engine.sweep({"parameter": "nonsense", "values": [1]})
        assert bad["status"] == 400


class TestAdmissionGate:
    def test_bounded_admission(self):
        gate = AdmissionGate(limit=2)
        assert gate.try_enter() and gate.try_enter()
        assert not gate.try_enter()
        assert gate.rejected == 1
        gate.leave()
        assert gate.try_enter()
        assert gate.snapshot()["peak_in_flight"] == 2

    def test_rejects_silly_limit(self):
        with pytest.raises(ValueError):
            AdmissionGate(limit=0)


class _RunningServer:
    """A server on an OS-assigned port plus its serve thread."""

    def __init__(self, engine, **kwargs):
        self.server = EstimationHTTPServer(
            ("127.0.0.1", 0), engine, **kwargs
        )
        self.port = self.server.server_address[1]
        self.summary = None

        def run():
            self.summary = serve_forever(self.server)

        self.thread = threading.Thread(target=run)
        self.thread.start()

    def stop(self):
        self.server.begin_drain()
        self.thread.join(timeout=60)
        assert not self.thread.is_alive()


class TestHTTPServer:
    def test_health_run_and_stats(self, cache_dir, offline):
        engine = make_engine(cache_dir)
        running = _RunningServer(engine, queue_depth=2)
        try:
            with ServeClient(port=running.port) as client:
                assert client.healthz().status == 200
                assert client.readyz().status == 200
                reply = client.run("jess")
                assert reply.status == 200
                assert (reply.payload["result"]["total_energy_j"]
                        == offline["detailed"])
                stats = client.stats()
                assert stats.status == 200
                assert stats.payload["counters"]["ok"] == 1
                assert stats.payload["admission"]["admitted"] == 1
                assert client.get("/nonsense").status == 404
                assert client.post("/run", {"benchmark": "nope"}).status == 400
        finally:
            running.stop()

    def test_queue_flood_rejected_with_retry_after(self, cache_dir):
        engine = make_engine(
            cache_dir, fault_plan=ServeFaultPlan.parse("flood@1x2")
        )
        running = _RunningServer(engine, queue_depth=4, retry_after_s=1.5)
        try:
            with ServeClient(port=running.port) as client:
                assert client.run("jess").status == 200       # ordinal 0
                flooded = client.run("jess")                  # ordinal 1
                assert flooded.status == 429
                assert flooded.headers["Retry-After"] == "1.5"
                assert flooded.payload["retry_after_s"] == 1.5
                assert client.run("jess").status == 429       # ordinal 2
                assert client.run("jess").status == 200       # ordinal 3
                stats = client.stats()
                assert stats.payload["admission"]["rejected"] == 2
        finally:
            running.stop()

    def test_admission_gate_full_is_429(self, cache_dir):
        engine = make_engine(
            cache_dir,
            fault_plan=ServeFaultPlan.parse("slow@0", slow_seconds=1.0),
        )
        engine.warm(("jess",))
        running = _RunningServer(engine, queue_depth=1)
        started = threading.Event()
        outcome = {}

        def occupant():
            with ServeClient(port=running.port, timeout_s=30) as client:
                started.set()
                outcome["slow"] = client.run("jess")          # ordinal 0

        try:
            blocker = threading.Thread(target=occupant)
            blocker.start()
            started.wait(timeout=10)
            # Probe only once the slow request holds the gate (the
            # injected fault keeps it there for a full second).
            deadline = time.monotonic() + 10
            while (running.server.gate.in_flight < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert running.server.gate.in_flight >= 1
            with ServeClient(port=running.port, timeout_s=30) as client:
                reply = client.run("jess")
                assert reply.status == 429
            blocker.join(timeout=30)
            assert outcome["slow"].status == 200
        finally:
            running.stop()

    def test_drain_finishes_in_flight_and_reports(self, cache_dir):
        engine = make_engine(
            cache_dir,
            fault_plan=ServeFaultPlan.parse("slow@0", slow_seconds=0.6),
        )
        engine.warm(("jess",))
        running = _RunningServer(engine, queue_depth=2)
        dispatched = threading.Event()
        outcome = {}

        def in_flight():
            with ServeClient(port=running.port, timeout_s=30) as client:
                dispatched.set()
                outcome["reply"] = client.run("jess")

        worker = threading.Thread(target=in_flight)
        worker.start()
        dispatched.wait(timeout=10)
        # Drain only once the slow request actually occupies the gate,
        # so "drain completes in-flight work" is what is exercised.
        deadline = time.monotonic() + 10
        while (running.server.gate.in_flight < 1
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert running.server.gate.in_flight >= 1
        running.server.begin_drain()
        running.thread.join(timeout=60)
        worker.join(timeout=30)
        # The in-flight request got its full answer, not a reset.
        assert outcome["reply"].status == 200
        assert running.summary is not None
        assert running.summary["counters"]["ok"] >= 2  # warm + in-flight
        # New work is refused during/after drain at the HTTP layer.
        assert running.server.draining.is_set()

    def test_unix_socket_serves_same_api(self, cache_dir, tmp_path):
        path = str(tmp_path / "repro.sock")
        engine = make_engine(cache_dir)
        server = UnixEstimationHTTPServer(path, engine, queue_depth=2)
        thread = threading.Thread(target=serve_forever, args=(server,))
        thread.start()
        try:
            with ServeClient(socket_path=path) as client:
                assert client.healthz().status == 200
                assert client.run("jess").status == 200
        finally:
            server.begin_drain()
            thread.join(timeout=30)
        assert not thread.is_alive()


class TestServeClient:
    def test_requires_exactly_one_address(self):
        with pytest.raises(ValueError):
            ServeClient()
        with pytest.raises(ValueError):
            ServeClient(port=1, socket_path="/tmp/x")
