"""Tests for the memory hierarchy substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, SystemConfig, TLBConfig
from repro.mem import (
    Cache,
    FileCache,
    KSEG_BASE,
    MemoryHierarchy,
    TLB,
)
from repro.stats.counters import AccessCounters

KB = 1024


def small_cache(**overrides) -> Cache:
    params = dict(name="t", size_bytes=1 * KB, line_bytes=64,
                  associativity=2, latency_cycles=1)
    params.update(overrides)
    return Cache(CacheConfig(**params))


class TestCache:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        hit, _ = cache.access(0x1000)
        assert not hit
        hit, _ = cache.access(0x1000)
        assert hit

    def test_same_line_different_word_hits(self):
        cache = small_cache()
        cache.access(0x1000)
        hit, _ = cache.access(0x103C)
        assert hit

    def test_adjacent_line_misses(self):
        cache = small_cache()
        cache.access(0x1000)
        hit, _ = cache.access(0x1040)
        assert not hit

    def test_lru_eviction_order(self):
        cache = small_cache()  # 8 sets, 2 ways
        set_stride = 8 * 64  # same set index every 512 bytes
        a, b, c = 0x0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)       # a is now MRU
        cache.access(c)       # evicts b
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_writeback_on_dirty_eviction(self):
        cache = small_cache()
        set_stride = 8 * 64
        cache.access(0x0, write=True)
        cache.access(set_stride)
        _, writeback = cache.access(2 * set_stride)
        assert writeback
        assert cache.stats.writebacks == 1

    def test_write_through_never_writes_back(self):
        cache = small_cache(write_back=False)
        set_stride = 8 * 64
        cache.access(0x0, write=True)
        cache.access(set_stride)
        _, writeback = cache.access(2 * set_stride)
        assert not writeback

    def test_invalidate_all(self):
        cache = small_cache()
        for i in range(8):
            cache.access(i * 64)
        assert cache.resident_lines() == 8
        dropped = cache.invalidate_all()
        assert dropped == 8
        assert cache.resident_lines() == 0
        assert not cache.probe(0)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            small_cache().access(-8)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = small_cache()
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines() <= cache.config.num_lines
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_immediate_reaccess_always_hits(self, addresses):
        cache = small_cache()
        for address in addresses:
            cache.access(address)
            hit, _ = cache.access(address)
            assert hit


class _NaiveLRUCache:
    """Reference model: pop/re-insert on *every* hit, no fast paths."""

    def __init__(self, num_sets, associativity, line_bytes, write_back):
        self._offset_bits = line_bytes.bit_length() - 1
        self._index_mask = num_sets - 1
        self._tag_shift = self._index_mask.bit_length()
        self._associativity = associativity
        self._write_back = write_back
        self._sets = [dict() for _ in range(num_sets)]
        self.hits = self.misses = self.writebacks = 0

    def access(self, address, *, write=False):
        block = address >> self._offset_bits
        cache_set = self._sets[block & self._index_mask]
        tag = block >> self._tag_shift
        dirty = write and self._write_back
        if tag in cache_set:
            self.hits += 1
            cache_set[tag] = cache_set.pop(tag) or dirty
            return
        self.misses += 1
        if len(cache_set) >= self._associativity:
            victim = next(iter(cache_set))
            if cache_set.pop(victim):
                self.writebacks += 1
        cache_set[tag] = dirty


class TestCacheLRURegression:
    """The MRU fast path must not change any hit/miss/writeback count."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 1 << 14), st.booleans()),
            min_size=1,
            max_size=400,
        ),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_counts_match_naive_lru(self, accesses, write_back):
        cache = small_cache(write_back=write_back)
        config = cache.config
        reference = _NaiveLRUCache(
            config.num_sets, config.associativity, config.line_bytes, write_back
        )
        for address, write in accesses:
            cache.access(address, write=write)
            reference.access(address, write=write)
        assert cache.stats.hits == reference.hits
        assert cache.stats.misses == reference.misses
        assert cache.stats.writebacks == reference.writebacks

    def test_dirty_upgrade_on_mru_hit_causes_writeback(self):
        # A write hitting the MRU line takes the fast path but must
        # still mark the line dirty, so its later eviction writes back.
        cache = small_cache()  # 8 sets, 2-way, write-back
        set_stride = 8 * 64
        a, b, c = 0x0, set_stride, 2 * set_stride
        cache.access(a)             # clean fill, a is MRU
        cache.access(a, write=True)  # MRU hit; must upgrade to dirty
        cache.access(b)
        cache.access(c)             # evicts a, which must be dirty
        assert cache.stats.writebacks == 1


class TestTLB:
    def test_miss_does_not_install(self):
        tlb = TLB(TLBConfig(entries=4))
        assert not tlb.access(0x1000)
        assert not tlb.access(0x1000)  # still missing: software managed

    def test_refill_installs(self):
        tlb = TLB(TLBConfig(entries=4))
        tlb.access(0x1000)
        tlb.refill(0x1000)
        assert tlb.access(0x1234)  # same page

    def test_lru_eviction(self):
        tlb = TLB(TLBConfig(entries=2))
        for page in (0, 1, 0, 2):  # touch 0, 1, re-touch 0, install 2
            tlb.refill(page << 12)
            tlb.access(page << 12)
        assert tlb.contains(0 << 12)
        assert tlb.contains(2 << 12)

    def test_occupancy_bounded(self):
        tlb = TLB(TLBConfig(entries=8))
        for page in range(100):
            tlb.refill(page << 12)
        assert tlb.occupancy == 8

    def test_flush(self):
        tlb = TLB(TLBConfig(entries=8))
        tlb.refill(0x1000)
        assert tlb.flush() == 1
        assert tlb.occupancy == 0

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            TLB(TLBConfig()).access(-1)

    @given(st.lists(st.integers(0, 1 << 28), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_refill_then_access_hits(self, addresses):
        tlb = TLB(TLBConfig(entries=16))
        for address in addresses:
            tlb.refill(address)
            assert tlb.access(address)
            assert tlb.occupancy <= 16


class TestMemoryHierarchy:
    def _hierarchy(self, config=None):
        config = config or SystemConfig.table1()
        return MemoryHierarchy(config, AccessCounters())

    def test_kseg_bypasses_tlb(self):
        h = self._hierarchy()
        result = h.fetch(KSEG_BASE + 0x100)
        assert not result.tlb_miss
        assert h.counters.tlb_access == 0

    def test_user_fetch_takes_tlb_miss(self):
        h = self._hierarchy()
        result = h.fetch(0x0040_0000)
        assert result.tlb_miss
        assert h.counters.tlb_miss == 1

    def test_refill_resolves_miss(self):
        h = self._hierarchy()
        h.fetch(0x0040_0000)
        h.tlb_refill(0x0040_0000)
        result = h.fetch(0x0040_0000)
        assert not result.tlb_miss

    def test_hardware_tlb_refills_invisibly(self):
        h = self._hierarchy(SystemConfig.table1().with_hardware_tlb())
        result = h.fetch(0x0040_0000)
        assert not result.tlb_miss
        assert h.counters.tlb_miss == 1  # the miss is still counted

    def test_l2_attribution_split(self):
        h = self._hierarchy()
        h.fetch(KSEG_BASE)                      # I-side L1 miss -> L2I
        h.data_access(KSEG_BASE + (1 << 22))    # D-side L1 miss -> L2D
        assert h.counters.l2i_access == 1
        assert h.counters.l2d_access == 1

    def test_miss_latency_ordering(self):
        h = self._hierarchy()
        cold = h.data_access(KSEG_BASE + 0x10_0000).latency
        warm = h.data_access(KSEG_BASE + 0x10_0000).latency
        assert cold > warm
        # +64 is a different L1 line but the same 128 B L2 line: an L1
        # miss served from the L2 at L2-hit latency, cheaper than cold.
        l2_resident = h.data_access(KSEG_BASE + 0x10_0000 + 64)
        assert l2_resident.latency == h.config.l2.latency_cycles
        assert l2_resident.latency < cold

    def test_flush_caches_forces_refetch(self):
        h = self._hierarchy()
        h.fetch(KSEG_BASE)
        assert h.fetch(KSEG_BASE).latency == 0
        h.flush_caches()
        assert h.fetch(KSEG_BASE).latency > 0

    def test_warm_is_invisible_to_counters(self):
        h = self._hierarchy()
        h.warm([KSEG_BASE + i * 64 for i in range(100)])
        assert h.counters.l1d_access == 0
        assert h.l1d.stats.accesses == 0
        # But the data really is resident.
        assert h.data_access(KSEG_BASE).latency == 0


class TestFileCache:
    def test_lookup_miss_then_insert_hit(self):
        cache = FileCache(capacity_pages=16)
        assert cache.lookup(1, 0, 4096) == 1
        cache.insert(1, 0, 4096)
        assert cache.lookup(1, 0, 4096) == 0

    def test_range_spanning_pages(self):
        cache = FileCache(capacity_pages=16)
        missing = cache.lookup(1, 4000, 8192)  # touches pages 0, 1, 2
        assert missing == 3

    def test_warm(self):
        cache = FileCache(capacity_pages=64)
        cache.warm(2, 8 * 4096)
        assert cache.lookup(2, 0, 8 * 4096) == 0

    def test_lru_eviction(self):
        cache = FileCache(capacity_pages=2)
        cache.insert(1, 0, 4096)
        cache.insert(1, 4096, 4096)
        cache.contains(1, 0)
        cache.insert(1, 8192, 4096)  # evicts page 0 (oldest)
        assert not cache.contains(1, 0)
        assert cache.contains(1, 8192)

    def test_distinct_files_do_not_collide(self):
        cache = FileCache(capacity_pages=16)
        cache.insert(1, 0, 4096)
        assert cache.lookup(2, 0, 4096) == 1

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            FileCache(capacity_pages=0)
        with pytest.raises(ValueError):
            FileCache(page_bytes=3000)

    def test_rejects_bad_range(self):
        cache = FileCache()
        with pytest.raises(ValueError):
            cache.lookup(1, -1, 100)
        with pytest.raises(ValueError):
            cache.lookup(1, 0, 0)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 1 << 18)),
                    min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded(self, ops):
        cache = FileCache(capacity_pages=8)
        for file_id, offset in ops:
            cache.insert(file_id, offset, 4096)
            assert cache.occupancy <= 8
