"""External counter ingestion: readers, mapping validation, round-trip.

The load-bearing test is the round-trip invariant: ``repro run
--export-counters`` followed by ``repro ingest`` with the identity
mapping must reproduce the simulated run's EnergyLedger *bit-for-bit*
(pinned against ``tests/data/golden_energy.json``), proving the
external pricing path shares the simulated path's arithmetic exactly.
Around it: every mapping failure mode must fail loudly with a typed
error naming the offending key, and exit 2 through the CLI.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.config.system import ConfigError, SystemConfig
from repro.core.campaign import sweep_source
from repro.core.softwatt import SoftWatt
from repro.ingest import (
    CounterMapping,
    DuplicateTargetError,
    IngestError,
    MappingError,
    MappingFormatError,
    UnknownEventError,
    UnknownTargetCounterError,
    UnmappedCounterError,
    ingest_log,
    read_counter_log,
    write_counter_log_json,
)
from repro.power.processor import ProcessorPowerModel
from repro.power.registry import REGISTRY
from repro.stats.counters import COUNTER_FIELDS
from repro.stats.source import CounterSource

pytestmark = pytest.mark.ingest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"
SAMPLE_CSV = EXAMPLES / "data" / "perf_sample.csv"
GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_energy.json"


def identity_document() -> dict:
    """A fully valid mapping document to perturb in failure tests."""
    return {
        "version": 1,
        "cycles": "cycles",
        "counters": {name: name for name in COUNTER_FIELDS},
    }


def write_mapping(tmp_path, document, name="mapping.json") -> str:
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


# ---------------------------------------------------------------------------
# Readers
# ---------------------------------------------------------------------------


class TestReaders:
    def test_reads_sample_perf_csv(self):
        log = read_counter_log(SAMPLE_CSV)
        assert len(log) == 3
        assert log.records[0].start_s == 0.0
        assert log.records[0].end_s == 0.5
        assert log.records[2].end_s == 1.5
        assert log.duration_s == 1.5
        assert "cycles" in log.event_names()
        assert log.records[1].events["instructions"] == 1050000000

    def test_json_reader_round_trips_values(self, tmp_path):
        path = tmp_path / "log.json"
        path.write_text(json.dumps({
            "version": 1,
            "records": [
                {"start_s": 0.0, "end_s": 1.0,
                 "events": {"cycles": 100.0, "x": 3}},
                {"start_s": 1.0, "end_s": 2.0, "events": {"cycles": 50.0}},
            ],
        }))
        log = read_counter_log(path)
        assert len(log) == 2
        assert log.records[0].events == {"cycles": 100.0, "x": 3}
        assert log.event_names() == ("cycles", "x")

    def test_unsupported_extension_rejected(self, tmp_path):
        path = tmp_path / "log.xml"
        path.write_text("<counters/>")
        with pytest.raises(IngestError, match="unsupported extension"):
            read_counter_log(path)

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(IngestError, match="cannot read"):
            read_counter_log(tmp_path / "absent.json")

    def test_wrong_schema_version_rejected(self, tmp_path):
        path = tmp_path / "log.json"
        path.write_text(json.dumps({"version": 99, "records": []}))
        with pytest.raises(IngestError, match="schema version"):
            read_counter_log(path)

    def test_overlapping_intervals_rejected(self, tmp_path):
        path = tmp_path / "log.json"
        path.write_text(json.dumps({
            "version": 1,
            "records": [
                {"start_s": 0.0, "end_s": 1.0, "events": {"cycles": 1}},
                {"start_s": 0.5, "end_s": 2.0, "events": {"cycles": 1}},
            ],
        }))
        with pytest.raises(IngestError, match="overlaps"):
            read_counter_log(path)

    def test_negative_event_value_rejected(self, tmp_path):
        path = tmp_path / "log.json"
        path.write_text(json.dumps({
            "version": 1,
            "records": [
                {"start_s": 0.0, "end_s": 1.0, "events": {"cycles": -5}},
            ],
        }))
        with pytest.raises(IngestError, match="negative"):
            read_counter_log(path)

    def test_csv_header_enforced(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("when,count,name\n0.5,1,cycles\n")
        with pytest.raises(IngestError, match="header"):
            read_counter_log(path)

    def test_csv_duplicate_event_in_interval_rejected(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(
            "time_s,value,event\n0.5,1,cycles\n0.5,2,cycles\n"
        )
        with pytest.raises(IngestError, match="twice"):
            read_counter_log(path)


# ---------------------------------------------------------------------------
# Mapping validation — every failure mode is typed, loud, and names the
# offending key.
# ---------------------------------------------------------------------------


class TestMappingValidation:
    def test_identity_mapping_covers_registry(self):
        mapping = CounterMapping.identity()
        assert set(REGISTRY.required_counters()) <= set(mapping.counters)
        assert mapping.events()[0] == "cycles"

    def test_example_mappings_load(self):
        for name in ("identity.json", "perf_generic.json"):
            mapping = CounterMapping.load(EXAMPLES / "mappings" / name)
            assert mapping.cycles, name

    def test_unmapped_required_counter_names_component(self, tmp_path):
        document = identity_document()
        del document["counters"]["tlb_access"]
        with pytest.raises(UnmappedCounterError) as excinfo:
            CounterMapping.load(write_mapping(tmp_path, document))
        assert excinfo.value.component == "tlb"
        assert "tlb_access" in excinfo.value.missing
        assert "tlb" in str(excinfo.value)
        assert "tlb_access" in str(excinfo.value)

    def test_optional_counter_may_be_omitted(self, tmp_path):
        # branch_mispredicts is reporting-only: no component reads it.
        document = identity_document()
        del document["counters"]["branch_mispredicts"]
        mapping = CounterMapping.load(write_mapping(tmp_path, document))
        assert "branch_mispredicts" not in mapping.counters

    def test_unknown_target_counter_named(self, tmp_path):
        document = identity_document()
        document["counters"]["l3_access"] = "LLC-loads"
        with pytest.raises(UnknownTargetCounterError, match="l3_access"):
            CounterMapping.load(write_mapping(tmp_path, document))

    def test_duplicate_target_counter_rejected(self, tmp_path):
        document = identity_document()
        text = json.dumps(document)
        # Inject a second "l1d_access" key into the counters object.
        text = text.replace(
            '"l1d_access": "l1d_access"',
            '"l1d_access": "l1d_access", "l1d_access": "loads"',
        )
        path = tmp_path / "dup.json"
        path.write_text(text)
        with pytest.raises(DuplicateTargetError, match="l1d_access"):
            CounterMapping.load(path)

    def test_malformed_scale_names_counter(self, tmp_path):
        document = identity_document()
        document["counters"]["falu_access"] = {
            "event": "fp-arith", "scale": "three-quarters",
        }
        with pytest.raises(MappingFormatError, match="falu_access"):
            CounterMapping.load(write_mapping(tmp_path, document))

    def test_negative_scale_rejected(self, tmp_path):
        document = identity_document()
        document["counters"]["ialu_access"] = {
            "event": "instructions", "scale": -0.5,
        }
        with pytest.raises(MappingFormatError, match="ialu_access"):
            CounterMapping.load(write_mapping(tmp_path, document))

    def test_missing_cycles_formula_rejected(self, tmp_path):
        document = identity_document()
        del document["cycles"]
        with pytest.raises(MappingFormatError, match="cycles"):
            CounterMapping.load(write_mapping(tmp_path, document))

    def test_unknown_top_level_key_rejected(self, tmp_path):
        document = identity_document()
        document["scale_factors"] = {}
        with pytest.raises(MappingFormatError, match="scale_factors"):
            CounterMapping.load(write_mapping(tmp_path, document))

    def test_event_and_sum_mutually_exclusive(self, tmp_path):
        document = identity_document()
        document["counters"]["loads"] = {"event": "a", "sum": ["b"]}
        with pytest.raises(MappingFormatError, match="mutually exclusive"):
            CounterMapping.load(write_mapping(tmp_path, document))

    def test_unknown_event_names_event_and_referers(self):
        log = read_counter_log(SAMPLE_CSV)
        document = json.loads(
            (EXAMPLES / "mappings" / "perf_generic.json").read_text()
        )
        document["counters"]["l1d_access"] = "no-such-event"
        mapping = CounterMapping.from_dict(document)
        with pytest.raises(UnknownEventError) as excinfo:
            ingest_log(log, mapping)
        assert "no-such-event" in str(excinfo.value)
        assert "l1d_access" in str(excinfo.value)

    def test_every_error_is_a_config_error(self):
        for error_type in (
            IngestError, MappingError, MappingFormatError,
            DuplicateTargetError, UnknownTargetCounterError,
            UnknownEventError, UnmappedCounterError,
        ):
            assert issubclass(error_type, ConfigError)

    def test_sum_formula_evaluates_left_to_right_with_scales(self):
        mapping = CounterMapping.from_dict({
            "version": 1,
            "cycles": "cycles",
            "counters": {
                **{name: name for name in COUNTER_FIELDS},
                "l1d_access": {
                    "sum": ["loads", {"event": "stores", "scale": 2.0}],
                    "scale": 3.0,
                },
            },
        })
        counters, cycles = mapping.apply(
            {"cycles": 10.0, "loads": 5.0, "stores": 7.0}
        )
        # Outer scale distributes over the terms: (5*3) + (7*2*3).
        assert counters.l1d_access == 5.0 * 3.0 + 7.0 * 6.0
        assert cycles == 10.0

    def test_sparse_records_read_zero(self):
        mapping = CounterMapping.identity()
        counters, cycles = mapping.apply({"cycles": 4.0, "loads": 2.0})
        assert cycles == 4.0
        assert counters.loads == 2.0
        assert counters.l1d_access == 0.0


# ---------------------------------------------------------------------------
# Registry schema (what mapping validation is checked against)
# ---------------------------------------------------------------------------


class TestRegistrySchema:
    def test_required_counters_follow_field_order(self):
        required = REGISTRY.required_counters()
        order = {name: index for index, name in enumerate(COUNTER_FIELDS)}
        assert list(required) == sorted(required, key=order.__getitem__)
        assert set(required) <= set(COUNTER_FIELDS)

    def test_counter_requirements_cover_counter_driven_components(self):
        requirements = REGISTRY.counter_requirements()
        assert "disk" not in requirements  # simulation-time: unmappable
        for component in REGISTRY:
            if not component.simulation_time:
                assert requirements[component.name] == component.counters

    def test_schema_is_plain_data(self):
        schema = REGISTRY.schema()
        assert json.loads(json.dumps(schema)) == schema
        by_name = {entry["name"]: entry for entry in schema}
        assert by_name["disk"]["simulation_time"] is True
        assert by_name["disk"]["counters"] == []
        assert by_name["tlb"]["counters"] == ["tlb_access", "tlb_miss"]


# ---------------------------------------------------------------------------
# Pricing and the round-trip invariant (golden-pinned)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden_run(golden):
    """The golden mxs/jess run, fresh, at the golden parameters."""
    softwatt = SoftWatt(
        window_instructions=golden["window_instructions"],
        seed=golden["seed"],
        use_cache=False,
    )
    return softwatt, softwatt.run("jess", disk=golden["disk"])


class TestRoundTrip:
    def test_identity_round_trip_is_bit_identical(self, tmp_path, golden_run):
        softwatt, result = golden_run
        log = result.timeline.log
        path = tmp_path / "counters.json"
        write_counter_log_json(log, path)
        run = ingest_log(read_counter_log(path), CounterMapping.identity())
        assert isinstance(run, CounterSource)
        assert run.total_cycles() == log.total_cycles()
        assert run.total_counters() == log.total_counters()
        assert run.duration_s == log.duration_s
        direct = softwatt.model.price(log)
        ingested = softwatt.price_counters(run)
        assert ingested.components == direct.components

    def test_round_trip_reproduces_golden_budget(
        self, tmp_path, golden, golden_run
    ):
        """Ingested counters + the run's disk energy must rebuild the
        golden power budget bit-for-bit."""
        softwatt, result = golden_run
        path = tmp_path / "counters.json"
        write_counter_log_json(result.timeline.log, path)
        run = ingest_log(read_counter_log(path), CounterMapping.identity())
        ledger = softwatt.model.price(run).with_component(
            "disk", "disk", result.disk_energy_j
        )
        expected = golden["benchmarks"]["mxs/jess"]
        assert ledger.total_j == expected["total_energy_j"]
        seconds = result.timeline.duration_s or 1.0
        assert ledger.category_power_w(seconds) == expected["budget_w"]

    def test_provenance_is_carried(self, tmp_path, golden_run):
        _softwatt, result = golden_run
        path = tmp_path / "counters.json"
        write_counter_log_json(result.timeline.log, path)
        run = ingest_log(read_counter_log(path), CounterMapping.identity())
        assert run.provenance == f"ingested:{path}"
        assert run.source == str(path)
        assert all(bundle.ingested for bundle in run)

    def test_perf_sample_prices_under_table1(self):
        log = read_counter_log(SAMPLE_CSV)
        mapping = CounterMapping.load(
            EXAMPLES / "mappings" / "perf_generic.json"
        )
        run = ingest_log(log, mapping)
        model = ProcessorPowerModel(SystemConfig.table1())
        ledger = model.price(run)
        assert ledger.total_j > 0
        assert run.total_cycles() == 3 * 1250000000


# ---------------------------------------------------------------------------
# Ledger-tier sweeps over ingested counters
# ---------------------------------------------------------------------------


class TestSweepSource:
    @pytest.fixture()
    def run(self):
        log = read_counter_log(SAMPLE_CSV)
        mapping = CounterMapping.load(
            EXAMPLES / "mappings" / "perf_generic.json"
        )
        return ingest_log(log, mapping)

    def test_vdd_sweep_reprices_without_simulation(self, run):
        points = sweep_source(run, "vdd", [2.5, 3.3, 4.0])
        assert [value for value, _ledger in points] == [2.5, 3.3, 4.0]
        energies = [ledger.total_j for _value, ledger in points]
        assert energies[0] < energies[1] < energies[2]  # E scales with Vdd^2

    def test_base_vdd_matches_direct_pricing(self, run):
        base = SystemConfig.table1()
        (_, swept), = sweep_source(
            run, "vdd", [base.technology.vdd], base_config=base
        )
        direct = ProcessorPowerModel(base).price(run)
        assert swept.components == direct.components

    def test_structural_parameter_rejected(self, run):
        with pytest.raises(ValueError, match="STRUCTURAL"):
            sweep_source(run, "l1_size", [65536])

    def test_unknown_parameter_rejected(self, run):
        with pytest.raises(ValueError, match="unknown parameter"):
            sweep_source(run, "warp_factor", [9])


# ---------------------------------------------------------------------------
# CLI: exit codes and end-to-end behaviour
# ---------------------------------------------------------------------------


class TestIngestCLI:
    def test_ingest_sample_log(self, capsys):
        mapping = str(EXAMPLES / "mappings" / "perf_generic.json")
        assert main(["ingest", str(SAMPLE_CSV), "--mapping", mapping]) == 0
        out = capsys.readouterr().out
        assert "3 interval(s)" in out
        assert "datapath" in out

    def test_ingest_json_summary(self, capsys):
        mapping = str(EXAMPLES / "mappings" / "perf_generic.json")
        assert main(
            ["ingest", str(SAMPLE_CSV), "--mapping", mapping, "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["records"] == 3
        assert document["total_j"] > 0
        assert set(document["category_w"]) == set(document["category_j"])

    def test_ingest_export_budget(self, tmp_path, capsys):
        from repro.stats.export import read_ledger_json

        mapping = str(EXAMPLES / "mappings" / "perf_generic.json")
        out = tmp_path / "budget.json"
        assert main(
            ["ingest", str(SAMPLE_CSV), "--mapping", mapping,
             "--export-budget", str(out)]
        ) == 0
        ledger = read_ledger_json(out)
        assert ledger.total_j > 0

    def test_missing_log_exits_2(self, tmp_path, capsys):
        assert main(
            ["ingest", str(tmp_path / "absent.csv"), "--mapping", "identity"]
        ) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_starved_component_exits_2(self, tmp_path, capsys):
        document = identity_document()
        del document["counters"]["tlb_access"]
        mapping = write_mapping(tmp_path, document)
        assert main(
            ["ingest", str(SAMPLE_CSV), "--mapping", mapping]
        ) == 2
        err = capsys.readouterr().err
        assert "tlb" in err
        assert "tlb_access" in err

    def test_unknown_event_exits_2(self, tmp_path, capsys):
        # Identity mapping references our counter names, which the
        # perf-style sample log never records.
        assert main(
            ["ingest", str(SAMPLE_CSV), "--mapping", "identity"]
        ) == 2
        assert "never records" in capsys.readouterr().err

    def test_duplicate_target_exits_2(self, tmp_path, capsys):
        text = json.dumps(identity_document()).replace(
            '"stores": "stores"',
            '"stores": "stores", "stores": "loads"',
        )
        path = tmp_path / "dup.json"
        path.write_text(text)
        assert main(
            ["ingest", str(SAMPLE_CSV), "--mapping", str(path)]
        ) == 2
        assert "stores" in capsys.readouterr().err

    def test_malformed_scale_exits_2(self, tmp_path, capsys):
        document = identity_document()
        document["counters"]["loads"] = {"event": "loads", "scale": []}
        mapping = write_mapping(tmp_path, document)
        assert main(
            ["ingest", str(SAMPLE_CSV), "--mapping", mapping]
        ) == 2
        assert "loads" in capsys.readouterr().err

    def test_components_json_schema(self, capsys):
        assert main(["components", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in document["components"]]
        assert "disk" in names
        assert set(document["required_counters"]) <= set(COUNTER_FIELDS)
        assert document["categories"]

    def test_run_export_counters_round_trips(self, tmp_path, capsys):
        counters_path = tmp_path / "counters.json"
        assert main(
            ["run", "jess", "--export-counters", str(counters_path),
             "--window", "8000", "--seed", "1"]
        ) == 0
        assert "counter log written" in capsys.readouterr().out
        assert main(
            ["ingest", str(counters_path), "--mapping", "identity"]
        ) == 0
        assert "counter-driven energy" in capsys.readouterr().out
