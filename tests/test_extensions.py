"""Tests for the extension features: annotations, checkpoints, idle
halting, EDP/peak metrics, adaptive spin-down, and log export."""

import math

import pytest

from repro import SoftWatt
from repro.config import DiskMode, disk_configuration
from repro.core.annotations import AnnotationSet
from repro.core.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.disk import (
    BREAK_EVEN_IDLE_S,
    AdaptiveSpinDownDisk,
    PowerManagedDisk,
)
from repro.kernel import ExecutionMode
from repro.stats.export import (
    read_log_json,
    write_log_csv,
    write_log_json,
    write_trace_csv,
)

WINDOW = 12_000


@pytest.fixture(scope="module")
def softwatt():
    return SoftWatt(window_instructions=WINDOW, seed=1)


@pytest.fixture(scope="module")
def jess(softwatt):
    return softwatt.run("jess", disk=1)


class TestAnnotations:
    def test_hooks_fire(self, softwatt):
        annotations = AnnotationSet()
        seen = {"phases": [], "modes": [], "requests": [], "transitions": [],
                "samples": []}
        annotations.on_phase(lambda n, s, e: seen["phases"].append((n, s, e)))
        annotations.on_mode_switch(
            lambda m, s, e, c: seen["modes"].append((m, s, e, c)))
        annotations.on_disk_request(lambda r: seen["requests"].append(r))
        annotations.on_disk_transition(
            lambda a, b, t: seen["transitions"].append((a, b, t)))
        annotations.on_sample(lambda r: seen["samples"].append(r))
        result = softwatt.run("db", disk=3, annotations=annotations)

        phase_names = {name for name, _, _ in seen["phases"]}
        assert phase_names == {"startup", "steady", "gc"}
        assert len(seen["requests"]) == len(
            __import__("repro.workloads", fromlist=["benchmark"])
            .benchmark("db").disk_events)
        assert len(seen["samples"]) == len(result.timeline.log)
        assert any(mode is ExecutionMode.IDLE for mode, *_ in seen["modes"])
        # db on config 3 never spins down, but seeks/idles do transition.
        assert any(b is DiskMode.SEEK for _a, b, _t in seen["transitions"])

    def test_phase_intervals_ordered(self, softwatt):
        annotations = AnnotationSet()
        intervals = []
        annotations.on_phase(lambda n, s, e: intervals.append((s, e)))
        softwatt.run("db", disk=1, annotations=annotations)
        for start, end in intervals:
            assert end >= start
        starts = [start for start, _ in intervals]
        assert starts == sorted(starts)

    def test_empty_set_is_free(self, softwatt):
        annotations = AnnotationSet()
        assert annotations.empty
        softwatt.run("db", disk=1, annotations=annotations)

    def test_decorator_registration(self):
        annotations = AnnotationSet()

        @annotations.on_sample
        def hook(record):
            pass

        assert annotations.on_sample_hooks == [hook]
        assert not annotations.empty


class TestCheckpoints:
    def test_roundtrip_reproduces_results(self, softwatt, jess, tmp_path):
        path = tmp_path / "profiles.json"
        softwatt.save_checkpoint(path)
        restored = SoftWatt(window_instructions=WINDOW, seed=1)
        restored.load_checkpoint(path)
        again = restored.run("jess", disk=1)
        for mode, row in jess.mode_breakdown().items():
            assert again.mode_breakdown()[mode].cycles_pct == pytest.approx(
                row.cycles_pct)
        assert again.total_energy_j == pytest.approx(jess.total_energy_j)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.json")

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_cpu_model_mismatch_rejected(self, softwatt, jess, tmp_path):
        path = tmp_path / "profiles.json"
        softwatt.save_checkpoint(path)
        mipsy = SoftWatt(cpu_model="mipsy", window_instructions=WINDOW, seed=1)
        with pytest.raises(CheckpointError):
            mipsy.load_checkpoint(path)

    def test_save_load_direct_api(self, softwatt, jess, tmp_path):
        path = tmp_path / "direct.json"
        save_checkpoint(path, profiles=softwatt._profiles, cpu_model="mxs")
        profiles, services, cpu_model = load_checkpoint(path)
        assert "jess" in profiles
        assert cpu_model == "mxs"
        assert services == {}


class TestIdleHalting:
    def test_halt_saves_energy(self, softwatt, jess):
        halted = softwatt.run("jess", disk=1, idle_policy="halt")
        assert halted.total_energy_j < jess.total_energy_j
        # Idle cycles are unchanged — only their power drops.
        assert halted.idle_cycles == pytest.approx(jess.idle_cycles, rel=0.01)

    def test_halted_idle_mode_consumes_little(self, softwatt):
        halted = softwatt.run("jess", disk=1, idle_policy="halt")
        rows = halted.mode_breakdown()
        idle = rows[ExecutionMode.IDLE]
        # Energy share far below cycle share once the CPU halts.
        assert idle.energy_pct < idle.cycles_pct * 0.75

    def test_invalid_policy_rejected(self, softwatt):
        with pytest.raises(ValueError):
            softwatt.run("jess", disk=1, idle_policy="warp")


class TestMetrics:
    def test_edp_definition(self, jess):
        assert jess.energy_delay_product == pytest.approx(
            jess.total_energy_j * jess.timeline.duration_s)

    def test_peak_at_least_average(self, jess):
        assert jess.peak_power_w >= jess.average_power_w

    def test_average_power_consistent(self, jess):
        assert jess.average_power_w == pytest.approx(
            jess.total_energy_j / jess.timeline.duration_s)


class TestAdaptiveSpinDown:
    def _drive(self, disk, gap_s, requests=8):
        t = 0.0
        for _ in range(requests):
            result = disk.request(t, 64 * 1024)
            t = result.completion_s + gap_s
        disk.finish(t)
        return disk

    def test_learns_out_of_the_pathology(self):
        adaptive = self._drive(AdaptiveSpinDownDisk(2.0, seed=3), gap_s=2.4)
        fixed = self._drive(
            PowerManagedDisk(disk_configuration(3), seed=3), gap_s=2.4)
        assert adaptive.energy.energy_j < 0.5 * fixed.energy.energy_j
        assert adaptive.threshold_s > 2.0
        assert adaptive.state.spindowns < fixed.state.spindowns

    def test_short_gaps_never_spin_down(self):
        adaptive = self._drive(AdaptiveSpinDownDisk(2.0, seed=3), gap_s=0.5)
        assert adaptive.state.spindowns == 0
        assert adaptive.threshold_s == pytest.approx(2.0)

    def test_long_gaps_keep_spinning_down(self):
        gap = BREAK_EVEN_IDLE_S * 2 + 12.0
        adaptive = self._drive(AdaptiveSpinDownDisk(2.0, seed=3), gap_s=gap,
                               requests=5)
        assert adaptive.state.spindowns >= 4
        # Successful spin-downs decay the threshold back down.
        assert adaptive.threshold_s <= 2.0

    def test_threshold_bounded(self):
        adaptive = AdaptiveSpinDownDisk(2.0, seed=3, ceiling_s=6.0)
        self._drive(adaptive, gap_s=2.4, requests=12)
        assert adaptive.threshold_s <= 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSpinDownDisk(0.0)
        with pytest.raises(ValueError):
            AdaptiveSpinDownDisk(2.0, floor_s=5.0)
        with pytest.raises(ValueError):
            AdaptiveSpinDownDisk(2.0, decay=1.5)

    def test_break_even_value(self):
        # 21 J spin-up / (1.6 - 0.35) W saving = 16.8 s.
        assert BREAK_EVEN_IDLE_S == pytest.approx(21.0 / 1.25)


class TestExport:
    def test_log_csv(self, jess, tmp_path):
        path = tmp_path / "log.csv"
        write_log_csv(jess.timeline.log, path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(jess.timeline.log) + 1
        header = lines[0].split(",")
        assert header[0] == "start_s"
        assert "l1i_access" in header

    def test_log_json_roundtrip(self, jess, tmp_path):
        path = tmp_path / "log.json"
        write_log_json(jess.timeline.log, path)
        restored = read_log_json(path)
        assert len(restored) == len(jess.timeline.log)
        assert restored.total_cycles() == pytest.approx(
            jess.timeline.log.total_cycles())
        original = jess.timeline.log.total_counters()
        loaded = restored.total_counters()
        assert math.isclose(loaded.l1i_access, original.l1i_access,
                            rel_tol=1e-12)
        assert restored.mode_cycle_totals()[ExecutionMode.USER] == (
            pytest.approx(
                jess.timeline.log.mode_cycle_totals()[ExecutionMode.USER]))

    def test_log_json_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 42}')
        with pytest.raises(ValueError):
            read_log_json(path)

    def test_trace_csv(self, jess, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace_csv(jess.trace, path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(jess.trace.times_s) + 1
        assert lines[0].split(",")[-1] == "total"
