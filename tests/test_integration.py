"""Cross-module integration tests: whole-stack invariants."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro import SoftWatt
from repro.core import Profiler, TimelineSimulator
from repro.kernel import ExecutionMode
from repro.workloads import BENCHMARK_NAMES, DiskEvent, benchmark

WINDOW = 10_000


@pytest.fixture(scope="module")
def softwatt():
    return SoftWatt(window_instructions=WINDOW, seed=3)


class TestDeterminism:
    def test_same_seed_identical_energy(self):
        def run():
            sw = SoftWatt(window_instructions=WINDOW, seed=11)
            return sw.run("db", disk=2).total_energy_j

        assert run() == pytest.approx(run(), rel=1e-12)

    def test_different_seed_different_but_close(self):
        def run(seed):
            sw = SoftWatt(window_instructions=WINDOW, seed=seed)
            return sw.run("db", disk=2).total_energy_j

        a, b = run(11), run(12)
        assert a != b
        assert abs(a - b) / a < 0.25


class TestSuiteInvariants:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_whole_stack_consistency(self, softwatt, name):
        result = softwatt.run(name, disk=1)
        modes = result.mode_breakdown()
        # Percentages close.
        assert sum(r.cycles_pct for r in modes.values()) == pytest.approx(100.0)
        assert sum(r.energy_pct for r in modes.values()) == pytest.approx(100.0)
        # Totals are physical.
        assert result.total_energy_j > 0
        assert result.peak_power_w >= result.average_power_w > 0
        assert result.timeline.duration_s >= result.timeline.compute_duration_s
        # Log time base covers the run.
        assert result.timeline.log.duration_s == pytest.approx(
            result.timeline.duration_s, abs=result.timeline.log.sample_interval_s)
        # Disk accounting covers the run exactly.
        assert result.timeline.disk.energy.total_time_s == pytest.approx(
            result.timeline.duration_s, rel=1e-6)
        # Kernel service shares add to ~100 within the kernel.
        rows = result.service_breakdown()
        assert sum(r.kernel_cycles_pct for r in rows) == pytest.approx(100.0)
        assert sum(r.kernel_energy_pct for r in rows) == pytest.approx(100.0)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_idle_disk_always_saves(self, softwatt, name):
        conventional = softwatt.run(name, disk=1)
        idle = softwatt.run(name, disk=2)
        assert idle.disk_energy_j < conventional.disk_energy_j
        assert idle.timeline.duration_s == pytest.approx(
            conventional.timeline.duration_s, rel=1e-6)

    def test_disk_energy_independent_of_cpu_power(self, softwatt):
        """The disk model is driven by the access timeline only."""
        halted = softwatt.run("jess", disk=2, idle_policy="halt")
        busy = softwatt.run("jess", disk=2)
        assert halted.disk_energy_j == pytest.approx(busy.disk_energy_j)


class TestCustomSpecs:
    def _spec(self, duration_s, event_times, nbytes=32 * 1024):
        base = benchmark("db")
        events = tuple(DiskEvent(t, nbytes) for t in sorted(event_times))
        return dataclasses.replace(
            base, disk_events=events, compute_duration_s=duration_s)

    def test_no_disk_events_means_no_idle(self, softwatt):
        spec = dataclasses.replace(
            benchmark("db"), disk_events=(), compute_duration_s=2.0)
        result = softwatt.run(spec, disk=1)
        assert result.idle_cycles == 0.0
        assert result.timeline.duration_s == pytest.approx(
            result.timeline.compute_duration_s)

    def test_every_event_blocks_once(self, softwatt):
        spec = self._spec(3.0, [0.5, 1.5, 2.5])
        result = softwatt.run(spec, disk=2)
        assert result.timeline.disk.requests == 3
        assert result.timeline.idle_wait_s > 0

    @given(
        duration=st.floats(1.0, 12.0),
        offsets=st.lists(st.floats(0.01, 0.99), min_size=0, max_size=8),
        disk=st.sampled_from([1, 2, 3, 4]),
    )
    @settings(max_examples=20, deadline=None)
    def test_timeline_invariants_under_random_schedules(
        self, softwatt, duration, offsets, disk
    ):
        """Any event schedule, any policy: time and energy stay sane."""
        times = sorted(round(duration * offset, 3) for offset in set(offsets))
        spec = self._spec(duration, times)
        result = softwatt.run(spec, disk=disk)
        timeline = result.timeline
        assert timeline.duration_s >= timeline.compute_duration_s - 1e-6
        assert timeline.idle_wait_s >= 0.0
        assert timeline.duration_s == pytest.approx(
            timeline.compute_duration_s + timeline.idle_wait_s, rel=1e-6)
        assert timeline.disk.requests == len(times)
        assert result.total_energy_j > 0
        modes = result.mode_breakdown()
        assert sum(r.cycles_pct for r in modes.values()) == pytest.approx(100.0)


class TestMachineVariants:
    def test_mipsy_runs_longer_than_mxs(self):
        mxs = SoftWatt(window_instructions=WINDOW, seed=3).run("db", disk=2)
        mipsy = SoftWatt(cpu_model="mipsy", window_instructions=WINDOW,
                         seed=3).run("db", disk=2)
        assert mipsy.timeline.duration_s > mxs.timeline.duration_s

    def test_hardware_tlb_removes_utlb(self):
        from repro import SystemConfig

        hard = SoftWatt(config=SystemConfig.table1().with_hardware_tlb(),
                        window_instructions=WINDOW, seed=3)
        result = hard.run("db", disk=1)
        utlb_cycles = result.timeline.label_cycles.get("utlb", 0.0)
        kernel_cycles = result.timeline.mode_cycles[ExecutionMode.KERNEL]
        assert utlb_cycles < 0.05 * max(1.0, kernel_cycles)

    def test_profiles_are_per_instance_caches(self, softwatt):
        other = SoftWatt(window_instructions=WINDOW, seed=3)
        assert softwatt.profile("db") is not other.profile("db")


class TestTimelineDirect:
    def test_sample_interval_controls_record_count(self):
        profiler = Profiler(window_instructions=WINDOW, seed=3)
        profile = profiler.profile_benchmark(benchmark("db"))
        coarse = TimelineSimulator(profile, disk_policy=1,
                                   sample_interval_s=0.5).run()
        fine = TimelineSimulator(profile, disk_policy=1,
                                 sample_interval_s=0.05).run()
        assert len(fine.log) > 5 * len(coarse.log)
        assert fine.log.total_cycles() == pytest.approx(
            coarse.log.total_cycles(), rel=0.02)
