"""Tests for the fidelity-tiered execution ladder (DESIGN.md §11).

Three properties pin the tiers:

* **determinism** — same seed, same tier, same counters, for both CPU
  flavours;
* **bounded error** — over the whole suite the sampled tier stays
  within 2% of detailed total energy and the atomic tier within 10%
  (the ``fidelity`` marker tags the suite-wide sweeps);
* **isolation** — the detailed path is byte-identical to the
  pre-fidelity code (the golden pins enforce the energies; here we
  check the plumbing returns the unwrapped cores), and sub-detailed
  profiles can never be served from or poison a detailed profile
  cache because the tier is part of the cache key.
"""

import dataclasses
import pickle

import pytest

from repro.cli import main
from repro.config.system import (
    ConfigError,
    FidelityConfig,
    FidelityTier,
    SystemConfig,
)
from repro.core.checkpoint import profile_cache_key
from repro.core.profiles import Profiler, make_cpu, make_tier_cpu
from repro.core.softwatt import SoftWatt
from repro.cpu.atomic import AtomicProcessor
from repro.cpu.sampled import SampledProcessor
from repro.mem.hierarchy import MemoryHierarchy
from repro.stats.counters import AccessCounters
from repro.workloads.specjvm98 import BENCHMARK_NAMES, benchmark

WINDOW = 4000


def _config(tier, **overrides) -> SystemConfig:
    return SystemConfig.table1().with_fidelity(tier, **overrides)


class TestFidelityConfig:
    def test_parse_accepts_names_and_instances(self):
        assert FidelityTier.parse("atomic") is FidelityTier.ATOMIC
        assert FidelityTier.parse("SAMPLED") is FidelityTier.SAMPLED
        assert FidelityTier.parse(FidelityTier.DETAILED) is FidelityTier.DETAILED

    def test_parse_rejects_unknown_tier(self):
        with pytest.raises(ConfigError, match="fidelity.tier"):
            FidelityTier.parse("cycle-accurate")

    def test_default_is_detailed(self):
        config = SystemConfig.table1()
        assert config.fidelity.tier is FidelityTier.DETAILED

    def test_with_fidelity_overrides(self):
        config = _config("sampled", sample_period=9000, warmup=500)
        assert config.fidelity.tier is FidelityTier.SAMPLED
        assert config.fidelity.sample_period == 9000
        assert config.fidelity.warmup == 500
        # untouched knob keeps its default
        assert config.fidelity.sample_window == FidelityConfig().sample_window

    @pytest.mark.parametrize(
        "overrides, field",
        [
            ({"sample_window": 0}, "fidelity.sample_window"),
            ({"warmup": -1}, "fidelity.warmup"),
            ({"sample_period": 100}, "fidelity.sample_period"),
        ],
    )
    def test_validate_rejects_bad_sampling_params(self, overrides, field):
        with pytest.raises(ConfigError, match=field):
            _config("sampled", **overrides).validate()

    def test_validate_rejects_wrong_types(self):
        config = dataclasses.replace(
            SystemConfig.table1(), fidelity="atomic"
        )
        with pytest.raises(ConfigError, match="fidelity"):
            config.validate()


class TestTierPlumbing:
    @pytest.mark.parametrize("model", ["mipsy", "mxs"])
    def test_detailed_returns_unwrapped_core(self, model):
        config = SystemConfig.table1()
        hierarchy = MemoryHierarchy(config, AccessCounters())
        cpu = make_tier_cpu(model, config, hierarchy, None)
        assert type(cpu) is type(make_cpu(model, config, hierarchy, None))

    @pytest.mark.parametrize("model", ["mipsy", "mxs"])
    def test_sub_detailed_wrappers(self, model):
        for tier, kind in (("sampled", SampledProcessor),
                           ("atomic", AtomicProcessor)):
            config = _config(tier)
            hierarchy = MemoryHierarchy(config, AccessCounters())
            assert isinstance(
                make_tier_cpu(model, config, hierarchy, None), kind
            )

    def test_softwatt_fidelity_kwarg(self):
        sw = SoftWatt(fidelity="atomic", use_cache=False)
        assert sw.config.fidelity.tier is FidelityTier.ATOMIC
        sw = SoftWatt(
            fidelity=FidelityConfig(
                tier=FidelityTier.SAMPLED, sample_period=5000,
                sample_window=700, warmup=200,
            ),
            use_cache=False,
        )
        assert sw.config.fidelity.sample_period == 5000


class TestDeterminism:
    @pytest.mark.parametrize("model", ["mipsy", "mxs"])
    @pytest.mark.parametrize("tier", ["atomic", "sampled"])
    def test_same_seed_same_counters(self, model, tier):
        spec = benchmark("jess")

        def profile():
            return Profiler(
                config=_config(tier), cpu_model=model,
                window_instructions=WINDOW, seed=7,
            ).profile_benchmark(spec)

        assert pickle.dumps(profile()) == pickle.dumps(profile())


@pytest.mark.fidelity
class TestErrorBounds:
    """Suite-wide energy error gates (mirrored by scripts/bench.py).

    Window 6000 keeps the sweep fast; the bounds hold with more margin
    at the full-size windows the bench stage uses.
    """

    WINDOW = 6000
    LIMITS = {"sampled": 0.02, "atomic": 0.10}

    @pytest.fixture(scope="class")
    def suite_energies(self):
        energies = {}
        for tier in ("detailed", "sampled", "atomic"):
            sw = SoftWatt(
                cpu_model="mipsy", window_instructions=self.WINDOW,
                seed=1, use_cache=False, fidelity=tier,
            )
            energies[tier] = {
                name: sw.run(name).total_energy_j
                for name in BENCHMARK_NAMES
            }
        return energies

    @pytest.mark.parametrize("tier", ["sampled", "atomic"])
    def test_total_energy_error_bounded(self, suite_energies, tier):
        detailed = suite_energies["detailed"]
        for name in BENCHMARK_NAMES:
            error = abs(
                suite_energies[tier][name] - detailed[name]
            ) / detailed[name]
            assert error <= self.LIMITS[tier], (
                f"{tier} tier off by {error:.2%} on {name}"
            )


class TestCacheKeys:
    def test_tier_and_sampling_params_enter_the_key(self):
        spec = benchmark("jess")

        def key(config):
            return profile_cache_key(
                spec, config, cpu_model="mipsy",
                window_instructions=WINDOW,
                startup_chunks=4, steady_chunks=2, seed=1,
            )

        keys = [
            key(SystemConfig.table1()),
            key(_config("atomic")),
            key(_config("sampled")),
            key(_config("sampled", sample_period=8000)),
            key(_config("sampled", sample_window=700)),
            key(_config("sampled", warmup=500)),
        ]
        assert len(set(keys)) == len(keys)


class TestCli:
    def test_run_with_atomic_fidelity(self, capsys):
        assert main([
            "run", "jess", "--cpu", "mipsy", "--window", "4000",
            "--fidelity", "atomic", "--no-cache",
        ]) == 0
        assert "total energy" in capsys.readouterr().out

    def test_invalid_sampling_params_exit_2(self, capsys):
        code = main([
            "run", "jess", "--cpu", "mipsy", "--window", "4000",
            "--fidelity", "sampled", "--sample-period", "100",
            "--no-cache",
        ])
        assert code == 2
        assert "fidelity.sample_period" in capsys.readouterr().err
