"""Tests for the SoftWatt core: profiler, timeline, facade, reports."""

import pytest

from repro import SoftWatt
from repro.config import SystemConfig
from repro.core import Profiler, TimelineSimulator, disk_power_series
from repro.kernel import ExecutionMode
from repro.power import ProcessorPowerModel
from repro.workloads import benchmark

WINDOW = 25_000  # small windows keep the test suite fast


@pytest.fixture(scope="module")
def softwatt():
    return SoftWatt(window_instructions=WINDOW, seed=1)


@pytest.fixture(scope="module")
def jess_result(softwatt):
    return softwatt.run("jess", disk=1)


class TestProfiler:
    @pytest.fixture(scope="class")
    def profile(self):
        # A larger window than the rest of the suite: phase-level
        # contrasts need some statistics behind them.
        profiler = Profiler(window_instructions=40_000, seed=1)
        return profiler.profile_benchmark(benchmark("jess"))

    def test_all_phases_profiled(self, profile):
        assert set(profile.phases) == {"startup", "steady", "gc"}

    def test_cold_startup_has_more_dram_traffic_than_warm_steady(self, profile):
        """Cold caches during startup cause "several memory accesses"
        (Section 3.2) with a high per-access cost — more main-memory
        traffic per cycle than the warmed steady phase.  This is the
        source of the Figure 3 memory-power ramp."""
        startup = profile.phases["startup"].aggregate
        steady = profile.phases["steady"].chunks[-1]

        def dram_rate(stats):
            return stats.total_counters().mem_access / max(1, stats.cycles)

        assert dram_rate(startup) > dram_rate(steady)

    def test_startup_measured_in_more_chunks(self, profile):
        assert len(profile.phases["startup"].chunks) > len(
            profile.phases["steady"].chunks) - 1

    def test_utlb_traps_emerge(self, profile):
        assert profile.phases["steady"].invocations.get("utlb", 0) > 0

    def test_idle_profile_present(self, profile):
        assert profile.idle.stats.cycles > 0
        assert "idle" in profile.idle.stats.labels

    def test_mode_cycles_cover_run(self, profile):
        phase = profile.phases["steady"]
        by_mode = sum(phase.mode_cycles().values())
        assert by_mode == pytest.approx(phase.aggregate.cycles, rel=0.01)

    def test_profiler_validates_arguments(self):
        with pytest.raises(ValueError):
            Profiler(cpu_model="alpha")
        with pytest.raises(ValueError):
            Profiler(window_instructions=10)


class TestServiceProfiles:
    @pytest.fixture(scope="class")
    def profiles(self):
        profiler = Profiler(window_instructions=WINDOW, seed=1)
        model = ProcessorPowerModel(SystemConfig.table1())
        return {
            name: profiler.profile_service(name, model, invocations=25)
            for name in ("utlb", "read", "demand_zero", "cacheflush", "open", "write")
        }

    def test_internal_services_are_steadier_than_io(self, profiles):
        """Table 5's central claim: internal kernel services have nearly
        constant per-invocation energy; I/O services vary with data."""
        internal = max(profiles[s].coefficient_of_deviation
                       for s in ("utlb", "demand_zero", "cacheflush"))
        external = min(profiles[s].coefficient_of_deviation
                       for s in ("read", "write", "open"))
        assert internal < external

    def test_utlb_deviation_is_tiny(self, profiles):
        assert profiles["utlb"].coefficient_of_deviation < 3.0

    def test_utlb_in_run_power_is_lowest(self):
        """Figure 8: in real runs (where utlb invocations include their
        trap-entry overhead) utlb's average power is well below the
        data-intensive services'."""
        sw = SoftWatt(window_instructions=WINDOW, seed=2)
        result = sw.run("jess", disk=1)
        timeline = result.timeline
        cycle_time = sw.model.technology.cycle_time_s

        def label_power(service):
            cycles = timeline.label_cycles[service]
            counters = timeline.label_counters[service]
            energy = sum(
                sw.model.energy_by_category(counters, int(cycles)).values())
            return energy / (cycles * cycle_time)

        utlb = label_power("utlb")
        assert label_power("read") > utlb
        assert label_power("demand_zero") > utlb

    def test_utlb_is_cheapest_per_invocation(self, profiles):
        utlb = profiles["utlb"].mean_energy_j
        for name in ("read", "demand_zero", "cacheflush", "open", "write"):
            assert profiles[name].mean_energy_j > utlb

    def test_category_breakdown_present(self, profiles):
        assert sum(profiles["read"].category_energy_j.values()) == pytest.approx(
            profiles["read"].mean_energy_j, rel=0.01)

    def test_mean_counters_populated(self, profiles):
        assert profiles["read"].mean_counters.l1d_access > 0
        assert profiles["read"].instructions_per_invocation > 100


class TestTimeline:
    @pytest.fixture(scope="class")
    def profile(self):
        return Profiler(window_instructions=WINDOW, seed=1).profile_benchmark(
            benchmark("jess"))

    def test_log_covers_duration(self, profile):
        result = TimelineSimulator(profile, disk_policy=1).run()
        assert result.log.duration_s == pytest.approx(result.duration_s, abs=0.2)

    def test_duration_is_compute_plus_io_wait(self, profile):
        result = TimelineSimulator(profile, disk_policy=1).run()
        assert result.duration_s == pytest.approx(
            result.compute_duration_s + result.idle_wait_s, rel=0.02)

    def test_mode_cycles_sum_to_total(self, profile):
        result = TimelineSimulator(profile, disk_policy=1).run()
        total = result.duration_s * 200e6
        assert result.total_cycles == pytest.approx(total, rel=0.05)

    def test_idle_cycles_come_from_disk_waits(self, profile):
        result = TimelineSimulator(profile, disk_policy=1).run()
        idle = result.mode_cycles[ExecutionMode.IDLE]
        assert idle == pytest.approx(result.idle_wait_s * 200e6, rel=0.05)

    def test_spindown_policy_stretches_the_run(self, profile):
        """compress-style pathology on jess would not fire (short gaps);
        use config 3 vs 2 and expect *no* stretch for jess."""
        fast = TimelineSimulator(profile, disk_policy=2).run()
        spin = TimelineSimulator(profile, disk_policy=3).run()
        assert spin.duration_s == pytest.approx(fast.duration_s, rel=0.01)
        assert spin.disk.state.spindowns == 0

    def test_disk_power_series_matches_energy(self, profile):
        result = TimelineSimulator(profile, disk_policy=1).run()
        series = disk_power_series(result.disk, result.log)
        integrated = sum(
            w * r.duration_s for w, r in zip(series, result.log))
        assert integrated == pytest.approx(result.disk.energy.energy_j, rel=0.02)

    def test_speed_factor_scales_duration(self, profile):
        base = TimelineSimulator(profile, disk_policy=2).run()
        slow = TimelineSimulator(profile, disk_policy=2, speed_factor=2.0).run()
        assert slow.compute_duration_s == pytest.approx(
            2.0 * base.compute_duration_s)

    def test_validation(self, profile):
        with pytest.raises(ValueError):
            TimelineSimulator(profile, sample_interval_s=0.0)
        with pytest.raises(ValueError):
            TimelineSimulator(profile, speed_factor=0.0)


class TestSoftWattFacade:
    def test_validation_number(self, softwatt):
        assert softwatt.validate_max_power() == pytest.approx(25.3, abs=0.5)

    def test_profile_cached(self, softwatt):
        first = softwatt.profile("jess")
        second = softwatt.profile("jess")
        assert first is second

    def test_mode_percentages_sum_to_100(self, jess_result):
        modes = jess_result.mode_breakdown()
        assert sum(r.cycles_pct for r in modes.values()) == pytest.approx(100.0)
        assert sum(r.energy_pct for r in modes.values()) == pytest.approx(100.0)

    def test_user_mode_dominates(self, jess_result):
        modes = jess_result.mode_breakdown()
        user = modes[ExecutionMode.USER]
        assert user.cycles_pct > 50.0
        for mode, row in modes.items():
            if mode is not ExecutionMode.USER:
                assert row.cycles_pct < user.cycles_pct

    def test_user_energy_share_exceeds_cycle_share(self, jess_result):
        """Table 2's pattern: user energy% > user cycles%."""
        user = jess_result.mode_breakdown()[ExecutionMode.USER]
        assert user.energy_pct > user.cycles_pct

    def test_kernel_energy_share_below_cycle_share(self, jess_result):
        kernel = jess_result.mode_breakdown()[ExecutionMode.KERNEL]
        assert kernel.energy_pct < kernel.cycles_pct

    def test_power_budget_shares_sum_to_100(self, jess_result):
        shares = jess_result.power_budget_shares()
        assert sum(shares.values()) == pytest.approx(100.0)
        assert shares["disk"] > 20.0  # conventional disk dominates

    def test_utlb_dominates_kernel_services(self, jess_result):
        rows = jess_result.service_breakdown()
        assert rows[0].service == "utlb"
        assert rows[0].kernel_cycles_pct > 40.0
        # utlb's energy share is proportionately smaller (Section 3.3).
        assert rows[0].kernel_energy_pct < rows[0].kernel_cycles_pct

    def test_cache_rates_ordering(self, jess_result):
        rates = jess_result.cache_rates()
        assert rates[ExecutionMode.USER].il1_per_cycle > (
            rates[ExecutionMode.IDLE].il1_per_cycle)
        assert rates[ExecutionMode.USER].dl1_per_cycle > (
            rates[ExecutionMode.KERNEL].dl1_per_cycle)

    def test_mode_average_power_user_highest(self, jess_result):
        """Figure 6: the user mode has the highest average power."""
        powers = {
            mode: sum(parts.values())
            for mode, parts in jess_result.mode_average_power().items()
        }
        assert powers[ExecutionMode.USER] >= max(
            powers[ExecutionMode.KERNEL], powers[ExecutionMode.IDLE])

    def test_trace_has_disk_series(self, jess_result):
        assert len(jess_result.trace.disk_w) == len(jess_result.trace.times_s)
        assert max(jess_result.trace.disk_w) > 3.0  # seeks near startup

    def test_summary_formatting(self, jess_result):
        text = jess_result.format_summary()
        assert "jess" in text
        assert "user" in text

    def test_mipsy_model_runs(self):
        sw = SoftWatt(cpu_model="mipsy", window_instructions=8000, seed=1)
        result = sw.run("db", disk=2)
        # Mipsy runs stretch the MXS-calibrated durations.
        assert result.timeline.compute_duration_s > (
            benchmark("db").compute_duration_s)
