"""Tests for the synthetic code generator (including property tests)."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import CodeSignature, OpClass, SyntheticCodeGenerator, take


def _default_signature(**overrides) -> CodeSignature:
    params = dict(name="test")
    params.update(overrides)
    return CodeSignature(**params)


class TestCodeSignatureValidation:
    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            _default_signature(load_fraction=1.5)

    def test_rejects_mix_over_one(self):
        with pytest.raises(ValueError):
            _default_signature(load_fraction=0.6, store_fraction=0.5)

    def test_rejects_nonpositive_dependency_distance(self):
        with pytest.raises(ValueError):
            _default_signature(dependency_distance=0.0)

    def test_rejects_hot_code_exceeding_footprint(self):
        with pytest.raises(ValueError):
            _default_signature(hot_code_bytes=1 << 20, code_footprint_bytes=1 << 16)

    def test_rejects_hot_data_exceeding_footprint(self):
        with pytest.raises(ValueError):
            _default_signature(hot_data_bytes=1 << 24, data_footprint_bytes=1 << 20)

    def test_rejects_tiny_loop_shape(self):
        with pytest.raises(ValueError):
            _default_signature(loop_body_mean=1)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        sig = _default_signature()
        first = take(iter(SyntheticCodeGenerator(sig, seed=7)), 3000)
        second = take(iter(SyntheticCodeGenerator(sig, seed=7)), 3000)
        assert first == second

    def test_different_seed_different_stream(self):
        sig = _default_signature()
        first = take(iter(SyntheticCodeGenerator(sig, seed=7)), 3000)
        second = take(iter(SyntheticCodeGenerator(sig, seed=8)), 3000)
        assert first != second


class TestStaticCodeStability:
    def test_same_pc_same_opclass_across_visits(self):
        """Revisited code must look identical to the I-side structures."""
        sig = _default_signature(hot_code_bytes=4096, hot_code_fraction=1.0,
                                 code_footprint_bytes=4096)
        instrs = take(iter(SyntheticCodeGenerator(sig, seed=3)), 20000)
        op_at_pc: dict[int, OpClass] = {}
        for instr in instrs:
            seen = op_at_pc.setdefault(instr.pc, instr.op)
            assert seen is instr.op, f"pc {instr.pc:#x}: {seen} vs {instr.op}"

    def test_branch_targets_stable_per_site(self):
        sig = _default_signature(hot_code_bytes=4096, hot_code_fraction=1.0,
                                 code_footprint_bytes=4096)
        instrs = take(iter(SyntheticCodeGenerator(sig, seed=3)), 20000)
        target_at_pc: dict[int, int] = {}
        for instr in instrs:
            if instr.op in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL):
                seen = target_at_pc.setdefault(instr.pc, instr.target)
                assert seen == instr.target


class TestStatisticalShape:
    def test_instruction_mix_tracks_signature(self):
        sig = _default_signature(load_fraction=0.30, store_fraction=0.05,
                                 fp_fraction=0.0)
        instrs = take(iter(SyntheticCodeGenerator(sig, seed=11)), 40000)
        counts = collections.Counter(i.op for i in instrs)
        body_ops = sum(
            counts[op] for op in (OpClass.LOAD, OpClass.STORE, OpClass.IALU,
                                  OpClass.IMUL, OpClass.FALU, OpClass.FMUL)
        )
        load_share = counts[OpClass.LOAD] / body_ops
        store_share = counts[OpClass.STORE] / body_ops
        assert load_share == pytest.approx(0.30, abs=0.08)
        assert store_share == pytest.approx(0.05, abs=0.04)
        assert counts[OpClass.FALU] == 0
        assert counts[OpClass.FMUL] == 0

    def test_fp_signature_emits_fp_ops(self):
        sig = _default_signature(fp_fraction=0.25)
        instrs = take(iter(SyntheticCodeGenerator(sig, seed=11)), 20000)
        counts = collections.Counter(i.op for i in instrs)
        assert counts[OpClass.FALU] + counts[OpClass.FMUL] > 1000

    def test_code_stays_within_footprint(self):
        sig = _default_signature(code_footprint_bytes=64 * 1024)
        instrs = take(iter(SyntheticCodeGenerator(sig, seed=5)), 20000)
        top = sig.code_base + sig.code_footprint_bytes + 4096
        assert all(sig.code_base <= i.pc < top for i in instrs)

    def test_data_stays_within_footprint(self):
        sig = _default_signature(data_footprint_bytes=1 << 20)
        instrs = take(iter(SyntheticCodeGenerator(sig, seed=5)), 20000)
        top = sig.data_base + sig.data_footprint_bytes
        for instr in instrs:
            if instr.op.is_memory:
                assert sig.data_base <= instr.address < top

    def test_service_label_propagates(self):
        gen = SyntheticCodeGenerator(_default_signature(), seed=1, service="BSD")
        assert all(i.service == "BSD" for i in take(iter(gen), 500))

    def test_loop_iterations_affect_branch_density(self):
        short = _default_signature(loop_iterations_mean=2)
        long = _default_signature(loop_iterations_mean=128)
        count = 20000
        short_returns = sum(
            1 for i in take(iter(SyntheticCodeGenerator(short, seed=4)), count)
            if i.op is OpClass.RETURN
        )
        long_returns = sum(
            1 for i in take(iter(SyntheticCodeGenerator(long, seed=4)), count)
            if i.op is OpClass.RETURN
        )
        # Short loops finish functions far more often.
        assert short_returns > long_returns * 2


@st.composite
def signatures(draw):
    load = draw(st.floats(0.0, 0.4))
    store = draw(st.floats(0.0, 0.3))
    fp = draw(st.floats(0.0, min(0.3, 0.99 - load - store)))
    return CodeSignature(
        name="hyp",
        load_fraction=load,
        store_fraction=store,
        fp_fraction=fp,
        dependency_distance=draw(st.floats(0.5, 32.0)),
        loop_body_mean=draw(st.integers(2, 24)),
        loop_iterations_mean=draw(st.integers(1, 128)),
        irregular_branch_fraction=draw(st.floats(0.0, 0.5)),
        call_fraction=draw(st.floats(0.0, 0.3)),
        temporal_locality=draw(st.floats(0.0, 1.0)),
        spatial_run_mean=draw(st.integers(1, 64)),
    )


class TestGeneratorProperties:
    @given(signatures(), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_stream_is_well_formed(self, sig, seed):
        """Any legal signature yields well-formed instructions."""
        instrs = take(iter(SyntheticCodeGenerator(sig, seed=seed)), 600)
        assert len(instrs) == 600
        for instr in instrs:
            assert instr.pc % 4 == 0
            if instr.op.is_memory:
                assert instr.size > 0
            if instr.op is OpClass.BRANCH:
                assert instr.target % 4 == 0

    @given(signatures())
    @settings(max_examples=15, deadline=None)
    def test_determinism_property(self, sig):
        a = take(iter(SyntheticCodeGenerator(sig, seed=42)), 300)
        b = take(iter(SyntheticCodeGenerator(sig, seed=42)), 300)
        assert a == b
