"""Tests for the serve micro-batching layer (`serve/batching.py`).

The acceptance invariants: single-flight collapses identical
concurrent requests to exactly one simulation whose reply every
participant receives bit-identically; failure is per-item (400 for the
one invalid item, 504 for the one expired deadline) and never stalls
or fails the rest of the batch; the lockstep SoA prefetch path yields
replies bit-identical to solo serving; and the breakeven constant is
calibrated from bench data with sane fallbacks.
"""

import json
import threading

import pytest

import repro.cpu.batch as cpu_batch
from repro.core.softwatt import SoftWatt
from repro.serve import (
    BatchScheduler,
    EstimationEngine,
    EstimationHTTPServer,
    ServeClient,
    serve_forever,
)

WINDOW = 2000
SEED = 1


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("serve-batch-cache")


@pytest.fixture(scope="module")
def offline(cache_dir):
    """Ground truth: the same requests served with no scheduler at all."""
    engine = EstimationEngine(
        window_instructions=WINDOW, seed=SEED, cache_dir=cache_dir
    )
    replies = {}
    for name in ("jess", "db", "javac", "mtrt"):
        replies[name] = engine.estimate(
            {"benchmark": name, "cpu_model": "mipsy"}
        )
        assert replies[name]["status"] == 200
    return replies


def make_engine(cache_dir=None, **overrides):
    params = dict(window_instructions=WINDOW, seed=SEED)
    if cache_dir is None:
        params["use_cache"] = False
    else:
        params["cache_dir"] = cache_dir
    params.update(overrides)
    return EstimationEngine(**params)


def submit_concurrently(scheduler, payloads):
    replies = [None] * len(payloads)

    def fire(i):
        replies[i] = scheduler.submit(dict(payloads[i]), index=i)

    threads = [
        threading.Thread(target=fire, args=(i,))
        for i in range(len(payloads))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return replies


class TestSingleFlight:
    def test_identical_requests_share_one_simulation(self):
        engine = make_engine()
        # Spy on the resident instance so the simulation count is
        # observable: exactly one SoftWatt.run must happen.
        instance = engine._instance("mipsy", "detailed")
        simulations = []
        real_run = instance.softwatt.run

        def counting_run(*args, **kwargs):
            simulations.append(args)
            return real_run(*args, **kwargs)

        instance.softwatt.run = counting_run
        scheduler = BatchScheduler(engine)
        try:
            payload = {"benchmark": "db", "cpu_model": "mipsy"}
            replies = submit_concurrently(scheduler, [payload] * 8)
        finally:
            scheduler.close()
        assert all(reply["status"] == 200 for reply in replies)
        assert all(reply["coalesced"] is True for reply in replies)
        # Bit-identical bodies: every participant got a copy of the
        # one reply, down to elapsed_s and the breaker snapshot.
        bodies = {json.dumps(reply, sort_keys=True) for reply in replies}
        assert len(bodies) == 1
        # Exactly one underlying simulation for the eight requests,
        # and its RunReport (shared bit-identically by every reply)
        # shows a clean run.
        assert len(simulations) == 1
        assert all(
            reply["run_report"] == {"degradations": []} for reply in replies
        )
        assert engine.stats()["counters"]["requests"] == 1
        snapshot = scheduler.snapshot()
        assert snapshot["coalesced"] == 7
        assert snapshot["single_flight"]["hits"] == 7
        assert snapshot["single_flight"]["misses"] == 1
        assert snapshot["single_flight"]["hit_rate"] == pytest.approx(7 / 8)

    def test_solo_requests_are_not_marked_coalesced(self):
        engine = make_engine()
        scheduler = BatchScheduler(engine)
        try:
            reply = scheduler.submit(
                {"benchmark": "jess", "fidelity": "atomic"}
            )
        finally:
            scheduler.close()
        assert reply["status"] == 200
        assert reply["coalesced"] is False

    def test_submit_after_close_still_serves(self):
        engine = make_engine()
        scheduler = BatchScheduler(engine)
        scheduler.close()
        reply = scheduler.submit({"benchmark": "jess", "fidelity": "atomic"})
        assert reply["status"] == 200


class TestBatchedExecution:
    def test_lockstep_prefetch_bit_identical_to_solo(self, cache_dir, offline):
        if not cpu_batch.batched_execution():
            pytest.skip("batched execution disabled")
        names = ("jess", "db", "javac", "mtrt")
        engine = make_engine()
        scheduler = BatchScheduler(
            engine, batch_window_ms=100.0, min_lanes=2
        )
        try:
            replies = submit_concurrently(
                scheduler,
                [{"benchmark": n, "cpu_model": "mipsy"} for n in names],
            )
        finally:
            scheduler.close()
        for name, reply in zip(names, replies):
            assert reply["status"] == 200
            assert reply["result"] == offline[name]["result"], name
        executed = scheduler.snapshot()["executed"]
        assert sum(executed["batched"].values()) >= 2

    def test_per_item_deadline_expiry_does_not_stall_batch(self):
        engine = make_engine()
        scheduler = BatchScheduler(engine, batch_window_ms=50.0)
        try:
            replies = submit_concurrently(
                scheduler,
                [
                    {"benchmark": "jess", "fidelity": "atomic"},
                    {
                        "benchmark": "db",
                        "fidelity": "atomic",
                        "deadline_s": 0.0,
                    },
                ],
            )
        finally:
            scheduler.close()
        assert replies[0]["status"] == 200
        assert replies[1]["status"] == 504
        assert "deadline" in replies[1]["error"]

    def test_invalid_item_fails_alone(self):
        engine = make_engine()
        scheduler = BatchScheduler(engine)
        try:
            replies = scheduler.submit_many(
                [
                    {"benchmark": "jess", "fidelity": "atomic"},
                    {"benchmark": "not-a-benchmark"},
                    {"benchmark": "jess", "bogus_field": 1},
                ]
            )
        finally:
            scheduler.close()
        assert [r["status"] for r in replies] == [200, 400, 400]

    def test_occupancy_histogram_counts_batches(self):
        engine = make_engine()
        scheduler = BatchScheduler(engine)
        try:
            scheduler.submit({"benchmark": "jess", "fidelity": "atomic"})
        finally:
            scheduler.close()
        snapshot = scheduler.snapshot()
        assert snapshot["batches"] >= 1
        assert snapshot["occupancy"].get("1", 0) >= 1
        assert snapshot["executed"]["solo"].get("atomic") == 1


class _RunningServer:
    def __init__(self, engine, **kwargs):
        self.server = EstimationHTTPServer(("127.0.0.1", 0), engine, **kwargs)
        self.port = self.server.server_address[1]
        self.summary = None

        def run():
            self.summary = serve_forever(self.server)

        self.thread = threading.Thread(target=run)
        self.thread.start()

    def stop(self):
        self.server.begin_drain()
        self.thread.join(timeout=60)
        assert not self.thread.is_alive()


class TestBatchEndpoint:
    def test_batch_mixed_items_per_item_status(self, cache_dir, offline):
        engine = make_engine(cache_dir)
        scheduler = BatchScheduler(engine)
        running = _RunningServer(
            engine, queue_depth=8, scheduler=scheduler
        )
        try:
            with ServeClient(port=running.port) as client:
                reply = client.run_batch(
                    [
                        {"benchmark": "jess", "cpu_model": "mipsy"},
                        {"benchmark": "nope"},
                        {"benchmark": "db", "deadline_s": 0.0},
                    ]
                )
                assert reply.status == 200
                items = reply.payload["items"]
                assert [item["status"] for item in items] == [200, 400, 504]
                assert items[0]["result"] == offline["jess"]["result"]
                stats = client.stats()
                assert "batching" in stats.payload
                assert stats.payload["batching"]["submitted"] >= 2
        finally:
            running.stop()

    def test_batch_rejects_non_list_and_oversize(self, cache_dir):
        engine = make_engine(cache_dir)
        running = _RunningServer(
            engine, queue_depth=8, scheduler=BatchScheduler(engine)
        )
        try:
            with ServeClient(port=running.port) as client:
                assert client.run_batch([]).status == 400
                reply = client.post("/estimate/batch", {"benchmark": "jess"})
                assert reply.status == 400
                oversize = [{"benchmark": "jess"}] * 257
                assert client.run_batch(oversize).status == 400
        finally:
            running.stop()

    def test_identical_items_coalesce_across_connections(self, cache_dir):
        engine = make_engine(cache_dir)
        scheduler = BatchScheduler(engine)
        running = _RunningServer(engine, queue_depth=64, scheduler=scheduler)
        try:
            bodies = [None] * 6

            def fire(i):
                with ServeClient(port=running.port) as client:
                    bodies[i] = client.run("javac", cpu_model="mipsy")

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(reply.status == 200 for reply in bodies)
            distinct = {
                json.dumps(reply.payload["result"], sort_keys=True)
                for reply in bodies
            }
            assert len(distinct) == 1
        finally:
            running.stop()

    def test_no_scheduler_mode_still_serves_batch(self, cache_dir):
        engine = make_engine(cache_dir)
        running = _RunningServer(engine, queue_depth=8)
        try:
            with ServeClient(port=running.port) as client:
                reply = client.run_batch(
                    [{"benchmark": "jess"}, {"benchmark": "nope"}]
                )
                assert reply.status == 200
                assert [i["status"] for i in reply.payload["items"]] == [
                    200,
                    400,
                ]
                assert "batching" not in client.stats().payload
        finally:
            running.stop()


class TestPipelinedClient:
    def test_pipelined_requests_share_one_connection(self, cache_dir):
        engine = make_engine(cache_dir)
        running = _RunningServer(
            engine, queue_depth=8, scheduler=BatchScheduler(engine)
        )
        try:
            with ServeClient(port=running.port) as client:
                replies = client.run_pipelined(
                    [
                        {"benchmark": "jess"},
                        {"benchmark": "nope"},
                        {"benchmark": "jess", "fidelity": "atomic"},
                    ]
                )
                assert [reply.status for reply in replies] == [200, 400, 200]
                assert replies[0].payload["result"]["benchmark"] == "jess"
        finally:
            running.stop()

    def test_pipeline_surfaces_per_item_errors(self, cache_dir):
        # A server that dies mid-pipeline yields status-0 error replies
        # for the unanswered tail, not an exception.
        engine = make_engine(cache_dir)
        running = _RunningServer(engine, queue_depth=8)
        try:
            client = ServeClient(port=running.port, timeout_s=10)
            replies = client.pipeline([])
            assert replies == []
        finally:
            running.stop()
        # Server is gone: every pipelined request must come back as an
        # error Reply rather than raising.
        dead = ServeClient(port=running.port, timeout_s=2)
        replies = dead.run_pipelined([{"benchmark": "jess"}] * 3)
        assert len(replies) == 3
        assert all(reply.status == 0 for reply in replies)


class TestCalibratedBreakeven:
    def _reset(self):
        cpu_batch._calibrated_min_runs = None

    def test_env_override_wins(self, monkeypatch):
        self._reset()
        monkeypatch.setenv(cpu_batch.MIN_RUNS_ENV, "7")
        assert cpu_batch.batch_min_runs(refresh=True) == 7

    def test_bench_file_calibration(self, tmp_path, monkeypatch):
        self._reset()
        monkeypatch.delenv(cpu_batch.MIN_RUNS_ENV, raising=False)
        bench = tmp_path / "BENCH_profiling.json"
        bench.write_text(
            json.dumps({"batched_suite": {"calibrated_min_runs": 17}})
        )
        monkeypatch.setenv(cpu_batch.BENCH_FILE_ENV, str(bench))
        assert cpu_batch.batch_min_runs(refresh=True) == 17
        self._reset()

    def test_calibration_clamped(self, tmp_path, monkeypatch):
        self._reset()
        monkeypatch.delenv(cpu_batch.MIN_RUNS_ENV, raising=False)
        bench = tmp_path / "BENCH_profiling.json"
        bench.write_text(
            json.dumps({"batched_suite": {"calibrated_min_runs": 100000}})
        )
        monkeypatch.setenv(cpu_batch.BENCH_FILE_ENV, str(bench))
        assert cpu_batch.batch_min_runs(refresh=True) == 512
        self._reset()

    def test_missing_bench_falls_back_to_constant(self, monkeypatch):
        self._reset()
        monkeypatch.delenv(cpu_batch.MIN_RUNS_ENV, raising=False)
        monkeypatch.setenv(
            cpu_batch.BENCH_FILE_ENV, "/nonexistent/bench.json"
        )
        assert (
            cpu_batch.batch_min_runs(refresh=True)
            == cpu_batch.BATCH_MIN_RUNS
        )
        self._reset()

    def test_prefetch_profiles_honors_min_runs(self):
        if not cpu_batch.batched_execution():
            pytest.skip("batched execution disabled")
        softwatt = SoftWatt(
            cpu_model="mipsy",
            window_instructions=WINDOW,
            seed=SEED,
            use_cache=False,
        )
        names = ("jess", "db")
        # Below the threshold: nothing batched.
        assert SoftWatt.prefetch_profiles([softwatt], names, min_runs=3) == 0
        # At the threshold: both lanes profiled in lockstep.
        assert (
            SoftWatt.prefetch_profiles([softwatt], names, min_runs=2) == 2
        )
