"""Tests for the configuration package (Table 1, technology, disk)."""

import pytest

import dataclasses

from repro.config import (
    CacheConfig,
    ConfigError,
    CoreConfig,
    DiskGeometry,
    DiskMode,
    DiskPowerPolicy,
    MemoryConfig,
    SystemConfig,
    TLBConfig,
    Technology,
    disk_configuration,
    switching_energy,
)
from repro.config.diskcfg import (
    ALL_DISK_CONFIGURATIONS,
    MK3003MAN_POWER_W,
    SPINDOWN_TIME_S,
    SPINUP_TIME_S,
)

KB = 1024
MB = 1024 * KB


class TestTable1:
    def test_baseline_matches_paper(self):
        config = SystemConfig.table1()
        assert config.core.window_size == 64
        assert config.core.lsq_size == 32
        assert config.core.fetch_width == 4
        assert config.core.decode_width == 4
        assert config.core.issue_width == 4
        assert config.core.commit_width == 4
        assert config.core.int_alus == 2
        assert config.core.fp_alus == 2
        assert config.core.bht_entries == 1024
        assert config.core.btb_entries == 1024
        assert config.core.ras_entries == 32
        assert config.core.int_registers == 34
        assert config.core.fp_registers == 32

    def test_cache_hierarchy_matches_paper(self):
        config = SystemConfig.table1()
        assert config.l1i.size_bytes == 32 * KB
        assert config.l1i.line_bytes == 64
        assert config.l1i.associativity == 2
        assert config.l1d.size_bytes == 32 * KB
        assert config.l2.size_bytes == 1 * MB
        assert config.l2.line_bytes == 128
        assert config.l2.associativity == 2
        assert config.tlb.entries == 64
        assert config.memory.size_bytes == 128 * MB

    def test_technology_matches_paper(self):
        config = SystemConfig.table1()
        assert config.technology.feature_size_um == pytest.approx(0.35)
        assert config.technology.vdd == pytest.approx(3.3)
        assert config.technology.clock_hz == pytest.approx(200e6)

    def test_single_issue_variant(self):
        config = SystemConfig.table1().single_issue()
        assert config.core.fetch_width == 1
        assert config.core.issue_width == 1
        assert config.core.commit_width == 1
        # Structural resources are unchanged.
        assert config.core.window_size == 64

    def test_hardware_tlb_variant(self):
        config = SystemConfig.table1().with_hardware_tlb()
        assert not config.tlb.software_managed
        assert SystemConfig.table1().tlb.software_managed


class TestCacheConfig:
    def test_derived_geometry(self):
        cache = CacheConfig(name="x", size_bytes=32 * KB, line_bytes=64,
                            associativity=2, latency_cycles=1)
        assert cache.num_sets == 256
        assert cache.num_lines == 512
        assert cache.tag_bits == 32 - 6 - 8

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheConfig(name="x", size_bytes=24 * KB, line_bytes=48,
                        associativity=2, latency_cycles=1)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(name="x", size_bytes=1000, line_bytes=64,
                        associativity=2, latency_cycles=1)

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError):
            CacheConfig(name="x", size_bytes=0, line_bytes=64,
                        associativity=2, latency_cycles=1)

    def test_direct_mapped_is_legal(self):
        cache = CacheConfig(name="dm", size_bytes=16 * KB, line_bytes=32,
                            associativity=1, latency_cycles=1)
        assert cache.num_sets == 512


class TestTLBConfig:
    def test_defaults(self):
        tlb = TLBConfig()
        assert tlb.entries == 64
        assert tlb.page_bytes == 4096
        assert tlb.software_managed

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            TLBConfig(page_bytes=3000)

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=0)


class TestCoreConfig:
    def test_rejects_nonpositive_parameter(self):
        with pytest.raises(ValueError):
            CoreConfig(fetch_width=0)

    def test_as_single_issue_preserves_other_fields(self):
        core = CoreConfig().as_single_issue()
        assert core.lsq_size == CoreConfig().lsq_size


class TestMemoryConfig:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MemoryConfig(size_bytes=0)


class TestTechnology:
    def test_switching_energy_scales_with_capacitance(self):
        assert switching_energy(2e-12) == pytest.approx(2 * switching_energy(1e-12))

    def test_switching_energy_rejects_negative(self):
        with pytest.raises(ValueError):
            switching_energy(-1e-15)

    def test_cycle_time(self):
        tech = Technology(clock_hz=200e6)
        assert tech.cycle_time_s == pytest.approx(5e-9)

    def test_energy_to_average_power(self):
        tech = Technology(clock_hz=200e6)
        # 1 J over 200M cycles (1 second) is 1 W.
        assert tech.energy_to_average_power(1.0, 200_000_000) == pytest.approx(1.0)

    def test_energy_to_average_power_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            Technology().energy_to_average_power(1.0, 0)

    def test_lower_vdd_lowers_energy(self):
        low = Technology(vdd=1.8)
        high = Technology(vdd=3.3)
        assert low.switching_energy(1e-12) < high.switching_energy(1e-12)


class TestDiskConfig:
    def test_figure2_power_values(self):
        assert MK3003MAN_POWER_W[DiskMode.SLEEP] == pytest.approx(0.15)
        assert MK3003MAN_POWER_W[DiskMode.IDLE] == pytest.approx(1.6)
        assert MK3003MAN_POWER_W[DiskMode.STANDBY] == pytest.approx(0.35)
        assert MK3003MAN_POWER_W[DiskMode.ACTIVE] == pytest.approx(3.2)
        assert MK3003MAN_POWER_W[DiskMode.SEEK] == pytest.approx(4.1)
        assert MK3003MAN_POWER_W[DiskMode.SPINUP] == pytest.approx(4.2)
        assert MK3003MAN_POWER_W[DiskMode.SPINDOWN] == pytest.approx(0.0)

    def test_spin_transition_times(self):
        assert SPINUP_TIME_S == pytest.approx(5.0)
        assert SPINDOWN_TIME_S == pytest.approx(5.0)

    def test_four_configurations(self):
        assert ALL_DISK_CONFIGURATIONS == (1, 2, 3, 4)
        assert disk_configuration(1).conventional
        assert disk_configuration(2).spindown_threshold_s is None
        assert not disk_configuration(2).conventional
        assert disk_configuration(3).spindown_threshold_s == pytest.approx(2.0)
        assert disk_configuration(4).spindown_threshold_s == pytest.approx(4.0)

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError):
            disk_configuration(5)

    def test_conventional_cannot_have_threshold(self):
        with pytest.raises(ValueError):
            DiskPowerPolicy(name="bad", conventional=True, spindown_threshold_s=2.0)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            DiskPowerPolicy(name="bad", spindown_threshold_s=0.0)

    def test_geometry_derived_values(self):
        geometry = DiskGeometry()
        assert geometry.rotation_time_s == pytest.approx(60.0 / 5400.0)
        assert geometry.track_bytes == 72 * 512
        assert geometry.transfer_rate_bytes_per_s > 1e6

    def test_geometry_rejects_inverted_seek_curve(self):
        with pytest.raises(ValueError):
            DiskGeometry(min_seek_ms=20.0, avg_seek_ms=10.0, max_seek_ms=30.0)


class TestValidate:
    """Cross-field validation (`SystemConfig.validate`)."""

    def test_table1_validates_and_chains(self):
        config = SystemConfig.table1()
        assert config.validate() is config

    def test_non_power_of_two_associativity_names_the_field(self):
        base = SystemConfig.table1()
        # 768 KB / (128 B x 3 ways) = 2048 sets: constructible (every
        # per-dataclass check passes) yet not meaningfully indexable.
        bad = dataclasses.replace(
            base,
            l2=dataclasses.replace(
                base.l2, size_bytes=768 * KB, associativity=3
            ),
        )
        with pytest.raises(ConfigError) as info:
            bad.validate()
        assert info.value.field == "l2.associativity"
        assert "power of two" in str(info.value)
        assert isinstance(info.value, ValueError)

    def test_inverted_hierarchy_latency_rejected(self):
        base = SystemConfig.table1()
        bad = dataclasses.replace(
            base, l1d=dataclasses.replace(base.l1d, latency_cycles=8)
        )
        with pytest.raises(ConfigError) as info:
            bad.validate()
        assert info.value.field == "l1d.latency_cycles"

    def test_l2_slower_than_memory_rejected(self):
        base = SystemConfig.table1()
        bad = dataclasses.replace(
            base, l2=dataclasses.replace(base.l2, latency_cycles=60)
        )
        with pytest.raises(ConfigError) as info:
            bad.validate()
        assert info.value.field == "l2.latency_cycles"

    def test_l1_line_wider_than_l2_line_rejected(self):
        base = SystemConfig.table1()
        bad = dataclasses.replace(
            base, l1i=dataclasses.replace(base.l1i, line_bytes=256)
        )
        with pytest.raises(ConfigError) as info:
            bad.validate()
        assert info.value.field == "l1i.line_bytes"

    def test_hardware_refill_latency_must_be_positive(self):
        base = SystemConfig.table1()
        bad = dataclasses.replace(
            base, tlb=dataclasses.replace(base.tlb, hardware_refill_cycles=0)
        )
        with pytest.raises(ConfigError) as info:
            bad.validate()
        assert info.value.field == "tlb.hardware_refill_cycles"

    def test_technology_sanity(self):
        base = SystemConfig.table1()
        for field, value in (
            ("vdd", 0.0),
            ("clock_hz", -1.0),
            ("calibration", -0.5),
            ("feature_size_um", 0.0),
        ):
            bad = dataclasses.replace(
                base,
                technology=dataclasses.replace(base.technology, **{field: value}),
            )
            with pytest.raises(ConfigError) as info:
                bad.validate()
            assert info.value.field == f"technology.{field}"

    def test_softwatt_constructor_validates(self):
        from repro.core.softwatt import SoftWatt

        base = SystemConfig.table1()
        bad = dataclasses.replace(
            base,
            l2=dataclasses.replace(base.l2, size_bytes=768 * KB, associativity=3),
        )
        with pytest.raises(ConfigError):
            SoftWatt(bad, use_cache=False)
