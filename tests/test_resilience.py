"""Tests for the fault-tolerant simulation supervisor.

The deterministic :class:`FaultPlan` harness injects crashes, hangs,
errors, corrupt cache entries, and truncated checkpoints at controlled
points, so every recovery path in ``repro.resilience`` runs in CI —
including the regression proving that a recovered run stays
bit-identical to a clean one (against ``tests/data/golden_energy.json``).
"""

import dataclasses
import json
import pathlib

import pytest

from repro.cli import main
from repro.core.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.core.softwatt import SoftWatt
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RunReport,
    SupervisionInterrupted,
    SupervisorPolicy,
    TaskExecutionError,
    corrupt_file,
    supervised_map,
    truncate_file,
)
from repro.stats.simlog import recent_degradations

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_energy.json"

WINDOW = 4000


def _double(value):
    return 2 * value


class TestFaultPlan:
    def test_action_is_deterministic(self):
        plan = FaultPlan(
            specs=(FaultSpec("crash", 1), FaultSpec("error", 3, attempts=2))
        )
        for _ in range(3):
            assert plan.action(1, 1) == "crash"
            assert plan.action(1, 2) is None
            assert plan.action(3, 2) == "error"
            assert plan.action(3, 3) is None
            assert plan.action(0, 1) is None

    def test_parse(self):
        plan = FaultPlan.parse("crash@1,hang@2x3, error@0")
        assert plan.specs == (
            FaultSpec("crash", 1),
            FaultSpec("hang", 2, attempts=3),
            FaultSpec("error", 0),
        )

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="fault spec"):
            FaultPlan.parse("zap@x")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("explode@1")

    def test_corrupt_file_is_seeded(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        for path in (a, b):
            path.write_bytes(b"x" * 64)
            corrupt_file(path, seed=7)
        assert a.read_bytes() == b.read_bytes() != b"x" * 64

    def test_truncate_file(self, tmp_path):
        path = tmp_path / "t"
        path.write_bytes(b"y" * 64)
        truncate_file(path, keep_bytes=8)
        assert path.read_bytes() == b"y" * 8


class TestPolicy:
    def test_backoff_is_deterministic_and_exponential(self):
        policy = SupervisorPolicy(backoff_base_s=0.1, backoff_factor=2.0)
        assert policy.backoff_s(1) == 0.0
        assert policy.backoff_s(2) == pytest.approx(0.1)
        assert policy.backoff_s(3) == pytest.approx(0.2)
        assert policy.backoff_s(4) == pytest.approx(0.4)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(retries=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(task_timeout_s=0.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_jitter=1.5)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_jitter=-0.1)

    def test_jitter_off_by_default_keeps_classic_delays(self):
        plain = SupervisorPolicy(backoff_base_s=0.1, backoff_factor=2.0)
        for attempt in range(1, 6):
            for index in (0, 3, 17):
                assert plain.backoff_s(attempt, index) == plain.backoff_s(attempt)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = SupervisorPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_jitter=0.5
        )
        again = SupervisorPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_jitter=0.5
        )
        for attempt in (2, 3, 4):
            base = 0.1 * 2.0 ** (attempt - 2)
            for index in range(8):
                delay = policy.backoff_s(attempt, index)
                # Pure function of (seed, index, attempt): same inputs,
                # same delay, every time.
                assert delay == again.backoff_s(attempt, index)
                assert base * 0.75 <= delay <= base * 1.25
        assert policy.backoff_s(1, index=5) == 0.0

    def test_jitter_spreads_across_indices_and_seeds(self):
        policy = SupervisorPolicy(backoff_base_s=0.1, backoff_jitter=1.0)
        delays = {policy.backoff_s(2, index) for index in range(16)}
        assert len(delays) == 16  # no two clients synchronize
        reseeded = SupervisorPolicy(
            backoff_base_s=0.1, backoff_jitter=1.0, jitter_seed=7
        )
        assert reseeded.backoff_s(2, 0) != policy.backoff_s(2, 0)


class TestInterrupt:
    def test_interrupt_carries_partial_report(self):
        calls = []

        def flaky(value):
            calls.append(value)
            if value == 2:
                raise KeyboardInterrupt
            return 2 * value

        with pytest.raises(SupervisionInterrupted) as info:
            supervised_map(flaky, [1, 2, 3])
        report = info.value.report
        assert calls == [1, 2]  # task 2 never ran
        assert len(report.completed) == 1
        assert report.completed[0].index == 0
        assert any(d.kind == "interrupted" for d in report.degradations)

    def test_interrupt_is_a_keyboard_interrupt(self):
        # `except KeyboardInterrupt` in callers keeps working.
        assert issubclass(SupervisionInterrupted, KeyboardInterrupt)

    def test_cli_interrupt_exits_130_with_summary(self, monkeypatch, capsys):
        def boom(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(SoftWatt, "validate_max_power", boom)
        assert main(["validate", "--no-cache"]) == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err


class TestSerialSupervision:
    def test_plain_map(self):
        results, report = supervised_map(_double, [1, 2, 3])
        assert results == [2, 4, 6]
        assert report.ok and len(report.completed) == 3

    def test_error_fault_is_retried(self):
        results, report = supervised_map(
            _double, [5, 6], fault_plan=FaultPlan.error_at(1, attempts=2)
        )
        assert results == [10, 12]
        records = {task.index: task for task in report.tasks}
        assert records[0].attempts == 1
        assert records[1].attempts == 3
        assert report.ok  # retries recovered; nothing degraded

    def test_retry_exhaustion_raises_with_report(self):
        with pytest.raises(TaskExecutionError) as info:
            supervised_map(
                _double, [1, 2],
                policy=SupervisorPolicy(retries=1),
                fault_plan=FaultPlan.error_at(0, attempts=99),
            )
        report = info.value.report
        assert [task.label for task in report.failed] == ["task-0"]
        assert report.failed[0].attempts == 2

    def test_best_effort_yields_none_slot(self):
        results, report = supervised_map(
            _double, [1, 2],
            policy=SupervisorPolicy(retries=1, best_effort=True),
            fault_plan=FaultPlan.error_at(0, attempts=99),
        )
        assert results == [None, 4]
        assert [task.status for task in report.tasks] == ["failed", "ok"]
        assert any(d.kind == "task-failed" for d in report.degradations)

    def test_crash_fault_raises_in_process(self):
        # A crash fault must never kill the supervising process itself.
        results, report = supervised_map(
            _double, [1], fault_plan=FaultPlan.crash_at(0)
        )
        assert results == [2]
        assert report.tasks[0].attempts == 2

    def test_pool_unavailable_degrades_to_serial(self, monkeypatch):
        import multiprocessing

        def broken(method):
            raise ValueError(f"no {method} on this platform")

        monkeypatch.setattr(multiprocessing, "get_context", broken)
        results, report = supervised_map(_double, [1, 2, 3], workers=4)
        assert results == [2, 4, 6]
        assert report.serial_fallback
        assert [d.kind for d in report.degradations] == ["pool-unavailable"]
        assert any("pool-unavailable" in m for m in recent_degradations())


class TestPoolSupervision:
    def test_crash_requeues_only_unfinished(self):
        # One sequential worker: tasks 0..k-1 complete, the crash at k
        # breaks the pool, and ONLY tasks >= k are re-executed.
        results, report = supervised_map(
            _double, list(range(5)),
            workers=1, use_pool=True,
            fault_plan=FaultPlan.crash_at(2),
        )
        assert results == [0, 2, 4, 6, 8]
        attempts = {task.index: task.attempts for task in report.tasks}
        assert attempts == {0: 1, 1: 1, 2: 2, 3: 1, 4: 1}
        assert report.pool_breaks == 1
        assert [d.kind for d in report.degradations] == ["pool-broken"]

    def test_completed_results_survive_the_break(self):
        results, report = supervised_map(
            _double, list(range(6)),
            workers=2,
            fault_plan=FaultPlan.crash_at(3),
        )
        assert results == [2 * v for v in range(6)]
        assert report.pool_breaks == 1
        assert all(task.ok for task in report.tasks)

    @pytest.mark.fault_injection
    def test_hang_is_timed_out_and_retried(self):
        plan = dataclasses.replace(FaultPlan.hang_at(1), hang_seconds=10.0)
        results, report = supervised_map(
            _double, [1, 2, 3],
            workers=2,
            policy=SupervisorPolicy(task_timeout_s=0.4, retries=2),
            fault_plan=plan,
        )
        assert results == [2, 4, 6]
        records = {task.index: task for task in report.tasks}
        assert records[1].attempts == 2
        assert report.pool_restarts == 1
        assert [d.kind for d in report.degradations] == ["task-timeout"]

    @pytest.mark.fault_injection
    def test_timeout_retry_exhaustion_fails_the_task(self):
        plan = dataclasses.replace(
            FaultPlan.hang_at(0, attempts=99), hang_seconds=10.0
        )
        results, report = supervised_map(
            _double, [1, 2],
            workers=2,
            policy=SupervisorPolicy(
                task_timeout_s=0.3, retries=1, best_effort=True
            ),
            fault_plan=plan,
        )
        assert results == [None, 4]
        failed = report.failed
        assert len(failed) == 1 and failed[0].index == 0
        assert "timed out" in failed[0].error

    @pytest.mark.fault_injection
    def test_repeated_breaks_degrade_to_serial(self):
        plan = FaultPlan(
            specs=(
                FaultSpec("crash", 0),
                FaultSpec("crash", 1),
                FaultSpec("crash", 2),
            )
        )
        results, report = supervised_map(
            _double, list(range(4)),
            workers=1, use_pool=True,
            policy=SupervisorPolicy(max_pool_rebuilds=2),
            fault_plan=plan,
        )
        assert results == [0, 2, 4, 6]
        assert report.serial_fallback
        assert report.pool_breaks == 3
        assert [d.kind for d in report.degradations][-1] == "serial-fallback"


class TestRunReport:
    def test_merge_accumulates(self):
        one, two = RunReport(), RunReport()
        one.add_degradation("pool-broken", "a")
        two.add_degradation("task-timeout", "b")
        two.pool_breaks = 1
        two.serial_fallback = True
        one.merge(two)
        assert [d.kind for d in one.degradations] == [
            "pool-broken", "task-timeout"
        ]
        assert one.pool_breaks == 1 and one.serial_fallback

    def test_to_dict_round_trips_through_json(self):
        report = RunReport()
        report.add_degradation("pool-broken", "x")
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["degradations"][0]["kind"] == "pool-broken"

    def test_summary_names_failures(self):
        _, report = supervised_map(
            _double, [1],
            policy=SupervisorPolicy(retries=0, best_effort=True),
            fault_plan=FaultPlan.error_at(0, attempts=9),
        )
        text = report.summary()
        assert "0/1 tasks ok" in text and "FAILED task-0" in text


class TestCheckpointFailurePaths:
    def test_truncated_checkpoint_raises_checkpoint_error(self, tmp_path):
        sw = SoftWatt(window_instructions=WINDOW, seed=1, use_cache=False)
        sw.profile("jess")
        path = tmp_path / "ck.json"
        save_checkpoint(path, profiles=sw._profiles)
        truncate_file(path, keep_bytes=40)
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(path)

    def test_corrupt_cache_entry_is_quarantined_not_deleted(self, tmp_path):
        sw = SoftWatt(window_instructions=WINDOW, seed=1, cache_dir=tmp_path)
        sw.profile("jess")
        entries = list(tmp_path.glob("*.json"))
        assert entries
        for path in entries:
            corrupt_file(path, seed=3)
        fresh = SoftWatt(window_instructions=WINDOW, seed=1, cache_dir=tmp_path)
        fresh.profile("jess")
        assert fresh.profiler.detailed_runs == 1
        assert fresh.cache.stats.quarantined == len(entries)
        quarantined = fresh.cache.quarantined_entries()
        assert [p.name for p in quarantined] == sorted(e.name for e in entries)
        assert any("cache-quarantine" in m for m in recent_degradations())

    def test_warm_cache_run_with_one_quarantined_entry(self, tmp_path):
        cold = SoftWatt(window_instructions=WINDOW, seed=1, cache_dir=tmp_path)
        reference = {
            name: result.total_energy_j
            for name, result in cold.run_suite(names=("jess", "db")).items()
        }
        # Corrupt exactly one benchmark entry; the warm run must
        # quarantine it, re-profile only that benchmark, and reproduce
        # the same energies.
        key = cold._profile_key(cold._profiles["jess"].spec)
        corrupt_file(tmp_path / f"{key}.json", seed=5)
        warm = SoftWatt(window_instructions=WINDOW, seed=1, cache_dir=tmp_path)
        results = warm.run_suite(names=("jess", "db"))
        assert warm.profiler.detailed_runs == 1
        assert warm.cache.stats.quarantined == 1
        for name, energy in reference.items():
            assert results[name].total_energy_j == energy

    @pytest.mark.parametrize("tier", ["atomic", "sampled"])
    def test_sub_detailed_entries_never_serve_detailed_requests(
        self, tmp_path, tier
    ):
        """A warm sub-detailed cache must not poison a detailed run.

        The fidelity tier (and its sampling knobs) are part of the
        profile cache key, so a detailed request against a cache warmed
        at a cheaper tier re-simulates and reproduces the no-cache
        detailed energies exactly.
        """
        approx = SoftWatt(
            cpu_model="mipsy", window_instructions=WINDOW, seed=1,
            cache_dir=tmp_path, fidelity=tier,
        )
        approx.run("jess")
        assert list(tmp_path.glob("*.json"))  # the tier did warm a cache
        detailed = SoftWatt(
            cpu_model="mipsy", window_instructions=WINDOW, seed=1,
            cache_dir=tmp_path,
        )
        result = detailed.run("jess")
        assert detailed.profiler.detailed_runs >= 1  # cache miss: re-simulated
        clean = SoftWatt(
            cpu_model="mipsy", window_instructions=WINDOW, seed=1,
            use_cache=False,
        ).run("jess")
        assert result.total_energy_j == clean.total_energy_j
        # and the warm sub-detailed instance keeps hitting its own entry
        rewarm = SoftWatt(
            cpu_model="mipsy", window_instructions=WINDOW, seed=1,
            cache_dir=tmp_path, fidelity=tier,
        )
        rewarm.run("jess")
        assert rewarm.profiler.detailed_runs == 0


class TestSuiteRecovery:
    @pytest.mark.fault_injection
    def test_broken_pool_mid_suite_is_bit_identical(self):
        names = ("jess", "db", "javac")
        clean = SoftWatt(
            window_instructions=WINDOW, seed=1, use_cache=False
        ).run_suite(names=names, workers=1)
        faulty = SoftWatt(
            window_instructions=WINDOW, seed=1, use_cache=False,
            fault_plan=FaultPlan.crash_at(1),
        ).run_suite(names=names, workers=2)
        assert set(faulty) == set(names)
        assert faulty.report.pool_breaks == 1
        assert [d.kind for d in faulty.report.degradations] == ["pool-broken"]
        for name in names:
            assert faulty[name].total_energy_j == clean[name].total_energy_j
            assert faulty[name].disk_energy_j == clean[name].disk_energy_j
            assert faulty[name].idle_cycles == clean[name].idle_cycles

    @pytest.mark.fault_injection
    def test_recovered_suite_matches_golden_snapshot(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        names = ("jess", "db")
        faulty = SoftWatt(
            window_instructions=golden["window_instructions"],
            seed=golden["seed"],
            use_cache=False,
            fault_plan=FaultPlan.crash_at(1),
        ).run_suite(names=names, disk=golden["disk"], workers=2)
        assert len(faulty.report.degradations) == 1
        assert faulty.report.degradations[0].kind == "pool-broken"
        for name in names:
            expected = golden["benchmarks"][f"mxs/{name}"]
            assert faulty[name].total_energy_j == expected["total_energy_j"]
            assert faulty[name].disk_energy_j == expected["disk_energy_j"]
            assert faulty[name].power_budget() == expected["budget_w"]

    def test_best_effort_suite_skips_failed_benchmark(self):
        results = SoftWatt(
            window_instructions=WINDOW, seed=1, use_cache=False,
            retries=0, best_effort=True,
            fault_plan=FaultPlan.error_at(0, attempts=99),
        ).run_suite(names=("jess", "db"), workers=2)
        assert set(results) == {"db"}
        assert [task.status for task in results.report.tasks] == [
            "failed", "ok"
        ]


class TestCLIResilience:
    def test_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["suite", "--task-timeout", "30", "--retries", "1", "--strict",
             "--fault-plan", "crash@0"]
        )
        assert args.task_timeout == 30.0
        assert args.retries == 1
        assert args.strict and not args.best_effort

    def test_strict_and_best_effort_exclusive(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "--strict", "--best-effort"])

    def test_bad_fault_plan_exits_2(self):
        assert main(["validate", "--fault-plan", "zap@x"]) == 2

    @pytest.mark.fault_injection
    def test_strict_mode_exits_nonzero_on_degraded_run(self, tmp_path, capsys):
        base = ["checkpoint", "db", "jess", "--out", str(tmp_path / "ck.json"),
                "--window", str(WINDOW), "--seed", "1", "--workers", "2",
                "--no-cache", "--fault-plan", "crash@1"]
        assert main([*base, "--strict"]) == 1
        out = capsys.readouterr().out
        assert "run report:" in out
        assert "pool-broken" in out
        # The identical degraded run is tolerated without --strict.
        assert main(base) == 0
