"""Tests for the DVFS evaluation and the thermal model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SoftWatt
from repro.config import Technology
from repro.power import (
    OperatingPoint,
    ThermalModel,
    evaluate_at,
    operating_point,
    scaled_frequency_hz,
    sweep,
)
from repro.power.dvfs import THRESHOLD_V
from repro.stats.postprocess import PowerTrace


@pytest.fixture(scope="module")
def result():
    sw = SoftWatt(window_instructions=12_000, seed=1)
    return sw.run("jess", disk=2)


class TestDVFSScaling:
    def test_base_point_is_identity(self):
        base = Technology()
        assert scaled_frequency_hz(base.vdd, base) == pytest.approx(base.clock_hz)

    def test_frequency_monotone_in_voltage(self):
        base = Technology()
        frequencies = [scaled_frequency_hz(v, base) for v in (1.2, 1.8, 2.4, 3.3)]
        assert frequencies == sorted(frequencies)

    def test_below_threshold_rejected(self):
        base = Technology()
        with pytest.raises(ValueError):
            scaled_frequency_hz(THRESHOLD_V, base)
        with pytest.raises(ValueError):
            OperatingPoint(vdd=0.4, clock_hz=1e8)

    def test_base_evaluation_matches_run(self, result):
        base = Technology()
        evaluation = evaluate_at(result, operating_point(base.vdd, base))
        assert evaluation.duration_s == pytest.approx(
            result.timeline.duration_s, rel=1e-6)
        assert evaluation.total_energy_j == pytest.approx(
            result.total_energy_j, rel=1e-6)

    def test_lower_voltage_cuts_cpu_energy(self, result):
        base = Technology()
        low = evaluate_at(result, operating_point(2.0, base))
        high = evaluate_at(result, operating_point(3.3, base))
        assert low.cpu_energy_j < high.cpu_energy_j
        # Quadratic scaling of the CPU part.
        assert low.cpu_energy_j == pytest.approx(
            high.cpu_energy_j * (2.0 / 3.3) ** 2)

    def test_lower_voltage_stretches_runtime(self, result):
        base = Technology()
        low = evaluate_at(result, operating_point(1.6, base))
        assert low.duration_s > result.timeline.duration_s

    def test_disk_energy_grows_when_slower(self, result):
        """The system-level DVFS tax: a slower CPU keeps the platter
        powered longer."""
        base = Technology()
        low = evaluate_at(result, operating_point(1.6, base))
        assert low.disk_energy_j > result.disk_energy_j

    def test_sweep_shape(self, result):
        evaluations = sweep(result, [3.3, 2.4, 1.6])
        assert [e.point.vdd for e in evaluations] == [3.3, 2.4, 1.6]
        assert all(e.total_energy_j > 0 for e in evaluations)

    @given(st.floats(0.9, 3.3))
    @settings(max_examples=30, deadline=None)
    def test_frequency_bounded_by_base(self, vdd):
        base = Technology()
        assert scaled_frequency_hz(vdd, base) <= base.clock_hz * 1.0000001


class TestThermalModel:
    def _flat_trace(self, watts, samples=50, step=0.1):
        times = [step * (i + 0.5) for i in range(samples)]
        return PowerTrace(
            times_s=times,
            category_w={"datapath": [watts] * samples},
            disk_w=[0.0] * samples,
        )

    def test_steady_state(self):
        model = ThermalModel()
        assert model.steady_state_c(0.0) == pytest.approx(model.ambient_c)
        assert model.steady_state_c(10.0) == pytest.approx(
            model.ambient_c + 10.0 * model.r_thermal)

    def test_temperature_approaches_steady_state(self):
        model = ThermalModel()
        trace = self._flat_trace(10.0, samples=4000)
        profile = model.profile(trace)
        assert profile.temperature_c[-1] == pytest.approx(
            model.steady_state_c(10.0), abs=0.5)

    def test_temperature_monotone_under_constant_power(self):
        model = ThermalModel()
        profile = model.profile(self._flat_trace(12.0, samples=100))
        temps = profile.temperature_c
        assert all(b >= a - 1e-9 for a, b in zip(temps, temps[1:]))

    def test_sustainable_power_threshold(self):
        model = ThermalModel()
        safe = model.sustainable_power_w() * 0.9
        hot = model.sustainable_power_w() * 1.3
        assert not model.profile(self._flat_trace(safe, samples=4000)).dtm_engaged
        assert model.profile(self._flat_trace(hot, samples=4000)).dtm_engaged

    def test_time_above(self):
        model = ThermalModel()
        profile = model.profile(self._flat_trace(30.0, samples=4000))
        assert profile.time_above(model.ambient_c + 1.0) > 0.0
        assert profile.time_above(1000.0) == 0.0

    def test_real_run_stays_cool(self, result):
        """The Table 1 machine averages ~5-7 W: far below the ~22 W the
        package can sustain — the average-power design argument."""
        model = ThermalModel()
        profile = model.profile(result.trace)
        assert not profile.dtm_engaged
        assert profile.peak_c < model.trip_c - 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel(r_thermal=0.0)
        with pytest.raises(ValueError):
            ThermalModel(trip_c=10.0)
        with pytest.raises(ValueError):
            ThermalModel().steady_state_c(-1.0)

    @given(st.floats(0.0, 40.0), st.floats(0.5, 4.0), st.floats(5.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_temperature_bounded_by_steady_state(self, watts, r, c):
        model = ThermalModel(r_thermal=r, c_thermal=c)
        profile = model.profile(self._flat_trace(watts, samples=200))
        ceiling = max(model.ambient_c, model.steady_state_c(watts)) + 1e-6
        assert all(t <= ceiling for t in profile.temperature_c)
        assert all(t >= model.ambient_c - 1e-6 for t in profile.temperature_c)
