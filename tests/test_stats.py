"""Tests for the measurement infrastructure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.kernel import ExecutionMode
from repro.power import ProcessorPowerModel
from repro.stats import (
    COUNTER_FIELDS,
    AccessCounters,
    CounterBundle,
    CounterSource,
    LogRecord,
    PowerTrace,
    SimulationLog,
    TimingTree,
    compute_power_trace,
    counters_row,
    rates_per_cycle,
    total_energy_j,
)


class TestAccessCounters:
    def test_starts_at_zero(self):
        counters = AccessCounters()
        assert counters.total_events() == 0

    def test_keyword_initialisation(self):
        counters = AccessCounters(l1i_access=5, loads=2)
        assert counters.l1i_access == 5
        assert counters.loads == 2

    def test_rejects_unknown_counter(self):
        with pytest.raises(AttributeError):
            AccessCounters(bogus=1)

    def test_rejects_negative_initial(self):
        with pytest.raises(ValueError):
            AccessCounters(l1i_access=-1)

    def test_add_accumulates(self):
        a = AccessCounters(l1i_access=3)
        b = AccessCounters(l1i_access=4, loads=1)
        a.add(b)
        assert a.l1i_access == 7
        assert a.loads == 1

    def test_copy_is_independent(self):
        a = AccessCounters(l1i_access=3)
        b = a.copy()
        b.l1i_access = 99
        assert a.l1i_access == 3

    def test_delta(self):
        earlier = AccessCounters(l1i_access=3)
        later = AccessCounters(l1i_access=10)
        diff = later.delta(earlier)
        assert diff.l1i_access == 7

    def test_delta_rejects_regression(self):
        with pytest.raises(ValueError):
            AccessCounters().delta(AccessCounters(l1i_access=1))

    def test_equality(self):
        assert AccessCounters(loads=1) == AccessCounters(loads=1)
        assert AccessCounters(loads=1) != AccessCounters(loads=2)

    def test_as_dict_covers_all_fields(self):
        assert set(AccessCounters().as_dict()) == set(COUNTER_FIELDS)

    def test_rates_per_cycle(self):
        counters = AccessCounters(l1i_access=200)
        rates = rates_per_cycle(counters, 100)
        assert rates["l1i_access"] == pytest.approx(2.0)

    def test_rates_reject_zero_cycles(self):
        with pytest.raises(ValueError):
            rates_per_cycle(AccessCounters(), 0)

    @given(st.dictionaries(st.sampled_from(COUNTER_FIELDS),
                           st.integers(0, 1 << 30), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_add_then_delta_roundtrip(self, values):
        base = AccessCounters(l1i_access=7)
        increment = AccessCounters(**values)
        combined = base.copy()
        combined.add(increment)
        assert combined.delta(base) == increment


class TestTimingTree:
    def test_enter_accrue_exit(self):
        tree = TimingTree()
        tree.enter("kernel")
        tree.enter("utlb")
        tree.accrue(10.0, energy_j=1.0)
        tree.exit("utlb")
        tree.accrue(5.0)
        tree.exit("kernel")
        assert tree.root.cycles == pytest.approx(15.0)
        assert tree.node("kernel").cycles == pytest.approx(15.0)
        assert tree.node("kernel", "utlb").cycles == pytest.approx(10.0)
        assert tree.node("kernel", "utlb").energy_j == pytest.approx(1.0)

    def test_self_cycles(self):
        tree = TimingTree()
        tree.enter("kernel")
        tree.enter("utlb")
        tree.accrue(10.0)
        tree.exit("utlb")
        tree.accrue(5.0)
        tree.exit("kernel")
        assert tree.node("kernel").self_cycles == pytest.approx(5.0)

    def test_exit_mismatch_rejected(self):
        tree = TimingTree()
        tree.enter("a")
        with pytest.raises(RuntimeError):
            tree.exit("b")

    def test_cannot_exit_root(self):
        with pytest.raises(RuntimeError):
            TimingTree().exit("root")

    def test_record_batch_interface(self):
        tree = TimingTree()
        tree.record(("kernel", "read"), 100.0, 2.0)
        tree.record(("kernel", "read"), 50.0, 1.0)
        node = tree.node("kernel", "read")
        assert node.cycles == pytest.approx(150.0)
        assert node.energy_j == pytest.approx(3.0)

    def test_missing_node_lookup(self):
        with pytest.raises(KeyError):
            TimingTree().node("nope")

    def test_negative_rejected(self):
        tree = TimingTree()
        with pytest.raises(ValueError):
            tree.accrue(-1.0)

    def test_visits_counted(self):
        tree = TimingTree()
        for _ in range(3):
            tree.enter("svc")
            tree.exit("svc")
        assert tree.node("svc").visits == 3

    def test_format_mentions_nodes(self):
        tree = TimingTree()
        tree.record(("kernel",), 10.0)
        assert "kernel" in tree.format()


class TestSimulationLog:
    def _record(self, start, end, cycles=1000.0):
        return LogRecord(start_s=start, end_s=end, cycles=cycles,
                         counters=AccessCounters(l1i_access=100),
                         mode_cycles={ExecutionMode.USER: cycles})

    def test_append_and_totals(self):
        log = SimulationLog(0.1)
        log.append(self._record(0.0, 0.1))
        log.append(self._record(0.1, 0.2))
        assert len(log) == 2
        assert log.duration_s == pytest.approx(0.2)
        assert log.total_cycles() == pytest.approx(2000.0)
        assert log.total_counters().l1i_access == 200

    def test_overlap_rejected(self):
        log = SimulationLog(0.1)
        log.append(self._record(0.0, 0.1))
        with pytest.raises(ValueError):
            log.append(self._record(0.05, 0.2))

    def test_mode_totals(self):
        log = SimulationLog(0.1)
        log.append(self._record(0.0, 0.1))
        totals = log.mode_cycle_totals()
        assert totals[ExecutionMode.USER] == pytest.approx(1000.0)
        assert totals[ExecutionMode.IDLE] == 0.0

    def test_dominant_mode(self):
        record = LogRecord(
            start_s=0, end_s=0.1, cycles=100,
            counters=AccessCounters(),
            mode_cycles={ExecutionMode.USER: 30, ExecutionMode.IDLE: 70})
        assert record.dominant_mode() is ExecutionMode.IDLE

    def test_record_validation(self):
        with pytest.raises(ValueError):
            LogRecord(start_s=1.0, end_s=0.5, cycles=10, counters=AccessCounters())
        with pytest.raises(ValueError):
            SimulationLog(0.0)


class TestPostProcess:
    def _log(self):
        log = SimulationLog(0.1)
        for i in range(5):
            log.append(LogRecord(
                start_s=i * 0.1, end_s=(i + 1) * 0.1,
                cycles=20_000_000 * 0.1,
                counters=AccessCounters(l1i_access=2_000_000,
                                        window_dispatch=1_000_000),
                mode_cycles={ExecutionMode.USER: 2_000_000.0}))
        return log

    def test_trace_shape(self):
        model = ProcessorPowerModel(SystemConfig.table1())
        trace = compute_power_trace(self._log(), model)
        assert len(trace.times_s) == 5
        assert set(trace.category_w) == set(
            ("datapath", "l1d", "l2d", "l1i", "l2i", "clock", "memory"))
        assert all(len(series) == 5 for series in trace.category_w.values())

    def test_uniform_log_gives_flat_trace(self):
        model = ProcessorPowerModel(SystemConfig.table1())
        trace = compute_power_trace(self._log(), model)
        totals = trace.total_w
        assert max(totals) == pytest.approx(min(totals), rel=0.01)

    def test_disk_series_integration(self):
        model = ProcessorPowerModel(SystemConfig.table1())
        disk_w = [3.2] * 5
        trace = compute_power_trace(self._log(), model, disk_power_w=disk_w)
        assert trace.total_with_disk_w[0] == pytest.approx(
            trace.total_w[0] + 3.2)
        assert trace.average_w("disk") == pytest.approx(3.2)

    def test_disk_series_length_checked(self):
        model = ProcessorPowerModel(SystemConfig.table1())
        with pytest.raises(ValueError):
            compute_power_trace(self._log(), model, disk_power_w=[1.0])

    def test_total_energy_positive(self):
        model = ProcessorPowerModel(SystemConfig.table1())
        assert total_energy_j(self._log(), model) > 0

    def test_trace_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace(times_s=[0.0], category_w={"l1i": [1.0, 2.0]},
                       disk_w=[0.0])


class TestCounterSource:
    """The CounterSource seam: logs, records, and bundles all price."""

    def _log(self):
        log = SimulationLog(0.1)
        log.append(LogRecord(
            start_s=0.0, end_s=0.1, cycles=1_000.0,
            counters=AccessCounters(l1i_access=500, loads=100)))
        log.append(LogRecord(
            start_s=0.1, end_s=0.2, cycles=2_000.0,
            counters=AccessCounters(l1i_access=700, stores=50)))
        return log

    def test_log_record_and_bundle_satisfy_protocol(self):
        log = self._log()
        bundle = log.counter_bundle()
        for source in (log, log.records[0], bundle):
            assert isinstance(source, CounterSource)

    def test_counter_bundle_condenses_log(self):
        log = self._log()
        bundle = log.counter_bundle()
        assert bundle.total_cycles() == log.total_cycles()
        assert bundle.total_counters() == log.total_counters()
        assert bundle.duration_s == log.duration_s
        assert bundle.provenance == "simulated"
        assert not bundle.ingested

    def test_ingested_provenance_flag(self):
        bundle = CounterBundle(
            counters=AccessCounters(), cycles=10.0,
            provenance="ingested:run.json")
        assert bundle.ingested

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            CounterBundle(counters=AccessCounters(), cycles=-1.0)

    def test_price_agrees_across_source_kinds(self):
        model = ProcessorPowerModel(SystemConfig.table1())
        log = self._log()
        whole = model.price(log)
        bundle = model.price(log.counter_bundle())
        assert whole.components == bundle.components
        per_record = sum(
            model.price(record).total_j for record in log.records
        )
        assert per_record == pytest.approx(whole.total_j, rel=0.05)

    def test_counters_row_matches_field_order(self):
        counters = AccessCounters(l1i_access=3, stores=7)
        row = counters_row(counters)
        assert len(row) == len(COUNTER_FIELDS)
        assert row[COUNTER_FIELDS.index("l1i_access")] == 3
        assert row[COUNTER_FIELDS.index("stores")] == 7
        assert dict(zip(COUNTER_FIELDS, row)) == counters.as_dict()
