"""Tests for the MXS and Mipsy timing models."""

import pytest

from repro.config import SystemConfig
from repro.cpu import MipsyProcessor, MXSProcessor
from repro.isa import (
    CodeSignature,
    Instruction,
    OpClass,
    SyntheticCodeGenerator,
    counted_loop,
)
from repro.kernel import Kernel, idle_loop
from repro.mem import KSEG_BASE, MemoryHierarchy
from repro.stats.counters import AccessCounters


def _independent_alus(base_pc, count):
    """Fully independent integer ops: the ILP-limit workload."""
    for i in range(count):
        yield Instruction(pc=base_pc + 4 * (i % 64), op=OpClass.IALU,
                          dest=8 + (i % 16), srcs=(0, 0))


def _serial_chain(base_pc, count):
    """Every instruction depends on its predecessor."""
    for i in range(count):
        yield Instruction(pc=base_pc + 4 * (i % 64), op=OpClass.IALU,
                          dest=8, srcs=(8,))


class TestMXSBasics:
    def setup_method(self):
        self.config = SystemConfig.table1()

    def test_independent_code_reaches_alu_limit(self):
        cpu = MXSProcessor(self.config)
        stats = cpu.run(_independent_alus(KSEG_BASE, 8000))
        # Two integer ALUs bound IPC at 2 for pure-ALU code.
        assert 1.6 <= stats.ipc <= 2.05

    def test_serial_chain_is_one_per_cycle(self):
        cpu = MXSProcessor(self.config)
        stats = cpu.run(_serial_chain(KSEG_BASE, 8000))
        assert 0.8 <= stats.ipc <= 1.1

    def test_dependences_slow_execution(self):
        serial = MXSProcessor(self.config).run(_serial_chain(KSEG_BASE, 5000))
        parallel = MXSProcessor(self.config).run(_independent_alus(KSEG_BASE, 5000))
        assert parallel.ipc > serial.ipc * 1.5

    def test_single_issue_config_is_slower(self):
        wide = MXSProcessor(self.config).run(_independent_alus(KSEG_BASE, 5000))
        narrow = MXSProcessor(self.config.single_issue()).run(
            _independent_alus(KSEG_BASE, 5000))
        assert narrow.ipc <= 1.01
        assert wide.ipc > narrow.ipc * 1.5

    def test_instruction_count_respected(self):
        cpu = MXSProcessor(self.config)
        sig = CodeSignature(name="t")
        stats = cpu.run(iter(SyntheticCodeGenerator(sig, seed=1)),
                        max_instructions=3000)
        # The limit applies to the stream; trap-handler instructions
        # are extra (they are attributed to their service labels).
        assert stats.labels[None].instructions == 3000
        assert stats.instructions >= 3000

    def test_counters_consistency(self):
        cpu = MXSProcessor(self.config)
        sig = CodeSignature(name="t")
        stats = cpu.run(iter(SyntheticCodeGenerator(sig, seed=1)),
                        max_instructions=4000)
        totals = stats.total_counters()
        # Every instruction dispatches exactly once.
        assert totals.window_dispatch == stats.instructions
        assert totals.window_issue == stats.instructions
        # Fetch accesses >= instructions (wrong-path fetches add more).
        assert totals.l1i_access >= stats.instructions
        assert totals.loads + totals.stores <= totals.l1d_access

    def test_label_cycles_sum_to_total(self):
        cpu = MXSProcessor(self.config)
        sig = CodeSignature(name="t")
        stats = cpu.run(iter(SyntheticCodeGenerator(sig, seed=1)),
                        max_instructions=4000)
        label_total = sum(s.cycles for s in stats.labels.values())
        assert label_total == pytest.approx(stats.cycles, rel=0.01)

    def test_label_instr_plus_stall_equals_cycles(self):
        cpu = MXSProcessor(self.config)
        stats = cpu.run(_serial_chain(KSEG_BASE, 2000))
        for label_stats in stats.labels.values():
            assert label_stats.instr_cycles + label_stats.stall_cycles == (
                pytest.approx(label_stats.cycles, rel=0.01))


class TestMXSMemoryBehaviour:
    def test_cache_misses_cost_cycles(self):
        config = SystemConfig.table1()

        def loads(stride):
            for i in range(3000):
                yield Instruction(pc=KSEG_BASE + 4 * (i % 16), op=OpClass.LOAD,
                                  dest=8, srcs=(0,),
                                  address=KSEG_BASE + 0x100000 + i * stride,
                                  size=8)

        hits = MXSProcessor(config).run(loads(0))
        misses = MXSProcessor(config).run(loads(4096))
        assert misses.cycles > hits.cycles * 1.5

    def test_tlb_miss_triggers_trap_and_refill(self):
        config = SystemConfig.table1()
        hierarchy = MemoryHierarchy(config, AccessCounters())
        kernel = Kernel(config, hierarchy)
        cpu = MXSProcessor(config, hierarchy, trap_client=kernel)
        # User-space code on one page: one I-TLB miss total.
        stream = list(_independent_alus(0x0040_0000, 400))
        stats = cpu.run(iter(stream))
        assert stats.traps == 1
        assert kernel.invocations.get("utlb") == 1
        assert "utlb" in stats.labels

    def test_hardware_tlb_takes_no_traps(self):
        config = SystemConfig.table1().with_hardware_tlb()
        cpu = MXSProcessor(config)
        stats = cpu.run(_independent_alus(0x0040_0000, 400))
        assert stats.traps == 0

    def test_trap_cycles_attributed_to_utlb_label(self):
        config = SystemConfig.table1()
        hierarchy = MemoryHierarchy(config, AccessCounters())
        kernel = Kernel(config, hierarchy)
        cpu = MXSProcessor(config, hierarchy, trap_client=kernel)
        sig = CodeSignature(name="t", data_footprint_bytes=8 << 20,
                            temporal_locality=0.2)
        stats = cpu.run(iter(SyntheticCodeGenerator(sig, seed=2)),
                        max_instructions=5000)
        assert stats.traps > 3
        assert stats.labels["utlb"].cycles > 0


class TestMXSBranchEffects:
    def test_mispredicts_slow_execution(self):
        config = SystemConfig.table1()

        def branchy(predictable):
            count = 6000
            for i in range(count):
                taken = (i % 2 == 0) if not predictable else True
                last = i == count - 1
                yield Instruction(pc=KSEG_BASE + 0x100, op=OpClass.IALU,
                                  dest=8, srcs=(0,))
                yield Instruction(pc=KSEG_BASE + 0x104, op=OpClass.BRANCH,
                                  srcs=(8,), target=KSEG_BASE + 0x100,
                                  taken=taken and not last)

        good = MXSProcessor(config).run(branchy(True))
        bad = MXSProcessor(config).run(branchy(False))
        assert bad.cycles > good.cycles * 1.3
        assert bad.branch.accuracy < good.branch.accuracy


class TestMipsy:
    def setup_method(self):
        self.config = SystemConfig.table1()

    def test_ipc_never_exceeds_one(self):
        cpu = MipsyProcessor(self.config)
        stats = cpu.run(_independent_alus(KSEG_BASE, 5000))
        assert stats.ipc <= 1.0

    def test_slower_than_mxs_on_same_stream(self):
        sig = CodeSignature(name="t")
        mxs = MXSProcessor(self.config).run(
            iter(SyntheticCodeGenerator(sig, seed=3)), max_instructions=5000)
        mipsy = MipsyProcessor(self.config).run(
            iter(SyntheticCodeGenerator(sig, seed=3)), max_instructions=5000)
        assert mipsy.cycles > mxs.cycles

    def test_blocking_loads_hurt_more_than_on_mxs(self):
        def loads():
            for i in range(2000):
                yield Instruction(pc=KSEG_BASE + 4 * (i % 16), op=OpClass.LOAD,
                                  dest=8, srcs=(0,),
                                  address=KSEG_BASE + 0x100000 + i * 4096,
                                  size=8)

        mxs = MXSProcessor(self.config).run(loads())
        mipsy = MipsyProcessor(self.config).run(loads())
        # Blocking caches: Mipsy pays every miss serially.
        assert mipsy.cycles >= mxs.cycles

    def test_tlb_trap_handling(self):
        hierarchy = MemoryHierarchy(self.config, AccessCounters())
        kernel = Kernel(self.config, hierarchy)
        cpu = MipsyProcessor(self.config, hierarchy, trap_client=kernel)
        stats = cpu.run(_independent_alus(0x0040_0000, 300))
        assert stats.traps == 1
        assert "utlb" in stats.labels

    def test_taken_branches_add_bubbles(self):
        def body(iteration, pc):
            yield Instruction(pc=pc, op=OpClass.IALU, dest=3, srcs=(0,))

        straight = MipsyProcessor(self.config).run(
            _independent_alus(KSEG_BASE, 3000))
        loopy = MipsyProcessor(self.config).run(
            counted_loop(KSEG_BASE, 1000, body))
        assert loopy.ipc < straight.ipc


class TestIdleLoopOnMXS:
    def test_idle_rates_in_paper_range(self):
        """Idle iL1 refs/cycle ~0.78 in the paper; we accept 0.7-1.0."""
        cpu = MXSProcessor(SystemConfig.table1())
        cpu.run(idle_loop(64))
        stats = cpu.run(idle_loop(15000))
        label = stats.labels["idle"]
        rate = label.counters.l1i_access / label.cycles
        assert 0.6 <= rate <= 1.1

    def test_idle_is_workload_independent(self):
        """Section 3.3: idle behaviour is predictable and independent."""
        def measure():
            cpu = MXSProcessor(SystemConfig.table1())
            cpu.run(idle_loop(64))
            stats = cpu.run(idle_loop(8000))
            return stats.labels["idle"].ipc

        assert measure() == pytest.approx(measure(), rel=1e-6)
