"""Tests for the tiered sweep campaign engine.

Three layers:

* classification — ``changed_leaves``/``classify`` and the planner,
  pure config arithmetic, no simulation;
* tier equivalence — a Tier-L (ledger) sweep must be *bit-identical*
  to forcing every point through the legacy full re-simulation, and
  the base point must reproduce ``tests/data/golden_energy.json``;
* resilience — a structural sweep with an injected worker crash must
  recover and match the clean sweep exactly.

The simulation-backed tests share the golden snapshot's settings
(jess, disk 1, seed 3, window 6000) so the base point doubles as a
golden regression check.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.config.diskcfg import DiskPowerPolicy
from repro.config.system import SystemConfig
from repro.core.campaign import (
    PARAMETERS,
    SPINDOWN_PARAMETER,
    SweepCampaign,
    Tier,
    changed_leaves,
    classify,
)
from repro.resilience.faults import FaultPlan

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "data" / "golden_energy.json").read_text()
)

#: Golden-snapshot settings — every campaign below runs this machine.
SETTINGS = dict(
    benchmark="jess",
    cpu_model="mxs",
    disk=GOLDEN["disk"],
    window_instructions=GOLDEN["window_instructions"],
    seed=GOLDEN["seed"],
    use_cache=False,
)

BASE = SystemConfig.table1()
BASE_VDD = BASE.technology.vdd


def _vdd_values():
    """Two off-base points plus the base itself (the golden anchor)."""
    return [round(BASE_VDD * 0.8, 6), round(BASE_VDD * 1.1, 6), BASE_VDD]


def _point_fields(point):
    return {
        field.name: getattr(point, field.name)
        for field in dataclasses.fields(point)
    }


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


class TestClassification:
    def test_changed_leaves_reports_nested_paths(self):
        other = PARAMETERS["vdd"](BASE, BASE_VDD * 0.9)
        assert changed_leaves(BASE, other) == ["technology.vdd"]

    def test_changed_leaves_empty_for_identical_configs(self):
        assert changed_leaves(BASE, SystemConfig.table1()) == []

    def test_ledger_leaves_classify_ledger(self):
        for parameter in ("vdd", "calibration"):
            other = PARAMETERS[parameter](BASE, 0.5)
            assert classify(BASE, other) is Tier.LEDGER, parameter

    def test_clock_classifies_timeline(self):
        other = PARAMETERS["clock_hz"](BASE, 300e6)
        assert classify(BASE, other) is Tier.TIMELINE

    def test_structural_leaves_dominate(self):
        other = PARAMETERS["vdd"](PARAMETERS["l1_size"](BASE, 16384), 1.2)
        assert classify(BASE, other) is Tier.STRUCTURAL

    def test_policy_change_is_at_least_timeline(self):
        assert classify(BASE, BASE, policy_changed=True) is Tier.TIMELINE

    def test_plan_classifies_base_value_as_ledger(self):
        campaign = SweepCampaign(**SETTINGS)
        plan = campaign.plan("l1_size", [16384, BASE.l1d.size_bytes])
        assert [p.tier for p in plan] == [Tier.STRUCTURAL, Tier.LEDGER]

    def test_plan_grid_covers_cartesian_product(self):
        campaign = SweepCampaign(**SETTINGS)
        plan = campaign.plan_grid(
            {"vdd": [1.5, BASE_VDD], SPINDOWN_PARAMETER: [0.5, 2.0]}
        )
        assert len(plan) == 4
        assert plan[0].label == "vdd=1.5,spindown_threshold_s=0.5"
        assert plan[0].value == (1.5, 0.5)
        # the policy axis drags every combo up to at least TIMELINE
        assert all(p.tier is Tier.TIMELINE for p in plan)

    def test_forcing_below_required_tier_raises(self):
        campaign = SweepCampaign(tier="ledger", **SETTINGS)
        with pytest.raises(ValueError, match="stale"):
            campaign.plan("l1_size", [16384])

    def test_unknown_parameter_rejected(self):
        campaign = SweepCampaign(**SETTINGS)
        with pytest.raises(ValueError, match="unknown parameter"):
            campaign.plan("l9_size", [1])

    def test_unknown_tier_name_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            SweepCampaign(tier="turbo", **SETTINGS)


# ---------------------------------------------------------------------------
# Tier equivalence (simulation-backed; fixtures share the expensive runs)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def ledger_sweep():
    campaign = SweepCampaign(**SETTINGS)
    return campaign.run("vdd", _vdd_values())


@pytest.fixture(scope="module")
def full_sweep():
    campaign = SweepCampaign(tier="full", **SETTINGS)
    return campaign.run("vdd", _vdd_values())


class TestTierEquivalence:
    def test_tiers_recorded(self, ledger_sweep, full_sweep):
        assert ledger_sweep.tiers == ("LEDGER",) * 3
        assert full_sweep.tiers == ("STRUCTURAL",) * 3

    def test_ledger_sweep_bit_identical_to_full(self, ledger_sweep, full_sweep):
        assert len(ledger_sweep.points) == len(full_sweep.points)
        for cheap, full in zip(ledger_sweep.points, full_sweep.points):
            assert _point_fields(cheap) == _point_fields(full), cheap.value

    def test_base_point_matches_golden_snapshot(self, ledger_sweep):
        expected = GOLDEN["benchmarks"]["mxs/jess"]
        base_point = ledger_sweep.points[-1]
        assert base_point.value == BASE_VDD
        assert base_point.energy_j == expected["total_energy_j"]

    def test_vdd_scales_energy_monotonically(self, ledger_sweep):
        low, high, base = ledger_sweep.points
        assert low.energy_j < base.energy_j < high.energy_j

    def test_clean_sweep_report_is_clean(self, ledger_sweep):
        assert ledger_sweep.report is not None
        assert not ledger_sweep.report.degraded


class TestTimelineTier:
    def test_spindown_sweep_matches_full(self):
        thresholds = [0.5, 2.0]
        cheap = SweepCampaign(**SETTINGS).run(SPINDOWN_PARAMETER, thresholds)
        full = SweepCampaign(tier="full", **SETTINGS).run(
            SPINDOWN_PARAMETER, thresholds
        )
        assert cheap.tiers == ("TIMELINE",) * 2
        for cheap_point, full_point in zip(cheap.points, full.points):
            assert _point_fields(cheap_point) == _point_fields(full_point)

    def test_custom_policy_object_accepted(self):
        policy = DiskPowerPolicy(name="always-on", spindown_threshold_s=1e9)
        campaign = SweepCampaign(**{**SETTINGS, "disk": policy})
        plan = campaign.plan("vdd", [BASE_VDD])
        assert plan[0].tier is Tier.LEDGER


# ---------------------------------------------------------------------------
# Vectorized sampling: numpy and pure-Python paths are bit-identical
# ---------------------------------------------------------------------------


class TestVectorizedSampling:
    def test_pure_python_fallback_is_bit_identical(self, monkeypatch,
                                                   ledger_sweep):
        from repro.core import timeline

        if not timeline.vectorized_sampling():
            pytest.skip("numpy unavailable; only one sampling path exists")
        monkeypatch.setenv(timeline.PURE_PYTHON_ENV, "1")
        assert not timeline.vectorized_sampling()
        fallback = SweepCampaign(**SETTINGS).run("vdd", _vdd_values())
        for numpy_point, python_point in zip(ledger_sweep.points,
                                             fallback.points):
            assert _point_fields(numpy_point) == _point_fields(python_point)


# ---------------------------------------------------------------------------
# Resilience: a crashed worker must not change the numbers
# ---------------------------------------------------------------------------


@pytest.mark.fault_injection
class TestCrashRecovery:
    def test_crashed_sweep_matches_clean_sweep(self):
        sizes = [16384, 65536]
        clean = SweepCampaign(**SETTINGS).run("l1_size", sizes)

        faulted_campaign = SweepCampaign(
            workers=2,
            fault_plan=FaultPlan.parse("crash@1"),
            **SETTINGS,
        )
        faulted = faulted_campaign.run("l1_size", sizes)

        assert faulted.tiers == ("STRUCTURAL",) * 2
        for clean_point, faulted_point in zip(clean.points, faulted.points):
            assert _point_fields(clean_point) == _point_fields(faulted_point)
        assert faulted.report is not None
        assert faulted.report.degraded  # the crash was seen, not hidden
