"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

WINDOW_ARGS = ["--window", "8000", "--seed", "1"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "jess"])
        assert args.benchmark == "jess"
        assert args.disk == 1
        assert args.cpu == "mxs"
        assert args.idle_policy == "busywait"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "mpegaudio"])

    def test_disk_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "jess", "--disk", "7"])

    def test_thresholds_repeatable(self):
        args = build_parser().parse_args(
            ["disk-study", "compress", "--threshold", "1.5",
             "--threshold", "3.0"])
        assert args.threshold == [1.5, 3.0]


class TestCommands:
    def test_validate(self, capsys):
        assert main(["validate", *WINDOW_ARGS]) == 0
        out = capsys.readouterr().out
        assert "25.3" in out

    def test_run_prints_report(self, capsys):
        assert main(["run", "jess", "--disk", "2", *WINDOW_ARGS]) == 0
        out = capsys.readouterr().out
        assert "mode breakdown" in out
        assert "utlb" in out
        assert "power budget" in out
        assert "idle-only" in out

    def test_run_halt_policy(self, capsys):
        assert main(["run", "jess", "--disk", "2", "--idle-policy", "halt",
                     *WINDOW_ARGS]) == 0
        assert "jess" in capsys.readouterr().out

    def test_run_exports(self, tmp_path, capsys):
        log_path = tmp_path / "log.csv"
        trace_path = tmp_path / "trace.csv"
        assert main(["run", "db", "--export-log", str(log_path),
                     "--export-trace", str(trace_path), *WINDOW_ARGS]) == 0
        assert log_path.exists()
        assert trace_path.exists()
        assert log_path.read_text().startswith("start_s,")

    def test_services(self, capsys):
        assert main(["services", "--invocations", "10", *WINDOW_ARGS]) == 0
        out = capsys.readouterr().out
        assert "utlb" in out
        assert "demand_zero" in out

    def test_disk_study_with_custom_threshold(self, capsys):
        assert main(["disk-study", "db", "--threshold", "1.0",
                     *WINDOW_ARGS]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "spindown-2s" in out
        assert "custom-1s" in out

    def test_checkpoint_workflow(self, tmp_path, capsys):
        path = tmp_path / "ck.json"
        assert main(["checkpoint", "db", "--out", str(path),
                     "--window", "8000", "--seed", "1"]) == 0
        assert path.exists()
        # Re-use it from `run`.
        assert main(["run", "db", "--checkpoint", str(path),
                     *WINDOW_ARGS]) == 0
        out = capsys.readouterr().out
        assert "profiles loaded" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.txt"
        assert main(["report", "db", "--disk", "2", "--out", str(path),
                     *WINDOW_ARGS]) == 0
        text = path.read_text()
        assert "Mode breakdown (Table 2)" in text
        assert "Power budget" in text

    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity", "tlb_entries", "32", "128",
                     "--benchmark", "db", "--window", "8000"]) == 0
        out = capsys.readouterr().out
        assert "sweep of tlb_entries" in out
        assert "best EDP" in out

    def test_checkpoint_created_when_missing(self, tmp_path, capsys):
        path = tmp_path / "fresh.json"
        assert main(["run", "db", "--checkpoint", str(path),
                     *WINDOW_ARGS]) == 0
        out = capsys.readouterr().out
        assert "will create it" in out
        assert path.exists()
