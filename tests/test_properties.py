"""Broad hypothesis property tests across the library."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    CacheConfig,
    Technology,
    disk_configuration,
)
from repro.disk import AdaptiveSpinDownDisk, PowerManagedDisk
from repro.isa import OpClass, copy_loop, spin_loop
from repro.power import ArrayEnergyModel, CacheEnergyModel, CAMEnergyModel
from repro.stats import TimingTree


class TestCacheEnergyProperties:
    @given(
        size_kb=st.sampled_from([4, 8, 16, 32, 64, 128, 512, 1024]),
        line=st.sampled_from([32, 64, 128]),
        assoc=st.sampled_from([1, 2, 4]),
        output_bits=st.sampled_from([32, 64, 128, 256]),
    )
    @settings(max_examples=60, deadline=None)
    def test_energies_positive_and_bounded(self, size_kb, line, assoc,
                                           output_bits):
        config = CacheConfig(name="h", size_bytes=size_kb * 1024,
                             line_bytes=line, associativity=assoc,
                             latency_cycles=1)
        model = CacheEnergyModel(config, output_bits=output_bits)
        read = model.read_energy_j()
        write = model.write_energy_j()
        assert 0 < read < 1e-6   # sub-microjoule per access, always
        assert 0 < write < 1e-6
        breakdown = model.breakdown()
        assert breakdown.total_j == pytest.approx(read)

    @given(st.sampled_from([4, 8, 16, 32, 64, 128]))
    @settings(max_examples=20, deadline=None)
    def test_doubling_size_never_cheapens_access(self, size_kb):
        def energy(kb):
            config = CacheConfig(name="h", size_bytes=kb * 1024,
                                 line_bytes=64, associativity=2,
                                 latency_cycles=1)
            return CacheEnergyModel(config, output_bits=64).read_energy_j()

        assert energy(2 * size_kb) >= energy(size_kb)


class TestArrayProperties:
    @given(rows=st.integers(1, 4096), bits=st.integers(1, 256))
    @settings(max_examples=60, deadline=None)
    def test_array_energy_positive(self, rows, bits):
        model = ArrayEnergyModel("h", rows=rows, bits_per_row=bits)
        assert model.access_energy_j() > 0
        assert model.access_energy_j(write=True) > 0
        assert model.latch_bits == rows * bits

    @given(entries=st.integers(1, 512), tag=st.integers(1, 64),
           data=st.integers(0, 128))
    @settings(max_examples=60, deadline=None)
    def test_cam_energy_positive(self, entries, tag, data):
        model = CAMEnergyModel("h", entries=entries, tag_bits=tag,
                               data_bits=data)
        assert model.search_energy_j() > 0
        assert model.write_energy_j() > 0


class TestTechnologyProperties:
    @given(vdd=st.floats(0.5, 5.0), cap=st.floats(1e-15, 1e-9))
    @settings(max_examples=60, deadline=None)
    def test_switching_energy_quadratic_in_vdd(self, vdd, cap):
        tech = Technology(vdd=vdd)
        double = Technology(vdd=2 * vdd)
        assert double.switching_energy(cap) == pytest.approx(
            4 * tech.switching_energy(cap))


class TestDiskProperties:
    @given(
        threshold=st.floats(0.3, 20.0),
        gaps=st.lists(st.floats(0.05, 30.0), min_size=1, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_fixed_vs_adaptive_both_consistent(self, threshold, gaps):
        from repro.config import DiskPowerPolicy

        fixed = PowerManagedDisk(
            DiskPowerPolicy(name="h", spindown_threshold_s=threshold), seed=5)
        adaptive = AdaptiveSpinDownDisk(max(0.5, min(threshold, 60.0)), seed=5)
        for disk in (fixed, adaptive):
            t = 0.0
            for gap in gaps:
                result = disk.request(t, 8192)
                t = result.completion_s + gap
            disk.finish(t)
            # Energy equals the mode-time integral.
            from repro.config import MK3003MAN_POWER_W, DiskMode

            expected = sum(
                disk.energy.time_in_mode_s[mode] * MK3003MAN_POWER_W[mode]
                for mode in DiskMode)
            assert disk.energy.energy_j == pytest.approx(expected, rel=1e-9)
            # History is gapless.
            for (s0, e0, _), (s1, _e1, _m) in zip(disk.history,
                                                  disk.history[1:]):
                assert e0 == pytest.approx(s1, abs=1e-9)

    @given(st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_conventional_disk_energy_is_linear_in_time(self, extra_s):
        disk = PowerManagedDisk(disk_configuration(1), seed=2)
        disk.request(0.1, 4096)
        base = disk.energy.energy_j
        disk.finish(disk.clock_s + extra_s)
        assert disk.energy.energy_j == pytest.approx(base + extra_s * 3.2)


class TestStreamHelperProperties:
    @given(spins=st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_spin_loop_shape_invariants(self, spins):
        instrs = list(spin_loop(0x8000_0000, 0x8000_4000, spins))
        branches = [i for i in instrs if i.op is OpClass.BRANCH]
        assert len(branches) == spins
        assert sum(1 for b in branches if not b.taken) == 1
        assert not branches[-1].taken
        # Static PCs form one fixed loop body.
        assert len({i.pc for i in instrs}) == len(instrs) // spins

    @given(nbytes=st.integers(1, 1 << 16))
    @settings(max_examples=30, deadline=None)
    def test_copy_loop_moves_every_byte(self, nbytes):
        instrs = list(copy_loop(0x8000_0000, 0x1000, 0x9000, nbytes, word=8))
        loads = [i for i in instrs if i.op is OpClass.LOAD]
        stores = [i for i in instrs if i.op is OpClass.STORE]
        assert len(loads) == len(stores) == (nbytes + 7) // 8
        assert len(loads) * 8 >= nbytes


class TestTimingTreeProperties:
    @given(st.lists(
        st.tuples(st.sampled_from(["kernel", "user", "utlb", "read"]),
                  st.floats(0.0, 1e6)),
        min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_root_equals_sum_of_records(self, records):
        tree = TimingTree()
        total = 0.0
        for name, cycles in records:
            tree.record((name,), cycles)
            total += cycles
        assert tree.root.cycles == pytest.approx(total)
        children = sum(node.cycles for node in tree.root.children.values())
        assert children == pytest.approx(total)

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_balanced_enter_exit_always_legal(self, names):
        tree = TimingTree()
        stack = []
        for name in names:
            tree.enter(name)
            stack.append(name)
            tree.accrue(1.0)
        while stack:
            tree.exit(stack.pop())
        assert tree.current_path == ("root",)
        assert tree.root.cycles == pytest.approx(len(names))


class TestBatchedMipsyEquivalence:
    """The batched SoA engine (repro.cpu.batch) advances many runs in
    lockstep; every lane must be bit-identical to a fresh scalar
    Profiler run of the same (spec, config, window, seed)."""

    pytestmark = pytest.mark.skipif(
        "not __import__('repro.cpu.batch', fromlist=['x']).batched_execution()",
        reason="batched execution disabled (REPRO_PURE_PYTHON or no numpy)",
    )

    @staticmethod
    def _scalar(name, config, window, seed):
        import pickle

        from repro.core.profiles import Profiler
        from repro.workloads.specjvm98 import benchmark

        profile = Profiler(
            config=config, cpu_model="mipsy",
            window_instructions=window, seed=seed,
        ).profile_benchmark(benchmark(name))
        return pickle.dumps(profile)

    @staticmethod
    def _batched(tasks):
        import pickle

        from repro.cpu.batch import profile_benchmarks_batched

        return [pickle.dumps(p) for p in profile_benchmarks_batched(tasks)]

    @given(
        seed=st.integers(0, 2**16),
        window=st.sampled_from([1500, 2000, 3000]),
        names=st.lists(
            st.sampled_from(["jess", "db", "compress", "jack"]),
            min_size=1, max_size=3, unique=True,
        ),
    )
    @settings(max_examples=6, deadline=None)
    def test_bit_identical_across_seeds_and_windows(self, seed, window,
                                                    names):
        from repro.config.system import SystemConfig
        from repro.cpu.batch import BatchTask
        from repro.workloads.specjvm98 import benchmark

        config = SystemConfig.table1()
        tasks = [
            BatchTask(spec=benchmark(name), config=config,
                      window_instructions=window, seed=seed)
            for name in names
        ]
        for name, blob in zip(names, self._batched(tasks)):
            assert blob == self._scalar(name, config, window, seed), name

    @given(
        windows=st.lists(
            st.sampled_from([1200, 1800, 2600, 4000]),
            min_size=2, max_size=5,
        ),
    )
    @settings(max_examples=4, deadline=None)
    def test_ragged_batch_shapes(self, windows):
        """Lanes with different windows (and seeds) retire at different
        lockstep steps; masking must keep every lane exact."""
        from repro.config.system import SystemConfig
        from repro.cpu.batch import BatchTask
        from repro.workloads.specjvm98 import benchmark

        config = SystemConfig.table1()
        names = ["jess", "db", "javac", "mtrt", "jack"]
        tasks = [
            BatchTask(spec=benchmark(names[i % len(names)]), config=config,
                      window_instructions=window, seed=i)
            for i, window in enumerate(windows)
        ]
        for task, blob in zip(tasks, self._batched(tasks)):
            assert blob == self._scalar(
                task.spec.name, config, task.window_instructions, task.seed
            ), (task.spec.name, task.window_instructions, task.seed)

    def test_hardware_tlb_lane_uses_general_path(self):
        """A hardware-refill TLB lane forces the general step path (the
        fast path requires every TLB to be software-managed); both
        paths must stay exact, also when mixed in one batch."""
        import dataclasses

        from repro.config.system import SystemConfig
        from repro.cpu.batch import BatchTask
        from repro.workloads.specjvm98 import benchmark

        base = SystemConfig.table1()
        hw = dataclasses.replace(
            base, tlb=dataclasses.replace(base.tlb, software_managed=False)
        )
        tasks = [
            BatchTask(spec=benchmark("jess"), config=hw,
                      window_instructions=2000, seed=5),
            BatchTask(spec=benchmark("db"), config=base,
                      window_instructions=2000, seed=5),
        ]
        blobs = self._batched(tasks)
        assert blobs[0] == self._scalar("jess", hw, 2000, 5)
        assert blobs[1] == self._scalar("db", base, 2000, 5)


class TestBatchedExecutionGate:
    def test_pure_python_env_forces_scalar(self, monkeypatch):
        import repro.cpu.batch as batch

        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        assert not batch.batched_execution()
        with pytest.raises(RuntimeError):
            from repro.config.system import SystemConfig
            from repro.workloads.specjvm98 import benchmark

            batch.profile_benchmarks_batched([
                batch.BatchTask(spec=benchmark("jess"),
                                config=SystemConfig.table1())
            ])
        monkeypatch.setenv("REPRO_PURE_PYTHON", "0")
        assert batch.batched_execution() == (batch._np is not None)

    def test_pure_python_env_forces_dict_issue_tables(self, monkeypatch):
        import repro.cpu.mxs as mxs
        from repro.config.system import SystemConfig

        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        assert not mxs.vectorized_issue()
        cpu = mxs.MXSProcessor(SystemConfig.table1())
        assert cpu._vec_issue is None
        monkeypatch.delenv("REPRO_PURE_PYTHON")
        cpu = mxs.MXSProcessor(SystemConfig.table1())
        assert (cpu._vec_issue is not None) == (mxs._np is not None)


class TestMxsIssueRingEquivalence:
    """The tag-validated ring tables must time identically to the dict
    tables they replace (REPRO_PURE_PYTHON=1 selects the dicts)."""

    pytestmark = pytest.mark.skipif(
        "not __import__('repro.cpu.mxs', fromlist=['x']).vectorized_issue()",
        reason="numpy issue tables disabled (REPRO_PURE_PYTHON or no numpy)",
    )

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=4, deadline=None)
    def test_ring_tables_bit_identical_to_dicts(self, seed):
        import os
        import pickle

        from repro.core.profiles import Profiler
        from repro.workloads.specjvm98 import benchmark

        def run():
            return pickle.dumps(
                Profiler(cpu_model="mxs", window_instructions=2000,
                         seed=seed).profile_benchmark(benchmark("jess"))
            )

        vectorized = run()
        os.environ["REPRO_PURE_PYTHON"] = "1"
        try:
            assert run() == vectorized
        finally:
            os.environ.pop("REPRO_PURE_PYTHON", None)
