"""Tests for the operating-system model: services, kernel, scheduler."""

import collections

import pytest

from repro.config import SystemConfig
from repro.cpu import MXSProcessor
from repro.isa import CodeSignature, OpClass, SyntheticCodeGenerator
from repro.kernel import (
    EXTERNAL_SERVICES,
    INTERNAL_SERVICES,
    KERNEL_SERVICES,
    SYNC_LABEL,
    ExecutionMode,
    InterleavedWorkload,
    Kernel,
    KernelServices,
    ServiceRate,
    SyscallPlan,
    idle_loop,
    mode_of_label,
)
from repro.mem import KSEG_BASE, MemoryHierarchy
from repro.stats.counters import AccessCounters


@pytest.fixture
def config():
    return SystemConfig.table1()


@pytest.fixture
def services(config):
    return KernelServices(config, seed=1)


class TestModes:
    def test_label_mapping(self):
        assert mode_of_label(None) is ExecutionMode.USER
        assert mode_of_label("idle") is ExecutionMode.IDLE
        assert mode_of_label(SYNC_LABEL) is ExecutionMode.SYNC
        assert mode_of_label("utlb") is ExecutionMode.KERNEL
        assert mode_of_label("read") is ExecutionMode.KERNEL

    def test_all_services_classified(self):
        for service in KERNEL_SERVICES:
            assert (service in INTERNAL_SERVICES) != (service in EXTERNAL_SERVICES)


class TestServiceBodies:
    def test_all_table4_services_buildable(self, services, config):
        hierarchy = MemoryHierarchy(config, AccessCounters())
        for name in KERNEL_SERVICES:
            body = list(services.invoke(name, hierarchy=hierarchy))
            assert body, name
            assert body[-1].op is OpClass.ERET, name
            assert all(i.service == name for i in body), name
            assert all(i.pc >= KSEG_BASE for i in body), name

    def test_unknown_service_rejected(self, services):
        with pytest.raises(KeyError):
            services.invoke("frobnicate")

    def test_utlb_is_short_and_not_data_intensive(self, services):
        """The key Figure 8 property: utlb barely touches the D-side.

        The body is the full trap path (context save, one PTE load,
        entry formatting, restore): ~50 instructions, a single load."""
        body = list(services.utlb(0x1234_5678))
        loads = sum(1 for i in body if i.op.is_memory)
        assert len(body) <= 60
        assert loads <= 2

    def test_demand_zero_writes_a_full_page(self, services):
        body = list(services.demand_zero())
        stores = [i for i in body if i.op is OpClass.STORE]
        assert len(stores) == 4096 // 8

    def test_demand_zero_fixed_work(self, services):
        a = len(list(services.demand_zero()))
        b = len(list(services.demand_zero()))
        assert a == b

    def test_read_work_scales_with_size(self, services):
        small = len(list(services.read(256)))
        large = len(list(services.read(8192)))
        assert large > small * 3

    def test_read_is_data_dependent(self, services):
        """Externally-invoked services vary per invocation (Table 5)."""
        lengths = {len(list(services.read())) for _ in range(12)}
        assert len(lengths) > 1

    def test_open_scales_with_path_depth(self, services):
        shallow = len(list(services.open(1)))
        deep = len(list(services.open(8)))
        assert deep > shallow * 2

    def test_open_rejects_empty_path(self, services):
        with pytest.raises(ValueError):
            list(services.open(0))

    def test_cacheflush_applies_architectural_flush(self, services, config):
        hierarchy = MemoryHierarchy(config, AccessCounters())
        hierarchy.fetch(KSEG_BASE)
        assert hierarchy.fetch(KSEG_BASE).latency == 0
        for _ in services.cacheflush(hierarchy):
            pass
        assert hierarchy.fetch(KSEG_BASE).latency > 0

    def test_sync_section_uses_sync_label(self, services):
        body = list(services.sync_section(spins=4))
        assert all(i.service == SYNC_LABEL for i in body)
        assert any(i.op is OpClass.SYNC for i in body)

    def test_deterministic_per_seed(self, config):
        a = list(KernelServices(config, seed=9).read())
        b = list(KernelServices(config, seed=9).read())
        assert a == b


class TestKernelFacade:
    def _kernel(self, config):
        hierarchy = MemoryHierarchy(config, AccessCounters())
        return Kernel(config, hierarchy, file_cache_pages=64, seed=3)

    def test_read_hits_warm_file_cache(self, config):
        kernel = self._kernel(config)
        kernel.file_cache.warm(1, 64 * 1024)
        result = kernel.sys_read(1, 0, 4096)
        assert result.disk_bytes == 0

    def test_read_cold_file_goes_to_disk(self, config):
        kernel = self._kernel(config)
        result = kernel.sys_read(5, 0, 8192)
        assert result.disk_bytes >= 8192

    def test_read_caches_for_next_time(self, config):
        kernel = self._kernel(config)
        kernel.sys_read(5, 0, 4096)
        again = kernel.sys_read(5, 0, 4096)
        assert again.disk_bytes == 0

    def test_write_is_write_behind(self, config):
        kernel = self._kernel(config)
        result = kernel.sys_write(1, 0, 4096)
        assert result.disk_bytes == 0

    def test_invocations_counted(self, config):
        kernel = self._kernel(config)
        kernel.sys_read(1, 0, 512)
        kernel.sys_open()
        for _ in kernel.page_fault_zero():
            pass
        assert kernel.invocations["read"] == 1
        assert kernel.invocations["open"] == 1
        assert kernel.invocations["demand_zero"] == 1

    def test_utlb_handler_counted(self, config):
        kernel = self._kernel(config)
        list(kernel.utlb_handler(0x1000))
        assert kernel.invocations["utlb"] == 1

    def test_flush_caches_passes_hierarchy(self, config):
        hierarchy = MemoryHierarchy(config, AccessCounters())
        kernel = Kernel(config, hierarchy)
        hierarchy.fetch(KSEG_BASE)
        for _ in kernel.flush_caches():
            pass
        assert hierarchy.fetch(KSEG_BASE).latency > 0


class TestInterleavedWorkload:
    def _build(self, config, **kwargs):
        hierarchy = MemoryHierarchy(config, AccessCounters())
        kernel = Kernel(config, hierarchy, seed=2)
        for file_id in range(4):
            kernel.file_cache.warm(file_id, 256 * 1024)
        sig = CodeSignature(name="t")
        user = SyntheticCodeGenerator(sig, seed=2)
        return kernel, InterleavedWorkload(user, kernel, seed=5, **kwargs)

    def test_pure_user_stream_passthrough(self, config):
        _, workload = self._build(config)
        instrs = [instr for _, instr in zip(range(2000), iter(workload))]
        assert all(i.service is None for i in instrs)

    def test_service_rate_injection(self, config):
        kernel, workload = self._build(
            config, service_rates=[ServiceRate("demand_zero", 500)])
        labels = collections.Counter(
            i.service for _, i in zip(range(40000), iter(workload)))
        assert labels["demand_zero"] > 0
        assert kernel.invocations["demand_zero"] >= 3

    def test_syscalls_injected_with_marker(self, config):
        _, workload = self._build(
            config, syscalls=SyscallPlan(mean_gap_instructions=800))
        ops = [i.op for _, i in zip(range(20000), iter(workload))]
        assert OpClass.SYSCALL in ops

    def test_sync_injection(self, config):
        _, workload = self._build(config, sync_mean_gap=700)
        labels = {i.service for _, i in zip(range(20000), iter(workload))}
        assert SYNC_LABEL in labels

    def test_deterministic(self, config):
        def collect():
            _, workload = self._build(
                config, service_rates=[ServiceRate("vfault", 900)],
                sync_mean_gap=1500)
            return [i for _, i in zip(range(5000), iter(workload))]

        assert collect() == collect()

    def test_service_rate_validation(self):
        with pytest.raises(ValueError):
            ServiceRate("utlb", 0)

    def test_syscall_plan_validation(self):
        with pytest.raises(ValueError):
            SyscallPlan(mean_gap_instructions=0)
        with pytest.raises(ValueError):
            SyscallPlan(mean_gap_instructions=100, read_weight=0,
                        write_weight=0, open_weight=0)


class TestIdleLoop:
    def test_shape(self):
        instrs = list(idle_loop(10))
        assert all(i.service == "idle" for i in instrs)
        assert all(i.pc >= KSEG_BASE for i in instrs)
        branches = [i for i in instrs if i.op is OpClass.BRANCH]
        assert [b.taken for b in branches] == [True] * 9 + [False]

    def test_loads_poll_fixed_addresses(self):
        addresses = {i.address for i in idle_loop(50) if i.op is OpClass.LOAD}
        assert len(addresses) == 2

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            list(idle_loop(0))


class TestServiceInstructionLevelBehaviour:
    def test_utlb_has_lowest_power_profile(self, config):
        """Run utlb and read on the CPU: utlb must exercise fewer units
        per cycle (Figure 8's ordering)."""
        hierarchy = MemoryHierarchy(config, AccessCounters())
        kernel = Kernel(config, hierarchy, seed=4)
        cpu = MXSProcessor(config, hierarchy, trap_client=kernel)
        for _ in range(4):  # warm
            cpu.run(kernel.invoke_service("utlb"))
            cpu.run(kernel.invoke_service("read"))
        utlb = cpu.run(kernel.invoke_service("utlb"))
        read = cpu.run(kernel.invoke_service("read"))
        utlb_l1d_rate = utlb.total_counters().l1d_access / utlb.cycles
        read_l1d_rate = read.total_counters().l1d_access / read.cycles
        assert utlb_l1d_rate < read_l1d_rate
