"""Tests for the SPEC JVM98 workload definitions."""

import dataclasses

import pytest

from repro.isa import CodeSignature
from repro.workloads import (
    BENCHMARK_NAMES,
    DiskEvent,
    JVMPhases,
    PhaseSpec,
    all_benchmarks,
    benchmark,
    gc_signature,
    startup_signature,
)
from repro.workloads.specjvm98 import (
    PAPER_RUN_CYCLES,
    PAPER_TABLE4_INVOCATIONS,
)


class TestRegistry:
    def test_six_benchmarks_in_paper_order(self):
        assert BENCHMARK_NAMES == ("compress", "jess", "db", "javac", "mtrt", "jack")
        assert [spec.name for spec in all_benchmarks()] == list(BENCHMARK_NAMES)

    def test_mpegaudio_excluded(self):
        with pytest.raises(KeyError):
            benchmark("mpegaudio")

    def test_lookup_by_name(self):
        assert benchmark("jess").name == "jess"


class TestSpecs:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_phase_fractions_sum_to_one(self, name):
        spec = benchmark(name)
        total = sum(p.compute_fraction for p in spec.phases.phases)
        assert total == pytest.approx(1.0)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_three_jvm_phases(self, name):
        assert benchmark(name).phases.names == ("startup", "steady", "gc")

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_startup_is_cold(self, name):
        spec = benchmark(name)
        assert spec.phases.phase("startup").cold_caches
        assert not spec.phases.phase("steady").cold_caches

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_disk_events_ordered_and_in_range(self, name):
        spec = benchmark(name)
        times = [e.progress_s for e in spec.disk_events]
        assert times == sorted(times)
        assert all(0 <= t < spec.compute_duration_s for t in times)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_startup_burst_exists(self, name):
        """Every benchmark loads classes from disk at the start
        (the Figures 3/4 initial idle period)."""
        spec = benchmark(name)
        early = [e for e in spec.disk_events if e.progress_s < 1.0]
        assert len(early) >= 5

    def test_mtrt_is_the_fp_benchmark(self):
        assert benchmark("mtrt").steady_signature.fp_fraction > 0.1
        assert benchmark("compress").steady_signature.fp_fraction == 0.0

    def test_compress_has_least_kernel_activity(self):
        """Table 2: compress has by far the lowest kernel share, so its
        scheduled-service densities are the lowest."""
        def total_density(name):
            return sum(benchmark(name).service_densities().values())

        compress = total_density("compress")
        for other in ("jess", "db", "javac", "jack"):
            assert total_density(other) > compress


class TestSection4GapStructure:
    """The spin-down narrative of Figure 9 is encoded in the specs."""

    @staticmethod
    def _steady_gaps(spec):
        times = [e.progress_s for e in spec.disk_events]
        gaps = [b - a for a, b in zip(times, times[1:])]
        tail = spec.compute_duration_s - times[-1]
        return gaps + [tail]

    def test_jess_and_db_never_idle_long_enough(self):
        for name in ("jess", "db"):
            assert max(self._steady_gaps(benchmark(name))) < 2.0

    def test_compress_gaps_defeat_two_second_threshold(self):
        gaps = self._steady_gaps(benchmark("compress"))
        bad = [g for g in gaps if 2.0 < g < 4.0]
        assert len(bad) >= 2  # multiple spin-down/spin-up pairs at 2 s

    def test_javac_gaps_defeat_two_second_threshold_only(self):
        gaps = self._steady_gaps(benchmark("javac"))
        assert any(2.0 < g < 4.0 for g in gaps)
        assert not any(g > 4.0 for g in gaps)

    def test_jack_has_one_gap_eliminated_at_four_seconds(self):
        gaps = self._steady_gaps(benchmark("jack"))
        between = [g for g in gaps if 2.0 < g < 4.0]
        beyond = [g for g in gaps if g > 4.0]
        assert len(between) >= 1
        assert len(beyond) >= 1

    def test_mtrt_gaps_exceed_both_thresholds_with_margin(self):
        """Both thresholds spin down and fully reach STANDBY before the
        next access: identical idle cycles, higher energy at 4 s."""
        gaps = self._steady_gaps(benchmark("mtrt"))
        long = [g for g in gaps if g > 9.0]
        assert len(long) >= 2


class TestServiceDensities:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_densities_derived_from_table4(self, name):
        spec = benchmark(name)
        densities = spec.service_densities()
        assert "utlb" not in densities  # emergent, never scheduled
        table = PAPER_TABLE4_INVOCATIONS[name]
        for service, density in densities.items():
            expected = table[service] / PAPER_RUN_CYCLES[name]
            assert density == pytest.approx(expected)

    def test_bsd_only_in_jess_and_jack(self):
        for name in BENCHMARK_NAMES:
            has_bsd = "BSD" in benchmark(name).service_densities()
            assert has_bsd == (name in ("jess", "jack"))

    def test_du_poll_only_in_db(self):
        for name in BENCHMARK_NAMES:
            has = "du_poll" in benchmark(name).service_densities()
            assert has == (name == "db")

    def test_xstat_only_in_javac(self):
        for name in BENCHMARK_NAMES:
            has = "xstat" in benchmark(name).service_densities()
            assert has == (name == "javac")


class TestDerivedSignatures:
    def test_gc_signature_degrades_locality(self):
        base = benchmark("jess").steady_signature
        gc = gc_signature(base)
        assert gc.temporal_locality < base.temporal_locality
        assert gc.load_fraction > base.load_fraction
        assert gc.dependency_distance < base.dependency_distance

    def test_startup_signature_expands_code(self):
        base = benchmark("jess").steady_signature
        startup = startup_signature(base)
        assert startup.code_footprint_bytes >= base.code_footprint_bytes
        assert startup.hot_code_fraction < base.hot_code_fraction


class TestValidation:
    def test_disk_event_validation(self):
        with pytest.raises(ValueError):
            DiskEvent(progress_s=-1.0, nbytes=100)
        with pytest.raises(ValueError):
            DiskEvent(progress_s=0.0, nbytes=0)

    def test_spec_rejects_unordered_events(self):
        spec = benchmark("jess")
        with pytest.raises(ValueError):
            dataclasses.replace(
                spec,
                disk_events=(DiskEvent(2.0, 100), DiskEvent(1.0, 100)),
            )

    def test_spec_rejects_events_beyond_duration(self):
        spec = benchmark("jess")
        with pytest.raises(ValueError):
            dataclasses.replace(
                spec,
                disk_events=(DiskEvent(spec.compute_duration_s + 1.0, 100),),
            )

    def test_phases_reject_bad_fractions(self):
        sig = CodeSignature(name="x")
        with pytest.raises(ValueError):
            JVMPhases(phases=(
                PhaseSpec(name="a", compute_fraction=0.5, signature=sig),
                PhaseSpec(name="b", compute_fraction=0.3, signature=sig),
            ))

    def test_phases_reject_duplicate_names(self):
        sig = CodeSignature(name="x")
        with pytest.raises(ValueError):
            JVMPhases(phases=(
                PhaseSpec(name="a", compute_fraction=0.5, signature=sig),
                PhaseSpec(name="a", compute_fraction=0.5, signature=sig),
            ))

    def test_phase_lookup(self):
        spec = benchmark("db")
        assert spec.phases.phase("gc").name == "gc"
        with pytest.raises(KeyError):
            spec.phases.phase("missing")
