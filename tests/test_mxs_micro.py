"""Micro-architecture tests for the MXS timing model.

Hand-built instruction sequences isolate one structural constraint at a
time: commit bandwidth, window occupancy, LSQ occupancy, functional-
unit contention, fetch-group breaks, serializing instructions, and
load-use latency.
"""

import dataclasses

import pytest

from repro.config import SystemConfig
from repro.cpu import MXSProcessor
from repro.isa import Instruction, OpClass
from repro.mem import KSEG_BASE


def _config(**core_overrides) -> SystemConfig:
    base = SystemConfig.table1()
    if core_overrides:
        return dataclasses.replace(
            base, core=dataclasses.replace(base.core, **core_overrides))
    return base


def _alus(count, pc=KSEG_BASE, independent=True):
    for i in range(count):
        srcs = (0, 0) if independent else (8,)
        yield Instruction(pc=pc + 4 * (i % 64), op=OpClass.IALU,
                          dest=8 + (i % 8 if independent else 0), srcs=srcs)


def _ipc(config, stream):
    cpu = MXSProcessor(config)
    stats = cpu.run(stream)
    return stats.ipc


class TestIssueAndCommitBandwidth:
    def test_int_alu_count_caps_throughput(self):
        two = _ipc(_config(int_alus=2), _alus(6000))
        four = _ipc(_config(int_alus=4), _alus(6000))
        assert two <= 2.05
        assert four > two * 1.3

    def test_commit_width_caps_throughput(self):
        narrow = _ipc(_config(commit_width=1, int_alus=4, issue_width=8,
                              fetch_width=8, decode_width=8), _alus(6000))
        assert narrow <= 1.05

    def test_issue_width_caps_throughput(self):
        narrow = _ipc(_config(issue_width=1, int_alus=4), _alus(6000))
        assert narrow <= 1.05


class TestWindowAndLSQ:
    def test_small_window_hurts_latency_tolerance(self):
        """A long-latency op followed by independent work: a big window
        hides the latency, a tiny one cannot."""

        def workload():
            for i in range(800):
                yield Instruction(pc=KSEG_BASE + 4 * (i % 8) * 4,
                                  op=OpClass.IMUL, dest=30, srcs=(0, 0))
                for j in range(15):
                    yield Instruction(pc=KSEG_BASE + 4 * (64 + j),
                                      op=OpClass.IALU, dest=8 + j % 8,
                                      srcs=(0, 0))

        big = _ipc(_config(window_size=64), workload())
        tiny = _ipc(_config(window_size=4), workload())
        assert big > tiny

    def test_lsq_size_limits_memory_parallelism(self):
        def loads():
            for i in range(4000):
                yield Instruction(pc=KSEG_BASE + 4 * (i % 32),
                                  op=OpClass.LOAD, dest=8 + i % 8, srcs=(0,),
                                  address=KSEG_BASE + 0x100000 + (i % 64) * 8,
                                  size=8)

        large = _ipc(_config(lsq_size=32), loads())
        small = _ipc(_config(lsq_size=2), loads())
        assert large >= small


class TestFetchBehaviour:
    def test_taken_branches_break_fetch_groups(self):
        """A taken branch every 2 instructions halves effective fetch."""

        def branchy(taken):
            for i in range(6000):
                yield Instruction(pc=KSEG_BASE, op=OpClass.IALU,
                                  dest=8, srcs=(0, 0))
                yield Instruction(pc=KSEG_BASE + 4, op=OpClass.BRANCH,
                                  srcs=(0,), target=KSEG_BASE,
                                  taken=taken and i != 5999)

        # Wide back end so the front end is the bottleneck.
        wide = dict(int_alus=4, issue_width=8, decode_width=8, commit_width=8)
        with_taken = _ipc(_config(**wide), branchy(True))
        without = _ipc(_config(**wide), branchy(False))
        assert without > with_taken * 1.3

    def test_syscall_serializes(self):
        def with_syscalls():
            for i in range(2000):
                yield Instruction(pc=KSEG_BASE + 4 * (i % 16), op=OpClass.IALU,
                                  dest=8, srcs=(0, 0))
                if i % 4 == 3:
                    yield Instruction(pc=KSEG_BASE + 256, op=OpClass.SYSCALL)

        plain = _ipc(_config(), _alus(2500))
        serialized = _ipc(_config(), with_syscalls())
        assert serialized < plain * 0.6

    def test_wrong_path_fetches_counted_on_mispredict(self):
        def alternating():
            for i in range(4000):
                yield Instruction(pc=KSEG_BASE + 64, op=OpClass.BRANCH,
                                  srcs=(0,), target=KSEG_BASE,
                                  taken=(i % 2 == 0))
                yield Instruction(pc=KSEG_BASE, op=OpClass.IALU,
                                  dest=8, srcs=(0, 0))

        cpu = MXSProcessor(_config())
        stats = cpu.run(alternating())
        totals = stats.total_counters()
        # Heavy misprediction: many more I-fetches than instructions.
        assert stats.branch.accuracy < 0.75
        assert totals.l1i_access > stats.instructions * 1.2


class TestLatencies:
    def test_load_use_latency_exceeds_alu(self):
        def chain(op):
            for i in range(3000):
                if op is OpClass.LOAD:
                    yield Instruction(pc=KSEG_BASE + 4 * (i % 16), op=op,
                                      dest=8, srcs=(8,),
                                      address=KSEG_BASE + 0x4000, size=8)
                else:
                    yield Instruction(pc=KSEG_BASE + 4 * (i % 16), op=op,
                                      dest=8, srcs=(8,))

        alu_chain = _ipc(_config(), chain(OpClass.IALU))
        load_chain = _ipc(_config(), chain(OpClass.LOAD))
        assert load_chain < alu_chain

    def test_fp_ops_slower_than_int(self):
        def chain(op):
            for i in range(3000):
                yield Instruction(pc=KSEG_BASE + 4 * (i % 16), op=op,
                                  dest=70, srcs=(70,))

        assert _ipc(_config(), chain(OpClass.FMUL)) < _ipc(
            _config(), chain(OpClass.IALU))

    def test_imul_unit_is_singular(self):
        def muls():
            for i in range(3000):
                yield Instruction(pc=KSEG_BASE + 4 * (i % 16), op=OpClass.IMUL,
                                  dest=8 + i % 8, srcs=(0, 0))

        assert _ipc(_config(), muls()) <= 1.05


class TestTrapMechanics:
    def test_nested_trap_is_an_error(self):
        """Kernel-space (KSEG) code must never TLB-miss; a trap handler
        that itself faults indicates a broken address layout."""
        from repro.cpu.interfaces import InlineRefillClient
        from repro.isa import Instruction as I

        class BadClient(InlineRefillClient):
            def utlb_handler(self, faulting_address):
                # Handler living in *user* space: its own fetch faults.
                return [I(pc=0x0050_0000, op=OpClass.IALU, dest=8,
                          service="utlb")]

        cpu = MXSProcessor(SystemConfig.table1(), trap_client=BadClient())
        stream = [I(pc=0x0040_0000, op=OpClass.IALU, dest=8)]
        with pytest.raises(RuntimeError, match="nested TLB miss"):
            cpu.run(iter(stream))

    def test_trap_counts_match_kernel_invocations(self):
        from repro.kernel import Kernel
        from repro.mem import MemoryHierarchy
        from repro.stats.counters import AccessCounters

        config = SystemConfig.table1()
        hierarchy = MemoryHierarchy(config, AccessCounters())
        kernel = Kernel(config, hierarchy)
        cpu = MXSProcessor(config, hierarchy, trap_client=kernel)

        def touch_pages(count):
            for page in range(count):
                yield Instruction(pc=0x0040_0000, op=OpClass.LOAD, dest=8,
                                  srcs=(0,), address=0x1000_0000 + page * 4096,
                                  size=8)

        stats = cpu.run(touch_pages(50))
        # 1 instruction-page miss + 50 data-page misses.
        assert stats.traps == 51
        assert kernel.invocations["utlb"] == 51
