"""Golden regression: the accounting pipeline is bit-identical.

``tests/data/golden_energy.json`` was recorded by
``scripts/golden_snapshot.py`` *before* the PowerComponent-registry
refactor.  Every per-benchmark, per-mode energy, every power-budget
entry, and every run total must match to the last bit — JSON floats
round-trip exactly, so plain ``==`` is the assertion.

If an *intentional* numerical change lands, regenerate with::

    PYTHONPATH=src python scripts/golden_snapshot.py
"""

import json
import pathlib

import pytest

from repro.core.softwatt import SoftWatt
from repro.power.registry import CATEGORIES

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_energy.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def results(golden):
    """One BenchmarkResult per golden entry, simulated fresh."""
    out = {}
    by_model: dict[str, list[str]] = {}
    for key in golden["benchmarks"]:
        cpu_model, name = key.split("/")
        by_model.setdefault(cpu_model, []).append(name)
    for cpu_model, names in by_model.items():
        softwatt = SoftWatt(
            cpu_model=cpu_model,
            window_instructions=golden["window_instructions"],
            seed=golden["seed"],
            use_cache=False,
        )
        for name in names:
            out[f"{cpu_model}/{name}"] = softwatt.run(
                name, disk=golden["disk"]
            )
    return out


def test_golden_covers_both_models_and_all_benchmarks(golden):
    keys = golden["benchmarks"].keys()
    assert len(keys) == 12
    assert {key.split("/")[0] for key in keys} == {"mxs", "mipsy"}


def test_mode_energies_bit_identical(golden, results):
    for key, expected in golden["benchmarks"].items():
        modes = results[key].mode_breakdown()
        actual = {mode.value: row.energy_j for mode, row in modes.items()}
        assert actual == expected["mode_energy_j"], key


def test_power_budget_bit_identical(golden, results):
    for key, expected in golden["benchmarks"].items():
        assert results[key].power_budget() == expected["budget_w"], key


def test_run_totals_bit_identical(golden, results):
    for key, expected in golden["benchmarks"].items():
        result = results[key]
        assert result.total_energy_j == expected["total_energy_j"], key
        assert result.disk_energy_j == expected["disk_energy_j"], key


def test_budget_order_follows_registry(results):
    for key, result in results.items():
        assert tuple(result.power_budget()) == CATEGORIES, key


def test_batched_prefetch_reproduces_golden_energies(golden):
    """End-to-end pin of the batched SoA engine: profiles prefetched in
    one lockstep pass must yield the exact golden run energies."""
    import repro.cpu.batch as batch

    if not batch.batched_execution():
        pytest.skip("batched execution disabled (REPRO_PURE_PYTHON/no numpy)")
    names = tuple(
        key.split("/")[1] for key in golden["benchmarks"]
        if key.startswith("mipsy/")
    )
    softwatt = SoftWatt(
        cpu_model="mipsy",
        window_instructions=golden["window_instructions"],
        seed=golden["seed"],
        use_cache=False,
    )
    assert SoftWatt.prefetch_profiles([softwatt], names, min_runs=2) == len(names)
    for name in names:
        result = softwatt.run(name, disk=golden["disk"])
        expected = golden["benchmarks"][f"mipsy/{name}"]
        assert result.total_energy_j == expected["total_energy_j"], name
        assert result.disk_energy_j == expected["disk_energy_j"], name
