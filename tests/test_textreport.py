"""Tests for the paper-data module and the text-report generator."""

import pytest

from repro import SoftWatt
from repro.core.textreport import render_run, render_suite
from repro.workloads import BENCHMARK_NAMES
from repro.workloads import paper_data


@pytest.fixture(scope="module")
def softwatt():
    return SoftWatt(window_instructions=10_000, seed=1)


@pytest.fixture(scope="module")
def result(softwatt):
    return softwatt.run("jess", disk=1)


class TestPaperData:
    def test_every_benchmark_covered(self):
        for table in (paper_data.TABLE2, paper_data.TABLE3,
                      paper_data.TABLE4_SHARES):
            assert set(table) == set(BENCHMARK_NAMES)

    def test_table2_rows_sum_to_100(self):
        for name, row in paper_data.TABLE2.items():
            cycles = (row.user_cycles + row.kernel_cycles + row.sync_cycles
                      + row.idle_cycles)
            energy = (row.user_energy + row.kernel_energy + row.sync_energy
                      + row.idle_energy)
            assert cycles == pytest.approx(100.0, abs=0.5), name
            assert energy == pytest.approx(100.0, abs=0.5), name

    def test_table4_utlb_dominates_everywhere(self):
        for name, shares in paper_data.TABLE4_SHARES.items():
            utlb_cycles, utlb_energy = shares["utlb"]
            assert utlb_cycles > 60.0, name
            assert utlb_energy < utlb_cycles, name

    def test_table5_internal_steadier_than_external(self):
        internal = max(paper_data.TABLE5[s][1]
                       for s in ("utlb", "demand_zero", "cacheflush"))
        external = min(paper_data.TABLE5[s][1]
                       for s in ("read", "write", "open"))
        assert internal < external

    def test_figure_shares_are_shares(self):
        for shares in (paper_data.FIGURE5_SHARES, paper_data.FIGURE7_SHARES):
            assert 95.0 <= sum(shares.values()) <= 115.0

    def test_validation_anchors(self):
        assert paper_data.PAPER_SOFTWATT_MAX_W < paper_data.R10000_DATASHEET_MAX_W


class TestRenderRun:
    def test_contains_all_sections(self, result):
        text = render_run(result)
        for section in ("Mode breakdown", "Cache references", "Kernel services",
                        "Power budget", "Power over time"):
            assert section in text

    def test_contains_paper_references(self, result):
        text = render_run(result)
        # jess's paper Table 2 user cycle share appears as a reference.
        assert "63.7" in text
        assert "utlb" in text

    def test_deterministic(self, result):
        assert render_run(result) == render_run(result)

    def test_custom_benchmark_renders_without_paper_data(self, softwatt):
        import dataclasses

        from repro.workloads import benchmark

        spec = dataclasses.replace(benchmark("db"), name="db-variant")
        text = render_run(softwatt.run(spec, disk=2))
        assert "db-variant" in text
        assert "Mode breakdown" in text


class TestRenderSuite:
    def test_summary_covers_all(self, softwatt):
        results = {name: softwatt.run(name, disk=2)
                   for name in ("jess", "db")}
        text = render_suite(results)
        assert "jess" in text
        assert "db" in text
        assert "Suite-average power budget" in text
        assert "disk" in text
