"""Tests for the disk subsystem: mechanism, state machine, power management."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    DiskMode,
    MK3003MAN_POWER_W,
    SPINDOWN_TIME_S,
    SPINUP_TIME_S,
    disk_configuration,
)
from repro.disk import (
    DiskEnergyAccountant,
    DiskMechanism,
    DiskStateMachine,
    IllegalDiskTransition,
    PowerManagedDisk,
    transition_time_s,
)


class TestMechanism:
    def test_zero_distance_seek_is_free(self):
        assert DiskMechanism().seek_time_s(0) == 0.0

    def test_seek_time_monotone_in_distance(self):
        mech = DiskMechanism()
        times = [mech.seek_time_s(d) for d in (1, 50, 400, 1000, 1961)]
        assert times == sorted(times)
        assert times[0] >= mech.geometry.min_seek_ms / 1e3

    def test_max_seek_bounded(self):
        mech = DiskMechanism()
        assert mech.seek_time_s(1961) <= mech.geometry.max_seek_ms / 1e3 * 1.001

    def test_seek_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            DiskMechanism().seek_time_s(-1)

    def test_request_timing_components(self):
        mech = DiskMechanism(seed=1)
        timing = mech.request_timing(64 * 1024, cylinder=500)
        assert timing.seek_s > 0
        assert timing.rotation_s == pytest.approx(60.0 / 5400.0 / 2.0)
        assert timing.transfer_s > 0
        assert timing.service_s == pytest.approx(
            timing.seek_s + timing.rotation_s + timing.transfer_s)

    def test_transfer_scales_with_bytes(self):
        mech = DiskMechanism(seed=1)
        small = mech.request_timing(4096, cylinder=100).transfer_s
        mech2 = DiskMechanism(seed=1)
        large = mech2.request_timing(1 << 20, cylinder=100).transfer_s
        assert large > small * 100

    def test_head_position_tracked(self):
        mech = DiskMechanism()
        mech.request_timing(4096, cylinder=700)
        assert mech.head_cylinder == 700

    def test_rejects_bad_cylinder(self):
        with pytest.raises(ValueError):
            DiskMechanism().request_timing(4096, cylinder=99999)

    def test_rejects_zero_bytes(self):
        with pytest.raises(ValueError):
            DiskMechanism().request_timing(0)


class TestStateMachine:
    def test_initial_mode_power(self):
        machine = DiskStateMachine(DiskMode.IDLE)
        assert machine.power_w() == pytest.approx(1.6)

    def test_figure2_legal_cycle(self):
        machine = DiskStateMachine(DiskMode.IDLE)
        for mode in (DiskMode.SEEK, DiskMode.ACTIVE, DiskMode.IDLE,
                     DiskMode.SPINDOWN, DiskMode.STANDBY, DiskMode.SPINUP,
                     DiskMode.ACTIVE):
            machine.transition(mode)
        assert machine.mode is DiskMode.ACTIVE
        assert machine.spinups == 1
        assert machine.spindowns == 1

    def test_illegal_transition_rejected(self):
        machine = DiskStateMachine(DiskMode.STANDBY)
        with pytest.raises(IllegalDiskTransition):
            machine.transition(DiskMode.ACTIVE)  # must spin up first

    def test_idle_to_active_requires_seek(self):
        machine = DiskStateMachine(DiskMode.IDLE)
        with pytest.raises(IllegalDiskTransition):
            machine.transition(DiskMode.ACTIVE)

    def test_sleep_via_command_only(self):
        machine = DiskStateMachine(DiskMode.IDLE)
        machine.transition(DiskMode.SLEEP)
        assert machine.power_w() == pytest.approx(0.15)
        with pytest.raises(IllegalDiskTransition):
            machine.transition(DiskMode.IDLE)
        machine.transition(DiskMode.SPINUP)

    def test_self_transition_is_noop(self):
        machine = DiskStateMachine(DiskMode.IDLE)
        machine.transition(DiskMode.IDLE)
        assert machine.transition_count == {}

    def test_transition_times(self):
        assert transition_time_s(DiskMode.SPINUP) == pytest.approx(SPINUP_TIME_S)
        assert transition_time_s(DiskMode.SPINDOWN) == pytest.approx(SPINDOWN_TIME_S)
        assert transition_time_s(DiskMode.IDLE) == 0.0


class TestAccountant:
    def test_energy_integration(self):
        acc = DiskEnergyAccountant()
        acc.accrue(DiskMode.ACTIVE, 2.0)
        acc.accrue(DiskMode.IDLE, 5.0)
        assert acc.energy_j == pytest.approx(2.0 * 3.2 + 5.0 * 1.6)
        assert acc.total_time_s == pytest.approx(7.0)
        assert acc.average_power_w() == pytest.approx(acc.energy_j / 7.0)
        assert acc.mode_fraction(DiskMode.IDLE) == pytest.approx(5.0 / 7.0)

    def test_spindown_costs_nothing(self):
        acc = DiskEnergyAccountant()
        acc.accrue(DiskMode.SPINDOWN, 5.0)
        assert acc.energy_j == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            DiskEnergyAccountant().accrue(DiskMode.IDLE, -1.0)

    def test_empty_average_is_zero(self):
        assert DiskEnergyAccountant().average_power_w() == 0.0


class TestPowerManagedDisk:
    def test_conventional_disk_never_idles(self):
        disk = PowerManagedDisk(disk_configuration(1))
        disk.request(0.1, 4096)
        disk.finish(10.0)
        assert disk.energy.time_in_mode_s[DiskMode.IDLE] == 0.0
        assert disk.mode is DiskMode.ACTIVE

    def test_idle_only_disk_drops_to_idle(self):
        disk = PowerManagedDisk(disk_configuration(2))
        result = disk.request(0.1, 4096)
        assert disk.mode is DiskMode.IDLE
        assert result.spinup_penalty_s == 0.0

    def test_idle_only_never_spins_down(self):
        disk = PowerManagedDisk(disk_configuration(2))
        disk.request(0.1, 4096)
        disk.finish(100.0)
        assert disk.state.spindowns == 0

    def test_spindown_fires_after_threshold(self):
        disk = PowerManagedDisk(disk_configuration(3))
        result = disk.request(0.1, 4096)
        disk.advance(result.completion_s + 2.0 + SPINDOWN_TIME_S + 0.1)
        assert disk.mode is DiskMode.STANDBY
        assert disk.state.spindowns == 1

    def test_no_spindown_within_threshold(self):
        disk = PowerManagedDisk(disk_configuration(3))
        result = disk.request(0.1, 4096)
        disk.advance(result.completion_s + 1.9)
        assert disk.mode is DiskMode.IDLE

    def test_request_in_standby_pays_spinup(self):
        disk = PowerManagedDisk(disk_configuration(3))
        first = disk.request(0.1, 4096)
        disk.advance(first.completion_s + 10.0)
        assert disk.mode is DiskMode.STANDBY
        second = disk.request(disk.clock_s + 0.1, 4096)
        assert second.spinup_penalty_s == pytest.approx(SPINUP_TIME_S)
        assert second.latency_s > SPINUP_TIME_S

    def test_request_mid_spindown_waits_for_both(self):
        """The compress pathology: a request lands during the spin-down."""
        disk = PowerManagedDisk(disk_configuration(3))
        first = disk.request(0.1, 4096)
        arrival = first.completion_s + 2.0 + 1.0  # 1 s into the spin-down
        second = disk.request(arrival, 4096)
        # Must finish the remaining ~4 s of spin-down plus 5 s spin-up.
        assert second.spinup_penalty_s == pytest.approx(4.0 + 5.0, abs=0.1)

    def test_energy_conservation(self):
        disk = PowerManagedDisk(disk_configuration(3))
        disk.request(0.5, 64 * 1024)
        disk.request(4.0, 8192)
        disk.finish(20.0)
        by_mode = sum(disk.energy.energy_in_mode_j.values())
        assert disk.energy.energy_j == pytest.approx(by_mode)
        expected = sum(
            disk.energy.time_in_mode_s[mode] * MK3003MAN_POWER_W[mode]
            for mode in DiskMode
        )
        assert disk.energy.energy_j == pytest.approx(expected)

    def test_history_covers_whole_run(self):
        disk = PowerManagedDisk(disk_configuration(3))
        disk.request(0.5, 64 * 1024)
        disk.request(6.0, 8192)
        disk.finish(15.0)
        span = sum(end - start for start, end, _ in disk.history)
        assert span == pytest.approx(disk.clock_s)
        # History is contiguous and ordered.
        for (s0, e0, _), (s1, e1, _) in zip(disk.history, disk.history[1:]):
            assert e0 == pytest.approx(s1)

    def test_time_cannot_go_backwards(self):
        disk = PowerManagedDisk(disk_configuration(2))
        disk.advance(5.0)
        with pytest.raises(ValueError):
            disk.advance(4.0)

    def test_idle_disk_cheaper_than_conventional(self):
        """Section 4: transitioning to IDLE always saves energy."""
        def run(number):
            disk = PowerManagedDisk(disk_configuration(number), seed=3)
            disk.request(0.5, 64 * 1024)
            disk.request(3.0, 64 * 1024)
            disk.finish(10.0)
            return disk.energy.energy_j

        assert run(2) < run(1)

    def test_sleep_command(self):
        disk = PowerManagedDisk(disk_configuration(2))
        disk.request(0.1, 4096)
        disk.sleep()
        assert disk.mode is DiskMode.SLEEP

    def test_sleep_rejected_while_active(self):
        disk = PowerManagedDisk(disk_configuration(1))
        with pytest.raises(RuntimeError):
            disk.sleep()

    def test_rejects_zero_byte_request(self):
        disk = PowerManagedDisk(disk_configuration(1))
        with pytest.raises(ValueError):
            disk.request(0.0, 0)

    @given(
        config=st.sampled_from([1, 2, 3, 4]),
        gaps=st.lists(st.floats(0.01, 12.0), min_size=1, max_size=12),
        sizes=st.lists(st.integers(512, 1 << 20), min_size=12, max_size=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_request_sequence_is_consistent(self, config, gaps, sizes):
        """Clock monotone, energy non-negative and mode-consistent,
        under every policy and any synchronous request pattern."""
        disk = PowerManagedDisk(disk_configuration(config), seed=7)
        t = 0.0
        last_clock = 0.0
        for gap, size in zip(gaps, sizes):
            t = disk.clock_s + gap
            result = disk.request(t, size)
            assert result.completion_s >= result.start_s >= 0
            assert disk.clock_s >= last_clock
            last_clock = disk.clock_s
        disk.finish(disk.clock_s + 1.0)
        assert disk.energy.energy_j >= 0.0
        expected = sum(
            disk.energy.time_in_mode_s[mode] * MK3003MAN_POWER_W[mode]
            for mode in DiskMode
        )
        assert disk.energy.energy_j == pytest.approx(expected, rel=1e-9)
        span = sum(end - start for start, end, _ in disk.history)
        assert span == pytest.approx(disk.clock_s, rel=1e-9)
