"""Import hygiene: keep imports at module scope (ruff PLC0415).

The container CI runs ``ruff check .`` with ``PLC0415`` selected, but
ruff is an optional dev dependency; this test mirrors the rule with the
stdlib ``ast`` module so the gate also holds wherever only the
interpreter is available.

Rules enforced over ``src/`` and ``scripts/``:

* an ``import``/``from ... import`` statement nested inside a function
  must carry a ``# noqa: PLC0415`` marker on its line — the marker is
  the author asserting the laziness is deliberate (breaking an import
  cycle, keeping a cold path cold), not an accident;
* no import may sit inside a ``for``/``while`` loop body, marked or
  not — a loop re-executes the statement and pays the ``sys.modules``
  lookup every iteration for no benefit.

Tests, benchmarks, and examples are exempt (mirroring the ruff
per-file-ignores): they import lazily for skip logic and isolation.
"""

from __future__ import annotations

import ast
import pathlib

REPO = pathlib.Path(__file__).resolve().parent.parent
SCAN_ROOTS = ("src", "scripts")
NOQA_MARKER = "noqa: PLC0415"


def _python_files():
    for root in SCAN_ROOTS:
        yield from sorted((REPO / root).rglob("*.py"))


def _import_nodes(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node


def _nodes_with_ancestry(tree: ast.AST):
    """Walk the tree yielding ``(node, ancestors)`` pairs."""
    stack = [(tree, ())]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        for child in ast.iter_child_nodes(node):
            stack.append((child, ancestors + (node,)))


def _line(source_lines: list[str], node: ast.AST) -> str:
    return source_lines[node.lineno - 1]


def test_function_level_imports_are_marked_deliberate():
    offenders = []
    for path in _python_files():
        source = path.read_text()
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(path))
        for node, ancestors in _nodes_with_ancestry(tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            in_function = any(
                isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                for a in ancestors
            )
            if not in_function:
                continue
            if NOQA_MARKER not in _line(lines, node):
                offenders.append(
                    f"{path.relative_to(REPO)}:{node.lineno}: "
                    f"{_line(lines, node).strip()}"
                )
    assert not offenders, (
        "function-level imports without a '# noqa: PLC0415' marker "
        "(hoist them to module scope, or mark them deliberate):\n  "
        + "\n  ".join(offenders)
    )


def test_no_imports_inside_loops():
    offenders = []
    for path in _python_files():
        source = path.read_text()
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(path))
        for node, ancestors in _nodes_with_ancestry(tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if any(isinstance(a, (ast.For, ast.While)) for a in ancestors):
                offenders.append(
                    f"{path.relative_to(REPO)}:{node.lineno}: "
                    f"{_line(lines, node).strip()}"
                )
    assert not offenders, (
        "imports inside for/while loops (hoist them out):\n  "
        + "\n  ".join(offenders)
    )
