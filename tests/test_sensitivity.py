"""Tests for the configuration sensitivity-analysis module."""

import pytest

from repro.core.sensitivity import (
    PARAMETERS,
    sweep_parameter,
    sweep_spindown_threshold,
)

WINDOW = 8_000


class TestSweepParameter:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            sweep_parameter("warp_factor", [1, 2])

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            sweep_parameter("l1_size", [])

    def test_l1_size_sweep_shapes(self):
        sizes = [8 * 1024, 32 * 1024]
        result = sweep_parameter("l1_size", sizes, benchmark="db",
                                 window_instructions=WINDOW)
        assert [point.value for point in result.points] == sizes
        # Larger L1s mean fewer misses: the run is never slower.
        small, large = result.points
        assert large.duration_s <= small.duration_s * 1.02
        assert result.format().count("\n") >= 3

    def test_issue_width_sweep(self):
        # Conventional disk: its power is fixed, so a slower CPU makes
        # the disk relatively worse.
        result = sweep_parameter("issue_width", [1, 4], benchmark="db",
                                 disk=1, window_instructions=WINDOW)
        narrow, wide = result.points
        # The 1-wide machine is modelled with its longer wall time.
        assert narrow.duration_s > wide.duration_s
        assert narrow.budget_shares["disk"] > wide.budget_shares["disk"]

    def test_tlb_sweep_changes_kernel_share(self):
        result = sweep_parameter("tlb_entries", [16, 256], benchmark="db",
                                 window_instructions=WINDOW)
        tiny, large = result.points
        # Less TLB reach -> more utlb traps -> a bigger kernel share.
        assert tiny.kernel_share_pct > large.kernel_share_pct

    def test_custom_transform(self):
        import dataclasses

        def faster_memory(config, value):
            return dataclasses.replace(
                config,
                memory=dataclasses.replace(
                    config.memory, access_latency_cycles=value))

        result = sweep_parameter("memory_latency", [20, 120], benchmark="db",
                                 window_instructions=WINDOW,
                                 transform=faster_memory)
        fast, slow = result.points
        assert fast.duration_s <= slow.duration_s

    def test_selectors(self):
        result = sweep_parameter("l1_size", [8 * 1024, 32 * 1024],
                                 benchmark="db", window_instructions=WINDOW)
        assert result.best_by_energy() in result.points
        assert result.best_by_edp() in result.points

    def test_builtin_parameter_registry(self):
        assert {"l1_size", "l2_size", "window_size", "issue_width",
                "tlb_entries"} <= set(PARAMETERS)


class TestSpindownSweep:
    def test_threshold_sweep_matches_section4(self):
        result = sweep_spindown_threshold([2.0, 6.0], benchmark="compress",
                                          window_instructions=WINDOW)
        pathological, safe = result.points
        assert pathological.energy_j > safe.energy_j
        assert pathological.duration_s > safe.duration_s

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sweep_spindown_threshold([])
