"""Tests for the PowerComponent registry and the EnergyLedger."""

import pytest

from repro.config.system import SystemConfig
from repro.power.ledger import EnergyLedger
from repro.power.processor import ProcessorPowerModel
from repro.power.registry import (
    CATEGORIES,
    REGISTRY,
    PowerComponent,
    PowerRegistry,
)
from repro.stats.counters import AccessCounters, UnknownCounterError


@pytest.fixture(scope="module")
def model():
    return ProcessorPowerModel(SystemConfig.table1())


def _busy_counters(model):
    return model.max_power_counters(2_000)


class TestRegistryStructure:
    def test_category_order_is_derived_from_declarations(self):
        assert CATEGORIES == (
            "datapath", "l1d", "l2d", "l1i", "l2i", "clock", "memory", "disk",
        )
        assert REGISTRY.categories == CATEGORIES
        assert REGISTRY.counter_categories == CATEGORIES[:-1]

    def test_disk_is_a_first_class_simulation_time_component(self):
        disk = REGISTRY.component("disk")
        assert disk.simulation_time
        assert disk.category == "disk"
        assert disk.counters == ()

    def test_every_declared_counter_is_a_real_counter_field(self):
        probe = AccessCounters()
        for component in REGISTRY:
            for name in component.counters:
                probe.get(name)  # raises UnknownCounterError if not

    def test_unknown_component_lookup_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown power component 'l3'"):
            REGISTRY.component("l3")

    def test_duplicate_component_names_rejected(self):
        tlb = REGISTRY.component("tlb")
        with pytest.raises(ValueError, match="duplicate"):
            PowerRegistry((tlb, tlb))

    def test_component_with_unknown_counter_rejected_at_declaration(self):
        with pytest.raises(UnknownCounterError, match="l3_access"):
            PowerComponent(
                "l3", "memory", ("l3_access",), lambda m, c, cy: (0.0,)
            )

    def test_simulation_time_component_cannot_declare_counters(self):
        with pytest.raises(ValueError, match="simulation-time"):
            PowerComponent("disk2", "disk", ("mem_access",), None)


class TestRegistryEvaluation:
    def test_ledger_matches_energy_by_category(self, model):
        counters = _busy_counters(model)
        ledger = model.ledger(counters, 2_000)
        assert ledger.categories == model.energy_by_category(counters, 2_000)

    def test_components_roll_up_to_their_category(self, model):
        ledger = model.ledger(_busy_counters(model), 2_000)
        datapath = [
            component.name
            for component in REGISTRY
            if component.category == "datapath"
        ]
        rollup = 0.0
        for name in datapath:
            assert ledger.category_of(name) == "datapath"
            rollup += ledger.component(name)
        assert rollup == pytest.approx(ledger.category("datapath"))

    def test_zero_cycles_rejected(self, model):
        with pytest.raises(ValueError, match="cycles must be positive"):
            REGISTRY.evaluate(model, AccessCounters(), 0)

    def test_rule_reading_undeclared_counter_raises(self):
        sneaky = PowerComponent(
            "sneaky", "datapath", ("l1i_access",),
            lambda m, c, cy: (c.l1d_access * 1.0,),
        )
        registry = PowerRegistry((sneaky,))
        with pytest.raises(UnknownCounterError, match="does not declare"):
            registry.evaluate(None, AccessCounters(l1d_access=5), 100)

    def test_declared_counters_are_readable_through_the_view(self):
        honest = PowerComponent(
            "honest", "datapath", ("l1i_access",),
            lambda m, c, cy: (c.l1i_access * 2.0,),
        )
        registry = PowerRegistry((honest,))
        ledger = registry.evaluate(None, AccessCounters(l1i_access=3), 100)
        assert ledger.component("honest") == 6.0


class TestEnergyLedger:
    def test_rollups_and_total(self):
        ledger = EnergyLedger(
            {"a": 1.0, "b": 2.0, "c": 4.0},
            {"a": "x", "b": "x", "c": "y"},
        )
        assert ledger.categories == {"x": 3.0, "y": 4.0}
        assert ledger.total_j == 7.0
        assert ledger.component("b") == 2.0
        assert ledger.category_of("c") == "y"

    def test_component_without_category_rejected(self):
        with pytest.raises(ValueError, match="no category mapping"):
            EnergyLedger({"a": 1.0}, {})

    def test_unknown_lookups_are_clear_errors(self):
        ledger = EnergyLedger({"a": 1.0}, {"a": "x"})
        with pytest.raises(KeyError, match="unknown power component"):
            ledger.component("zz")
        with pytest.raises(KeyError, match="unknown report category"):
            ledger.category("zz")
        with pytest.raises(KeyError, match="unknown power component"):
            ledger.category_of("zz")

    def test_addition_merges_components_and_categories(self):
        first = EnergyLedger({"a": 1.0, "b": 2.0}, {"a": "x", "b": "y"})
        second = EnergyLedger({"a": 0.5, "c": 3.0}, {"a": "x", "c": "y"})
        merged = first + second
        assert merged.components == {"a": 1.5, "b": 2.0, "c": 3.0}
        assert merged.categories == {"x": 1.5, "y": 5.0}

    def test_scaling(self):
        ledger = EnergyLedger({"a": 1.0, "b": 2.0}, {"a": "x", "b": "y"})
        for scaled in (ledger.scaled(2.0), ledger * 2.0, 2.0 * ledger):
            assert scaled.components == {"a": 2.0, "b": 4.0}
            assert scaled.categories == {"x": 2.0, "y": 4.0}

    def test_with_component_appends_new_category_last(self, model):
        ledger = model.ledger(_busy_counters(model), 2_000)
        full = ledger.with_component("disk", "disk", 1.25)
        assert tuple(full.categories) == CATEGORIES
        assert full.component("disk") == 1.25
        assert full.total_j == ledger.total_j + 1.25

    def test_with_component_rejects_duplicates(self):
        ledger = EnergyLedger({"a": 1.0}, {"a": "x"})
        with pytest.raises(ValueError, match="already in ledger"):
            ledger.with_component("a", "x", 2.0)

    def test_category_power_requires_positive_seconds(self):
        ledger = EnergyLedger({"a": 1.0}, {"a": "x"})
        with pytest.raises(ValueError, match="seconds must be positive"):
            ledger.category_power_w(0.0)
        assert ledger.category_power_w(0.5) == {"x": 2.0}

    def test_equality(self):
        first = EnergyLedger({"a": 1.0}, {"a": "x"})
        second = EnergyLedger({"a": 1.0}, {"a": "x"})
        third = EnergyLedger({"a": 2.0}, {"a": "x"})
        assert first == second
        assert first != third


class TestAccessCounterValidation:
    def test_get_unknown_counter_is_a_clear_error(self):
        counters = AccessCounters()
        with pytest.raises(UnknownCounterError, match="l3_access"):
            counters.get("l3_access")
        with pytest.raises(UnknownCounterError, match="valid counters"):
            counters["l3_access"]

    def test_get_known_counter(self):
        counters = AccessCounters(l1i_access=7)
        assert counters.get("l1i_access") == 7
        assert counters["l1i_access"] == 7

    def test_unknown_counter_error_is_keyerror_and_attributeerror(self):
        counters = AccessCounters()
        with pytest.raises(KeyError):
            counters.get("nope")
        with pytest.raises(AttributeError):
            counters.get("nope")

    def test_constructor_rejects_unknown_counter_with_clear_message(self):
        with pytest.raises(UnknownCounterError, match="bogus"):
            AccessCounters(bogus=1)

    def test_error_message_is_not_quoted_like_keyerror(self):
        try:
            AccessCounters().get("nope")
        except UnknownCounterError as error:
            assert str(error).startswith("unknown counter 'nope'")
        else:  # pragma: no cover
            pytest.fail("expected UnknownCounterError")
