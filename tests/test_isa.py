"""Tests for the abstract ISA: instructions and trace helpers."""

import itertools

import pytest

from repro.isa import (
    EXECUTION_LATENCY,
    Instruction,
    OpClass,
    copy_loop,
    counted_loop,
    memory_walk,
    spin_loop,
    straightline,
    take,
)


class TestOpClass:
    def test_memory_classification(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert OpClass.SYNC.is_memory
        assert OpClass.CACHEOP.is_memory
        assert not OpClass.IALU.is_memory
        assert not OpClass.BRANCH.is_memory

    def test_control_classification(self):
        for op in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN,
                   OpClass.SYSCALL, OpClass.ERET):
            assert op.is_control
        assert not OpClass.LOAD.is_control

    def test_fp_classification(self):
        assert OpClass.FALU.is_fp
        assert OpClass.FMUL.is_fp
        assert not OpClass.IMUL.is_fp

    def test_every_op_has_a_latency(self):
        for op in OpClass:
            assert EXECUTION_LATENCY[op] >= 1


class TestInstruction:
    def test_next_pc_fall_through(self):
        instr = Instruction(pc=0x1000, op=OpClass.IALU, dest=1)
        assert instr.fall_through == 0x1004
        assert instr.next_pc == 0x1004

    def test_next_pc_taken_branch(self):
        instr = Instruction(pc=0x1000, op=OpClass.BRANCH, srcs=(1,),
                            target=0x2000, taken=True)
        assert instr.next_pc == 0x2000

    def test_next_pc_not_taken_branch(self):
        instr = Instruction(pc=0x1000, op=OpClass.BRANCH, srcs=(1,),
                            target=0x2000, taken=False)
        assert instr.next_pc == 0x1004

    def test_rejects_misaligned_pc(self):
        with pytest.raises(ValueError):
            Instruction(pc=0x1002, op=OpClass.IALU)

    def test_rejects_negative_pc(self):
        with pytest.raises(ValueError):
            Instruction(pc=-4, op=OpClass.IALU)

    def test_memory_op_requires_size(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, op=OpClass.LOAD, dest=1, address=0x100)

    def test_service_label_carried(self):
        instr = Instruction(pc=0, op=OpClass.IALU, service="utlb")
        assert instr.service == "utlb"


class TestStraightline:
    def test_sequential_pcs(self):
        instrs = list(straightline(0x400, [OpClass.IALU] * 5))
        assert [i.pc for i in instrs] == [0x400, 0x404, 0x408, 0x40C, 0x410]

    def test_rejects_memory_ops(self):
        with pytest.raises(ValueError):
            list(straightline(0, [OpClass.LOAD]))

    def test_rejects_control_ops(self):
        with pytest.raises(ValueError):
            list(straightline(0, [OpClass.BRANCH]))


class TestCountedLoop:
    @staticmethod
    def _body(iteration, pc):
        yield Instruction(pc=pc, op=OpClass.IALU, dest=3)
        yield Instruction(pc=pc + 4, op=OpClass.IALU, dest=4)

    def test_back_branch_taken_pattern(self):
        instrs = list(counted_loop(0x100, 4, self._body))
        branches = [i for i in instrs if i.op is OpClass.BRANCH]
        assert len(branches) == 4
        assert [b.taken for b in branches] == [True, True, True, False]

    def test_static_pcs_repeat_each_iteration(self):
        instrs = list(counted_loop(0x100, 3, self._body))
        per_iteration = len(instrs) // 3
        first = [i.pc for i in instrs[:per_iteration]]
        second = [i.pc for i in instrs[per_iteration: 2 * per_iteration]]
        assert first == second

    def test_branch_targets_loop_head(self):
        instrs = list(counted_loop(0x100, 2, self._body))
        for branch in (i for i in instrs if i.op is OpClass.BRANCH):
            assert branch.target == 0x100

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            list(counted_loop(0x100, 0, self._body))

    def test_rejects_varying_body_length(self):
        def bad_body(iteration, pc):
            for i in range(iteration + 1):
                yield Instruction(pc=pc + 4 * i, op=OpClass.IALU, dest=3)

        with pytest.raises(ValueError):
            list(counted_loop(0x100, 3, bad_body))


class TestMemoryWalk:
    def test_store_walk_addresses(self):
        instrs = list(memory_walk(0x200, OpClass.STORE, 0x8000, 4, stride=8))
        stores = [i for i in instrs if i.op is OpClass.STORE]
        assert [s.address for s in stores] == [0x8000, 0x8008, 0x8010, 0x8018]

    def test_load_walk(self):
        instrs = list(memory_walk(0x200, OpClass.LOAD, 0x8000, 3, stride=64))
        loads = [i for i in instrs if i.op is OpClass.LOAD]
        assert len(loads) == 3
        assert loads[-1].address == 0x8000 + 2 * 64

    def test_rejects_non_memory_op(self):
        with pytest.raises(ValueError):
            list(memory_walk(0, OpClass.IALU, 0, 4))

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            list(memory_walk(0, OpClass.LOAD, 0, 0))


class TestCopyLoop:
    def test_moves_requested_bytes(self):
        instrs = list(copy_loop(0x300, 0x1000, 0x2000, 64, word=8))
        loads = [i for i in instrs if i.op is OpClass.LOAD]
        stores = [i for i in instrs if i.op is OpClass.STORE]
        assert len(loads) == 8
        assert len(stores) == 8
        assert loads[0].address == 0x1000
        assert stores[0].address == 0x2000

    def test_rounds_up_partial_word(self):
        instrs = list(copy_loop(0x300, 0, 0x100, 12, word=8))
        loads = [i for i in instrs if i.op is OpClass.LOAD]
        assert len(loads) == 2

    def test_rejects_zero_bytes(self):
        with pytest.raises(ValueError):
            list(copy_loop(0, 0, 0x100, 0))


class TestSpinLoop:
    def test_shape_and_exit(self):
        instrs = list(spin_loop(0x400, 0xA000, 5, service="kernel_sync"))
        syncs = [i for i in instrs if i.op is OpClass.SYNC]
        branches = [i for i in instrs if i.op is OpClass.BRANCH]
        assert len(syncs) == 5
        assert [b.taken for b in branches] == [True] * 4 + [False]
        assert all(i.service == "kernel_sync" for i in instrs)

    def test_sync_targets_lock_address(self):
        instrs = list(spin_loop(0x400, 0xA000, 2))
        assert all(i.address == 0xA000 for i in instrs if i.op is OpClass.SYNC)

    def test_rejects_zero_spins(self):
        with pytest.raises(ValueError):
            list(spin_loop(0, 0, 0))


class TestTake:
    def test_take_limits_infinite_stream(self):
        infinite = (Instruction(pc=4 * i, op=OpClass.IALU) for i in itertools.count())
        assert len(take(infinite, 10)) == 10
