"""Micro tests for the Mipsy in-order model and the trap interface."""

from repro.config import SystemConfig
from repro.cpu import InlineRefillClient, MipsyProcessor, UTLB_HANDLER_PC
from repro.cpu.runstats import RunStats
from repro.isa import Instruction, OpClass
from repro.mem import KSEG_BASE


def _alus(count):
    for i in range(count):
        yield Instruction(pc=KSEG_BASE + 4 * (i % 64), op=OpClass.IALU,
                          dest=8, srcs=(0,))


class TestMipsyTiming:
    def setup_method(self):
        self.config = SystemConfig.table1()

    def test_one_cycle_per_alu_plus_misses(self):
        cpu = MipsyProcessor(self.config)
        stats = cpu.run(_alus(4000))
        # One cycle each, plus a handful of cold I-cache misses.
        assert 4000 <= stats.cycles <= 4300

    def test_imul_latency_charged(self):
        def muls(count):
            for i in range(count):
                yield Instruction(pc=KSEG_BASE + 4 * (i % 16), op=OpClass.IMUL,
                                  dest=8, srcs=(0,))

        cpu = MipsyProcessor(self.config)
        alu_cycles = MipsyProcessor(self.config).run(_alus(2000)).cycles
        mul_cycles = cpu.run(muls(2000)).cycles
        assert mul_cycles > alu_cycles * 2

    def test_store_does_not_block(self):
        def stores(count):
            for i in range(count):
                yield Instruction(pc=KSEG_BASE + 4 * (i % 16), op=OpClass.STORE,
                                  srcs=(8, 9),
                                  address=KSEG_BASE + 0x100000 + i * 4096,
                                  size=8)

        def loads(count):
            for i in range(count):
                yield Instruction(pc=KSEG_BASE + 4 * (i % 16), op=OpClass.LOAD,
                                  dest=8, srcs=(9,),
                                  address=KSEG_BASE + 0x200000 + i * 4096,
                                  size=8)

        store_cycles = MipsyProcessor(self.config).run(stores(1500)).cycles
        load_cycles = MipsyProcessor(self.config).run(loads(1500)).cycles
        # Same miss pattern, but loads block the pipeline.
        assert load_cycles > store_cycles * 1.5

    def test_counters_have_no_ooo_structures(self):
        cpu = MipsyProcessor(self.config)
        stats = cpu.run(_alus(1000))
        totals = stats.total_counters()
        assert totals.window_dispatch == 0
        assert totals.lsq_access == 0
        assert totals.rename_access == 0
        assert totals.regfile_read > 0
        assert totals.ialu_access == 1000


class TestInlineRefillClient:
    def test_handler_shape(self):
        client = InlineRefillClient()
        body = list(client.utlb_handler(0x1234_5000))
        assert body[0].pc == UTLB_HANDLER_PC
        assert body[-1].op is OpClass.ERET
        assert all(instr.service == "utlb" for instr in body)
        assert all(instr.pc >= KSEG_BASE for instr in body)

    def test_pte_address_tracks_faulting_page(self):
        client = InlineRefillClient()

        def pte_of(address):
            body = list(client.utlb_handler(address))
            loads = [i for i in body if i.op is OpClass.LOAD]
            assert len(loads) == 1
            return loads[0].address

        assert pte_of(0x1000_0000) != pte_of(0x1000_5000)
        assert pte_of(0x1000_0000) == pte_of(0x1000_0FFF)  # same page


class TestRunStatsMerge:
    def test_merged_adds_everything(self):
        cpu = MipsyProcessor(SystemConfig.table1())
        first = cpu.run(_alus(500))
        second = MipsyProcessor(SystemConfig.table1()).run(_alus(700))
        merged = first.merged(second)
        assert merged.instructions == 1200
        assert merged.cycles == first.cycles + second.cycles
        assert merged.total_counters().ialu_access == 1200
        assert merged.labels[None].instructions == 1200

    def test_merged_is_nondestructive(self):
        cpu = MipsyProcessor(SystemConfig.table1())
        first = cpu.run(_alus(500))
        before = first.instructions
        first.merged(first)
        assert first.instructions == before

    def test_merge_distinct_labels(self):
        a = RunStats(cycles=10, instructions=5)
        a.label("utlb").cycles = 10.0
        b = RunStats(cycles=20, instructions=9)
        b.label("read").cycles = 20.0
        merged = a.merged(b)
        assert set(merged.labels) == {"utlb", "read"}
        assert merged.label("utlb").cycles == 10.0
        assert merged.label("read").cycles == 20.0
