"""Tests for the persistent content-addressed profile cache."""

import dataclasses
import json

from repro.config import SystemConfig
from repro.core import checkpoint
from repro.core.checkpoint import (
    CACHE_DIR_ENV,
    MODEL_VERSION,
    ProfileCache,
    decode_profile,
    encode_profile,
    profile_cache_key,
    service_cache_key,
)
from repro.core.softwatt import SoftWatt
from repro.workloads.specjvm98 import benchmark

WINDOW = 4000


def make_sw(tmp_path, **overrides):
    params = dict(window_instructions=WINDOW, seed=1, cache_dir=tmp_path)
    params.update(overrides)
    return SoftWatt(**params)


class TestCacheKeys:
    def test_key_is_deterministic(self):
        config = SystemConfig.table1()
        kwargs = dict(cpu_model="mxs", window_instructions=WINDOW,
                      startup_chunks=4, steady_chunks=2, seed=1)
        spec = benchmark("jess")
        assert (profile_cache_key(spec, config, **kwargs)
                == profile_cache_key(spec, config, **kwargs))

    def test_key_depends_on_every_input(self):
        config = SystemConfig.table1()
        base = dict(cpu_model="mxs", window_instructions=WINDOW,
                    startup_chunks=4, steady_chunks=2, seed=1)
        spec = benchmark("jess")
        reference = profile_cache_key(spec, config, **base)
        assert profile_cache_key(benchmark("db"), config, **base) != reference
        for field, value in (("cpu_model", "mipsy"),
                             ("window_instructions", WINDOW * 2),
                             ("startup_chunks", 5),
                             ("steady_chunks", 3),
                             ("seed", 2)):
            assert profile_cache_key(
                spec, config, **{**base, field: value}
            ) != reference
        small_l1 = dataclasses.replace(
            config,
            l1d=dataclasses.replace(config.l1d, size_bytes=16 * 1024),
        )
        assert profile_cache_key(spec, small_l1, **base) != reference

    def test_service_key_varies(self):
        config = SystemConfig.table1()
        base = dict(cpu_model="mxs", invocations=30, warmup=6, seed=1)
        reference = service_cache_key("read", config, **base)
        assert service_cache_key("write", config, **base) != reference
        assert service_cache_key(
            "read", config, **{**base, "invocations": 60}
        ) != reference


class TestEncodeDecodeRoundTrip:
    def test_profile_round_trip_reproduces_totals(self):
        sw = SoftWatt(window_instructions=WINDOW, seed=1, use_cache=False)
        spec = benchmark("jess")
        original = sw.profile(spec)
        # Through JSON, as the on-disk cache stores it.
        payload = json.loads(json.dumps(encode_profile(original)))
        restored = decode_profile(payload, spec=spec, config=sw.config)
        for name, phase in original.phases.items():
            agg = phase.aggregate
            restored_agg = restored.phases[name].aggregate
            assert restored_agg.cycles == agg.cycles
            assert restored_agg.instructions == agg.instructions
            assert restored_agg.traps == agg.traps
            assert (restored_agg.total_counters().total_events()
                    == agg.total_counters().total_events())
            assert restored.phases[name].invocations == phase.invocations
        assert restored.idle.stats.cycles == original.idle.stats.cycles


class TestPersistentCache:
    def test_warm_cache_skips_detailed_simulation(self, tmp_path):
        cold = make_sw(tmp_path)
        result_cold = cold.run("jess", disk=2)
        assert cold.profiler.detailed_runs > 0
        assert cold.cache.stats.stores > 0

        # A fresh instance (fresh process in real use) with the same
        # parameters must serve everything from disk.
        warm = make_sw(tmp_path)
        result_warm = warm.run("jess", disk=2)
        assert warm.profiler.detailed_runs == 0
        assert warm.cache.stats.misses == 0
        assert result_warm.total_energy_j == result_cold.total_energy_j
        assert result_warm.idle_cycles == result_cold.idle_cycles
        assert (result_warm.timeline.duration_s
                == result_cold.timeline.duration_s)

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert ProfileCache.from_env() is None
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        cache = ProfileCache.from_env()
        assert cache is not None and cache.directory == tmp_path

    def test_use_cache_false_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert make_sw(tmp_path, use_cache=False).cache is None

    def test_mismatched_config_reprofiles(self, tmp_path):
        make_sw(tmp_path).profile("jess")
        small_l1 = dataclasses.replace(
            SystemConfig.table1(),
            l1d=dataclasses.replace(
                SystemConfig.table1().l1d, size_bytes=16 * 1024
            ),
        )
        other = make_sw(tmp_path, config=small_l1)
        other.profile("jess")
        # Different key -> clean re-profile, no crash, no false hit.
        assert other.profiler.detailed_runs == 1

    def test_model_version_mismatch_evicts_and_reprofiles(
        self, tmp_path, monkeypatch
    ):
        make_sw(tmp_path).profile("jess")
        entries = list(tmp_path.glob("*.json"))
        assert entries
        # A model-version bump changes every cache key, so the old
        # entries can never be served again: the lookup misses, the
        # benchmark is cleanly re-profiled, and evict_stale sweeps the
        # now-unreachable old-version files.
        monkeypatch.setattr(checkpoint, "MODEL_VERSION", MODEL_VERSION + 1)
        stale = make_sw(tmp_path)
        stale.profile("jess")
        assert stale.profiler.detailed_runs == 1
        assert stale.cache.evict_stale() == len(entries)

    def test_corrupt_entry_evicted_and_reprofiled(self, tmp_path):
        sw = make_sw(tmp_path)
        sw.profile("jess")
        for path in tmp_path.glob("*.json"):
            path.write_text("{ not json")
        fresh = make_sw(tmp_path)
        fresh.profile("jess")
        assert fresh.profiler.detailed_runs == 1
        assert fresh.cache.stats.evictions >= 1

    def test_evict_stale_sweeps_old_versions(self, tmp_path):
        sw = make_sw(tmp_path)
        sw.profile("jess")
        good = len(list(tmp_path.glob("*.json")))
        (tmp_path / "deadbeef.json").write_text(
            json.dumps({"kind": "benchmark", "model_version": MODEL_VERSION - 1,
                        "profile": {}})
        )
        (tmp_path / "torn.json").write_text("{")
        assert ProfileCache(tmp_path).evict_stale() == 2
        assert len(list(tmp_path.glob("*.json"))) == good

    def test_readonly_cache_dir_does_not_break_profiling(self, tmp_path):
        missing = tmp_path / "no-such" / "nested"
        sw = SoftWatt(window_instructions=WINDOW, seed=1, cache_dir=missing)
        profile = sw.profile("jess")
        assert profile.phases  # profiling itself unaffected


class TestConcurrentQuarantine:
    """Two readers hit the same corrupt entry: exactly one quarantines
    it, the other re-simulates — no crash, no double-move."""

    def _corrupt_all(self, tmp_path) -> int:
        entries = list(tmp_path.glob("*.json"))
        for path in entries:
            path.write_text("{ not json")
        return len(entries)

    def test_quarantine_race_is_single_winner(self, tmp_path):
        make_sw(tmp_path).profile("jess")
        entries = list(tmp_path.glob("*.json"))
        self._corrupt_all(tmp_path)
        # Interleave the exact race: both caches decided to quarantine
        # the same path; the second mover finds it already gone.
        cache_a, cache_b = ProfileCache(tmp_path), ProfileCache(tmp_path)
        for path in entries:
            cache_a._quarantine(path)
            cache_b._quarantine(path)
        assert cache_a.stats.quarantined == len(entries)
        assert cache_b.stats.quarantined == 0
        quarantined = list((tmp_path / "quarantine").glob("*.json"))
        assert len(quarantined) == len(entries)  # no double-move

    def test_threaded_readers_one_quarantine_both_valid(self, tmp_path):
        import threading

        reference = make_sw(tmp_path)
        expected = reference.profile("jess")
        assert self._corrupt_all(tmp_path) >= 1
        barrier = threading.Barrier(2)
        outcomes: dict[int, object] = {}

        def read(slot: int) -> None:
            sw = make_sw(tmp_path)  # own ProfileCache on the shared dir
            barrier.wait()
            try:
                outcomes[slot] = sw.profile("jess")
            except Exception as error:  # noqa: BLE001 - the test's assertion
                outcomes[slot] = error
            outcomes[f"stats{slot}"] = sw.cache.stats

        threads = [
            threading.Thread(target=read, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        for slot in (0, 1):
            assert not isinstance(outcomes[slot], Exception), outcomes[slot]
            for name, phase in expected.phases.items():
                assert (outcomes[slot].phases[name].aggregate.cycles
                        == phase.aggregate.cycles)
        total = sum(outcomes[f"stats{slot}"].quarantined for slot in (0, 1))
        quarantined = list((tmp_path / "quarantine").glob("*.json"))
        # Every quarantine file had exactly one mover across the two
        # threads: counters and files agree, nothing double-moved.
        assert total == len(quarantined) >= 1
