"""Tests for the branch predictor (BHT, BTB, RAS)."""

import pytest

from repro.config import CoreConfig
from repro.cpu import BranchPredictor
from repro.isa import Instruction, OpClass


def _branch(pc, target, taken):
    return Instruction(pc=pc, op=OpClass.BRANCH, srcs=(1,), target=target, taken=taken)


def _call(pc, target):
    return Instruction(pc=pc, op=OpClass.CALL, dest=31, target=target, taken=True)


def _return(pc, target):
    return Instruction(pc=pc, op=OpClass.RETURN, srcs=(31,), target=target, taken=True)


class TestConditionalPrediction:
    def test_loop_branch_trains_quickly(self):
        predictor = BranchPredictor(CoreConfig())
        results = []
        for i in range(20):
            results.append(predictor.predict(_branch(0x100, 0x80, taken=True)))
        # After the BTB learns the target, everything is correct.
        assert all(results[2:])

    def test_loop_exit_mispredicts_once(self):
        predictor = BranchPredictor(CoreConfig())
        for _ in range(20):
            predictor.predict(_branch(0x100, 0x80, taken=True))
        assert not predictor.predict(_branch(0x100, 0x80, taken=False))
        # Back in the loop next visit: 2-bit hysteresis keeps it taken.
        assert predictor.predict(_branch(0x100, 0x80, taken=True))

    def test_alternating_branch_is_hard(self):
        predictor = BranchPredictor(CoreConfig())
        correct = sum(
            predictor.predict(_branch(0x200, 0x80, taken=(i % 2 == 0)))
            for i in range(100)
        )
        assert correct < 70

    def test_never_taken_branch_predicts_well(self):
        predictor = BranchPredictor(CoreConfig())
        results = [predictor.predict(_branch(0x300, 0x80, taken=False))
                   for _ in range(20)]
        assert all(results[2:])

    def test_stats_accumulate(self):
        predictor = BranchPredictor(CoreConfig())
        for i in range(10):
            predictor.predict(_branch(0x100, 0x80, taken=True))
        assert predictor.stats.conditional == 10
        assert 0.0 <= predictor.stats.accuracy <= 1.0


class TestBTB:
    def test_target_change_mispredicts(self):
        predictor = BranchPredictor(CoreConfig())
        jump = Instruction(pc=0x400, op=OpClass.JUMP, target=0x1000, taken=True)
        predictor.predict(jump)  # cold miss
        assert predictor.predict(jump)  # now learned
        changed = Instruction(pc=0x400, op=OpClass.JUMP, target=0x2000, taken=True)
        assert not predictor.predict(changed)

    def test_aliasing_branches_interfere(self):
        core = CoreConfig(btb_entries=16)
        predictor = BranchPredictor(core)
        a = Instruction(pc=0x0, op=OpClass.JUMP, target=0x1000, taken=True)
        b = Instruction(pc=16 * 4, op=OpClass.JUMP, target=0x2000, taken=True)
        predictor.predict(a)
        predictor.predict(b)  # evicts a (same index)
        assert not predictor.predict(a)


class TestRAS:
    def test_call_return_pairs_predict(self):
        predictor = BranchPredictor(CoreConfig())
        predictor.predict(_call(0x100, 0x1000))
        assert predictor.predict(_return(0x1100, 0x104))

    def test_nested_calls(self):
        predictor = BranchPredictor(CoreConfig())
        predictor.predict(_call(0x100, 0x1000))
        predictor.predict(_call(0x1000, 0x2000))
        assert predictor.predict(_return(0x2100, 0x1004))
        assert predictor.predict(_return(0x1100, 0x104))

    def test_overflow_drops_oldest(self):
        core = CoreConfig(ras_entries=2)
        predictor = BranchPredictor(core)
        predictor.predict(_call(0x100, 0x1000))
        predictor.predict(_call(0x200, 0x1000))
        predictor.predict(_call(0x300, 0x1000))
        assert predictor.predict(_return(0x1100, 0x304))
        assert predictor.predict(_return(0x1100, 0x204))
        # The first return address was pushed out.
        assert not predictor.predict(_return(0x1100, 0x104))

    def test_empty_ras_mispredicts(self):
        predictor = BranchPredictor(CoreConfig())
        assert not predictor.predict(_return(0x1100, 0x104))

    def test_flush_ras(self):
        predictor = BranchPredictor(CoreConfig())
        predictor.predict(_call(0x100, 0x1000))
        predictor.flush_ras()
        assert not predictor.predict(_return(0x1100, 0x104))


class TestValidation:
    def test_rejects_non_control(self):
        predictor = BranchPredictor(CoreConfig())
        with pytest.raises(ValueError):
            predictor.predict(Instruction(pc=0, op=OpClass.IALU))

    def test_serialising_ops_never_mispredict(self):
        predictor = BranchPredictor(CoreConfig())
        assert predictor.predict(Instruction(pc=0, op=OpClass.SYSCALL))
        assert predictor.predict(
            Instruction(pc=0, op=OpClass.ERET, taken=True, target=0)
        )
