#!/usr/bin/env python
"""End-to-end smoke test for ``repro serve`` as a real subprocess.

Exercises the full service lifecycle the way an operator sees it:

1. launch ``python -m repro serve --port 0`` with a deterministic
   server-side fault plan (two slow requests to occupy the admission
   gate, one slow request to be in flight during drain),
2. probe ``/healthz`` and ``/readyz``,
3. send a cold ``POST /run`` then a warm one (the warm one must be
   bit-identical and much faster is *not* asserted — single-core CI
   boxes make timing assertions flaky; identity is the contract),
4. flood the admission gate while two injected-slow requests hold it
   and assert the overflow is rejected with ``429`` + ``Retry-After``,
5. start one more injected-slow request, send SIGTERM mid-flight, and
   assert the in-flight request still gets its 200 before the process
   exits 0 with a drain summary,
6. (second server, deep queue) fire 32+ concurrent estimation requests
   — mixed identical and distinct — through ``POST /estimate/batch``,
   SIGTERM while they are in flight, and assert every admitted batch
   still answers with per-item statuses, identical items return
   identical results, and the drain exits 0.

Exit code 0 on success; 1 with a diagnostic on any failure.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import ServeClient  # noqa: E402

WINDOW = 3000
SLOW_S = 1.5
# Ordinals: 0 cold, 1 warm, 2-3 slow (occupy the depth-2 gate),
# 4-5 flood probes, 6 slow (in flight across SIGTERM).
FAULT_PLAN = "slow@2x2,slow@6"


def fail(message: str, server: subprocess.Popen | None = None) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    if server is not None and server.poll() is None:
        server.kill()
        server.wait()
    return 1


def launch(extra_args: list[str]) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--window", str(WINDOW), "--no-cache",
        *extra_args,
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                    env.get("PYTHONPATH"))
        if p
    )
    return subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )


def main() -> int:
    server = launch([
        "--queue-depth", "2",
        "--serve-fault-plan", FAULT_PLAN,
        "--slow-seconds", str(SLOW_S),
    ])
    lines: list[str] = []

    def read_line(timeout_s: float = 60.0) -> str:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if line:
                lines.append(line.rstrip())
                print(f"  server| {lines[-1]}")
                return lines[-1]
            if server.poll() is not None:
                break
            time.sleep(0.01)
        return ""

    port = None
    while port is None:
        line = read_line()
        if not line:
            return fail("server exited before announcing its port", server)
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))

    # Drain the server's stdout in the background so it never blocks on
    # a full pipe, while keeping every line for the final assertions.
    def pump() -> None:
        for line in server.stdout:
            lines.append(line.rstrip())
            print(f"  server| {lines[-1]}")

    pump_thread = threading.Thread(target=pump, daemon=True)
    pump_thread.start()

    client = ServeClient(port=port, timeout_s=120.0)
    if not client.healthz().ok:
        return fail("/healthz not ok", server)
    if not client.readyz().ok:
        return fail("/readyz not ok before drain", server)
    print("health + ready: ok")

    cold = client.run("jess")  # ordinal 0
    if not cold.ok or cold.payload["degraded"]:
        return fail(f"cold run failed: {cold.status} {cold.payload}", server)
    warm = client.run("jess")  # ordinal 1
    if not warm.ok or warm.payload["degraded"]:
        return fail(f"warm run failed: {warm.status} {warm.payload}", server)
    cold_j = cold.payload["result"]["total_energy_j"]
    warm_j = warm.payload["result"]["total_energy_j"]
    if cold_j != warm_j:
        return fail(f"warm energy {warm_j} != cold {cold_j}", server)
    print(f"cold + warm run: ok ({cold_j:.4f} J, bit-identical)")

    # Two injected-slow requests (ordinals 2, 3) fill the depth-2 gate.
    slow_replies: dict[int, object] = {}

    def slow_request(slot: int) -> None:
        with ServeClient(port=port, timeout_s=120.0) as own:
            slow_replies[slot] = own.run("jess")

    occupants = [
        threading.Thread(target=slow_request, args=(slot,))
        for slot in (0, 1)
    ]
    for thread in occupants:
        thread.start()
    # Wait until both hold the gate (in_flight == 2), then flood.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        stats = client.stats()
        if stats.ok and stats.payload["admission"]["in_flight"] >= 2:
            break
        time.sleep(0.02)
    else:
        return fail("slow occupants never filled the admission gate", server)

    rejected = 0
    for _ in range(2):  # ordinals 4, 5
        reply = client.run("jess")
        if reply.status == 429 and "Retry-After" in reply.headers:
            rejected += 1
        else:
            return fail(
                f"expected 429 with Retry-After while the gate is full, "
                f"got {reply.status} {reply.headers}",
                server,
            )
    print(f"admission flood: ok ({rejected} rejected with 429 + Retry-After)")
    for thread in occupants:
        thread.join(timeout=60)
    for slot in (0, 1):
        reply = slow_replies.get(slot)
        if reply is None or not reply.ok:
            return fail(f"slow occupant {slot} did not complete: {reply}",
                        server)

    # One more injected-slow request (ordinal 6), then SIGTERM while it
    # is in flight: drain must return its 200 before the process exits.
    final = threading.Thread(target=slow_request, args=(2,))
    final.start()
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        stats = client.stats()
        if stats.ok and stats.payload["admission"]["in_flight"] >= 1:
            break
        time.sleep(0.02)
    else:
        return fail("final slow request never entered the gate", server)
    server.send_signal(signal.SIGTERM)
    final.join(timeout=120)
    reply = slow_replies.get(2)
    if reply is None or not reply.ok:
        return fail(f"in-flight request dropped during drain: {reply}", server)
    print("drain: ok (in-flight request answered 200 after SIGTERM)")

    code = server.wait(timeout=120)
    pump_thread.join(timeout=10)
    client.close()
    if code != 0:
        return fail(f"server exited {code}, expected 0", server)
    transcript = "\n".join(lines)
    if "draining" not in transcript or "drained:" not in transcript:
        return fail("drain summary missing from server output", server)
    print("serve smoke (faults + drain): PASS")
    return batch_smoke()


def batch_smoke() -> int:
    """Phase 6: concurrent batch-endpoint traffic across a drain."""
    server = launch(["--queue-depth", "64", "--max-batch", "32"])
    lines: list[str] = []

    port = None
    while port is None:
        line = server.stdout.readline()
        if not line:
            return fail("batch server exited before announcing its port",
                        server)
        lines.append(line.rstrip())
        print(f"  server| {lines[-1]}")
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))

    def pump() -> None:
        for line in server.stdout:
            lines.append(line.rstrip())
            print(f"  server| {lines[-1]}")

    pump_thread = threading.Thread(target=pump, daemon=True)
    pump_thread.start()

    # 8 connections x 4-item batches = 32 concurrent estimation
    # requests: half identical (jess, coalescable by single-flight),
    # half distinct across benchmarks and fidelities.
    distinct = [
        {"benchmark": name, "fidelity": "atomic"}
        for name in ("db", "javac", "mtrt", "compress", "jack", "jess")
    ]
    batches = []
    for index in range(8):
        items = [
            {"benchmark": "jess"},
            {"benchmark": "jess"},
            distinct[index % len(distinct)],
            distinct[(index + 1) % len(distinct)],
        ]
        batches.append(items)
    replies: dict[int, object] = {}

    def post_batch(slot: int) -> None:
        with ServeClient(port=port, timeout_s=300.0) as own:
            replies[slot] = own.run_batch(batches[slot])

    threads = [
        threading.Thread(target=post_batch, args=(slot,))
        for slot in range(len(batches))
    ]
    for thread in threads:
        thread.start()

    # SIGTERM while the batches are in flight: every admitted batch
    # must still be answered in full before the process exits 0.
    probe = ServeClient(port=port, timeout_s=30.0)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        stats = probe.stats()
        if stats.ok and stats.payload["admission"]["in_flight"] >= 1:
            break
        time.sleep(0.02)
    else:
        return fail("batch requests never entered the gate", server)
    probe.close()
    server.send_signal(signal.SIGTERM)
    for thread in threads:
        thread.join(timeout=300)

    jess_results = set()
    total_items = 0
    for slot in range(len(batches)):
        reply = replies.get(slot)
        if reply is None or reply.status != 200:
            return fail(f"batch {slot} failed across drain: {reply}", server)
        items = reply.payload["items"]
        if len(items) != len(batches[slot]):
            return fail(f"batch {slot} returned {len(items)} items, "
                        f"expected {len(batches[slot])}", server)
        for item, sent in zip(items, batches[slot]):
            total_items += 1
            if item["status"] != 200:
                return fail(f"batch {slot} item {sent} -> {item['status']}: "
                            f"{item.get('error')}", server)
            if sent == {"benchmark": "jess"}:
                jess_results.add(
                    repr(sorted(item["result"].items()))
                )
    if len(jess_results) != 1:
        return fail(f"identical jess items returned "
                    f"{len(jess_results)} distinct results", server)
    print(f"batch flood: ok ({total_items} items over {len(batches)} "
          f"connections, identical items bit-identical)")

    code = server.wait(timeout=300)
    pump_thread.join(timeout=10)
    if code != 0:
        return fail(f"batch server exited {code}, expected 0", server)
    transcript = "\n".join(lines)
    if "batching:" not in transcript:
        return fail("batching summary missing from drain output", server)
    print("serve smoke (batch endpoint + drain): PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
