#!/usr/bin/env python
"""Record the golden energy-accounting snapshot used by the regression test.

Runs the six-benchmark suite under both CPU models and writes every
per-mode energy, the per-category power budget (disk included), and the
run totals to ``tests/data/golden_energy.json``.  JSON floats round-trip
exactly through ``repr``, so the regression test can assert bit-identical
values — any change to the floating-point evaluation order of the
accounting pipeline shows up as a hard failure.

Regenerate only when an *intentional* numerical change lands::

    PYTHONPATH=src python scripts/golden_snapshot.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.softwatt import SoftWatt  # noqa: E402
from repro.workloads.specjvm98 import BENCHMARK_NAMES  # noqa: E402

WINDOW = 6_000
SEED = 3
DISK = 1
CPU_MODELS = ("mxs", "mipsy")

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "tests/data/golden_energy.json"
)


def snapshot() -> dict:
    document: dict = {
        "window_instructions": WINDOW,
        "seed": SEED,
        "disk": DISK,
        "benchmarks": {},
    }
    for cpu_model in CPU_MODELS:
        softwatt = SoftWatt(
            cpu_model=cpu_model, window_instructions=WINDOW, seed=SEED,
            use_cache=False,
        )
        for name in BENCHMARK_NAMES:
            result = softwatt.run(name, disk=DISK)
            modes = result.mode_breakdown()
            document["benchmarks"][f"{cpu_model}/{name}"] = {
                "mode_energy_j": {
                    mode.value: row.energy_j for mode, row in modes.items()
                },
                "budget_w": result.power_budget(),
                "total_energy_j": result.total_energy_j,
                "disk_energy_j": result.disk_energy_j,
            }
            print(f"{cpu_model}/{name}: {result.total_energy_j!r} J")
    return document


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args()
    document = snapshot()
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"golden snapshot written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
