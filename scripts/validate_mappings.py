#!/usr/bin/env python
"""Validate every example mapping file against the registry schema.

Run by the CI lint job: each ``examples/mappings/*.json`` must load
cleanly through :class:`repro.ingest.CounterMapping` — well-formed
formulas, known target counters, no duplicates, and full coverage of
every power component's declared counter requirements.  A mapping that
would starve a component fails the build here, before any user prices
wrong energies with it.

Usage::

    PYTHONPATH=src python scripts/validate_mappings.py [DIR]
"""

import pathlib
import sys

from repro.config.system import ConfigError
from repro.ingest import CounterMapping
from repro.power.registry import REGISTRY

DEFAULT_DIR = pathlib.Path(__file__).parent.parent / "examples" / "mappings"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    directory = pathlib.Path(argv[0]) if argv else DEFAULT_DIR
    paths = sorted(directory.glob("*.json"))
    if not paths:
        print(f"error: no mapping files under {directory}", file=sys.stderr)
        return 1
    required = REGISTRY.required_counters()
    failures = 0
    for path in paths:
        try:
            mapping = CounterMapping.load(path)
        except ConfigError as error:
            print(f"FAIL {path}: {error}", file=sys.stderr)
            failures += 1
            continue
        print(f"ok   {path}: {len(mapping.counters)} counters mapped, "
              f"{len(mapping.events())} events referenced, covers all "
              f"{len(required)} required counters")
    if failures:
        print(f"{failures}/{len(paths)} mapping file(s) invalid",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
