#!/usr/bin/env python
"""Benchmark the profiling pipeline and emit ``BENCH_profiling.json``.

Times the three layers the performance work targets:

* the per-instruction hot loop (one cold ``profile_benchmark`` on a
  fresh profiler, MXS and Mipsy),
* a cold ``run_suite`` serially and with a process-pool fan-out
  (verifying the fan-out is bit-identical to the serial run), and
* a warm-cache ``run_suite`` in a fresh instance (verifying the
  persistent cache skips detailed simulation entirely),
* the vectorized timeline sampling path against its pure-Python
  fallback (``timeline_sample``),
* the tiered sweep campaign engine against legacy point-by-point full
  re-simulation (``sweep_serial_vs_campaign``): a Tier-L vdd sweep
  cold and warm, plus a structural l1_size sweep fanned out over
  workers against a warm profile cache, and
* the fidelity ladder (``fidelity_tiers``): the atomic and sampled
  execution tiers against detailed Mipsy over the whole suite,
  reporting represented instructions/sec and per-benchmark /
  per-component energy error against the detailed runs.  Error bounds
  (atomic <= 10%, sampled <= 2% total energy) are enforced always;
  the speedup gates (atomic >= 10x, sampled >= 2.5x) only in full mode —
  at quick-mode windows the fixed sampling floors leave too little to
  skip for the asymptotic ratios to show,
* the estimation service (``serve``): an in-process ``repro serve``
  instance answering ``POST /run`` over loopback HTTP.  The cold
  figure is the first request on a fresh engine (profiles computed
  in-process); the warm figures (requests/sec, p50/p99 latency) come
  from the resident instance answering from memory.  The served
  answer must be bit-identical to the serial pipeline's run,
* batched serving (``serve_batch``): 32 concurrent identical warm
  requests against the per-request path and against the batch
  scheduler (single-flight deduplication + lockstep batching); every
  concurrent response must be bit-identical to the solo-served reply
  and the scheduler path must clear a 2x requests/sec gate.  The
  ``batched_suite`` stage also fits the serial-vs-batched breakeven
  lane count (``calibrated_min_runs``) that ``cpu/batch.py`` reads
  back at runtime.

Every comparison asserts bit-identical results (bounded error for the
fidelity tiers) and exits non-zero on divergence.  ``--quick`` shrinks
the window and repeats for CI smoke runs.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pickle
import platform
import shutil
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config.system import SystemConfig  # noqa: E402
from repro.core.campaign import SweepCampaign, sweep_source  # noqa: E402
from repro.core.profiles import Profiler  # noqa: E402
from repro.core.softwatt import SoftWatt  # noqa: E402
from repro.core.timeline import (  # noqa: E402
    PURE_PYTHON_ENV,
    TimelineSimulator,
    vectorized_sampling,
)
from repro.cpu.batch import (  # noqa: E402
    BatchTask,
    batched_execution,
    profile_benchmarks_batched,
)
from repro.stats.postprocess import total_energy_j  # noqa: E402
from repro.workloads.specjvm98 import BENCHMARK_NAMES, benchmark  # noqa: E402

SEED_BASELINE = {
    "commit": "1c2e9c5",
    "window_instructions": 20_000,
    "seed": 1,
    "suite_serial_cold_s": 11.895,
}
"""Cold serial ``run_suite`` wall time measured at the growth-seed
commit (pre-optimization) on the reference machine, for the speedup
figure below.  Only comparable when run with the same window and seed
on similar hardware."""


def _time(fn, repeats: int) -> dict:
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return {"best_s": min(times), "times_s": times, "_result": result}


def _profile_instructions(profile) -> int:
    """Detailed-simulation instructions recorded in one profile."""
    total = profile.idle.stats.instructions
    for phase in profile.phases.values():
        total += sum(chunk.instructions for chunk in phase.chunks)
    return total


def _batch_configs(count: int) -> list:
    """Structurally distinct configs for the batched-suite lanes
    (mirrors the tiered-campaign structural axis)."""
    base = SystemConfig.table1()
    configs = []
    for index in range(count):
        tlb = dataclasses.replace(
            base.tlb, entries=(48, 64, 96, 128)[index % 4]
        )
        l2 = dataclasses.replace(
            base.l2,
            size_bytes=(512 * 1024, 1024 * 1024)[(index // 4) % 2],
            associativity=(2, 4)[(index // 8) % 2] if index >= 8 else base.l2.associativity,
        )
        configs.append(dataclasses.replace(base, tlb=tlb, l2=l2))
    return configs


def _suite_fingerprint(results) -> list:
    return [
        (name, r.total_energy_j, r.disk_energy_j, r.timeline.duration_s)
        for name, r in sorted(results.items())
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--window", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats for the hot-loop timings")
    parser.add_argument("--out", default="BENCH_profiling.json")
    parser.add_argument("--quick", action="store_true",
                        help="small window, single repeats (CI smoke)")
    args = parser.parse_args()
    if args.quick:
        args.window = min(args.window, 6000)
        args.repeats = 1
    args.repeats = max(1, args.repeats)
    cpu_count = os.cpu_count() or 1

    window, seed = args.window, args.seed
    report: dict = {
        "metadata": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "window_instructions": window,
            "seed": seed,
            "workers": args.workers,
            "quick": args.quick,
        },
        "seed_baseline": SEED_BASELINE,
    }

    # Layer 3: the per-instruction hot loop, cold, per CPU model.
    spec = benchmark("jess")
    for model in ("mxs", "mipsy"):
        timing = _time(
            lambda m=model: Profiler(
                cpu_model=m, window_instructions=window, seed=seed
            ).profile_benchmark(spec),
            args.repeats,
        )
        instructions = _profile_instructions(timing.pop("_result"))
        timing["instructions"] = instructions
        timing["instructions_per_sec"] = round(
            instructions / timing["best_s"], 1
        )
        report[f"hot_loop_{model}"] = timing
        print(f"hot loop ({model}, jess, window {window}): "
              f"{timing['best_s']:.3f} s best of {args.repeats} "
              f"({timing['instructions_per_sec']:,.0f} instr/s)")

    # Batched SoA execution: many (config, benchmark) lanes advanced in
    # lockstep by repro.cpu.batch vs the serial scalar Mipsy core.  The
    # stage uses its own lane count and window (the batch engine's
    # sweet spot is wide batches); the serial arm times one config's
    # six benchmarks and the identity check compares those lanes
    # field-for-field against the batched output.
    batch_stage: dict = {"enabled": batched_execution()}
    if batched_execution():
        n_configs = 4 if args.quick else 24
        batch_window = 12_000 if args.quick else 60_000
        configs = _batch_configs(n_configs)
        tasks = [
            BatchTask(
                spec=benchmark(name), config=config,
                window_instructions=batch_window, seed=seed,
            )
            for config in configs
            for name in BENCHMARK_NAMES
        ]
        serial_timing = _time(
            lambda: [
                Profiler(
                    config=configs[0], cpu_model="mipsy",
                    window_instructions=batch_window, seed=seed,
                ).profile_benchmark(benchmark(name))
                for name in BENCHMARK_NAMES
            ],
            1,
        )
        serial_profiles = serial_timing.pop("_result")
        serial_instructions = sum(
            _profile_instructions(p) for p in serial_profiles
        )
        batched_timing = _time(lambda: profile_benchmarks_batched(tasks), 1)
        batched_profiles = batched_timing.pop("_result")
        batched_instructions = sum(
            _profile_instructions(p) for p in batched_profiles
        )
        # A second, small batched arm over the serial arm's own lanes:
        # two points on t_batched(L) = a + b*L fit the lockstep setup
        # cost (a) and marginal lane cost (b); the serial arm gives the
        # scalar per-lane cost (c).  The serial-vs-batched breakeven
        # a / (c - b) replaces the hardcoded BATCH_MIN_RUNS default at
        # runtime (cpu/batch.batch_min_runs reads it back from this
        # stage in BENCH_profiling.json).
        small_tasks = tasks[: len(BENCHMARK_NAMES)]
        small_timing = _time(
            lambda: profile_benchmarks_batched(small_tasks), 1
        )
        small_timing.pop("_result")
        identical = all(
            pickle.dumps(batched_profiles[i]) == pickle.dumps(serial_profiles[i])
            for i in range(len(BENCHMARK_NAMES))
        )
        serial_ips = serial_instructions / serial_timing["best_s"]
        batched_ips = batched_instructions / batched_timing["best_s"]
        lanes_small = len(small_tasks)
        lanes_big = len(tasks)
        marginal_s = (
            (batched_timing["best_s"] - small_timing["best_s"])
            / (lanes_big - lanes_small)
        )
        setup_s = small_timing["best_s"] - marginal_s * lanes_small
        scalar_lane_s = serial_timing["best_s"] / lanes_small
        calibration = {
            "setup_s": round(setup_s, 6),
            "batched_lane_s": round(marginal_s, 6),
            "scalar_lane_s": round(scalar_lane_s, 6),
        }
        calibrated_min_runs = None
        if scalar_lane_s > marginal_s and setup_s > 0:
            breakeven = setup_s / (scalar_lane_s - marginal_s)
            calibrated_min_runs = min(max(int(breakeven) + 1, 4), 512)
        elif scalar_lane_s > marginal_s:
            calibrated_min_runs = 4  # batching wins from the start
        batch_stage.update({
            "lanes": len(tasks),
            "window_instructions": batch_window,
            "serial_sample_lanes": len(BENCHMARK_NAMES),
            "serial": {
                **serial_timing,
                "instructions": serial_instructions,
                "instructions_per_sec": round(serial_ips, 1),
            },
            "batched": {
                **batched_timing,
                "instructions": batched_instructions,
                "instructions_per_sec": round(batched_ips, 1),
            },
            "speedup": round(batched_ips / serial_ips, 2),
            "bit_identical_to_serial": identical,
            "small": {**small_timing, "lanes": lanes_small},
            "calibration": calibration,
        })
        if calibrated_min_runs is not None:
            batch_stage["calibrated_min_runs"] = calibrated_min_runs
        print(f"batched suite ({len(tasks)} lanes, window {batch_window}): "
              f"serial {serial_ips:,.0f} instr/s, batched "
              f"{batched_ips:,.0f} instr/s ({batch_stage['speedup']}x, "
              f"bit-identical: {identical}; calibrated breakeven "
              f"{calibrated_min_runs} lanes)")
        if not identical:
            print("ERROR: batched execution diverged from serial scalar",
                  file=sys.stderr)
            return 1
    else:
        print("batched suite: skipped (REPRO_PURE_PYTHON or no numpy)")
    report["batched_suite"] = batch_stage

    # Layer 1: cold suite, serial vs process-pool fan-out.
    serial = _time(
        lambda: SoftWatt(
            window_instructions=window, seed=seed, use_cache=False
        ).run_suite(workers=1),
        1,
    )
    results = serial.pop("_result")
    fingerprint = _suite_fingerprint(results)
    serial["cpu_count"] = cpu_count
    serial["effective_workers"] = 1
    report["suite_serial_cold"] = serial
    print(f"suite cold serial: {serial['best_s']:.3f} s")

    # Accounting stage in isolation: registry evaluation + ledger
    # rollups over the already-recorded logs (the simulate->count half
    # is excluded).  Tracks the PowerComponent-registry overhead.
    def _account():
        return [
            (result.energy_ledger().total_j,
             total_energy_j(result.timeline.log, result.model))
            for result in results.values()
        ]

    accounting = _time(_account, max(3, args.repeats))
    accounting.pop("_result")
    accounting["log_records"] = sum(
        len(result.timeline.log) for result in results.values()
    )
    report["accounting_stage"] = accounting
    print(f"accounting stage (ledger evaluation over "
          f"{accounting['log_records']} log records + 6 run ledgers): "
          f"{accounting['best_s']:.3f} s")

    # A process-pool fan-out on a single core only measures pool
    # overhead; skip the stage (annotated) rather than publish a
    # misleading "speedup" figure.
    parallel = None
    if cpu_count <= 1:
        report["suite_parallel_cold"] = {
            "skipped": True,
            "reason": "os.cpu_count() == 1: process-pool fan-out is not "
                      "representative on a single core",
            "cpu_count": cpu_count,
            "workers_requested": args.workers,
        }
        print(f"suite cold workers={args.workers}: skipped "
              f"(single-core host)")
    else:
        parallel_sw = SoftWatt(
            window_instructions=window, seed=seed, use_cache=False
        )
        parallel = _time(
            lambda: parallel_sw.run_suite(workers=args.workers), 1
        )
        identical = _suite_fingerprint(parallel.pop("_result")) == fingerprint
        parallel["bit_identical_to_serial"] = identical
        parallel["cpu_count"] = cpu_count
        parallel["workers_requested"] = args.workers
        parallel["effective_workers"] = (
            parallel_sw.run_report.effective_workers
        )
        report["suite_parallel_cold"] = parallel
        print(f"suite cold workers={args.workers} "
              f"(effective {parallel['effective_workers']}): "
              f"{parallel['best_s']:.3f} s "
              f"(bit-identical to serial: {identical})")
        if not identical:
            print("ERROR: parallel suite diverged from serial",
                  file=sys.stderr)
            return 1

    # Layer 2: warm persistent cache in a fresh instance.
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        SoftWatt(
            window_instructions=window, seed=seed, cache_dir=cache_dir
        ).run_suite(workers=1)
        warm_sw = SoftWatt(
            window_instructions=window, seed=seed, cache_dir=cache_dir
        )
        warm = _time(lambda: warm_sw.run_suite(workers=1), 1)
        identical = _suite_fingerprint(warm.pop("_result")) == fingerprint
        warm["bit_identical_to_serial"] = identical
        warm["detailed_runs"] = warm_sw.profiler.detailed_runs
        report["suite_warm_cache"] = warm
        print(f"suite warm cache: {warm['best_s']:.3f} s "
              f"(detailed simulations: {warm_sw.profiler.detailed_runs}, "
              f"bit-identical: {identical})")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # Layer 4: vectorized timeline sampling.  Replay one benchmark's
    # timeline from its (already computed) detailed profile with the
    # numpy path and again with the pure-Python fallback forced; both
    # must produce the same log to the last bit.
    replay_sw = SoftWatt(window_instructions=window, seed=seed, use_cache=False)
    replay_profile = replay_sw.profile("jess")
    replay_services = replay_sw._cached_service_profiles()

    def _replay():
        timeline = TimelineSimulator(
            replay_profile, disk_policy=1, service_profiles=replay_services
        ).run()
        return (
            len(timeline.log),
            timeline.duration_s,
            total_energy_j(timeline.log, replay_sw.model),
        )

    sample_stage: dict = {"numpy_available": vectorized_sampling()}
    numpy_timing = _time(_replay, max(3, args.repeats))
    numpy_fingerprint = numpy_timing.pop("_result")
    sample_stage["numpy"] = numpy_timing
    os.environ[PURE_PYTHON_ENV] = "1"
    try:
        python_timing = _time(_replay, max(3, args.repeats))
    finally:
        os.environ.pop(PURE_PYTHON_ENV, None)
    python_fingerprint = python_timing.pop("_result")
    sample_stage["pure_python"] = python_timing
    identical = numpy_fingerprint == python_fingerprint
    sample_stage["bit_identical"] = identical
    sample_stage["speedup"] = round(
        python_timing["best_s"] / numpy_timing["best_s"], 2
    )
    report["timeline_sample"] = sample_stage
    print(f"timeline replay (jess): numpy {numpy_timing['best_s']:.3f} s, "
          f"pure python {python_timing['best_s']:.3f} s "
          f"({sample_stage['speedup']}x, bit-identical: {identical})")
    if not identical:
        print("ERROR: numpy sampling diverged from pure python",
              file=sys.stderr)
        return 1

    # Sweep campaign: the tiered engine vs legacy full re-simulation.
    # Tier L (vdd): every point re-prices the cached base timeline; the
    # full arm re-simulates detailed profiling at every point.
    base_vdd = SystemConfig.table1().technology.vdd
    sweep_points = 8 if args.quick else 12
    vdd_values = [
        round(base_vdd * (0.80 + 0.03 * index), 6)
        for index in range(sweep_points)
    ]

    def _point_key(result):
        return [
            (p.value, p.energy_j, p.duration_s, p.average_power_w,
             p.peak_power_w)
            for p in result.points
        ]

    def _campaign(**kwargs):
        return SweepCampaign(
            benchmark="jess", window_instructions=window, seed=seed, **kwargs
        )

    full_arm = _time(
        lambda: _campaign(tier="full", use_cache=False).run("vdd", vdd_values),
        1,
    )
    full_key = _point_key(full_arm.pop("_result"))
    cold_campaign = _campaign(use_cache=False)
    cold_arm = _time(lambda: cold_campaign.run("vdd", vdd_values), 1)
    cold_key = _point_key(cold_arm.pop("_result"))
    warm_arm = _time(lambda: cold_campaign.run("vdd", vdd_values), 1)
    warm_key = _point_key(warm_arm.pop("_result"))
    identical = cold_key == full_key and warm_key == full_key
    tier_l = {
        "parameter": "vdd",
        "points": sweep_points,
        "serial_full_s": full_arm["best_s"],
        "campaign_cold_s": cold_arm["best_s"],
        "campaign_warm_s": warm_arm["best_s"],
        "speedup_cold": round(full_arm["best_s"] / cold_arm["best_s"], 2),
        "speedup_warm": round(full_arm["best_s"] / warm_arm["best_s"], 2),
        "bit_identical": identical,
    }
    print(f"sweep vdd x{sweep_points}: full {tier_l['serial_full_s']:.3f} s, "
          f"campaign cold {tier_l['campaign_cold_s']:.3f} s "
          f"({tier_l['speedup_cold']}x), warm "
          f"{tier_l['campaign_warm_s']:.3f} s ({tier_l['speedup_warm']}x, "
          f"bit-identical: {identical})")
    if not identical:
        print("ERROR: tiered vdd sweep diverged from full re-simulation",
              file=sys.stderr)
        return 1

    # Tier S (l1_size): structural points need full re-simulation; the
    # engine wins by fanning them out over workers against a warm
    # persistent profile cache.
    l1_sizes = [8192, 16384, 65536]
    serial_arm = _time(
        lambda: _campaign(use_cache=False).run("l1_size", l1_sizes), 1
    )
    serial_key = _point_key(serial_arm.pop("_result"))
    sweep_cache = tempfile.mkdtemp(prefix="repro-bench-sweep-cache-")
    try:
        _campaign(cache_dir=sweep_cache, workers=args.workers).run(
            "l1_size", l1_sizes
        )
        warm_parallel_arm = _time(
            lambda: _campaign(cache_dir=sweep_cache, workers=args.workers).run(
                "l1_size", l1_sizes
            ),
            1,
        )
        warm_parallel_key = _point_key(warm_parallel_arm.pop("_result"))
    finally:
        shutil.rmtree(sweep_cache, ignore_errors=True)
    identical = warm_parallel_key == serial_key
    tier_s = {
        "parameter": "l1_size",
        "points": len(l1_sizes),
        "workers": args.workers,
        "cpu_count": cpu_count,
        "serial_cold_s": serial_arm["best_s"],
        "parallel_warm_s": warm_parallel_arm["best_s"],
        "speedup": round(
            serial_arm["best_s"] / warm_parallel_arm["best_s"], 2
        ),
        "bit_identical": identical,
    }
    print(f"sweep l1_size x{len(l1_sizes)}: serial cold "
          f"{tier_s['serial_cold_s']:.3f} s, workers={args.workers} warm "
          f"cache {tier_s['parallel_warm_s']:.3f} s "
          f"({tier_s['speedup']}x, bit-identical: {identical})")
    if not identical:
        print("ERROR: parallel warm-cache sweep diverged from serial",
              file=sys.stderr)
        return 1
    report["sweep_serial_vs_campaign"] = {"tier_l": tier_l, "tier_s": tier_s}

    # Counter ingestion: export the suite's jess log in the external
    # schema, re-ingest it through the identity mapping, verify the
    # re-priced ledger is bit-identical to pricing the simulated log
    # directly, then time a ledger-only vdd sweep over the ingested
    # bundle (sweep_source) — the re-pricing path an external perf log
    # takes, with the tier-L warm campaign as the reference.
    from repro.ingest import (  # noqa: PLC0415
        CounterMapping,
        ingest_log,
        read_counter_log,
        write_counter_log_json,
    )

    jess_result = results["jess"]
    ingest_dir = tempfile.mkdtemp(prefix="repro-bench-ingest-")
    try:
        counters_path = os.path.join(ingest_dir, "jess_counters.json")
        write_counter_log_json(jess_result.timeline.log, counters_path)
        ingest_timing = _time(
            lambda: ingest_log(
                read_counter_log(counters_path), CounterMapping.identity()
            ),
            max(3, args.repeats),
        )
        ingested_run = ingest_timing.pop("_result")
    finally:
        shutil.rmtree(ingest_dir, ignore_errors=True)
    direct_ledger = jess_result.model.price(jess_result.timeline.log)
    ingested_ledger = jess_result.model.price(ingested_run)
    round_trip_identical = (
        ingested_ledger.components == direct_ledger.components
    )
    ingest_points = 50 if args.quick else 200
    ingest_vdd_values = [
        round(base_vdd * (0.80 + 0.002 * index), 6)
        for index in range(ingest_points)
    ]
    reprice_timing = _time(
        lambda: sweep_source(ingested_run, "vdd", ingest_vdd_values),
        max(3, args.repeats),
    )
    reprice_timing.pop("_result")
    reprice_pps = ingest_points / reprice_timing["best_s"]
    tier_l_pps = tier_l["points"] / tier_l["campaign_warm_s"]
    ingest_stage = {
        "log_records": len(jess_result.timeline.log),
        "ingest": ingest_timing,
        "round_trip_bit_identical": round_trip_identical,
        "reprice_points": ingest_points,
        "reprice": reprice_timing,
        "reprice_points_per_sec": round(reprice_pps, 1),
        "tier_l_warm_points_per_sec": round(tier_l_pps, 1),
    }
    report["ingest"] = ingest_stage
    print(f"ingest (jess, {ingest_stage['log_records']} records): parse+map "
          f"{ingest_timing['best_s']:.3f} s, vdd x{ingest_points} re-price "
          f"{reprice_timing['best_s']:.3f} s ({reprice_pps:,.0f} points/s "
          f"vs tier-L warm {tier_l_pps:,.0f}; round-trip bit-identical: "
          f"{round_trip_identical})")
    if not round_trip_identical:
        print("ERROR: ingested round-trip diverged from direct pricing",
              file=sys.stderr)
        return 1

    # Fidelity ladder: atomic and sampled execution vs detailed Mipsy
    # over the whole suite.  Profiling wall time is the figure of merit
    # (that is the layer the tiers accelerate); instr/s is *represented*
    # instructions — every tier accounts for the same budget, the cheap
    # tiers just execute less of it.  Energies come from full
    # (untimed) runs on the already-computed profiles.  The tiers are
    # approximations, so the check is bounded error, not bit-identity;
    # the speedup gates need full-size windows (the detailed warmup /
    # measured-window floors and the atomic slice floor are fixed
    # costs, so short windows skip proportionally less) and are
    # enforced only in full mode.
    fid_window = window if args.quick else max(window, 60_000)
    fid_tiers = ("detailed", "sampled", "atomic")
    fid_runs: dict = {}
    for tier in fid_tiers:
        tier_sw = SoftWatt(
            cpu_model="mipsy", window_instructions=fid_window, seed=seed,
            use_cache=False, fidelity=tier,
        )
        timing = _time(
            lambda sw=tier_sw: [sw.profile(name) for name in BENCHMARK_NAMES],
            1,
        )
        profiles = timing.pop("_result")
        instructions = sum(_profile_instructions(p) for p in profiles)
        timing["instructions_represented"] = instructions
        timing["instructions_per_sec"] = round(
            instructions / timing["best_s"], 1
        )
        fid_runs[tier] = {
            "timing": timing,
            "results": {
                name: tier_sw.run(name) for name in BENCHMARK_NAMES
            },
        }
    fid_detailed = fid_runs["detailed"]
    detailed_ips = fid_detailed["timing"]["instructions_per_sec"]
    fid_stage: dict = {
        "cpu_model": "mipsy",
        "window_instructions": fid_window,
        "quick": args.quick,
        "speedup_gates_enforced": not args.quick,
        "detailed": fid_detailed["timing"],
    }
    error_limits = {"sampled": 0.02, "atomic": 0.10}
    # The sampled gate carries real margin: the reference host has
    # measured the same build anywhere from 2.75x to 3.05x across
    # runs, so a 3.0x gate was flaky by construction.  The error
    # bounds above are the contract; the speedup gates only catch
    # order-of-magnitude regressions.
    speedup_gates = {"sampled": 2.5, "atomic": 10.0}
    failures = []
    for tier in ("sampled", "atomic"):
        timing = fid_runs[tier]["timing"]
        speedup = timing["instructions_per_sec"] / detailed_ips
        energy_errors = {}
        component_errors: dict[str, float] = {}
        for name in BENCHMARK_NAMES:
            got = fid_runs[tier]["results"][name]
            want = fid_detailed["results"][name]
            energy_errors[name] = round(
                abs(got.total_energy_j - want.total_energy_j)
                / want.total_energy_j,
                5,
            )
            got_components = got.energy_ledger().components
            want_components = want.energy_ledger().components
            for component, want_j in want_components.items():
                # Per-component error as a share of the run's total
                # detailed energy: relative-to-itself error on a
                # microjoule component is noise, not fidelity.
                error = abs(
                    got_components.get(component, 0.0) - want_j
                ) / want.total_energy_j
                component_errors[component] = max(
                    component_errors.get(component, 0.0), round(error, 5)
                )
        max_error = max(energy_errors.values())
        entry = {
            **timing,
            "speedup_vs_detailed": round(speedup, 2),
            "energy_error_by_benchmark": energy_errors,
            "max_energy_error": max_error,
            "max_component_error_of_total": component_errors,
            "error_limit": error_limits[tier],
            "speedup_gate": speedup_gates[tier],
        }
        fid_stage[tier] = entry
        print(f"fidelity {tier} (mipsy, window {fid_window}): "
              f"{timing['best_s']:.3f} s, "
              f"{timing['instructions_per_sec']:,.0f} instr/s "
              f"({speedup:.2f}x detailed), max energy error "
              f"{max_error * 100:.2f}%")
        if max_error > error_limits[tier]:
            failures.append(
                f"{tier} tier max energy error {max_error * 100:.2f}% "
                f"exceeds {error_limits[tier] * 100:.0f}%"
            )
        if not args.quick and speedup < speedup_gates[tier]:
            failures.append(
                f"{tier} tier speedup {speedup:.2f}x below "
                f"{speedup_gates[tier]:.0f}x gate"
            )
    report["fidelity_tiers"] = fid_stage
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    if failures:
        return 1

    # Estimation service: an in-process `repro serve` answering
    # `POST /run` over loopback HTTP.  Cold = the first request on a
    # fresh engine (detailed profiling happens inside the request);
    # warm = the resident instance pricing from memory.  Both answers
    # must match the serial pipeline's jess run to the last bit.
    from repro.serve import (  # noqa: PLC0415
        EstimationEngine,
        EstimationHTTPServer,
        ServeClient,
        serve_forever,
    )

    def _percentile_ms(sorted_s: list, q: float) -> float:
        pos = (len(sorted_s) - 1) * q
        lo = int(pos)
        hi = min(lo + 1, len(sorted_s) - 1)
        value = sorted_s[lo] + (sorted_s[hi] - sorted_s[lo]) * (pos - lo)
        return round(value * 1000, 3)

    serve_engine = EstimationEngine(
        window_instructions=window, seed=seed, use_cache=False
    )
    serve_server = EstimationHTTPServer(("127.0.0.1", 0), serve_engine)
    serve_thread = threading.Thread(
        target=serve_forever, args=(serve_server,), daemon=True
    )
    serve_thread.start()
    try:
        with ServeClient(port=serve_server.server_address[1]) as client:
            start = time.perf_counter()
            cold_reply = client.run("jess")
            serve_cold_s = time.perf_counter() - start
            warm_requests = 40 if args.quick else 200
            latencies = []
            warm_reply = cold_reply
            warm_start = time.perf_counter()
            for _ in range(warm_requests):
                begin = time.perf_counter()
                warm_reply = client.run("jess")
                latencies.append(time.perf_counter() - begin)
            warm_wall_s = time.perf_counter() - warm_start
    finally:
        serve_server.begin_drain()
        serve_thread.join(timeout=120)
    pipeline_energy = results["jess"].total_energy_j
    identical = (
        cold_reply.ok
        and warm_reply.ok
        and not cold_reply.payload["degraded"]
        and not warm_reply.payload["degraded"]
        and cold_reply.payload["result"]["total_energy_j"] == pipeline_energy
        and warm_reply.payload["result"]["total_energy_j"] == pipeline_energy
    )
    latencies.sort()
    serve_stage = {
        "cold": {"first_request_s": round(serve_cold_s, 4)},
        "warm": {
            "requests": warm_requests,
            "p50_ms": _percentile_ms(latencies, 0.50),
            "p99_ms": _percentile_ms(latencies, 0.99),
            "requests_per_sec": round(warm_requests / warm_wall_s, 1),
        },
        "bit_identical_to_pipeline": identical,
    }
    report["serve"] = serve_stage
    print(f"serve (jess over HTTP): cold {serve_cold_s:.3f} s, warm "
          f"x{warm_requests} {serve_stage['warm']['requests_per_sec']:,.0f} "
          f"req/s (p50 {serve_stage['warm']['p50_ms']:.1f} ms, p99 "
          f"{serve_stage['warm']['p99_ms']:.1f} ms, bit-identical: "
          f"{identical})")
    if not identical:
        print("ERROR: served answer diverged from the serial pipeline",
              file=sys.stderr)
        return 1

    # Batched serving: 32 concurrent identical warm requests against
    # the per-request path and against the batch scheduler
    # (single-flight deduplication collapses them to one simulation).
    # Every concurrent response must be bit-identical to the
    # solo-served reply; the scheduler path must be >= 2x requests/sec.
    from repro.serve import BatchScheduler  # noqa: PLC0415

    concurrency = 32

    def _fire_concurrent(port, payload, count):
        replies = [None] * count
        barrier = threading.Barrier(count + 1)

        def worker(i):
            with ServeClient(port=port, timeout_s=600) as worker_client:
                worker_client.healthz()  # connect before the clock starts
                barrier.wait()
                replies[i] = worker_client.post("/run", payload)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(count)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()  # all connections up: the clock starts here
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        return replies, time.perf_counter() - start

    batch_payload = {"benchmark": "jess"}
    arms: dict = {}
    solo_result = None
    batch_snapshot = None
    for mode in ("per_request", "batched"):
        arm_engine = EstimationEngine(
            window_instructions=window, seed=seed, use_cache=False
        )
        arm_scheduler = (
            BatchScheduler(arm_engine) if mode == "batched" else None
        )
        arm_server = EstimationHTTPServer(
            ("127.0.0.1", 0), arm_engine,
            queue_depth=concurrency * 2, scheduler=arm_scheduler,
        )
        arm_thread = threading.Thread(
            target=serve_forever, args=(arm_server,), daemon=True
        )
        arm_thread.start()
        try:
            with ServeClient(port=arm_server.server_address[1]) as client:
                warm_reply = client.post("/run", batch_payload)
            if solo_result is None:
                # The per-request arm's warm reply is the solo-served
                # reference every concurrent response must match.
                solo_result = warm_reply.payload["result"]
            replies, wall_s = _fire_concurrent(
                arm_server.server_address[1], batch_payload, concurrency
            )
        finally:
            arm_server.begin_drain()
            arm_thread.join(timeout=300)
        arm_identical = warm_reply.payload["result"] == solo_result and all(
            reply.status == 200 and reply.payload["result"] == solo_result
            for reply in replies
        )
        arms[mode] = {
            "wall_s": round(wall_s, 4),
            "requests_per_sec": round(concurrency / wall_s, 1),
            "bit_identical_to_solo": arm_identical,
        }
        if mode == "batched":
            coalesced = sum(
                1 for reply in replies if reply.payload.get("coalesced")
            )
            arms[mode]["coalesced_replies"] = coalesced
            batch_snapshot = arm_scheduler.snapshot()
        if not arm_identical:
            print(f"ERROR: serve_batch {mode} arm diverged from the "
                  f"solo-served reply", file=sys.stderr)
            return 1
    if solo_result["total_energy_j"] != pipeline_energy:
        print("ERROR: serve_batch solo reference diverged from the "
              "serial pipeline", file=sys.stderr)
        return 1
    batch_speedup = round(
        arms["batched"]["requests_per_sec"]
        / arms["per_request"]["requests_per_sec"],
        2,
    )
    report["serve_batch"] = {
        "concurrency": concurrency,
        "per_request": arms["per_request"],
        "batched": arms["batched"],
        "speedup": batch_speedup,
        "scheduler": batch_snapshot,
    }
    print(f"serve batch (jess x{concurrency} concurrent): per-request "
          f"{arms['per_request']['requests_per_sec']:,.0f} req/s, batched "
          f"{arms['batched']['requests_per_sec']:,.0f} req/s "
          f"({batch_speedup}x, {arms['batched']['coalesced_replies']} "
          f"coalesced, bit-identical: true)")
    if batch_speedup < 2.0:
        print(f"ERROR: batched serving speedup {batch_speedup}x below "
              f"2x gate", file=sys.stderr)
        return 1

    if (
        window == SEED_BASELINE["window_instructions"]
        and seed == SEED_BASELINE["seed"]
    ):
        baseline = SEED_BASELINE["suite_serial_cold_s"]
        report["speedup_vs_seed_serial"] = round(baseline / serial["best_s"], 2)
        line = (f"cold-suite speedup vs seed commit (serial baseline "
                f"{baseline} s): serial {baseline / serial['best_s']:.2f}x")
        if parallel is not None:
            best_cold = min(serial["best_s"], parallel["best_s"])
            report["speedup_parallel_vs_seed_serial"] = round(
                baseline / parallel["best_s"], 2
            )
            report["speedup_best_cold_vs_seed_serial"] = round(
                baseline / best_cold, 2
            )
            line += f", workers={args.workers} {baseline / parallel['best_s']:.2f}x"
        print(line)

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
