#!/usr/bin/env python
"""Benchmark the profiling pipeline and emit ``BENCH_profiling.json``.

Times the three layers the performance work targets:

* the per-instruction hot loop (one cold ``profile_benchmark`` on a
  fresh profiler, MXS and Mipsy),
* a cold ``run_suite`` serially and with a process-pool fan-out
  (verifying the fan-out is bit-identical to the serial run), and
* a warm-cache ``run_suite`` in a fresh instance (verifying the
  persistent cache skips detailed simulation entirely).

``--quick`` shrinks the window and repeats for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.profiles import Profiler  # noqa: E402
from repro.core.softwatt import SoftWatt  # noqa: E402
from repro.workloads.specjvm98 import benchmark  # noqa: E402

SEED_BASELINE = {
    "commit": "1c2e9c5",
    "window_instructions": 20_000,
    "seed": 1,
    "suite_serial_cold_s": 11.895,
}
"""Cold serial ``run_suite`` wall time measured at the growth-seed
commit (pre-optimization) on the reference machine, for the speedup
figure below.  Only comparable when run with the same window and seed
on similar hardware."""


def _time(fn, repeats: int) -> dict:
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return {"best_s": min(times), "times_s": times, "_result": result}


def _suite_fingerprint(results) -> list:
    return [
        (name, r.total_energy_j, r.disk_energy_j, r.timeline.duration_s)
        for name, r in sorted(results.items())
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--window", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats for the hot-loop timings")
    parser.add_argument("--out", default="BENCH_profiling.json")
    parser.add_argument("--quick", action="store_true",
                        help="small window, single repeats (CI smoke)")
    args = parser.parse_args()
    if args.quick:
        args.window = min(args.window, 6000)
        args.repeats = 1
    args.repeats = max(1, args.repeats)

    window, seed = args.window, args.seed
    report: dict = {
        "metadata": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "window_instructions": window,
            "seed": seed,
            "workers": args.workers,
            "quick": args.quick,
        },
        "seed_baseline": SEED_BASELINE,
    }

    # Layer 3: the per-instruction hot loop, cold, per CPU model.
    spec = benchmark("jess")
    for model in ("mxs", "mipsy"):
        timing = _time(
            lambda m=model: Profiler(
                cpu_model=m, window_instructions=window, seed=seed
            ).profile_benchmark(spec),
            args.repeats,
        )
        timing.pop("_result")
        report[f"hot_loop_{model}"] = timing
        print(f"hot loop ({model}, jess, window {window}): "
              f"{timing['best_s']:.3f} s best of {args.repeats}")

    # Layer 1: cold suite, serial vs process-pool fan-out.
    serial = _time(
        lambda: SoftWatt(
            window_instructions=window, seed=seed, use_cache=False
        ).run_suite(workers=1),
        1,
    )
    results = serial.pop("_result")
    fingerprint = _suite_fingerprint(results)
    report["suite_serial_cold"] = serial
    print(f"suite cold serial: {serial['best_s']:.3f} s")

    # Accounting stage in isolation: registry evaluation + ledger
    # rollups over the already-recorded logs (the simulate->count half
    # is excluded).  Tracks the PowerComponent-registry overhead.
    from repro.stats.postprocess import total_energy_j

    def _account():
        return [
            (result.energy_ledger().total_j,
             total_energy_j(result.timeline.log, result.model))
            for result in results.values()
        ]

    accounting = _time(_account, max(3, args.repeats))
    accounting.pop("_result")
    accounting["log_records"] = sum(
        len(result.timeline.log) for result in results.values()
    )
    report["accounting_stage"] = accounting
    print(f"accounting stage (ledger evaluation over "
          f"{accounting['log_records']} log records + 6 run ledgers): "
          f"{accounting['best_s']:.3f} s")

    parallel = _time(
        lambda: SoftWatt(
            window_instructions=window, seed=seed, use_cache=False
        ).run_suite(workers=args.workers),
        1,
    )
    identical = _suite_fingerprint(parallel.pop("_result")) == fingerprint
    parallel["bit_identical_to_serial"] = identical
    report["suite_parallel_cold"] = parallel
    print(f"suite cold workers={args.workers}: {parallel['best_s']:.3f} s "
          f"(bit-identical to serial: {identical})")
    if not identical:
        print("ERROR: parallel suite diverged from serial", file=sys.stderr)
        return 1

    # Layer 2: warm persistent cache in a fresh instance.
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        SoftWatt(
            window_instructions=window, seed=seed, cache_dir=cache_dir
        ).run_suite(workers=1)
        warm_sw = SoftWatt(
            window_instructions=window, seed=seed, cache_dir=cache_dir
        )
        warm = _time(lambda: warm_sw.run_suite(workers=1), 1)
        identical = _suite_fingerprint(warm.pop("_result")) == fingerprint
        warm["bit_identical_to_serial"] = identical
        warm["detailed_runs"] = warm_sw.profiler.detailed_runs
        report["suite_warm_cache"] = warm
        print(f"suite warm cache: {warm['best_s']:.3f} s "
              f"(detailed simulations: {warm_sw.profiler.detailed_runs}, "
              f"bit-identical: {identical})")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    if (
        window == SEED_BASELINE["window_instructions"]
        and seed == SEED_BASELINE["seed"]
    ):
        baseline = SEED_BASELINE["suite_serial_cold_s"]
        best_cold = min(serial["best_s"], parallel["best_s"])
        report["speedup_vs_seed_serial"] = round(baseline / serial["best_s"], 2)
        report["speedup_parallel_vs_seed_serial"] = round(
            baseline / parallel["best_s"], 2
        )
        report["speedup_best_cold_vs_seed_serial"] = round(baseline / best_cold, 2)
        print(f"cold-suite speedup vs seed commit (serial baseline "
              f"{baseline} s): serial {baseline / serial['best_s']:.2f}x, "
              f"workers={args.workers} {baseline / parallel['best_s']:.2f}x")

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
