#!/usr/bin/env python
"""Calibration dashboard: paper targets vs measured, per benchmark.

Run after changing workload signatures, kernel-service bodies, or the
power models.  Prints Table 2 / Table 3 style numbers plus the power
budget, against the paper's published values.
"""

from __future__ import annotations

import argparse

from repro import SoftWatt
from repro.kernel.modes import ExecutionMode
from repro.workloads import BENCHMARK_NAMES
from repro.workloads.paper_data import TABLE2, TABLE3

PAPER_TABLE2 = {
    name: (row.user_cycles, row.kernel_cycles, row.sync_cycles,
           row.idle_cycles, row.user_energy, row.kernel_energy,
           row.sync_energy, row.idle_energy)
    for name, row in TABLE2.items()
}
PAPER_TABLE3_USER = {name: row.user for name, row in TABLE3.items()}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--window", type=int, default=40_000)
    parser.add_argument("--benchmarks", nargs="*", default=list(BENCHMARK_NAMES))
    parser.add_argument("--cpu", default="mxs")
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for the profiling stage")
    args = parser.parse_args()

    sw = SoftWatt(cpu_model=args.cpu, window_instructions=args.window, seed=1,
                  workers=args.workers)
    print(f"R10000 max power: {sw.validate_max_power():.2f} W (paper: 25.3)")
    sw.profile_many(tuple(args.benchmarks))
    budgets = []
    for name in args.benchmarks:
        result = sw.run(name, disk=1)
        modes = result.mode_breakdown()
        rates = result.cache_rates()
        paper2 = PAPER_TABLE2[name]
        paper3 = PAPER_TABLE3_USER[name]
        u, k, s, i = (modes[m] for m in (
            ExecutionMode.USER, ExecutionMode.KERNEL, ExecutionMode.SYNC,
            ExecutionMode.IDLE))
        print(f"\n=== {name} (dur {result.timeline.duration_s:.1f}s) ===")
        print(f"  cycles%  user {u.cycles_pct:5.1f} (paper {paper2[0]:5.1f})  "
              f"kern {k.cycles_pct:5.1f} ({paper2[1]:5.1f})  "
              f"sync {s.cycles_pct:4.2f} ({paper2[2]:4.2f})  "
              f"idle {i.cycles_pct:5.1f} ({paper2[3]:5.1f})")
        print(f"  energy%  user {u.energy_pct:5.1f} (paper {paper2[4]:5.1f})  "
              f"kern {k.energy_pct:5.1f} ({paper2[5]:5.1f})  "
              f"sync {s.energy_pct:4.2f} ({paper2[6]:4.2f})  "
              f"idle {i.energy_pct:5.1f} ({paper2[7]:5.1f})")
        ru = rates[ExecutionMode.USER]
        rk = rates[ExecutionMode.KERNEL]
        rs = rates[ExecutionMode.SYNC]
        ri = rates[ExecutionMode.IDLE]
        print(f"  user iL1/c {ru.il1_per_cycle:.2f} (paper {paper3[0]:.2f})  "
              f"dL1/c {ru.dl1_per_cycle:.2f} ({paper3[1]:.2f})")
        print(f"  kern iL1/c {rk.il1_per_cycle:.2f} (~1.08)  dL1/c {rk.dl1_per_cycle:.2f} (~0.20)")
        print(f"  sync iL1/c {rs.il1_per_cycle:.2f} (~1.55)  idle iL1/c {ri.il1_per_cycle:.2f} (~0.78)")
        rows = result.service_breakdown()
        top = "  ".join(
            f"{r.service}:{r.kernel_cycles_pct:.0f}%/{r.kernel_energy_pct:.0f}%"
            for r in rows[:4]
        )
        print(f"  kernel services (cyc%/en%): {top}")
        budget = result.power_budget_shares()
        budgets.append(budget)
        print("  budget: " + "  ".join(f"{kk}:{vv:.1f}%" for kk, vv in budget.items()))
    if len(budgets) == len(BENCHMARK_NAMES):
        avg = {
            key: sum(b[key] for b in budgets) / len(budgets) for key in budgets[0]
        }
        print("\n=== suite-average budget (paper Fig5: dp15 l1d6 l1i22 clk22 mem<1 disk34) ===")
        print("  " + "  ".join(f"{kk}:{vv:.1f}%" for kk, vv in avg.items()))


if __name__ == "__main__":
    main()
