"""Process-pool fan-out for the detailed profiling stage.

Profiling is embarrassingly parallel: each benchmark (and each kernel
service) is profiled on a *fresh* machine state whose seeds derive only
from the benchmark spec and the profiler seed, so results are
independent of profiling order and of which process performed the work.
This module exploits that: :func:`parallel_map` fans tasks out over a
``fork`` process pool, and the task dataclasses below carry everything
a child needs to rebuild a :class:`~repro.core.profiles.Profiler` and
produce a bit-identical result.

``workers <= 1`` (the default everywhere) never touches
``multiprocessing``.  The fan-out itself runs under the
:mod:`repro.resilience` supervisor: per-task timeouts, bounded retries,
and broken-pool recovery that requeues only the unfinished tasks —
every deviation from the clean path is recorded in a
:class:`~repro.resilience.runreport.RunReport` and logged through
:func:`repro.stats.simlog.log_degradation`, never swallowed.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence, TypeVar

from repro.config.system import SystemConfig
from repro.core.profiles import (
    BenchmarkProfile,
    Profiler,
    ServiceInvocationProfile,
)
from repro.power.processor import ProcessorPowerModel
from repro.resilience.faults import FaultPlan
from repro.resilience.runreport import RunReport
from repro.resilience.supervisor import SupervisorPolicy, supervised_map
from repro.workloads.specjvm98 import BenchmarkSpec

_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    workers: int = 1,
    task_timeout: float | None = None,
    retries: int = 2,
    best_effort: bool = False,
    labels: Sequence[str] | None = None,
    fault_plan: FaultPlan | None = None,
    report: RunReport | None = None,
) -> list[_R]:
    """``[fn(item) for item in items]``, fanned out over ``workers``.

    Order of results matches the order of ``items`` regardless of
    completion order, so callers can zip them back deterministically.
    Execution is supervised (see :mod:`repro.resilience.supervisor`):
    a broken pool requeues only unfinished tasks, a task exceeding
    ``task_timeout`` seconds is retried up to ``retries`` times, and a
    platform without ``fork`` degrades to the serial path with a logged
    degradation instead of a silent full re-run.  Pass ``report`` to
    accumulate the run's :class:`RunReport`; with ``best_effort`` a
    task that exhausts its retries yields ``None`` instead of raising
    :class:`~repro.resilience.supervisor.TaskExecutionError`.
    """
    policy = SupervisorPolicy(
        task_timeout_s=task_timeout,
        retries=retries,
        best_effort=best_effort,
    )
    results, run_report = supervised_map(
        fn,
        items,
        workers=workers,
        policy=policy,
        labels=labels,
        fault_plan=fault_plan,
    )
    if report is not None:
        report.merge(run_report)
    return results


# ---------------------------------------------------------------------------
# Picklable profiling tasks
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ProfileBenchmarkTask:
    """Everything a child process needs to profile one benchmark."""

    spec: BenchmarkSpec
    config: SystemConfig
    cpu_model: str
    window_instructions: int
    startup_chunks: int
    steady_chunks: int
    seed: int


@dataclasses.dataclass(frozen=True)
class ProfileServiceTask:
    """Everything a child process needs to profile one kernel service."""

    service: str
    config: SystemConfig
    cpu_model: str
    invocations: int
    warmup: int
    seed: int


def _make_profiler(task: ProfileBenchmarkTask | ProfileServiceTask, **kwargs) -> Profiler:
    return Profiler(
        task.config,
        cpu_model=task.cpu_model,
        seed=task.seed,
        **kwargs,
    )


def run_profile_benchmark_task(task: ProfileBenchmarkTask) -> BenchmarkProfile:
    """Profile one benchmark on a fresh profiler (child-process entry)."""
    profiler = _make_profiler(
        task,
        window_instructions=task.window_instructions,
        startup_chunks=task.startup_chunks,
        steady_chunks=task.steady_chunks,
    )
    return profiler.profile_benchmark(task.spec)


def run_profile_service_task(task: ProfileServiceTask) -> ServiceInvocationProfile:
    """Profile one kernel service on a fresh profiler (child-process entry)."""
    profiler = _make_profiler(task)
    model = ProcessorPowerModel(task.config)
    return profiler.profile_service(
        task.service,
        model,
        invocations=task.invocations,
        warmup=task.warmup,
    )


@dataclasses.dataclass(frozen=True)
class SweepPointTask:
    """Everything a child process needs to evaluate one design point.

    Used by the campaign engine's structural tier: the child rebuilds a
    fresh :class:`~repro.core.softwatt.SoftWatt` (hitting the shared
    persistent profile cache when one is configured) and returns the
    condensed :class:`~repro.core.campaign.SweepPoint`, which is small
    and picklable — full results stay in the child.
    """

    value: object
    config: SystemConfig
    policy: object
    benchmark: str
    cpu_model: str
    window_instructions: int
    sample_interval_s: float
    seed: int
    idle_policy: str
    cache_dir: object
    use_cache: bool


def run_sweep_point_task(task: SweepPointTask):
    """Simulate one design point end to end (child-process entry)."""
    # Imported lazily: campaign imports this module for the fan-out.
    from repro.core.campaign import point_from_result  # noqa: PLC0415
    from repro.core.softwatt import SoftWatt  # noqa: PLC0415

    softwatt = SoftWatt(
        config=task.config,
        cpu_model=task.cpu_model,
        window_instructions=task.window_instructions,
        sample_interval_s=task.sample_interval_s,
        seed=task.seed,
        cache_dir=task.cache_dir,
        use_cache=task.use_cache,
    )
    result = softwatt.run(
        task.benchmark, disk=task.policy, idle_policy=task.idle_policy
    )
    return point_from_result(task.value, result)


def sweep_points(
    tasks: Iterable[SweepPointTask], *, workers: int = 1, **supervision
) -> list:
    """Evaluate many design points, fanning out when ``workers > 1``.

    ``supervision`` forwards to :func:`parallel_map` (``task_timeout``,
    ``retries``, ``best_effort``, ``fault_plan``, ``report``,
    ``labels``).
    """
    tasks = list(tasks)
    supervision.setdefault(
        "labels", [f"{task.benchmark}:{task.value}" for task in tasks]
    )
    return parallel_map(
        run_sweep_point_task, tasks, workers=workers, **supervision
    )


def profile_benchmarks(
    tasks: Iterable[ProfileBenchmarkTask], *, workers: int = 1, **supervision
) -> list[BenchmarkProfile]:
    """Profile many benchmarks, fanning out when ``workers > 1``.

    ``supervision`` forwards to :func:`parallel_map` (``task_timeout``,
    ``retries``, ``best_effort``, ``fault_plan``, ``report``).
    """
    tasks = list(tasks)
    supervision.setdefault("labels", [task.spec.name for task in tasks])
    return parallel_map(
        run_profile_benchmark_task, tasks, workers=workers, **supervision
    )


def profile_services(
    tasks: Iterable[ProfileServiceTask], *, workers: int = 1, **supervision
) -> list[ServiceInvocationProfile]:
    """Profile many kernel services, fanning out when ``workers > 1``.

    ``supervision`` forwards to :func:`parallel_map` (``task_timeout``,
    ``retries``, ``best_effort``, ``fault_plan``, ``report``).
    """
    tasks = list(tasks)
    supervision.setdefault("labels", [task.service for task in tasks])
    return parallel_map(
        run_profile_service_task, tasks, workers=workers, **supervision
    )
