"""Process-pool fan-out for the detailed profiling stage.

Profiling is embarrassingly parallel: each benchmark (and each kernel
service) is profiled on a *fresh* machine state whose seeds derive only
from the benchmark spec and the profiler seed, so results are
independent of profiling order and of which process performed the work.
This module exploits that: :func:`parallel_map` fans tasks out over a
``fork`` process pool, and the task dataclasses below carry everything
a child needs to rebuild a :class:`~repro.core.profiles.Profiler` and
produce a bit-identical result.

``workers <= 1`` (the default everywhere) never touches
``multiprocessing`` — the serial path is the fallback, and it is also
used automatically when the platform cannot fork or the pool breaks.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence, TypeVar

from repro.config.system import SystemConfig
from repro.core.profiles import (
    BenchmarkProfile,
    Profiler,
    ServiceInvocationProfile,
)
from repro.workloads.specjvm98 import BenchmarkSpec

_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    workers: int = 1,
) -> list[_R]:
    """``[fn(item) for item in items]``, fanned out over ``workers``.

    Order of results matches the order of ``items`` regardless of
    completion order, so callers can zip them back deterministically.
    Falls back to the serial path when the pool cannot be created or
    dies (e.g. no ``fork`` support, resource limits).
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        import concurrent.futures
        import multiprocessing

        context = multiprocessing.get_context("fork")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(items)), mp_context=context
        ) as pool:
            return list(pool.map(fn, items))
    except (ValueError, OSError, ImportError):
        return [fn(item) for item in items]


# ---------------------------------------------------------------------------
# Picklable profiling tasks
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ProfileBenchmarkTask:
    """Everything a child process needs to profile one benchmark."""

    spec: BenchmarkSpec
    config: SystemConfig
    cpu_model: str
    window_instructions: int
    startup_chunks: int
    steady_chunks: int
    seed: int


@dataclasses.dataclass(frozen=True)
class ProfileServiceTask:
    """Everything a child process needs to profile one kernel service."""

    service: str
    config: SystemConfig
    cpu_model: str
    invocations: int
    warmup: int
    seed: int


def _make_profiler(task: ProfileBenchmarkTask | ProfileServiceTask, **kwargs) -> Profiler:
    return Profiler(
        task.config,
        cpu_model=task.cpu_model,
        seed=task.seed,
        **kwargs,
    )


def run_profile_benchmark_task(task: ProfileBenchmarkTask) -> BenchmarkProfile:
    """Profile one benchmark on a fresh profiler (child-process entry)."""
    profiler = _make_profiler(
        task,
        window_instructions=task.window_instructions,
        startup_chunks=task.startup_chunks,
        steady_chunks=task.steady_chunks,
    )
    return profiler.profile_benchmark(task.spec)


def run_profile_service_task(task: ProfileServiceTask) -> ServiceInvocationProfile:
    """Profile one kernel service on a fresh profiler (child-process entry)."""
    from repro.power.processor import ProcessorPowerModel

    profiler = _make_profiler(task)
    model = ProcessorPowerModel(task.config)
    return profiler.profile_service(
        task.service,
        model,
        invocations=task.invocations,
        warmup=task.warmup,
    )


def profile_benchmarks(
    tasks: Iterable[ProfileBenchmarkTask], *, workers: int = 1
) -> list[BenchmarkProfile]:
    """Profile many benchmarks, fanning out when ``workers > 1``."""
    return parallel_map(run_profile_benchmark_task, list(tasks), workers=workers)


def profile_services(
    tasks: Iterable[ProfileServiceTask], *, workers: int = 1
) -> list[ServiceInvocationProfile]:
    """Profile many kernel services, fanning out when ``workers > 1``."""
    return parallel_map(run_profile_service_task, list(tasks), workers=workers)
