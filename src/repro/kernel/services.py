"""Kernel-service handler bodies.

Each IRIX service the paper characterises (Section 3.3 / Table 4) is
modelled as an instruction-level handler body running in kernel address
space (KSEG, untranslated).  The bodies are built so that the paper's
*qualitative* findings emerge from the simulation rather than being
asserted:

* ``utlb`` is short and not data-intensive — it barely touches the
  data cache or load/store queue, so its average power comes out much
  lower than the other services (Figure 8) and its per-invocation
  energy is nearly constant (Table 5's 0.14 % coefficient of
  deviation),
* ``demand_zero`` and ``cacheflush`` are internal services with fixed
  work per invocation (one page zeroed, both L1 caches swept), giving
  small deviations,
* ``read``/``write``/``open`` are externally-invoked I/O services whose
  work depends on the request (transfer size, file-cache residency,
  path length), giving ~7-11 % deviations,
* synchronisation is a tight ll/sc spin loop that intensely exercises
  the L1 I-cache and ALUs (Section 3.2).

Every body yields instructions tagged with the service label so the
CPU models attribute cycles and unit activity to the right service.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

from repro.config.system import PAGE_SIZE, SystemConfig
from repro.isa.instruction import Instruction, OpClass
from repro.isa.stream import copy_loop, memory_walk, spin_loop
from repro.kernel.modes import KERNEL_SERVICES, SYNC_LABEL
from repro.mem.hierarchy import KSEG_BASE, MemoryHierarchy

# Kernel code layout: one region per service so each has stable,
# realistic I-cache behaviour.
UTLB_PC = KSEG_BASE + 0x180
TLB_MISS_PC = KSEG_BASE + 0x2000
VFAULT_PC = KSEG_BASE + 0x3000
DEMAND_ZERO_PC = KSEG_BASE + 0x4000
CACHEFLUSH_PC = KSEG_BASE + 0x5000
READ_PC = KSEG_BASE + 0x6000
WRITE_PC = KSEG_BASE + 0x8000
OPEN_PC = KSEG_BASE + 0xA000
BSD_PC = KSEG_BASE + 0xC000
DU_POLL_PC = KSEG_BASE + 0xE000
XSTAT_PC = KSEG_BASE + 0x1_0000
CLOCK_PC = KSEG_BASE + 0x1_2000
SYNC_PC = KSEG_BASE + 0x1_4000

# Kernel data layout.
PTE_TABLE_BASE = KSEG_BASE + 0x0100_0000
FILE_BUFFER_BASE = KSEG_BASE + 0x0200_0000
KERNEL_HEAP_BASE = KSEG_BASE + 0x0300_0000
ZERO_PAGE_POOL = KSEG_BASE + 0x0400_0000
DEVICE_REGISTERS = KSEG_BASE + 0x0500_0000
USER_COPY_WINDOW = KSEG_BASE + 0x0600_0000

# Handler bodies are deterministic given their parameters and built
# from frozen instructions, so the hot ones are memoized and re-yielded
# (the instructions are immutable; consumers never mutate them).
_PROLOGUE_CACHE: dict[tuple, tuple[Instruction, ...]] = {}
_UTLB_CACHE: dict[int, tuple[Instruction, ...]] = {}
_CACHEFLUSH_CACHE: dict[tuple, tuple[Instruction, ...]] = {}


class KernelServices:
    """Builds handler-body instruction streams for each kernel service.

    Data-dependent invocation parameters (transfer sizes, path depth)
    are drawn from a seeded RNG, making runs deterministic while giving
    the externally-invoked services their characteristic variance.
    """

    def __init__(self, config: SystemConfig, seed: int = 0) -> None:
        self.config = config
        self._rng = random.Random(0x5EF1CE ^ seed)
        self._zero_page_cursor = 0
        self._copy_cursor = 0

    # ------------------------------------------------------------------
    # Small code-shape helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _prologue(
        pc: int,
        count: int,
        service: str,
        *,
        loads_every: int = 0,
        data_base: int = KERNEL_HEAP_BASE,
        data_span: int = 4096,
        chain: bool = True,
    ) -> Iterator[Instruction]:
        """A straight-line mixed entry/exit sequence.

        ``loads_every`` > 0 inserts a kernel-space load every that many
        instructions (argument fetches, table lookups).  ``chain``
        makes each instruction depend on the previous one, giving the
        serial flavour of kernel entry code (low ILP, Section 3.2).

        The sequence is a pure function of the arguments, so it is
        built once per distinct signature and re-yielded.
        """
        key = (pc, count, service, loads_every, data_base, data_span, chain)
        cached = _PROLOGUE_CACHE.get(key)
        if cached is None:
            cached = tuple(
                KernelServices._build_prologue(
                    pc,
                    count,
                    service,
                    loads_every=loads_every,
                    data_base=data_base,
                    data_span=data_span,
                    chain=chain,
                )
            )
            if len(_PROLOGUE_CACHE) >= 256:
                _PROLOGUE_CACHE.clear()
            _PROLOGUE_CACHE[key] = cached
        return iter(cached)

    @staticmethod
    def _build_prologue(
        pc: int,
        count: int,
        service: str,
        *,
        loads_every: int,
        data_base: int,
        data_span: int,
        chain: bool,
    ) -> Iterator[Instruction]:
        prev_dest = 8
        for i in range(count):
            dest = 8 + (i % 4)
            srcs = (prev_dest,) if chain else (8, 9)
            if loads_every and i % loads_every == loads_every - 1:
                address = data_base + (i * 64) % data_span
                yield Instruction(
                    pc=pc + 4 * i,
                    op=OpClass.LOAD,
                    dest=dest,
                    srcs=srcs,
                    address=address,
                    size=8,
                    service=service,
                )
            else:
                yield Instruction(
                    pc=pc + 4 * i,
                    op=OpClass.IALU,
                    dest=dest,
                    srcs=srcs,
                    service=service,
                )
            prev_dest = dest

    @staticmethod
    def _eret(pc: int, service: str) -> Instruction:
        return Instruction(pc=pc, op=OpClass.ERET, taken=True, target=0, service=service)

    # ------------------------------------------------------------------
    # TLB and fault services
    # ------------------------------------------------------------------

    def utlb(self, faulting_address: int) -> Iterator[Instruction]:
        """The fast TLB-refill handler.

        Sixteen instructions: context save, PTE address computation,
        one load of the PTE from the (compact, cache-resident) page
        table, TLB write, and exception return.  No data traffic beyond
        the single PTE load — this is why utlb's average power is far
        below the other services (Figure 8).
        """
        # Page tables are 8 bytes per 4 KB page, packed: hot and tiny.
        pte_address = PTE_TABLE_BASE + ((faulting_address >> 12) & 0x3FF) * 8
        # The body depends only on the PTE slot (1024 of them), and the
        # handler fires on every TLB miss: memoize per slot.
        cached = _UTLB_CACHE.get(pte_address)
        if cached is None:
            cached = tuple(self._build_utlb(pte_address))
            if len(_UTLB_CACHE) >= 1024:
                _UTLB_CACHE.clear()
            _UTLB_CACHE[pte_address] = cached
        return iter(cached)

    @staticmethod
    def _build_utlb(pte_address: int) -> Iterator[Instruction]:
        service = "utlb"
        pc = UTLB_PC
        # Trap entry: context save, EntryHi/BadVAddr/status reads --
        # moderately serial move/shift sequences (two-wide chains), the
        # shape of the hand-written MIPS refill path.
        count = 0
        for i in range(22):
            yield Instruction(
                pc=pc + 4 * count,
                op=OpClass.IALU,
                dest=8 + (i % 4),
                srcs=(8 + ((i + 3) % 4),),
                service=service,
            )
            count += 1
        yield Instruction(
            pc=pc + 4 * count,
            op=OpClass.LOAD,
            dest=26,
            srcs=(9,),
            address=pte_address,
            size=8,
            service=service,
        )
        count += 1
        # TLB entry formatting, EntryLo writes, context restore.
        for i in range(24):
            src_reg = 26 if i % 4 == 0 else 8 + ((i + 3) % 4)
            yield Instruction(
                pc=pc + 4 * count,
                op=OpClass.IALU,
                dest=8 + (i % 4),
                srcs=(src_reg,),
                service=service,
            )
            count += 1
        yield KernelServices._eret(pc + 4 * count, service)

    def tlb_miss(self, faulting_address: int) -> Iterator[Instruction]:
        """The slow, general TLB-miss path (nested/kernel misses)."""
        service = "tlb_miss"
        pc = TLB_MISS_PC
        yield from self._prologue(
            pc,
            48,
            service,
            loads_every=8,
            data_base=PTE_TABLE_BASE,
            data_span=64 * 1024,
        )
        yield self._eret(pc + 4 * 48, service)

    def vfault(self, faulting_address: int) -> Iterator[Instruction]:
        """The validity-fault handler."""
        service = "vfault"
        pc = VFAULT_PC
        yield from self._prologue(
            pc,
            420,
            service,
            loads_every=6,
            data_base=KERNEL_HEAP_BASE,
            data_span=128 * 1024,
        )
        yield self._eret(pc + 4 * 420, service)

    # ------------------------------------------------------------------
    # Memory-management services
    # ------------------------------------------------------------------

    def demand_zero(self) -> Iterator[Instruction]:
        """Zero a newly-allocated page.

        Fixed work per invocation — one 4 KB page of doubleword stores
        — so its per-invocation energy deviation is small (Table 5).
        """
        service = "demand_zero"
        pc = DEMAND_ZERO_PC
        page = ZERO_PAGE_POOL + self._zero_page_cursor * PAGE_SIZE
        self._zero_page_cursor = (self._zero_page_cursor + 1) % 64
        yield from self._prologue(pc, 24, service, loads_every=8)
        yield from memory_walk(
            pc + 4 * 24,
            OpClass.STORE,
            page,
            PAGE_SIZE // 8,
            stride=8,
            size=8,
            service=service,
        )
        yield self._eret(pc + 4 * 24 + 4 * 5, service)

    def cacheflush(self, hierarchy: MemoryHierarchy | None = None) -> Iterator[Instruction]:
        """Flush the I-/D-caches.

        The body sweeps cache-index operations over both L1 caches;
        when ``hierarchy`` is provided, the architectural effect (all
        L1 lines invalidated) is applied as the sweep finishes, so the
        workload pays the cold-miss aftermath exactly as IRIX programs
        do after JIT code generation.
        """
        service = "cacheflush"
        pc = CACHEFLUSH_PC
        yield from self._prologue(pc, 16, service)
        line = self.config.l1i.line_bytes
        lines = (self.config.l1i.num_lines + self.config.l1d.num_lines) // 4
        loop_pc = pc + 4 * 16
        # The sweep is fully static for a given cache geometry; build
        # it once and re-yield.  The architectural flush still happens
        # at consumption time, after the sweep has been yielded.
        key = (loop_pc, line, lines)
        sweep = _CACHEFLUSH_CACHE.get(key)
        if sweep is None:
            sweep = tuple(self._build_cacheflush_sweep(loop_pc, line, lines, service))
            if len(_CACHEFLUSH_CACHE) >= 16:
                _CACHEFLUSH_CACHE.clear()
            _CACHEFLUSH_CACHE[key] = sweep
        yield from sweep
        if hierarchy is not None:
            hierarchy.flush_caches()
        yield self._eret(loop_pc + 12, service)

    @staticmethod
    def _build_cacheflush_sweep(
        loop_pc: int, line: int, lines: int, service: str
    ) -> Iterator[Instruction]:
        for i in range(lines):
            yield Instruction(
                pc=loop_pc,
                op=OpClass.CACHEOP,
                srcs=(8,),
                address=KSEG_BASE + (i * line),
                size=line,
                service=service,
            )
            yield Instruction(
                pc=loop_pc + 4, op=OpClass.IALU, dest=8, srcs=(8,), service=service
            )
            yield Instruction(
                pc=loop_pc + 8,
                op=OpClass.BRANCH,
                srcs=(8,),
                target=loop_pc,
                taken=i != lines - 1,
                service=service,
            )

    # ------------------------------------------------------------------
    # I/O system calls (externally invoked; data-dependent work)
    # ------------------------------------------------------------------

    def draw_read_size(self) -> int:
        """Transfer size for one read.

        The JVM's buffered reads are nearly uniform page-sized chunks —
        that is what gives read its modest ~7 % per-invocation energy
        deviation in Table 5 (versus utlb's 0.14 %)."""
        return self._rng.choice((3584, 4096, 4096, 4096, 4608))

    def draw_write_size(self) -> int:
        """Transfer size for one write (wider spread than reads,
        Table 5: ~10.7 % deviation vs read's ~6.6 %)."""
        return self._rng.choice((3072, 3584, 4096, 4096, 4608, 5120))

    def read(self, nbytes: int | None = None) -> Iterator[Instruction]:
        """Copy ``nbytes`` from the file cache to the user buffer."""
        service = "read"
        if nbytes is None:
            nbytes = self.draw_read_size()
        pc = READ_PC
        yield from self._prologue(
            pc,
            80,
            service,
            loads_every=7,
            data_base=KERNEL_HEAP_BASE + 0x1000,
            data_span=16 * 1024,
        )
        src = FILE_BUFFER_BASE + (self._copy_cursor % 64) * PAGE_SIZE
        dst = USER_COPY_WINDOW + (self._copy_cursor % 16) * PAGE_SIZE
        self._copy_cursor += 1
        yield from copy_loop(pc + 4 * 80, src, dst, nbytes, service=service)
        yield self._eret(pc + 4 * 80 + 4 * 7, service)

    def write(self, nbytes: int | None = None) -> Iterator[Instruction]:
        """Copy ``nbytes`` from the user buffer into the file cache."""
        service = "write"
        if nbytes is None:
            nbytes = self.draw_write_size()
        pc = WRITE_PC
        yield from self._prologue(
            pc,
            130,
            service,
            loads_every=6,
            data_base=KERNEL_HEAP_BASE + 0x9000,
            data_span=32 * 1024,
        )
        src = USER_COPY_WINDOW + (self._copy_cursor % 16) * PAGE_SIZE
        dst = FILE_BUFFER_BASE + (self._copy_cursor % 64) * PAGE_SIZE
        self._copy_cursor += 1
        yield from copy_loop(pc + 4 * 130, src, dst, nbytes, service=service)
        yield self._eret(pc + 4 * 130 + 4 * 7, service)

    def open(self, components: int | None = None) -> Iterator[Instruction]:
        """Path lookup (namei): one directory-scan loop per component."""
        service = "open"
        if components is None:
            components = self._rng.randint(5, 7)
        if components <= 0:
            raise ValueError(f"path must have at least one component: {components}")
        pc = OPEN_PC
        yield from self._prologue(
            pc,
            60,
            service,
            loads_every=8,
            data_base=KERNEL_HEAP_BASE + 0x11000,
            data_span=16 * 1024,
        )
        scan_pc = pc + 4 * 60
        for component in range(components):
            directory = KERNEL_HEAP_BASE + 0x20000 + component * 2048
            yield from memory_walk(
                scan_pc,
                OpClass.LOAD,
                directory,
                56,
                stride=32,
                size=8,
                service=service,
            )
        yield self._eret(scan_pc + 4 * 5, service)

    # ------------------------------------------------------------------
    # Miscellaneous services seen in Table 4
    # ------------------------------------------------------------------

    def bsd(self) -> Iterator[Instruction]:
        """BSD subsystem call (sockets/select, seen in jess and jack)."""
        service = "BSD"
        pc = BSD_PC
        yield from self._prologue(
            pc,
            100,
            service,
            loads_every=5,
            data_base=KERNEL_HEAP_BASE + 0x30000,
            data_span=32 * 1024,
        )
        nbytes = self._rng.choice((768, 1024, 1024, 1280))
        yield from copy_loop(
            pc + 4 * 150,
            KERNEL_HEAP_BASE + 0x40000,
            KERNEL_HEAP_BASE + 0x48000,
            nbytes,
            service=service,
        )
        yield self._eret(pc + 4 * 150 + 4 * 7, service)

    def du_poll(self) -> Iterator[Instruction]:
        """Device-unit poll (db's device polling)."""
        service = "du_poll"
        pc = DU_POLL_PC
        yield from self._prologue(
            pc,
            180,
            service,
            loads_every=4,
            data_base=DEVICE_REGISTERS,
            data_span=512,
        )
        yield self._eret(pc + 4 * 180, service)

    def xstat(self) -> Iterator[Instruction]:
        """File-attribute lookup (javac's xstat)."""
        service = "xstat"
        pc = XSTAT_PC
        yield from self._prologue(
            pc,
            900,
            service,
            loads_every=6,
            data_base=KERNEL_HEAP_BASE + 0x50000,
            data_span=32 * 1024,
        )
        yield self._eret(pc + 4 * 900, service)

    def clock(self) -> Iterator[Instruction]:
        """Timer-tick handler: time-of-day and scheduler bookkeeping."""
        service = "clock"
        pc = CLOCK_PC
        yield from self._prologue(
            pc,
            300,
            service,
            loads_every=9,
            data_base=KERNEL_HEAP_BASE + 0x60000,
            data_span=4096,
        )
        yield self._eret(pc + 4 * 300, service)

    # ------------------------------------------------------------------
    # Kernel synchronisation (its own software mode, not a service)
    # ------------------------------------------------------------------

    def sync_section(self, spins: int | None = None) -> Iterator[Instruction]:
        """A lock acquire/release: ll/sc spin plus the critical update."""
        if spins is None:
            spins = self._rng.randint(8, 40)
        lock = KERNEL_HEAP_BASE + 0x70000
        yield from spin_loop(SYNC_PC, lock, spins, service=SYNC_LABEL)
        yield Instruction(
            pc=SYNC_PC + 20,
            op=OpClass.STORE,
            srcs=(3, 4),
            address=lock,
            size=4,
            service=SYNC_LABEL,
        )

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    def invoke(self, name: str, **kwargs) -> Iterator[Instruction]:
        """Invoke a service body by its Table 4 name."""
        builders: dict[str, Callable[..., Iterator[Instruction]]] = {
            "utlb": lambda: self.utlb(kwargs.get("faulting_address", 0x1000_0000)),
            "tlb_miss": lambda: self.tlb_miss(kwargs.get("faulting_address", 0x1000_0000)),
            "vfault": lambda: self.vfault(kwargs.get("faulting_address", 0x1000_0000)),
            "demand_zero": self.demand_zero,
            "cacheflush": lambda: self.cacheflush(kwargs.get("hierarchy")),
            "read": lambda: self.read(kwargs.get("nbytes")),
            "write": lambda: self.write(kwargs.get("nbytes")),
            "open": lambda: self.open(kwargs.get("components")),
            "BSD": self.bsd,
            "du_poll": self.du_poll,
            "xstat": self.xstat,
            "clock": self.clock,
        }
        if name not in builders:
            raise KeyError(f"unknown kernel service {name!r}; known: {KERNEL_SERVICES}")
        return builders[name]()
