"""Kernel facade.

Bundles the service bodies, the file cache, and trap handling into the
object the CPU models and the workload composer talk to.  It plays the
role IRIX 5.3 plays inside SimOS: it owns what happens on a TLB miss,
what a system call executes, and whether an I/O request is absorbed by
the file cache or goes to the disk.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterator

from repro.config.system import SystemConfig
from repro.isa.instruction import Instruction
from repro.kernel.services import KernelServices
from repro.mem.filecache import FileCache
from repro.mem.hierarchy import MemoryHierarchy


@dataclasses.dataclass
class SyscallResult:
    """Outcome of one I/O system call."""

    instructions: Iterator[Instruction]
    """The kernel-mode handler body to execute."""
    disk_bytes: int
    """Bytes that must come from the disk (0 = file-cache hit).

    A non-zero value blocks the caller: the scheduler runs the idle
    process until the disk completes (Section 2: "as the process
    requesting the I/O is blocked, the operating system schedules the
    idle process")."""


class Kernel:
    """The operating-system model: traps, services, file cache."""

    def __init__(
        self,
        config: SystemConfig,
        hierarchy: MemoryHierarchy | None = None,
        *,
        file_cache_pages: int = 4096,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.services = KernelServices(config, seed=seed)
        self.file_cache = FileCache(capacity_pages=file_cache_pages)
        self.invocations: dict[str, int] = {}
        self._rng = random.Random(0xCE11 ^ seed)

    def _count(self, service: str) -> None:
        self.invocations[service] = self.invocations.get(service, 0) + 1

    # ------------------------------------------------------------------
    # Trap client interface (used by the CPU models)
    # ------------------------------------------------------------------

    def utlb_handler(self, faulting_address: int) -> Iterator[Instruction]:
        """The fast TLB-refill path; called by the CPU on a TLB miss."""
        self._count("utlb")
        return self.services.utlb(faulting_address)

    # ------------------------------------------------------------------
    # System calls
    # ------------------------------------------------------------------

    def sys_read(self, file_id: int, offset: int, nbytes: int) -> SyscallResult:
        """read(): file-cache lookup plus copy-out; may hit the disk."""
        self._count("read")
        missing = self.file_cache.lookup(file_id, offset, nbytes)
        disk_bytes = missing * self.file_cache.page_bytes
        if missing:
            self.file_cache.insert(file_id, offset, nbytes)
        return SyscallResult(
            instructions=self.services.read(nbytes), disk_bytes=disk_bytes
        )

    def sys_write(self, file_id: int, offset: int, nbytes: int) -> SyscallResult:
        """write(): copy-in to the file cache (write-behind, no block)."""
        self._count("write")
        self.file_cache.insert(file_id, offset, nbytes)
        return SyscallResult(instructions=self.services.write(nbytes), disk_bytes=0)

    def sys_open(self, components: int | None = None) -> SyscallResult:
        """open(): path lookup; directory metadata is cache-resident."""
        self._count("open")
        return SyscallResult(instructions=self.services.open(components), disk_bytes=0)

    # ------------------------------------------------------------------
    # Internal services
    # ------------------------------------------------------------------

    def page_fault_zero(self) -> Iterator[Instruction]:
        """A demand-zero fault on a newly-touched anonymous page."""
        self._count("demand_zero")
        return self.services.demand_zero()

    def flush_caches(self) -> Iterator[Instruction]:
        """cacheflush(), with the architectural flush applied."""
        self._count("cacheflush")
        return self.services.cacheflush(self.hierarchy)

    def invoke_service(self, name: str, **kwargs) -> Iterator[Instruction]:
        """Invoke any Table 4 service by name (counted)."""
        self._count(name)
        if name == "cacheflush" and "hierarchy" not in kwargs:
            kwargs["hierarchy"] = self.hierarchy
        return self.services.invoke(name, **kwargs)

    def sync_section(self, spins: int | None = None) -> Iterator[Instruction]:
        """A kernel synchronisation episode (its own software mode)."""
        return self.services.sync_section(spins)
