"""The idle process.

"Idling in a lot of commercial OS including IRIX is done by busy-waiting
and is not necessarily a low power consumer" (Section 1).  The idle
process spins over the run queue: a serial chain of loads, compares,
and a backward branch.  The chain limits it to roughly 0.8 fetches per
cycle (Table 3's idle iL1 rate) while still dissipating real power in
the fetch path and clock — which is exactly why the paper's final
suggestion is to halt the processor instead (Section 5).

The paper also observes (Section 3.3) that "the per-cycle processor and
memory-system access-behavior of the idle-process can be accurately
predicted and is independent of the workload" — our idle loop is a
fixed code body independent of everything else, so this holds by
construction and is exploited by the timeline fast-forwarding.
"""

from __future__ import annotations

from typing import Iterator

from repro.isa.instruction import Instruction, OpClass
from repro.kernel.modes import IDLE_LABEL
from repro.mem.hierarchy import KSEG_BASE

IDLE_PC = KSEG_BASE + 0x1_6000
RUN_QUEUE_ADDRESS = KSEG_BASE + 0x0700_0000
SCHED_FLAGS_ADDRESS = KSEG_BASE + 0x0700_0040


def idle_loop(iterations: int) -> Iterator[Instruction]:
    """Yield ``iterations`` passes of the IRIX busy-wait idle loop.

    Each pass: load the run-queue head, test it, load the scheduler
    flags, test those, burn a couple of bookkeeping ALU ops, and branch
    back.  Every instruction depends on its predecessor, giving the
    low-IPC, moderately load-heavy profile of Table 3's idle column.
    """
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    pc = IDLE_PC
    # Every pass is the same five instructions plus the back branch
    # (taken except on the last pass); the frozen instructions are
    # built once and re-yielded.
    body = (
        Instruction(
            pc=pc,
            op=OpClass.LOAD,
            dest=8,
            srcs=(9,),
            address=RUN_QUEUE_ADDRESS,
            size=8,
            service=IDLE_LABEL,
        ),
        Instruction(pc=pc + 4, op=OpClass.IALU, dest=9, srcs=(8,), service=IDLE_LABEL),
        Instruction(
            pc=pc + 8,
            op=OpClass.LOAD,
            dest=10,
            srcs=(9,),
            address=SCHED_FLAGS_ADDRESS,
            size=8,
            service=IDLE_LABEL,
        ),
        Instruction(
            pc=pc + 12, op=OpClass.IALU, dest=11, srcs=(10,), service=IDLE_LABEL
        ),
        Instruction(
            pc=pc + 16, op=OpClass.IALU, dest=9, srcs=(11,), service=IDLE_LABEL
        ),
    )
    back_taken = Instruction(
        pc=pc + 20, op=OpClass.BRANCH, srcs=(9,), target=pc, taken=True,
        service=IDLE_LABEL,
    )
    back_exit = Instruction(
        pc=pc + 20, op=OpClass.BRANCH, srcs=(9,), target=pc, taken=False,
        service=IDLE_LABEL,
    )
    for _ in range(iterations - 1):
        yield from body
        yield back_taken
    yield from body
    yield back_exit


IDLE_LOOP_LENGTH = 6
"""Instructions per idle-loop iteration."""
