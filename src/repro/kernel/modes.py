"""Software execution modes.

The paper decomposes execution into four software modes (Section 3.2):
user, kernel instructions, kernel synchronization, and idle.  Kernel
execution further decomposes into named services (Section 3.3).  Every
instruction in our streams carries a *label* (``Instruction.service``);
this module maps labels onto modes.
"""

from __future__ import annotations

import enum


class ExecutionMode(enum.Enum):
    """The four software modes of Section 3.2."""

    USER = "user"
    KERNEL = "kernel"
    SYNC = "sync"
    IDLE = "idle"


IDLE_LABEL = "idle"
"""Label carried by idle-process instructions."""

SYNC_LABEL = "kernel_sync"
"""Label carried by kernel synchronisation operations."""

#: The kernel services characterised in Section 3.3 / Table 4.
KERNEL_SERVICES: tuple[str, ...] = (
    "utlb",
    "read",
    "write",
    "open",
    "demand_zero",
    "cacheflush",
    "vfault",
    "tlb_miss",
    "BSD",
    "du_poll",
    "xstat",
    "clock",
)

#: Services internal to the kernel vs invoked from user programs;
#: Table 5 shows internal services have near-constant per-invocation
#: energy while externally-invoked (I/O) services vary with their data.
INTERNAL_SERVICES: frozenset[str] = frozenset(
    {"utlb", "demand_zero", "cacheflush", "vfault", "tlb_miss", "clock", "du_poll"}
)
EXTERNAL_SERVICES: frozenset[str] = frozenset({"read", "write", "open", "BSD", "xstat"})


def mode_of_label(label: str | None) -> ExecutionMode:
    """Map an instruction label to its software mode."""
    if label is None:
        return ExecutionMode.USER
    if label == IDLE_LABEL:
        return ExecutionMode.IDLE
    if label == SYNC_LABEL:
        return ExecutionMode.SYNC
    return ExecutionMode.KERNEL
