"""IRIX-like operating-system model: modes, services, scheduler, idle."""

from repro.kernel.idle import IDLE_LOOP_LENGTH, IDLE_PC, idle_loop
from repro.kernel.kernel import Kernel, SyscallResult
from repro.kernel.modes import (
    EXTERNAL_SERVICES,
    IDLE_LABEL,
    INTERNAL_SERVICES,
    KERNEL_SERVICES,
    SYNC_LABEL,
    ExecutionMode,
    mode_of_label,
)
from repro.kernel.scheduler import (
    InterleavedWorkload,
    ServiceRate,
    SyscallPlan,
)
from repro.kernel.services import KernelServices

__all__ = [
    "IDLE_LOOP_LENGTH",
    "IDLE_PC",
    "idle_loop",
    "Kernel",
    "SyscallResult",
    "EXTERNAL_SERVICES",
    "IDLE_LABEL",
    "INTERNAL_SERVICES",
    "KERNEL_SERVICES",
    "SYNC_LABEL",
    "ExecutionMode",
    "mode_of_label",
    "InterleavedWorkload",
    "ServiceRate",
    "SyscallPlan",
    "KernelServices",
]
