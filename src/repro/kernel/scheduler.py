"""Workload composition: interleaving user code with kernel activity.

The detailed CPU simulations run *interleaved* streams — user code with
system calls, internal kernel services, and synchronisation episodes
mixed in at configured rates — so that the cross-mode effects the paper
measures (cache pollution between user and kernel code, TLB pressure,
utlb traps inside user windows) emerge from the simulation itself.

Rates are expressed as mean user instructions between invocations and
drawn from exponential gaps, deterministic per seed.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterable, Iterator

from repro.isa.instruction import Instruction, OpClass
from repro.kernel.kernel import Kernel

SYSCALL_PC_OFFSET = 0x400


@dataclasses.dataclass(frozen=True)
class ServiceRate:
    """One scheduled kernel activity."""

    service: str
    mean_gap_instructions: float
    """Mean user instructions between invocations."""
    kwargs: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.mean_gap_instructions <= 0:
            raise ValueError(
                f"{self.service}: mean gap must be positive, "
                f"got {self.mean_gap_instructions}"
            )


@dataclasses.dataclass(frozen=True)
class SyscallPlan:
    """I/O system-call schedule (read/write/open against real files)."""

    mean_gap_instructions: float
    read_weight: float = 0.7
    write_weight: float = 0.15
    open_weight: float = 0.15
    file_count: int = 8
    file_bytes: int = 512 * 1024

    def __post_init__(self) -> None:
        if self.mean_gap_instructions <= 0:
            raise ValueError("syscall mean gap must be positive")
        total = self.read_weight + self.write_weight + self.open_weight
        if total <= 0:
            raise ValueError("at least one syscall weight must be positive")


class InterleavedWorkload:
    """Merges a user stream with scheduled kernel activity.

    The result is a single instruction stream: user instructions flow
    through; at exponentially-distributed gaps a SYSCALL instruction is
    emitted (at the current user PC region) followed by the kernel
    handler body; internal services and sync sections are injected the
    same way.  utlb activity is *not* scheduled here — it emerges from
    TLB misses taken by the CPU while executing this stream.
    """

    def __init__(
        self,
        user_stream: Iterable[Instruction],
        kernel: Kernel,
        *,
        service_rates: Iterable[ServiceRate] = (),
        syscalls: SyscallPlan | None = None,
        sync_mean_gap: float | None = None,
        seed: int = 0,
    ) -> None:
        self.kernel = kernel
        self._user = iter(user_stream)
        self._rates = list(service_rates)
        self._syscalls = syscalls
        self._sync_mean_gap = sync_mean_gap
        self._rng = random.Random(0x1417E12 ^ seed)
        self._pending: list[tuple[int, int]] = []
        self.io_requests: list[tuple[int, int]] = []
        """(user-instruction index, disk bytes) for every I/O that
        missed the file cache; the timeline layer converts these into
        disk requests and idle periods."""
        self._next_fire: dict[int, int] = {}

    def _draw_gap(self, mean: float) -> int:
        return max(1, int(self._rng.expovariate(1.0 / mean)))

    def _emit_syscall_marker(self, user_pc: int) -> Instruction:
        return Instruction(
            pc=(user_pc & ~0xFFF) + SYSCALL_PC_OFFSET,
            op=OpClass.SYSCALL,
            taken=False,
        )

    def _run_syscall(self, index: int) -> Iterator[Instruction]:
        plan = self._syscalls
        assert plan is not None
        weights = (plan.read_weight, plan.write_weight, plan.open_weight)
        kind = self._rng.choices(("read", "write", "open"), weights=weights)[0]
        file_id = self._rng.randrange(plan.file_count)
        if kind == "read":
            nbytes = self.kernel.services.draw_read_size()
            offset = self._rng.randrange(0, max(1, plan.file_bytes - nbytes))
            result = self.kernel.sys_read(file_id, offset, nbytes)
            if result.disk_bytes:
                self.io_requests.append((index, result.disk_bytes))
            yield from result.instructions
        elif kind == "write":
            nbytes = self.kernel.services.draw_write_size()
            offset = self._rng.randrange(0, max(1, plan.file_bytes - nbytes))
            result = self.kernel.sys_write(file_id, offset, nbytes)
            yield from result.instructions
        else:
            yield from self.kernel.sys_open().instructions

    def __iter__(self) -> Iterator[Instruction]:
        # Initialise per-activity next-fire counters.
        fires: list[tuple[int, str]] = []  # mutable schedule of (countdown, tag)
        schedule: dict[str, int] = {}
        for rate in self._rates:
            schedule[f"svc:{rate.service}"] = self._draw_gap(rate.mean_gap_instructions)
        if self._syscalls is not None:
            schedule["sys"] = self._draw_gap(self._syscalls.mean_gap_instructions)
        if self._sync_mean_gap is not None:
            schedule["sync"] = self._draw_gap(self._sync_mean_gap)
        rate_by_tag = {f"svc:{rate.service}": rate for rate in self._rates}

        index = 0
        last_pc = 0x0040_0000
        # The set of scheduled activities is fixed for the life of the
        # iteration; only the countdowns change.
        tags = list(schedule)
        for instr in self._user:
            yield instr
            last_pc = instr.pc
            index += 1
            for tag in tags:
                remaining = schedule[tag] - 1
                schedule[tag] = remaining
                if remaining > 0:
                    continue
                if tag == "sys":
                    yield self._emit_syscall_marker(last_pc)
                    yield from self._run_syscall(index)
                    schedule[tag] = self._draw_gap(
                        self._syscalls.mean_gap_instructions
                    )
                elif tag == "sync":
                    yield from self.kernel.sync_section()
                    schedule[tag] = self._draw_gap(self._sync_mean_gap)
                else:
                    rate = rate_by_tag[tag]
                    yield from self.kernel.invoke_service(
                        rate.service, **dict(rate.kwargs)
                    )
                    schedule[tag] = self._draw_gap(rate.mean_gap_instructions)
