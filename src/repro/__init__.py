"""SoftWatt reproduction: complete machine simulation for software power estimation.

A pure-Python reproduction of *"Using Complete Machine Simulation for
Software Power Estimation: The SoftWatt Approach"* (Gurumurthi et al.,
HPCA 2002): a complete-system power simulator modelling an out-of-order
CPU, the memory hierarchy, an IRIX-like operating system, and a
low-power disk, with validated analytical energy models applied in
post-processing.

Quick start::

    from repro import SoftWatt

    sw = SoftWatt()
    result = sw.run("jess", disk=1)      # conventional disk
    print(result.format_summary())
    print(result.power_budget_shares())  # the Figure 5 pie

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config.system import SystemConfig
from repro.config.diskcfg import DiskMode, DiskPowerPolicy, disk_configuration
from repro.core.report import BenchmarkResult
from repro.core.softwatt import SoftWatt
from repro.kernel.modes import ExecutionMode
from repro.power.processor import ProcessorPowerModel, r10000_max_power
from repro.workloads.specjvm98 import BENCHMARK_NAMES, benchmark, all_benchmarks

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "DiskMode",
    "DiskPowerPolicy",
    "disk_configuration",
    "BenchmarkResult",
    "SoftWatt",
    "ExecutionMode",
    "ProcessorPowerModel",
    "r10000_max_power",
    "BENCHMARK_NAMES",
    "benchmark",
    "all_benchmarks",
    "__version__",
]
