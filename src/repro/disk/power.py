"""Event-exact disk energy accounting.

SoftWatt computes all power post-hoc from logs *except* the disk, whose
"energy-consumption is measured during simulation to accurately account
for the mode-transitions" (Section 2).  This accountant is that
exception: every interval the disk spends in a mode is integrated as it
happens.
"""

from __future__ import annotations

from repro.config.diskcfg import MK3003MAN_POWER_W, DiskMode


class DiskEnergyAccountant:
    """Integrates disk energy over (mode, duration) intervals."""

    def __init__(self) -> None:
        self.energy_j = 0.0
        self.time_in_mode_s: dict[DiskMode, float] = {mode: 0.0 for mode in DiskMode}
        self.energy_in_mode_j: dict[DiskMode, float] = {mode: 0.0 for mode in DiskMode}

    def accrue(self, mode: DiskMode, duration_s: float) -> float:
        """Record ``duration_s`` seconds spent in ``mode``.

        Returns the energy in joules added by this interval.
        """
        if duration_s < 0:
            raise ValueError(f"duration cannot be negative: {duration_s}")
        energy = MK3003MAN_POWER_W[mode] * duration_s
        self.energy_j += energy
        self.time_in_mode_s[mode] += duration_s
        self.energy_in_mode_j[mode] += energy
        return energy

    @property
    def total_time_s(self) -> float:
        """Total accounted wall time."""
        return sum(self.time_in_mode_s.values())

    def average_power_w(self) -> float:
        """Average disk power over the accounted period (0.0 when empty)."""
        total = self.total_time_s
        if total == 0.0:
            return 0.0
        return self.energy_j / total

    def mode_fraction(self, mode: DiskMode) -> float:
        """Fraction of accounted time spent in ``mode``."""
        total = self.total_time_s
        if total == 0.0:
            return 0.0
        return self.time_in_mode_s[mode] / total
