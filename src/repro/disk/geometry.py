"""Disk mechanism timing model (HP97560-class, as in SimOS).

SoftWatt layers the Toshiba power-mode state machine on top of the
existing SimOS disk simulator, which supplies the *timing* of each
operation — in particular "the time taken for the seek operation is
reported by the disk simulator of SimOS" and is used to integrate SEEK
energy (Section 2).  This module plays that role: it converts a request
(cylinder distance, transfer size) into seek, rotation, and transfer
durations.

The seek curve is the standard piecewise model fitted to measured
HP97560 data: a square-root region for short seeks and a linear region
for long ones.
"""

from __future__ import annotations

import dataclasses
import math
import random

from repro.config.diskcfg import DiskGeometry


@dataclasses.dataclass(frozen=True, slots=True)
class RequestTiming:
    """Durations (seconds) of the phases of one disk request."""

    seek_s: float
    rotation_s: float
    transfer_s: float

    @property
    def service_s(self) -> float:
        """Total media service time."""
        return self.seek_s + self.rotation_s + self.transfer_s


class DiskMechanism:
    """Seek/rotate/transfer timing for one disk geometry."""

    def __init__(self, geometry: DiskGeometry | None = None, seed: int = 0) -> None:
        self.geometry = geometry if geometry is not None else DiskGeometry()
        self._rng = random.Random(seed)
        self._head_cylinder = 0

    def seek_time_s(self, distance_cylinders: int) -> float:
        """Seek duration for a head move of ``distance_cylinders``.

        Zero distance costs nothing (the request hits the current
        track); otherwise the piecewise sqrt/linear curve interpolates
        between the minimum and maximum seek times.
        """
        if distance_cylinders < 0:
            raise ValueError(f"seek distance cannot be negative: {distance_cylinders}")
        if distance_cylinders == 0:
            return 0.0
        geometry = self.geometry
        max_distance = geometry.cylinders - 1
        fraction = min(1.0, distance_cylinders / max_distance)
        knee = 0.3
        min_s = geometry.min_seek_ms / 1e3
        avg_s = geometry.avg_seek_ms / 1e3
        max_s = geometry.max_seek_ms / 1e3
        if fraction <= knee:
            # Short seeks: acceleration-limited, sqrt shape up to ~avg.
            return min_s + (avg_s - min_s) * math.sqrt(fraction / knee)
        # Long seeks: coast-limited, linear up to max.
        return avg_s + (max_s - avg_s) * (fraction - knee) / (1.0 - knee)

    def request_timing(
        self,
        nbytes: int,
        *,
        cylinder: int | None = None,
    ) -> RequestTiming:
        """Timing for a request transferring ``nbytes``.

        ``cylinder`` fixes the target cylinder; when omitted, a target
        is drawn uniformly (deterministically per seed).  Rotational
        latency is the expected half rotation.
        """
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        geometry = self.geometry
        if cylinder is None:
            cylinder = self._rng.randrange(geometry.cylinders)
        elif not 0 <= cylinder < geometry.cylinders:
            raise ValueError(f"cylinder {cylinder} out of range")
        distance = abs(cylinder - self._head_cylinder)
        self._head_cylinder = cylinder
        seek_s = self.seek_time_s(distance)
        rotation_s = geometry.rotation_time_s / 2.0
        transfer_s = nbytes / geometry.transfer_rate_bytes_per_s
        overhead_s = geometry.controller_overhead_ms / 1e3
        return RequestTiming(
            seek_s=seek_s + overhead_s,
            rotation_s=rotation_s,
            transfer_s=transfer_s,
        )

    @property
    def head_cylinder(self) -> int:
        """Current head position."""
        return self._head_cylinder
