"""Adaptive spin-down: the policy family the paper builds on.

Section 4 cites the adaptive disk spin-down literature [Douglis &
Krishnan 95; Lu & De Micheli 99] and closes with the design rule that a
spin-down only pays when the coming idle period greatly exceeds the
spin transition time.  Fixed thresholds (the paper's configurations 3
and 4) get this wrong whenever workload behaviour shifts — compress's
2.4 s gaps ruin a 2 s threshold — so the natural extension is a
threshold that *learns*.

:class:`AdaptiveSpinDownDisk` implements the classic multiplicative
adaptation: after a spin-down that turns out to be premature (the next
request arrives before the STANDBY residence could have amortised the
21 J spin-up), the threshold doubles; after a spin-down that pays off,
it decays back toward the aggressive floor.
"""

from __future__ import annotations

from repro.config.diskcfg import (
    MK3003MAN_POWER_W,
    SPINUP_TIME_S,
    DiskGeometry,
    DiskMode,
    DiskPowerPolicy,
)
from repro.disk.manager import DiskRequestResult, PowerManagedDisk

#: Idle time whose IDLE-vs-STANDBY saving equals one spin-up's energy:
#: below this, spinning down can never win.
BREAK_EVEN_IDLE_S = (
    SPINUP_TIME_S * MK3003MAN_POWER_W[DiskMode.SPINUP]
    / (MK3003MAN_POWER_W[DiskMode.IDLE] - MK3003MAN_POWER_W[DiskMode.STANDBY])
)


def adaptive_policy(initial_threshold_s: float = 2.0) -> DiskPowerPolicy:
    """A policy record for an adaptive disk (threshold is the start value)."""
    return DiskPowerPolicy(
        name=f"adaptive-{initial_threshold_s:g}s",
        spindown_threshold_s=initial_threshold_s,
    )


class AdaptiveSpinDownDisk(PowerManagedDisk):
    """A power-managed disk whose spin-down threshold adapts online.

    * a *premature* spin-down (the request arrived while spinning down,
      or within the break-even STANDBY residence) doubles the threshold,
    * a *successful* one (STANDBY held past break-even) multiplies it by
      ``decay`` (< 1), drifting back toward ``floor_s``.
    """

    def __init__(
        self,
        initial_threshold_s: float = 2.0,
        geometry: DiskGeometry | None = None,
        seed: int = 0,
        *,
        floor_s: float = 0.5,
        ceiling_s: float = 60.0,
        decay: float = 0.8,
    ) -> None:
        if initial_threshold_s <= 0 or floor_s <= 0:
            raise ValueError("thresholds must be positive")
        if not floor_s <= initial_threshold_s <= ceiling_s:
            raise ValueError("need floor <= initial threshold <= ceiling")
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        super().__init__(adaptive_policy(initial_threshold_s), geometry, seed)
        self.floor_s = floor_s
        self.ceiling_s = ceiling_s
        self.decay = decay
        self.adaptations: list[tuple[float, float]] = []
        """(time, new threshold) after every adjustment."""
        self._standby_entered_s: float | None = None

    @property
    def threshold_s(self) -> float:
        """The current spin-down threshold."""
        assert self._threshold_s is not None
        return self._threshold_s

    def _adjust(self, new_threshold: float) -> None:
        clamped = min(self.ceiling_s, max(self.floor_s, new_threshold))
        if clamped != self._threshold_s:
            self._threshold_s = clamped
            self.adaptations.append((self._clock_s, clamped))

    def request(
        self,
        arrival_s: float,
        nbytes: int,
        *,
        cylinder: int | None = None,
    ) -> DiskRequestResult:
        """Service a request, then adapt the threshold to its outcome."""
        spindowns_before = self.state.spindowns
        result = super().request(arrival_s, nbytes, cylinder=cylinder)
        # Any spin-down happened during super().request's internal time
        # advance, so the STANDBY entry time is read afterwards.
        standby_since = self._standby_entered_s
        if result.spinup_penalty_s > 0.0:
            if standby_since is None or standby_since > result.start_s:
                # Caught mid-spin-down: unambiguously premature.
                self._adjust(self.threshold_s * 2.0)
            else:
                residence = result.start_s - standby_since
                if residence < BREAK_EVEN_IDLE_S:
                    self._adjust(self.threshold_s * 2.0)
                else:
                    self._adjust(self.threshold_s * self.decay)
            self._standby_entered_s = None
        elif self.state.spindowns > spindowns_before:
            self._standby_entered_s = self._clock_s
        return result

    def advance(self, to_s: float) -> None:
        """Advance time, recording when STANDBY is entered."""
        spindowns_before = self.state.spindowns
        super().advance(to_s)
        if self.state.spindowns > spindowns_before:
            self._standby_entered_s = self._spindown_end_s
