"""The power-managed disk: mechanism + state machine + policy.

This is the layer SoftWatt added on top of the SimOS HP97560 model to
simulate the Toshiba MK3003MAN (Section 2), together with the four
power-management configurations evaluated in Section 4:

1. *conventional* — no mode transitions; the disk consumes ACTIVE power
   whenever it is not seeking (the Section 3 baseline and the upper
   bound on disk power),
2. *idle-only* — drops to IDLE immediately after each request (zero
   time, zero cost), spins back up to ACTIVE through a seek,
3/4. *spindown* — additionally spins down to STANDBY after a threshold
   of disk inactivity; a request arriving in STANDBY pays a 5 s,
   4.2 W spin-up before it can be serviced.

Requests are synchronous and ordered in time, matching the single
profiled workload of the paper (the requesting process blocks and the
idle process runs on the CPU while the disk works).
"""

from __future__ import annotations

import dataclasses

from repro.config.diskcfg import (
    SPINDOWN_TIME_S,
    SPINUP_TIME_S,
    DiskGeometry,
    DiskMode,
    DiskPowerPolicy,
)
from repro.disk.geometry import DiskMechanism, RequestTiming
from repro.disk.power import DiskEnergyAccountant
from repro.disk.states import DiskStateMachine


@dataclasses.dataclass(frozen=True, slots=True)
class DiskRequestResult:
    """Outcome of one disk request."""

    arrival_s: float
    start_s: float
    """When the disk began working on the request (>= arrival)."""
    completion_s: float
    service_s: float
    """Media time: seek + rotation + transfer."""
    spinup_penalty_s: float
    """Extra latency spent finishing a spin-down and/or spinning up."""

    @property
    def latency_s(self) -> float:
        """Total request latency seen by the blocked process."""
        return self.completion_s - self.arrival_s


class PowerManagedDisk:
    """A disk whose power modes follow one of the Section 4 policies."""

    def __init__(
        self,
        policy: DiskPowerPolicy,
        geometry: DiskGeometry | None = None,
        seed: int = 0,
    ) -> None:
        self.policy = policy
        self.mechanism = DiskMechanism(geometry, seed=seed)
        initial = DiskMode.ACTIVE if policy.conventional else DiskMode.IDLE
        self.state = DiskStateMachine(initial)
        self.energy = DiskEnergyAccountant()
        self.requests = 0
        self.bytes_transferred = 0
        self.history: list[tuple[float, float, DiskMode]] = []
        """(start_s, end_s, mode) intervals, in time order."""
        self._clock_s = 0.0
        self._idle_since_s = 0.0
        self._spindown_end_s = 0.0
        self._threshold_s: float | None = policy.spindown_threshold_s

    @property
    def clock_s(self) -> float:
        """Time up to which disk energy has been integrated."""
        return self._clock_s

    @property
    def mode(self) -> DiskMode:
        """Current operating mode."""
        return self.state.mode


    def _accrue(self, mode: DiskMode, duration_s: float) -> None:
        """Integrate energy and record the interval in the history."""
        if duration_s < 0.0:
            raise ValueError(f"duration cannot be negative: {duration_s}")
        if duration_s == 0.0:
            return
        self.energy.accrue(mode, duration_s)
        if (
            self.history
            and self.history[-1][2] is mode
            and abs(self.history[-1][1] - self._clock_s) < 1e-12
        ):
            start, _end, _mode = self.history[-1]
            self.history[-1] = (start, self._clock_s + duration_s, mode)
        else:
            self.history.append((self._clock_s, self._clock_s + duration_s, mode))

    # ------------------------------------------------------------------
    # Autonomous time evolution (no requests)
    # ------------------------------------------------------------------

    def advance(self, to_s: float) -> None:
        """Integrate energy up to ``to_s``, firing scheduled spin-downs."""
        if to_s < self._clock_s:
            raise ValueError(
                f"time went backwards: advance({to_s}) with clock at {self._clock_s}"
            )
        threshold = self._threshold_s
        while self._clock_s < to_s:
            mode = self.state.mode
            if mode is DiskMode.IDLE and threshold is not None:
                deadline = self._idle_since_s + threshold
                if to_s <= deadline:
                    self._accrue(DiskMode.IDLE, to_s - self._clock_s)
                    self._clock_s = to_s
                    return
                self._accrue(DiskMode.IDLE, deadline - self._clock_s)
                self._clock_s = deadline
                self.state.transition(DiskMode.SPINDOWN)
                self._spindown_end_s = self._clock_s + SPINDOWN_TIME_S
            elif mode is DiskMode.SPINDOWN:
                end = min(to_s, self._spindown_end_s)
                self._accrue(DiskMode.SPINDOWN, end - self._clock_s)
                self._clock_s = end
                if self._clock_s >= self._spindown_end_s:
                    self.state.transition(DiskMode.STANDBY)
            else:
                # ACTIVE (conventional), IDLE without threshold, STANDBY,
                # or SLEEP: steady state until the next request.
                self._accrue(mode, to_s - self._clock_s)
                self._clock_s = to_s
        return

    # ------------------------------------------------------------------
    # Request servicing
    # ------------------------------------------------------------------

    def _ensure_spinning(self) -> float:
        """Bring the platter to operating speed; returns the penalty paid."""
        penalty = 0.0
        if self.state.mode is DiskMode.SPINDOWN:
            # An unlucky request arrived mid-spin-down: the operation
            # must complete before the disk can spin back up.
            remaining = self._spindown_end_s - self._clock_s
            self._accrue(DiskMode.SPINDOWN, remaining)
            self._clock_s = self._spindown_end_s
            self.state.transition(DiskMode.STANDBY)
            penalty += remaining
        if self.state.mode in (DiskMode.STANDBY, DiskMode.SLEEP):
            self.state.transition(DiskMode.SPINUP)
            self._accrue(DiskMode.SPINUP, SPINUP_TIME_S)
            self._clock_s += SPINUP_TIME_S
            self.state.transition(DiskMode.ACTIVE)
            penalty += SPINUP_TIME_S
        return penalty

    def request(
        self,
        arrival_s: float,
        nbytes: int,
        *,
        cylinder: int | None = None,
    ) -> DiskRequestResult:
        """Service a synchronous request arriving at ``arrival_s``."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        start_s = max(arrival_s, self._clock_s)
        self.advance(start_s)
        spinup_penalty = self._ensure_spinning()
        timing: RequestTiming = self.mechanism.request_timing(nbytes, cylinder=cylinder)
        seek_total = timing.seek_s
        if self.state.mode in (DiskMode.IDLE, DiskMode.ACTIVE):
            self.state.transition(DiskMode.SEEK)
        self._accrue(DiskMode.SEEK, seek_total)
        self._clock_s += seek_total
        self.state.transition(DiskMode.ACTIVE)
        busy = timing.rotation_s + timing.transfer_s
        self._accrue(DiskMode.ACTIVE, busy)
        self._clock_s += busy
        if not self.policy.conventional:
            # Immediate, free drop to IDLE after the request completes.
            self.state.transition(DiskMode.IDLE)
            self._idle_since_s = self._clock_s
        self.requests += 1
        self.bytes_transferred += nbytes
        return DiskRequestResult(
            arrival_s=arrival_s,
            start_s=start_s,
            completion_s=self._clock_s,
            service_s=timing.service_s,
            spinup_penalty_s=spinup_penalty,
        )

    def finish(self, end_s: float) -> None:
        """Close out the run: integrate energy up to ``end_s``."""
        self.advance(end_s)

    def sleep(self) -> None:
        """Issue the explicit SLEEP command (modelled but unused, Sec. 2)."""
        if self.state.mode not in (DiskMode.IDLE, DiskMode.STANDBY):
            raise RuntimeError(f"cannot sleep from mode {self.state.mode}")
        self.state.transition(DiskMode.SLEEP)
