"""Disk subsystem: HP97560-class mechanism + MK3003MAN power modes."""

from repro.disk.adaptive import (
    BREAK_EVEN_IDLE_S,
    AdaptiveSpinDownDisk,
    adaptive_policy,
)
from repro.disk.geometry import DiskMechanism, RequestTiming
from repro.disk.manager import DiskRequestResult, PowerManagedDisk
from repro.disk.power import DiskEnergyAccountant
from repro.disk.states import (
    DiskStateMachine,
    IllegalDiskTransition,
    transition_time_s,
)

__all__ = [
    "BREAK_EVEN_IDLE_S",
    "AdaptiveSpinDownDisk",
    "adaptive_policy",
    "DiskMechanism",
    "RequestTiming",
    "DiskRequestResult",
    "PowerManagedDisk",
    "DiskEnergyAccountant",
    "DiskStateMachine",
    "IllegalDiskTransition",
    "transition_time_s",
]
