"""MK3003MAN operating-modes state machine (Figure 2).

Transitions implemented exactly as the paper describes:

* IDLE -> ACTIVE on a seek operation (the seek itself runs in the SEEK
  mode at 4.1 W; the ACTIVE <-> IDLE transition takes zero time and
  zero power, following [Li et al. 94]),
* IDLE -> STANDBY by spinning down (5 s, assumed to consume no power),
* STANDBY -> ACTIVE requires a spin-up (5 s at 4.2 W — both a
  performance and an energy penalty),
* SLEEP is entered only via an explicit command and is never used by
  the paper's policies (it is modelled and validated, but unused).
"""

from __future__ import annotations

from repro.config.diskcfg import (
    MK3003MAN_POWER_W,
    SPINDOWN_TIME_S,
    SPINUP_TIME_S,
    DiskMode,
)


class IllegalDiskTransition(RuntimeError):
    """Raised when a transition violates the Figure 2 state machine."""


#: Legal (from, to) mode transitions.
_LEGAL_TRANSITIONS: frozenset[tuple[DiskMode, DiskMode]] = frozenset(
    {
        (DiskMode.IDLE, DiskMode.SEEK),        # seek operation begins
        (DiskMode.SEEK, DiskMode.ACTIVE),      # heads settled, transfer
        (DiskMode.ACTIVE, DiskMode.SEEK),      # back-to-back requests
        (DiskMode.ACTIVE, DiskMode.IDLE),      # zero-time, zero-power
        (DiskMode.IDLE, DiskMode.SPINDOWN),    # spin-down threshold fired
        (DiskMode.SPINDOWN, DiskMode.STANDBY),
        (DiskMode.STANDBY, DiskMode.SPINUP),   # I/O request while spun down
        (DiskMode.SPINUP, DiskMode.ACTIVE),
        (DiskMode.STANDBY, DiskMode.SLEEP),    # explicit command only
        (DiskMode.IDLE, DiskMode.SLEEP),       # explicit command only
        (DiskMode.SLEEP, DiskMode.SPINUP),
    }
)


class DiskStateMachine:
    """Tracks the disk's operating mode and legal transitions."""

    def __init__(self, initial: DiskMode = DiskMode.IDLE) -> None:
        self.mode = initial
        self.transition_count: dict[tuple[DiskMode, DiskMode], int] = {}

    def power_w(self) -> float:
        """Power draw of the current mode in watts."""
        return MK3003MAN_POWER_W[self.mode]

    def can_transition(self, to: DiskMode) -> bool:
        """True if moving to ``to`` is legal from the current mode."""
        return (self.mode, to) in _LEGAL_TRANSITIONS

    def transition(self, to: DiskMode) -> None:
        """Move to mode ``to``; raises on an illegal transition."""
        if to is self.mode:
            return
        edge = (self.mode, to)
        if edge not in _LEGAL_TRANSITIONS:
            raise IllegalDiskTransition(f"illegal disk transition {edge[0]} -> {edge[1]}")
        self.transition_count[edge] = self.transition_count.get(edge, 0) + 1
        self.mode = to

    def count(self, from_mode: DiskMode, to_mode: DiskMode) -> int:
        """How many times the given transition fired."""
        return self.transition_count.get((from_mode, to_mode), 0)

    @property
    def spinups(self) -> int:
        """Number of spin-up operations performed."""
        return self.count(DiskMode.STANDBY, DiskMode.SPINUP) + self.count(
            DiskMode.SLEEP, DiskMode.SPINUP
        )

    @property
    def spindowns(self) -> int:
        """Number of spin-down operations performed."""
        return self.count(DiskMode.IDLE, DiskMode.SPINDOWN)


def transition_time_s(to: DiskMode) -> float:
    """Duration of entering mode ``to`` (only spin transitions take time)."""
    if to is DiskMode.SPINUP:
        return SPINUP_TIME_S
    if to is DiskMode.SPINDOWN:
        return SPINDOWN_TIME_S
    return 0.0
