"""External counter ingestion: price measurements we did not simulate.

SoftWatt's pipeline is "counters in, energy out" — and with the
:class:`~repro.stats.source.CounterSource` seam, the counters no
longer have to come from our own simulators.  This package is the
first external front-end: read a perf-style counter log
(:mod:`~repro.ingest.readers`), translate its event names onto
:data:`~repro.stats.counters.COUNTER_FIELDS` through a validated
mapping file (:mod:`~repro.ingest.mapping`), and hand the result to
the power registry as an :class:`~repro.ingest.pricing.IngestedRun`
(:mod:`~repro.ingest.pricing`).  Exposed on the command line as
``repro ingest LOG --mapping FILE``.
"""

from repro.ingest.mapping import (
    CounterMapping,
    DuplicateTargetError,
    MappingError,
    MappingFormatError,
    UnknownEventError,
    UnknownTargetCounterError,
    UnmappedCounterError,
)
from repro.ingest.pricing import IngestedRun, ingest_log
from repro.ingest.readers import (
    CYCLES_EVENT,
    ExternalCounterLog,
    ExternalRecord,
    IngestError,
    read_counter_log,
    read_counter_log_csv,
    read_counter_log_json,
    write_counter_log_json,
)

__all__ = [
    "CounterMapping",
    "DuplicateTargetError",
    "MappingError",
    "MappingFormatError",
    "UnknownEventError",
    "UnknownTargetCounterError",
    "UnmappedCounterError",
    "IngestedRun",
    "ingest_log",
    "CYCLES_EVENT",
    "ExternalCounterLog",
    "ExternalRecord",
    "IngestError",
    "read_counter_log",
    "read_counter_log_csv",
    "read_counter_log_json",
    "write_counter_log_json",
]
