"""Counter-mapping files: external event names onto our counters.

External profilers name events their own way (``L1-dcache-loads``,
``iTLB-load-misses``...); the power models consume
:data:`~repro.stats.counters.COUNTER_FIELDS`.  A mapping file is the
per-machine translation table bridging the two — the same role the
per-microarchitecture counter mappings play in perf-based modelling
tools.  JSON schema::

    {
      "version": 1,
      "description": "...",
      "cycles": "cycles",                       # formula, required
      "counters": {
        "l1d_access": {"sum": ["L1-dcache-loads", "L1-dcache-stores"]},
        "tlb_miss":   {"sum": ["dTLB-load-misses", "iTLB-load-misses"]},
        "falu_access": {"event": "fp-arith", "scale": 0.75},
        ...
      }
    }

A *formula* is a string (bare event name), ``{"event": E, "scale":
S}``, or ``{"sum": [formula, ...], "scale": S}``; scales default to 1
and an outer ``sum`` scale distributes over its terms at load time.
Evaluation is ``sum(event_value * scale)`` left-to-right, and a single
term with scale 1 reproduces the event value bit-for-bit — which is
why the identity mapping round-trips exactly.

Validation is loud and happens as early as possible:

* **load time** — malformed structure/scale
  (:class:`MappingFormatError`), duplicate JSON keys
  (:class:`DuplicateTargetError`), targets that are not counters
  (:class:`UnknownTargetCounterError`), and — crucially — coverage
  against the :class:`~repro.power.registry.PowerRegistry`'s declared
  counter requirements: a mapping that starves a power component
  raises :class:`UnmappedCounterError` naming the component and the
  missing counters (:class:`UnmappedCounterError`), instead of
  silently pricing zeros.
* **apply time** — a formula referencing an event the log never
  recorded anywhere raises :class:`UnknownEventError` (events missing
  from *individual* records read 0, so sparse logs are fine).

Every error subclasses :class:`~repro.config.system.ConfigError`, so
the CLI exits 2 uniformly.
"""

from __future__ import annotations

import json
import math
import pathlib

from repro.config.system import ConfigError
from repro.stats.counters import COUNTER_FIELDS, AccessCounters
from repro.power.registry import REGISTRY

MAPPING_SCHEMA_VERSION = 1

_TOP_LEVEL_KEYS = frozenset({"version", "description", "cycles", "counters"})

#: A compiled formula: ((event, scale), ...), evaluated left-to-right.
Formula = tuple[tuple[str, float], ...]


class MappingError(ConfigError):
    """Base class for counter-mapping problems (CLI exit code 2).

    The ``field`` slot is pinned to ``"mapping"``; the message itself
    names the offending key or file.
    """

    def __init__(self, message: str) -> None:
        self.field = "mapping"
        ValueError.__init__(self, message)


class MappingFormatError(MappingError):
    """Structurally malformed mapping file (bad scale, wrong types...)."""


class DuplicateTargetError(MappingError):
    """The same key appears twice in one JSON object."""


class UnknownTargetCounterError(MappingError):
    """A mapping target that is not one of :data:`COUNTER_FIELDS`."""


class UnknownEventError(MappingError):
    """A formula references an event absent from the entire log."""


class UnmappedCounterError(MappingError):
    """A power component's required counters are not all mapped."""

    def __init__(self, component: str, missing: tuple[str, ...]) -> None:
        self.component = component
        self.missing = missing
        super().__init__(
            f"mapping starves power component {component!r}: required "
            f"counter(s) {', '.join(missing)} are not mapped; every "
            f"counter a component's rule reads must appear under "
            f"'counters' (see 'repro components --json' for the schema)"
        )


def _reject_duplicate_keys(pairs):
    mapping = {}
    for key, value in pairs:
        if key in mapping:
            raise DuplicateTargetError(
                f"duplicate key {key!r}: the same target appears twice, "
                f"and the second entry would silently win"
            )
        mapping[key] = value
    return mapping


def _scale(raw, *, context: str) -> float:
    if raw is None:
        return 1.0
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise MappingFormatError(
            f"{context}: scale {raw!r} is not a number"
        )
    value = float(raw)
    if not math.isfinite(value) or value < 0:
        raise MappingFormatError(
            f"{context}: scale {value!r} must be finite and non-negative"
        )
    return value


def _compile_formula(spec, *, context: str, outer_scale: float = 1.0) -> Formula:
    """Compile one formula spec into ((event, scale), ...) terms."""
    if isinstance(spec, str):
        if not spec:
            raise MappingFormatError(f"{context}: empty event name")
        return ((spec, outer_scale),)
    if not isinstance(spec, dict):
        raise MappingFormatError(
            f"{context}: expected an event name or object, got "
            f"{type(spec).__name__}"
        )
    if "event" in spec and "sum" in spec:
        raise MappingFormatError(
            f"{context}: 'event' and 'sum' are mutually exclusive"
        )
    scale = _scale(spec.get("scale"), context=context) * outer_scale
    if "event" in spec:
        unknown = set(spec) - {"event", "scale"}
        if unknown:
            raise MappingFormatError(
                f"{context}: unknown key(s) {', '.join(sorted(unknown))}"
            )
        event = spec["event"]
        if not isinstance(event, str) or not event:
            raise MappingFormatError(
                f"{context}: 'event' must be a non-empty string"
            )
        return ((event, scale),)
    if "sum" in spec:
        unknown = set(spec) - {"sum", "scale"}
        if unknown:
            raise MappingFormatError(
                f"{context}: unknown key(s) {', '.join(sorted(unknown))}"
            )
        terms = spec["sum"]
        if not isinstance(terms, list) or not terms:
            raise MappingFormatError(
                f"{context}: 'sum' must be a non-empty list of formulas"
            )
        compiled: list[tuple[str, float]] = []
        for index, term in enumerate(terms):
            compiled.extend(
                _compile_formula(
                    term,
                    context=f"{context} sum[{index}]",
                    outer_scale=scale,
                )
            )
        return tuple(compiled)
    raise MappingFormatError(
        f"{context}: formula object needs 'event' or 'sum'"
    )


def _evaluate(formula: Formula, events: dict[str, float]) -> float:
    value = 0.0
    for event, scale in formula:
        value += events.get(event, 0.0) * scale
    return value


class CounterMapping:
    """A validated external-event → counter translation table."""

    def __init__(
        self,
        *,
        cycles: Formula,
        counters: dict[str, Formula],
        description: str = "",
        source: str = "<memory>",
    ) -> None:
        self.cycles = cycles
        self.counters = counters
        self.description = description
        self.source = source
        self._check_targets()
        self._check_coverage()

    # -- construction --------------------------------------------------

    @classmethod
    def identity(cls) -> "CounterMapping":
        """Map every counter to an identically-named event (plus
        ``cycles``) — the mapping under which exported simulated logs
        round-trip bit-for-bit."""
        return cls(
            cycles=(("cycles", 1.0),),
            counters={name: ((name, 1.0),) for name in COUNTER_FIELDS},
            description="identity: external events already use our names",
            source="<identity>",
        )

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "CounterMapping":
        """Load and fully validate a mapping file."""
        path = pathlib.Path(path)
        try:
            document = json.loads(
                path.read_text(), object_pairs_hook=_reject_duplicate_keys
            )
        except OSError as error:
            raise MappingFormatError(
                f"cannot read mapping {path}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise MappingFormatError(
                f"mapping {path} is not valid JSON: {error}"
            ) from error
        return cls.from_dict(document, source=str(path))

    @classmethod
    def from_dict(cls, document, *, source: str = "<dict>") -> "CounterMapping":
        """Build a mapping from an already-parsed document."""
        if not isinstance(document, dict):
            raise MappingFormatError(f"mapping {source} is not a JSON object")
        unknown = set(document) - _TOP_LEVEL_KEYS
        if unknown:
            raise MappingFormatError(
                f"mapping {source}: unknown top-level key(s) "
                f"{', '.join(sorted(unknown))}; allowed: "
                f"{', '.join(sorted(_TOP_LEVEL_KEYS))}"
            )
        version = document.get("version")
        if version != MAPPING_SCHEMA_VERSION:
            raise MappingFormatError(
                f"mapping {source} has schema version {version!r}, "
                f"expected {MAPPING_SCHEMA_VERSION}"
            )
        if "cycles" not in document:
            raise MappingFormatError(
                f"mapping {source} is missing the required 'cycles' formula"
            )
        cycles = _compile_formula(
            document["cycles"], context=f"mapping {source} key 'cycles'"
        )
        raw_counters = document.get("counters")
        if not isinstance(raw_counters, dict) or not raw_counters:
            raise MappingFormatError(
                f"mapping {source} needs a non-empty 'counters' object"
            )
        counters = {
            target: _compile_formula(
                spec, context=f"mapping {source} counter {target!r}"
            )
            for target, spec in raw_counters.items()
        }
        return cls(
            cycles=cycles,
            counters=counters,
            description=str(document.get("description", "")),
            source=source,
        )

    # -- validation ----------------------------------------------------

    def _check_targets(self) -> None:
        for target in self.counters:
            if target not in COUNTER_FIELDS:
                raise UnknownTargetCounterError(
                    f"mapping {self.source} targets unknown counter "
                    f"{target!r}; valid counters: "
                    f"{', '.join(COUNTER_FIELDS)}"
                )

    def _check_coverage(self) -> None:
        """Fail loudly when a power component would price zeros.

        Checked at load time against the registry's machine-readable
        requirements — the whole point of the schema seam: an
        under-covering mapping is a configuration error, not a quietly
        wrong energy number.
        """
        mapped = set(self.counters)
        for component, required in REGISTRY.counter_requirements().items():
            missing = tuple(name for name in required if name not in mapped)
            if missing:
                raise UnmappedCounterError(component, missing)

    def events(self) -> tuple[str, ...]:
        """Every external event any formula references, in first-use
        order (cycles first)."""
        seen: dict[str, None] = {}
        for event, _scale in self.cycles:
            seen.setdefault(event)
        for formula in self.counters.values():
            for event, _scale in formula:
                seen.setdefault(event)
        return tuple(seen)

    def validate_events(self, available) -> None:
        """Check every referenced event exists somewhere in the log."""
        available = set(available)
        for event in self.events():
            if event not in available:
                referers = [
                    target
                    for target, formula in self.counters.items()
                    if any(name == event for name, _scale in formula)
                ]
                if any(name == event for name, _scale in self.cycles):
                    referers.insert(0, "cycles")
                raise UnknownEventError(
                    f"mapping {self.source} references event {event!r} "
                    f"(used by {', '.join(referers)}) but the log never "
                    f"records it"
                )

    # -- application ---------------------------------------------------

    def apply(self, events: dict[str, float]) -> tuple[AccessCounters, float]:
        """Translate one interval's raw events into (counters, cycles).

        Events absent from this particular interval read 0 — sparse
        logs are normal; only events absent from the *whole* log are
        errors (:meth:`validate_events`).
        """
        counters = AccessCounters()
        for target, formula in self.counters.items():
            setattr(counters, target, _evaluate(formula, events))
        return counters, _evaluate(self.cycles, events)
