"""Ingested runs: externally measured counters as a CounterSource.

The back half of ``repro ingest``: combine a parsed
:class:`~repro.ingest.readers.ExternalCounterLog` with a validated
:class:`~repro.ingest.mapping.CounterMapping` into an
:class:`IngestedRun` — per-interval
:class:`~repro.stats.source.CounterBundle`\\ s carrying
``ingested:<path>`` provenance — which satisfies the
:class:`~repro.stats.source.CounterSource` protocol and therefore
prices through exactly the same
:class:`~repro.power.registry.PowerRegistry` arithmetic as a simulated
log.  Aggregation (counter addition, cycle summation) deliberately
mirrors :class:`~repro.stats.simlog.SimulationLog` term-for-term, so
an identity-mapped export of a simulated run reproduces its
:class:`~repro.power.ledger.EnergyLedger` bit-for-bit.
"""

from __future__ import annotations

import dataclasses

from repro.ingest.mapping import CounterMapping
from repro.ingest.readers import ExternalCounterLog
from repro.stats.counters import AccessCounters
from repro.stats.source import PROVENANCE_INGESTED_PREFIX, CounterBundle


@dataclasses.dataclass(frozen=True)
class IngestedRun:
    """An externally measured run, translated and ready to price."""

    records: tuple[CounterBundle, ...]
    provenance: str
    duration_s: float
    """Wall-clock span of the source log (first start to last end)."""

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("an ingested run needs at least one record")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- CounterSource -------------------------------------------------

    def total_counters(self) -> AccessCounters:
        """Summed counters, accumulated in record order (the same
        left-to-right addition :class:`SimulationLog` performs, so
        totals match a simulated run exactly, not just approximately).
        """
        total = AccessCounters()
        for record in self.records:
            total.add(record.counters)
        return total

    def total_cycles(self) -> float:
        """Cycles across all records, summed in record order."""
        return sum(record.cycles for record in self.records)

    @property
    def source(self) -> str:
        """The path of the log this run was ingested from."""
        if self.provenance.startswith(PROVENANCE_INGESTED_PREFIX):
            return self.provenance[len(PROVENANCE_INGESTED_PREFIX):]
        return self.provenance


def ingest_log(
    log: ExternalCounterLog, mapping: CounterMapping
) -> IngestedRun:
    """Translate an external counter log through a mapping.

    Validates the mapping's event references against the log's event
    union first (:class:`~repro.ingest.mapping.UnknownEventError` on a
    miss), then applies the mapping per interval.
    """
    mapping.validate_events(log.event_names())
    provenance = PROVENANCE_INGESTED_PREFIX + log.source
    records = []
    for record in log:
        counters, cycles = mapping.apply(record.events)
        records.append(
            CounterBundle(
                counters=counters,
                cycles=cycles,
                provenance=provenance,
                duration_s=record.duration_s,
            )
        )
    return IngestedRun(
        records=tuple(records),
        provenance=provenance,
        duration_s=log.duration_s,
    )
