"""External counter-log readers (and the matching writer).

The front half of ``repro ingest``: parse a perf-style counter log into
an :class:`ExternalCounterLog` — time-ordered intervals of named event
counts — without interpreting the event names at all.  Translation onto
our :data:`~repro.stats.counters.COUNTER_FIELDS` is the mapping file's
job (:mod:`repro.ingest.mapping`); keeping the reader name-agnostic is
what lets one reader serve logs from any profiler.

Two formats:

* **JSON** — our own schema (``{"version": 1, "records": [...]}``,
  each record ``{"start_s", "end_s", "events": {name: value}}``).
  :func:`write_counter_log_json` emits it from a simulated
  :class:`~repro.stats.simlog.SimulationLog`, which is how the
  round-trip invariant (export → ingest with the identity mapping →
  bit-identical ledger) is exercised.
* **CSV** — ``perf stat -I ... -x,``-style interval rows
  (``time_s,value,event``): each distinct timestamp ends one interval,
  the first interval starts at 0.

Parse problems raise :class:`IngestError`, a
:class:`~repro.config.system.ConfigError`, so the CLI exits 2 exactly
as it does for an invalid system configuration.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import pathlib
from typing import TYPE_CHECKING, Iterable

from repro.config.system import ConfigError
from repro.stats.counters import COUNTER_FIELDS, counters_row

if TYPE_CHECKING:
    from repro.stats.simlog import SimulationLog

COUNTER_LOG_SCHEMA_VERSION = 1

CYCLES_EVENT = "cycles"
"""Event name :func:`write_counter_log_json` records cycle counts
under (matching perf's own ``cycles`` event, so identity-style
mappings work on both)."""


class IngestError(ConfigError):
    """An external counter log that cannot be parsed.

    Subclasses :class:`~repro.config.system.ConfigError` so the CLI's
    existing handler turns it into exit code 2; the ``field`` slot is
    pinned to ``"ingest"`` because the offender is a file, not a
    config knob.
    """

    def __init__(self, message: str) -> None:
        self.field = "ingest"
        ValueError.__init__(self, message)


@dataclasses.dataclass(frozen=True)
class ExternalRecord:
    """One measurement interval of an external counter log."""

    start_s: float
    end_s: float
    events: dict[str, float]
    """Raw event counts by external name, exactly as logged."""

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise IngestError(
                f"interval ends before it starts: "
                f"[{self.start_s}, {self.end_s}]"
            )

    @property
    def duration_s(self) -> float:
        """Wall-clock length of the interval."""
        return self.end_s - self.start_s


class ExternalCounterLog:
    """Time-ordered intervals of named event counts, names untranslated."""

    def __init__(
        self, records: Iterable[ExternalRecord], *, source: str = "<memory>"
    ) -> None:
        self.records: list[ExternalRecord] = list(records)
        self.source = source
        if not self.records:
            raise IngestError(f"counter log {source} has no records")
        previous = self.records[0]
        for record in self.records[1:]:
            if record.start_s < previous.end_s - 1e-9:
                raise IngestError(
                    f"counter log {source}: record starting at "
                    f"{record.start_s} overlaps the previous record "
                    f"ending at {previous.end_s}"
                )
            previous = record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration_s(self) -> float:
        """Wall-clock span of the log."""
        return self.records[-1].end_s - self.records[0].start_s

    def event_names(self) -> tuple[str, ...]:
        """Every event name appearing anywhere in the log, in first-seen
        order.  A record may omit events other records carry (sparse
        logs read 0 for the gaps); the union is what mapping-file
        references are validated against."""
        seen: dict[str, None] = {}
        for record in self.records:
            for name in record.events:
                seen.setdefault(name)
        return tuple(seen)


def _event_value(raw, *, context: str) -> float:
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise IngestError(f"{context}: event value {raw!r} is not a number")
    if raw < 0:
        raise IngestError(f"{context}: event value {raw} is negative")
    return raw


def read_counter_log_json(path: str | pathlib.Path) -> ExternalCounterLog:
    """Load a JSON counter log (our export schema)."""
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as error:
        raise IngestError(f"cannot read counter log {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise IngestError(f"counter log {path} is not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise IngestError(f"counter log {path} is not a JSON object")
    version = document.get("version")
    if version != COUNTER_LOG_SCHEMA_VERSION:
        raise IngestError(
            f"counter log {path} has schema version {version!r}, "
            f"expected {COUNTER_LOG_SCHEMA_VERSION}"
        )
    payloads = document.get("records")
    if not isinstance(payloads, list):
        raise IngestError(f"counter log {path} has no 'records' list")
    records = []
    for index, payload in enumerate(payloads):
        context = f"counter log {path} record {index}"
        if not isinstance(payload, dict):
            raise IngestError(f"{context} is not an object")
        try:
            start_s = float(payload["start_s"])
            end_s = float(payload["end_s"])
            events = payload["events"]
        except (KeyError, TypeError, ValueError) as error:
            raise IngestError(
                f"{context} is missing start_s/end_s/events: {error}"
            ) from error
        if not isinstance(events, dict):
            raise IngestError(f"{context}: 'events' is not an object")
        records.append(
            ExternalRecord(
                start_s=start_s,
                end_s=end_s,
                events={
                    name: _event_value(value, context=context)
                    for name, value in events.items()
                },
            )
        )
    return ExternalCounterLog(records, source=str(path))


def read_counter_log_csv(path: str | pathlib.Path) -> ExternalCounterLog:
    """Load a perf-stat-style interval CSV (``time_s,value,event``).

    Each distinct ``time_s`` (in file order) closes one interval; the
    first interval starts at 0, every later one at the previous
    timestamp — matching ``perf stat -I`` output, where the timestamp
    is the end of the reporting window.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise IngestError(f"cannot read counter log {path}: {error}") from error
    rows = list(csv.reader(text.splitlines()))
    rows = [row for row in rows if row and not row[0].lstrip().startswith("#")]
    if not rows:
        raise IngestError(f"counter log {path} is empty")
    header = [cell.strip() for cell in rows[0]]
    if header != ["time_s", "value", "event"]:
        raise IngestError(
            f"counter log {path} has header {header!r}; expected "
            f"['time_s', 'value', 'event']"
        )
    intervals: dict[float, dict[str, float]] = {}
    for number, row in enumerate(rows[1:], start=2):
        context = f"counter log {path} line {number}"
        if len(row) != 3:
            raise IngestError(f"{context}: expected 3 columns, got {len(row)}")
        try:
            time_s = float(row[0])
            value = float(row[1])
        except ValueError as error:
            raise IngestError(f"{context}: {error}") from error
        event = row[2].strip()
        if not event:
            raise IngestError(f"{context}: empty event name")
        events = intervals.setdefault(time_s, {})
        if event in events:
            raise IngestError(
                f"{context}: event {event!r} appears twice at time {time_s}"
            )
        events[event] = _event_value(value, context=context)
    records = []
    previous_end = 0.0
    for time_s in sorted(intervals):
        records.append(
            ExternalRecord(
                start_s=previous_end, end_s=time_s, events=intervals[time_s]
            )
        )
        previous_end = time_s
    return ExternalCounterLog(records, source=str(path))


READERS = {
    ".json": read_counter_log_json,
    ".csv": read_counter_log_csv,
}


def read_counter_log(path: str | pathlib.Path) -> ExternalCounterLog:
    """Load a counter log, dispatching on the file extension."""
    suffix = pathlib.Path(path).suffix.lower()
    reader = READERS.get(suffix)
    if reader is None:
        raise IngestError(
            f"counter log {path} has unsupported extension {suffix!r}; "
            f"supported: {', '.join(sorted(READERS))}"
        )
    return reader(path)


def write_counter_log_json(
    log: "SimulationLog", path: str | pathlib.Path
) -> None:
    """Export a simulated log in the external counter-log schema.

    Every counter is written — zeros included — plus a
    :data:`CYCLES_EVENT` entry per record, so ingesting the file back
    with the identity mapping reconstructs the run losslessly (the
    round-trip proof that external pricing shares the simulated
    arithmetic; explicit zeros also keep mapping validation honest for
    counters the run never touched).
    """
    document = {
        "version": COUNTER_LOG_SCHEMA_VERSION,
        "records": [
            {
                "start_s": record.start_s,
                "end_s": record.end_s,
                "events": {
                    CYCLES_EVENT: record.cycles,
                    **dict(zip(COUNTER_FIELDS, counters_row(record.counters))),
                },
            }
            for record in log
        ],
    }
    pathlib.Path(path).write_text(json.dumps(document) + "\n")
