"""The paper's published evaluation numbers, as data.

Every figure and table of the paper that this repository reproduces,
transcribed once and shared by the bench harness, the calibration
dashboard, and the report generator.  Sources are the tables of the
HPCA 2002 paper; Figure values are read off the charts and marked as
approximate.
"""

from __future__ import annotations

import dataclasses

# ---------------------------------------------------------------------------
# Section 2: validation
# ---------------------------------------------------------------------------

R10000_DATASHEET_MAX_W = 30.0
PAPER_SOFTWATT_MAX_W = 25.3

# ---------------------------------------------------------------------------
# Table 2: percentage breakdown of energy and cycles
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ModeShares:
    """One benchmark's Table 2 row."""

    user_cycles: float
    kernel_cycles: float
    sync_cycles: float
    idle_cycles: float
    user_energy: float
    kernel_energy: float
    sync_energy: float
    idle_energy: float


TABLE2: dict[str, ModeShares] = {
    "compress": ModeShares(88.24, 7.95, 0.20, 3.61, 93.74, 4.18, 0.14, 1.94),
    "jess": ModeShares(63.69, 24.57, 0.86, 10.88, 77.15, 15.12, 0.68, 7.05),
    "db": ModeShares(66.10, 24.28, 0.75, 8.87, 81.19, 13.22, 0.54, 5.05),
    "javac": ModeShares(64.20, 27.54, 0.55, 7.71, 78.47, 15.98, 0.44, 5.11),
    "mtrt": ModeShares(80.62, 14.80, 0.26, 4.32, 90.07, 7.44, 0.17, 2.32),
    "jack": ModeShares(69.02, 27.91, 0.63, 2.44, 81.36, 16.43, 0.51, 1.70),
}

AVERAGE_KERNEL_SHARE_SINGLE_ISSUE = 14.28
AVERAGE_KERNEL_SHARE_SUPERSCALAR = 21.02

# ---------------------------------------------------------------------------
# Table 3: cache references per cycle
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CacheRefRates:
    """One benchmark's Table 3 row: (iL1, dL1) per mode."""

    user: tuple[float, float]
    kernel: tuple[float, float]
    sync: tuple[float, float]
    idle: tuple[float, float]


TABLE3: dict[str, CacheRefRates] = {
    "compress": CacheRefRates((2.0088, 0.6833), (1.1203, 0.2080),
                              (1.5560, 0.1745), (0.7612, 0.3546)),
    "jess": CacheRefRates((1.9861, 0.6217), (1.1143, 0.2164),
                          (1.5956, 0.1775), (0.8267, 0.3851)),
    "db": CacheRefRates((2.0911, 0.6699), (1.0602, 0.1892),
                        (1.5240, 0.1832), (0.7244, 0.3375)),
    "javac": CacheRefRates((1.9685, 0.5604), (1.0346, 0.1835),
                           (1.5355, 0.1720), (0.8110, 0.3778)),
    "mtrt": CacheRefRates((2.1105, 0.6473), (1.0850, 0.1908),
                          (1.5177, 0.1697), (0.7524, 0.3505)),
    "jack": CacheRefRates((1.8465, 0.5869), (1.0410, 0.1931),
                          (1.5585, 0.1708), (0.8718, 0.4061)),
}

# ---------------------------------------------------------------------------
# Table 4: kernel computation by service (share of kernel cycles/energy, %)
# ---------------------------------------------------------------------------

TABLE4_SHARES: dict[str, dict[str, tuple[float, float]]] = {
    "compress": {
        "utlb": (76.2862, 64.2989), "read": (9.46498, 13.7241),
        "demand_zero": (4.46058, 6.91512), "cacheflush": (1.33649, 1.39134),
        "open": (1.04054, 1.18379), "vfault": (0.84626, 1.12367),
        "write": (0.82243, 0.74204), "tlb_miss": (0.716817, 0.917478),
    },
    "jess": {
        "utlb": (64.8216, 53.7089), "read": (16.5106, 20.7921),
        "BSD": (4.15149, 5.53606), "demand_zero": (3.20818, 4.19697),
        "tlb_miss": (2.93511, 4.329), "open": (1.4382, 1.63077),
        "cacheflush": (1.42624, 1.52855), "vfault": (0.638494, 0.826016),
    },
    "db": {
        "utlb": (75.6565, 66.6431), "read": (7.04481, 10.1373),
        "write": (5.12059, 5.22395), "demand_zero": (2.57247, 3.86259),
        "tlb_miss": (1.75243, 2.82191), "du_poll": (1.08423, 1.22557),
        "cacheflush": (0.981458, 1.10068), "open": (0.76878, 0.913507),
    },
    "javac": {
        "utlb": (78.782, 71.6722), "read": (5.47241, 7.96247),
        "demand_zero": (3.70849, 4.86183), "tlb_miss": (3.33207, 5.51917),
        "open": (1.58547, 2.09804), "cacheflush": (1.33713, 1.65195),
        "xstat": (0.627263, 0.879387), "vfault": (0.517107, 0.739405),
    },
    "mtrt": {
        "utlb": (81.3054, 72.199), "read": (6.35944, 8.87615),
        "demand_zero": (3.23787, 4.40053), "tlb_miss": (2.43972, 3.65625),
        "cacheflush": (0.929139, 1.03098), "open": (0.739026, 0.880839),
        "write": (0.623178, 0.582169), "vfault": (0.57036, 0.792793),
    },
    "jack": {
        "utlb": (71.0119, 64.0483), "read": (16.7512, 18.9097),
        "BSD": (6.6143, 7.36693), "tlb_miss": (1.8767, 3.03969),
        "demand_zero": (1.43321, 1.88598), "cacheflush": (0.386741, 0.44586),
        "open": (0.292891, 0.35692), "clock": (0.265881, 0.235892),
    },
}

# ---------------------------------------------------------------------------
# Table 5: variation in per-invocation energy
# ---------------------------------------------------------------------------

TABLE5: dict[str, tuple[float, float]] = {
    # service: (mean energy per invocation J, coefficient of deviation %)
    "utlb": (2.1276e-07, 0.13971),
    "demand_zero": (5.408e-05, 1.4927),
    "cacheflush": (2.1606e-05, 2.4698),
    "read": (4.8894e-05, 6.615),
    "write": (2.5351e-04, 10.6632),
    "open": (1.5586e-04, 10.0714),
}

# ---------------------------------------------------------------------------
# Figures 5 and 7: power budgets (% of average system power, approximate)
# ---------------------------------------------------------------------------

FIGURE5_SHARES: dict[str, float] = {
    "disk": 34.0, "l1i": 22.0, "clock": 22.0, "datapath": 15.0,
    "l1d": 6.0, "l2d": 1.0, "l2i": 1.0, "memory": 1.0,
}

FIGURE7_SHARES: dict[str, float] = {
    "disk": 23.0, "l1i": 26.0, "clock": 26.0, "datapath": 17.0,
    "l1d": 8.0, "l2d": 1.0, "l2i": 1.0, "memory": 1.0,
}

# ---------------------------------------------------------------------------
# Figure 9 narrative anchors
# ---------------------------------------------------------------------------

JACK_IMPROVEMENT_2S_TO_4S = 0.33
"""jack's energy-efficiency improvement when the spin-down threshold
moves from 2 s to 4 s (one spin-down/spin-up pair eliminated)."""

KERNEL_TRACE_ESTIMATE_ERROR = 0.10
"""Error margin of trace-based kernel-energy estimation (Section 3.3)."""
