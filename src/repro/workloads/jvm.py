"""JVM execution-phase model.

The paper runs SPEC JVM98 under the JIT-compiling JVM on IRIX with the
s10 dataset (Section 3.1).  The execution structure that its profiles
expose (Figures 3 and 4) is:

* a **startup** phase — Java class files are loaded from disk (the
  initial idle-dominated period), the heap is populated
  (``demand_zero`` faults), and the JIT compiles hot methods, flushing
  the I-/D-caches after code generation (``cacheflush``); cold caches
  make the memory subsystem's power ramp steeply,
* a **steady** phase — user-dominated execution with the benchmark's
  characteristic kernel-service mix; file data is found in the file
  cache most of the time,
* periodic **GC** episodes — the s10 dataset is chosen by the paper
  precisely because it exercises the garbage collector: pointer-chasing
  scans over the whole heap with poor locality and demand-zero faults
  for fresh allocation regions.

A :class:`PhaseSpec` captures one phase's workload parameters; the
:class:`JVMPhases` bundle orders them and assigns compute-time shares.
"""

from __future__ import annotations

import dataclasses

from repro.isa.generators import CodeSignature
from repro.kernel.scheduler import ServiceRate, SyscallPlan


@dataclasses.dataclass(frozen=True)
class PhaseSpec:
    """Workload parameters of one JVM execution phase."""

    name: str
    compute_fraction: float
    """Share of the benchmark's compute time spent in this phase."""
    signature: CodeSignature
    """User-code signature active during the phase."""
    service_rates: tuple[ServiceRate, ...] = ()
    syscalls: SyscallPlan | None = None
    sync_mean_gap: float | None = None
    cold_caches: bool = False
    """Start this phase's detailed window with cold caches (startup)."""

    def __post_init__(self) -> None:
        if not 0.0 < self.compute_fraction <= 1.0:
            raise ValueError(
                f"phase {self.name}: compute fraction must be in (0, 1], "
                f"got {self.compute_fraction}"
            )


@dataclasses.dataclass(frozen=True)
class JVMPhases:
    """The ordered phases of one benchmark's execution."""

    phases: tuple[PhaseSpec, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a benchmark needs at least one phase")
        total = sum(phase.compute_fraction for phase in self.phases)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"phase fractions must sum to 1.0, got {total}")
        names = [phase.name for phase in self.phases]
        if len(names) != len(set(names)):
            raise ValueError(f"phase names must be unique, got {names}")

    def phase(self, name: str) -> PhaseSpec:
        """Look up a phase by name."""
        for candidate in self.phases:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no phase named {name!r}")

    @property
    def names(self) -> tuple[str, ...]:
        """Phase names in execution order."""
        return tuple(phase.name for phase in self.phases)


def gc_signature(base: CodeSignature) -> CodeSignature:
    """Derive a garbage-collection signature from a benchmark's base.

    GC scans the whole heap with pointer-chasing loads: the data
    footprint expands to the full heap, temporal locality collapses,
    spatial runs shorten, and the load fraction rises.
    """
    return dataclasses.replace(
        base,
        name=f"{base.name}-gc",
        load_fraction=min(0.40, base.load_fraction + 0.12),
        store_fraction=max(0.06, base.store_fraction - 0.02),
        temporal_locality=0.65,
        hot_data_bytes=base.data_footprint_bytes // 8,
        spatial_run_mean=6,
        dependency_distance=max(3.0, base.dependency_distance / 1.6),
    )


def startup_signature(base: CodeSignature) -> CodeSignature:
    """Derive the class-loading/JIT signature from a benchmark's base.

    Startup touches far more code than it re-executes (class loading,
    verification, JIT compilation), with moderate ILP.
    """
    return dataclasses.replace(
        base,
        name=f"{base.name}-startup",
        hot_code_fraction=0.6,
        code_footprint_bytes=max(base.code_footprint_bytes, 512 * 1024),
        data_footprint_bytes=max(base.data_footprint_bytes, 3 * 1024 * 1024),
        temporal_locality=min(0.50, base.temporal_locality),
        spatial_run_mean=max(4, base.spatial_run_mean // 3),
        load_fraction=min(0.38, base.load_fraction + 0.08),
        # Class loading/JIT streams independent records: ILP stays up,
        # so the cold misses overlap and memory power spikes per cycle.
        dependency_distance=max(base.dependency_distance, 12.0),
    )
