"""SPEC JVM98 synthetic benchmark definitions.

The six benchmarks the paper characterises (``mpegaudio`` excluded, as
in the paper, because it failed to run on MXS).  Each spec couples:

* a user-code :class:`~repro.isa.generators.CodeSignature` reflecting
  the benchmark's published character (compress streams over buffers;
  jess is branchy and pointer-chasing; db is load-heavy; javac has a
  huge code footprint; mtrt is the floating-point raytracer; jack is
  parser code full of data-dependent branches),
* per-phase kernel activity (syscall/service/sync rates) whose mix
  follows Table 4 (e.g. BSD shows up in jess and jack, du_poll in db,
  xstat in javac),
* a disk-access timeline in *compute seconds* (progress time excluding
  I/O blocking): a class-loading burst at the start — the source of
  the initial idle-dominance in Figures 3 and 4 — plus the sparse
  steady-state accesses whose inter-access gaps drive the Section 4
  spin-down results.

The gap structure per benchmark is engineered from the paper's own
Figure 9 narrative: jess/db never leave more than ~0.8 s of disk
inactivity (too short to spin down); compress/javac leave ~2.4 s gaps
(pathological for the 2 s threshold, harmless at 4 s); jack leaves one
~3.1 s and one ~4.7 s gap (the 4 s threshold eliminates one spin-down
pair, a ~33 % energy gain); mtrt leaves two ~11 s gaps (both
thresholds spin down — identical idle cycles, but the 4 s threshold
holds the disk in the costlier IDLE mode longer, so its energy is
*higher*).
"""

from __future__ import annotations

import dataclasses

from repro.isa.generators import CodeSignature
from repro.workloads.jvm import JVMPhases, PhaseSpec, gc_signature, startup_signature

KB = 1024
MB = 1024 * KB

#: Table 4 of the paper: kernel-service invocation counts per benchmark
#: over the full profiled period.  Used to derive per-cycle invocation
#: densities for the timeline's scheduled kernel activity (utlb is NOT
#: scheduled -- it emerges from TLB misses in the detailed simulation).
PAPER_TABLE4_INVOCATIONS: dict[str, dict[str, int]] = {
    "compress": {
        "utlb": 7_132_786, "read": 5_863, "demand_zero": 3_080,
        "cacheflush": 1_558, "open": 192, "vfault": 972, "write": 71,
        "tlb_miss": 12_209,
    },
    "jess": {
        "utlb": 8_351_936, "read": 14_902, "BSD": 18_066,
        "demand_zero": 2_585, "tlb_miss": 92_554, "open": 327,
        "cacheflush": 2_371, "vfault": 1_017,
    },
    "db": {
        "utlb": 9_311_336, "read": 6_289, "write": 698,
        "demand_zero": 2_172, "tlb_miss": 53_764, "du_poll": 4_066,
        "cacheflush": 1_540, "open": 188,
    },
    "javac": {
        "utlb": 12_815_956, "read": 6_205, "demand_zero": 3_402,
        "tlb_miss": 134_265, "open": 434, "cacheflush": 2_802,
        "xstat": 142, "vfault": 1_054,
    },
    "mtrt": {
        "utlb": 11_871_047, "read": 6_400, "demand_zero": 2_868,
        "tlb_miss": 84_966, "cacheflush": 1_681, "open": 210,
        "write": 88, "vfault": 1_039,
    },
    "jack": {
        "utlb": 30_131_127, "read": 40_079, "BSD": 68_612,
        "tlb_miss": 204_529, "demand_zero": 3_484, "cacheflush": 2_039,
        "open": 239, "clock": 963,
    },
}

#: Estimated total cycles of each paper run, back-computed from Table 4
#: (utlb invocations x ~24 cycles each = Table 4 utlb share of the
#: Table 2 kernel share of the total).
PAPER_RUN_CYCLES: dict[str, float] = {
    "compress": 7_132_786 * 24 / (0.642989 * 0.0795),
    "jess": 8_351_936 * 24 / (0.648216 * 0.2457),
    "db": 9_311_336 * 24 / (0.756565 * 0.2428),
    "javac": 12_815_956 * 24 / (0.78782 * 0.2754),
    "mtrt": 11_871_047 * 24 / (0.813054 * 0.1480),
    "jack": 30_131_127 * 24 / (0.710119 * 0.2791),
}


@dataclasses.dataclass(frozen=True)
class DiskEvent:
    """One disk read at a given compute-progress time."""

    progress_s: float
    nbytes: int

    def __post_init__(self) -> None:
        if self.progress_s < 0 or self.nbytes <= 0:
            raise ValueError("disk events need progress_s >= 0 and nbytes > 0")


@dataclasses.dataclass(frozen=True)
class BenchmarkSpec:
    """Everything needed to simulate one SPEC JVM98 benchmark."""

    name: str
    description: str
    phases: JVMPhases
    compute_duration_s: float
    """Compute time on the baseline MXS machine, excluding I/O blocking."""
    disk_events: tuple[DiskEvent, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if self.compute_duration_s <= 0:
            raise ValueError(f"{self.name}: duration must be positive")
        times = [event.progress_s for event in self.disk_events]
        if times != sorted(times):
            raise ValueError(f"{self.name}: disk events must be time-ordered")
        if times and times[-1] >= self.compute_duration_s:
            raise ValueError(f"{self.name}: disk events must fall within the run")

    @property
    def steady_signature(self) -> CodeSignature:
        """The steady-phase user signature."""
        return self.phases.phase("steady").signature

    def service_densities(self) -> dict[str, float]:
        """Scheduled-service invocations per simulated cycle.

        Derived from the paper's Table 4 counts over its estimated run
        length; ``utlb`` is excluded because TLB refills emerge from the
        detailed simulation rather than being scheduled.
        """
        table = PAPER_TABLE4_INVOCATIONS.get(self.name)
        total = PAPER_RUN_CYCLES.get(self.name)
        if table is None or total is None:
            # Custom workloads without a registered Table 4 profile get
            # no scheduled services (utlb still emerges); register
            # entries in PAPER_TABLE4_INVOCATIONS / PAPER_RUN_CYCLES to
            # opt in (see examples/custom_workload.py).
            return {}
        return {
            service: count / total
            for service, count in table.items()
            if service != "utlb"
        }


def _startup_burst(
    start_s: float, end_s: float, count: int, nbytes: int
) -> list[DiskEvent]:
    """Class-loading reads across [start_s, end_s].

    The first reads pull in the class archives themselves (large,
    back-to-back), making the opening of every profiled run
    idle-dominated as in Figures 3 and 4; the rest are the individual
    class files, evenly spaced."""
    if count <= 0:
        raise ValueError("burst needs at least one event")
    if count == 1:
        return [DiskEvent(start_s, nbytes)]
    step = (end_s - start_s) / (count - 1)
    events = []
    for i in range(count):
        size = 160 * KB if i < 3 else nbytes
        events.append(DiskEvent(start_s + i * step, size))
    return events


def _phases(
    base: CodeSignature,
    *,
    startup_fraction: float,
    gc_fraction: float,
    sync_gap: float,
) -> JVMPhases:
    """Assemble the three-phase JVM structure around a base signature.

    Detailed windows carry user code, kernel synchronisation, and the
    emergent ``utlb`` traps; the scheduled kernel services (read, open,
    demand_zero, ...) are composed by the timeline from the spec's
    Table 4 invocation densities and the measured per-invocation
    service profiles.
    """
    steady_fraction = 1.0 - startup_fraction - gc_fraction
    return JVMPhases(
        phases=(
            PhaseSpec(
                name="startup",
                compute_fraction=startup_fraction,
                signature=startup_signature(base),
                sync_mean_gap=sync_gap,
                cold_caches=True,
            ),
            PhaseSpec(
                name="steady",
                compute_fraction=steady_fraction,
                signature=base,
                sync_mean_gap=sync_gap,
            ),
            PhaseSpec(
                name="gc",
                compute_fraction=gc_fraction,
                signature=gc_signature(base),
                sync_mean_gap=sync_gap * 1.5,
            ),
        )
    )


def _compress() -> BenchmarkSpec:
    base = CodeSignature(
        name="compress",
        load_fraction=0.26,
        store_fraction=0.12,
        fp_fraction=0.0,
        dependency_distance=16.0,
        loop_body_mean=18,
        loop_iterations_mean=80,
        irregular_branch_fraction=0.04,
        call_fraction=0.03,
        code_footprint_bytes=96 * KB,
        hot_code_bytes=8 * KB,
        data_footprint_bytes=1 * MB,
        hot_data_bytes=24 * KB,
        temporal_locality=0.94,
        spatial_run_mean=48,
    )
    events = _startup_burst(0.05, 0.55, 9, 16 * KB)
    events += [DiskEvent(3.0, 64 * KB), DiskEvent(5.4, 64 * KB), DiskEvent(7.8, 64 * KB)]
    return BenchmarkSpec(
        name="compress",
        description="LZW compression: streaming buffer loops, little OS activity",
        phases=_phases(
            base,
            startup_fraction=0.07,
            gc_fraction=0.08,
            sync_gap=28000,
        ),
        compute_duration_s=8.0,
        disk_events=tuple(events),
        seed=11,
    )


def _jess() -> BenchmarkSpec:
    base = CodeSignature(
        name="jess",
        load_fraction=0.25,
        store_fraction=0.10,
        fp_fraction=0.01,
        dependency_distance=14.0,
        loop_body_mean=14,
        loop_iterations_mean=56,
        irregular_branch_fraction=0.06,
        call_fraction=0.06,
        code_footprint_bytes=256 * KB,
        hot_code_bytes=12 * KB,
        data_footprint_bytes=1536 * KB,
        hot_data_bytes=24 * KB,
        temporal_locality=0.74,
        spatial_run_mean=28,
    )
    events = _startup_burst(0.05, 0.7, 11, 16 * KB)
    events += [DiskEvent(1.5, 32 * KB), DiskEvent(2.2, 32 * KB), DiskEvent(2.9, 32 * KB)]
    return BenchmarkSpec(
        name="jess",
        description="Expert-system shell: pointer-chasing rule matching, OS-heavy",
        phases=_phases(
            base,
            startup_fraction=0.12,
            gc_fraction=0.10,
            sync_gap=6400,
        ),
        compute_duration_s=3.5,
        disk_events=tuple(events),
        seed=13,
    )


def _db() -> BenchmarkSpec:
    base = CodeSignature(
        name="db",
        load_fraction=0.30,
        store_fraction=0.09,
        fp_fraction=0.0,
        dependency_distance=15.0,
        loop_body_mean=15,
        loop_iterations_mean=64,
        irregular_branch_fraction=0.05,
        call_fraction=0.05,
        code_footprint_bytes=160 * KB,
        hot_code_bytes=10 * KB,
        data_footprint_bytes=1536 * KB,
        hot_data_bytes=24 * KB,
        temporal_locality=0.68,
        spatial_run_mean=28,
    )
    events = _startup_burst(0.05, 0.6, 8, 16 * KB)
    events += [DiskEvent(1.2, 48 * KB), DiskEvent(1.9, 48 * KB), DiskEvent(2.6, 16 * KB)]
    return BenchmarkSpec(
        name="db",
        description="In-memory database: index scans and sorts over a large heap",
        phases=_phases(
            base,
            startup_fraction=0.12,
            gc_fraction=0.09,
            sync_gap=8000,
        ),
        compute_duration_s=2.8,
        disk_events=tuple(events),
        seed=17,
    )


def _javac() -> BenchmarkSpec:
    base = CodeSignature(
        name="javac",
        load_fraction=0.24,
        store_fraction=0.11,
        fp_fraction=0.0,
        dependency_distance=13.0,
        loop_body_mean=13,
        loop_iterations_mean=44,
        irregular_branch_fraction=0.07,
        call_fraction=0.08,
        code_footprint_bytes=384 * KB,
        hot_code_bytes=16 * KB,
        data_footprint_bytes=1536 * KB,
        hot_data_bytes=24 * KB,
        temporal_locality=0.64,
        spatial_run_mean=24,
    )
    events = _startup_burst(0.05, 0.9, 14, 16 * KB)
    events += [DiskEvent(3.4, 48 * KB), DiskEvent(5.8, 48 * KB)]
    return BenchmarkSpec(
        name="javac",
        description="The JDK Java compiler: huge code footprint, fault-heavy",
        phases=_phases(
            base,
            startup_fraction=0.15,
            gc_fraction=0.12,
            sync_gap=11200,
        ),
        compute_duration_s=6.0,
        disk_events=tuple(events),
        seed=19,
    )


def _mtrt() -> BenchmarkSpec:
    base = CodeSignature(
        name="mtrt",
        load_fraction=0.24,
        store_fraction=0.08,
        fp_fraction=0.22,
        imul_fraction=0.02,
        dependency_distance=16.0,
        loop_body_mean=16,
        loop_iterations_mean=72,
        irregular_branch_fraction=0.04,
        call_fraction=0.05,
        code_footprint_bytes=192 * KB,
        hot_code_bytes=12 * KB,
        data_footprint_bytes=1 * MB,
        hot_data_bytes=24 * KB,
        temporal_locality=0.80,
        spatial_run_mean=28,
    )
    events = _startup_burst(0.05, 0.8, 12, 16 * KB)
    events += [DiskEvent(11.5, 64 * KB), DiskEvent(23.0, 32 * KB)]
    return BenchmarkSpec(
        name="mtrt",
        description="Multithreaded raytracer: the suite's floating-point member",
        phases=_phases(
            base,
            startup_fraction=0.05,
            gc_fraction=0.08,
            sync_gap=25600,
        ),
        compute_duration_s=24.0,
        disk_events=tuple(events),
        seed=23,
    )


def _jack() -> BenchmarkSpec:
    base = CodeSignature(
        name="jack",
        load_fraction=0.23,
        store_fraction=0.10,
        fp_fraction=0.0,
        dependency_distance=12.0,
        loop_body_mean=12,
        loop_iterations_mean=40,
        irregular_branch_fraction=0.08,
        call_fraction=0.08,
        code_footprint_bytes=320 * KB,
        hot_code_bytes=14 * KB,
        data_footprint_bytes=1536 * KB,
        hot_data_bytes=24 * KB,
        temporal_locality=0.66,
        spatial_run_mean=24,
    )
    events = _startup_burst(0.05, 0.7, 10, 16 * KB)
    events += [DiskEvent(3.9, 48 * KB), DiskEvent(8.6, 48 * KB)]
    return BenchmarkSpec(
        name="jack",
        description="Parser generator: branchy text processing, most OS-intensive",
        phases=_phases(
            base,
            startup_fraction=0.09,
            gc_fraction=0.10,
            sync_gap=8800,
        ),
        compute_duration_s=9.0,
        disk_events=tuple(events),
        seed=29,
    )


def benchmark(name: str) -> BenchmarkSpec:
    """Look up one benchmark spec by its SPEC JVM98 name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_benchmarks() -> tuple[BenchmarkSpec, ...]:
    """All six benchmarks in the paper's table order."""
    return tuple(_REGISTRY[name]() for name in BENCHMARK_NAMES)


BENCHMARK_NAMES: tuple[str, ...] = ("compress", "jess", "db", "javac", "mtrt", "jack")
"""Table order used throughout the paper."""

_REGISTRY = {
    "compress": _compress,
    "jess": _jess,
    "db": _db,
    "javac": _javac,
    "mtrt": _mtrt,
    "jack": _jack,
}
