"""SPEC JVM98 synthetic workload suite."""

from repro.workloads.jvm import (
    JVMPhases,
    PhaseSpec,
    gc_signature,
    startup_signature,
)
from repro.workloads.specjvm98 import (
    BENCHMARK_NAMES,
    BenchmarkSpec,
    DiskEvent,
    all_benchmarks,
    benchmark,
)

__all__ = [
    "JVMPhases",
    "PhaseSpec",
    "gc_signature",
    "startup_signature",
    "BENCHMARK_NAMES",
    "BenchmarkSpec",
    "DiskEvent",
    "all_benchmarks",
    "benchmark",
]
