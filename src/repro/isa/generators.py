"""Statistical synthetic-code generation.

Real SPEC JVM98 binaries are not available to this reproduction, so
user-mode code is produced by :class:`SyntheticCodeGenerator`, a seeded
statistical generator parameterised by a :class:`CodeSignature`.  The
signature captures exactly the properties the paper's results depend
on:

* instruction mix (load/store/branch/FP fractions),
* instruction-level parallelism, via the register dependence-distance
  distribution (user code exhibits higher ILP than kernel code,
  Section 3.2),
* control structure: loop-body sizes, iteration counts, call depth,
  and the fraction of loops containing data-dependent (unpredictable)
  branches (kernel code has worse branch-prediction accuracy,
  Section 3.2),
* code and data footprints with spatial/temporal locality knobs, which
  determine cache, L2, and TLB behaviour (and therefore the ``utlb``
  service rate under the software-managed TLB).

Crucially, the generated *static code is stable*: revisiting a code
region re-executes the same loops with the same branch sites, call
targets, and trip counts, so the I-cache, BHT, BTB, and RAS see the
training behaviour of real programs.  Only data-dependent quantities
(operand registers, effective addresses, data-dependent branch
directions) vary between visits.

Generation is fully deterministic for a given (signature, seed) pair.
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from math import log as _log
from typing import Iterator

from repro.isa.instruction import (
    FP_REG_BASE,
    Instruction,
    OpClass,
    RETURN_ADDRESS_REG,
)

_INT_POOL = tuple(range(8, 24))
_FP_POOL = tuple(range(FP_REG_BASE + 4, FP_REG_BASE + 20))
_MAX_CALL_DEPTH = 8
_MAX_CACHED_FUNCTIONS = 16384


@dataclasses.dataclass(frozen=True)
class CodeSignature:
    """Statistical description of a code region.

    All fractions are probabilities in [0, 1].  ``dependency_distance``
    is the mean of the geometric distribution from which each source
    operand's producer distance is drawn — small values create serial
    dependence chains (low ILP), large values create independent
    instructions (high ILP).
    """

    name: str
    load_fraction: float = 0.22
    store_fraction: float = 0.10
    fp_fraction: float = 0.02
    imul_fraction: float = 0.01
    dependency_distance: float = 6.0
    loop_body_mean: int = 10
    loop_iterations_mean: int = 24
    irregular_branch_fraction: float = 0.08
    """Probability that a loop site contains a data-dependent branch."""
    call_fraction: float = 0.06
    code_footprint_bytes: int = 256 * 1024
    hot_code_fraction: float = 0.9
    """Probability that control transfers stay within the hot code set."""
    hot_code_bytes: int = 16 * 1024
    data_footprint_bytes: int = 8 * 1024 * 1024
    hot_data_bytes: int = 64 * 1024
    temporal_locality: float = 0.75
    """Probability a data access falls in the hot data set."""
    spatial_run_mean: int = 8
    """Mean length of sequential-stride access runs."""
    stride_bytes: int = 8
    code_base: int = 0x0040_0000
    data_base: int = 0x1000_0000

    def __post_init__(self) -> None:
        fractions = (
            self.load_fraction,
            self.store_fraction,
            self.fp_fraction,
            self.imul_fraction,
            self.irregular_branch_fraction,
            self.call_fraction,
            self.hot_code_fraction,
            self.temporal_locality,
        )
        for value in fractions:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: fraction {value} outside [0, 1]")
        if self.load_fraction + self.store_fraction + self.fp_fraction > 1.0:
            raise ValueError(f"{self.name}: instruction mix exceeds 1.0")
        if self.dependency_distance <= 0:
            raise ValueError(f"{self.name}: dependency_distance must be positive")
        if self.loop_body_mean < 2 or self.loop_iterations_mean < 1:
            raise ValueError(f"{self.name}: loop shape parameters too small")
        for size in (
            self.code_footprint_bytes,
            self.hot_code_bytes,
            self.data_footprint_bytes,
            self.hot_data_bytes,
            self.stride_bytes,
        ):
            if size <= 0:
                raise ValueError(f"{self.name}: footprint/stride sizes must be positive")
        if self.hot_code_bytes > self.code_footprint_bytes:
            raise ValueError(f"{self.name}: hot code larger than code footprint")
        if self.hot_data_bytes > self.data_footprint_bytes:
            raise ValueError(f"{self.name}: hot data larger than data footprint")


@dataclasses.dataclass(frozen=True)
class _LoopSpec:
    """Static shape of one loop site."""

    offset: int
    """Byte offset of the loop head from the function base."""
    body_ops: tuple[OpClass, ...]
    iterations: int
    irregular_slot: int
    """Body slot holding a data-dependent branch, or -1."""

    @property
    def static_len(self) -> int:
        """Static instructions: body + counter update + back branch."""
        return len(self.body_ops) + 2


@dataclasses.dataclass(frozen=True)
class _FunctionSpec:
    """Static shape of one generated function."""

    base_pc: int
    loops: tuple[_LoopSpec, ...]
    call_sites: tuple[tuple[int, int], ...]
    """(byte offset, callee base PC) pairs, one after selected loops."""
    return_offset: int


class _DataAddressModel:
    """Generates data effective addresses with the signature's locality."""

    def __init__(self, signature: CodeSignature, rng: random.Random) -> None:
        self._sig = signature
        self._rng = rng
        self._cursor = signature.data_base
        self._run_left = 0
        self._run_lambd = 1.0 / signature.spatial_run_mean
        self._limit = (
            signature.data_base
            + signature.data_footprint_bytes
            - signature.stride_bytes
        )

    def next_address(self) -> int:
        sig = self._sig
        if self._run_left > 0:
            self._run_left -= 1
            self._cursor += sig.stride_bytes
        else:
            rng = self._rng
            if rng.random() < sig.temporal_locality:
                span = sig.hot_data_bytes
            else:
                span = sig.data_footprint_bytes
            offset = rng.randrange(0, span, sig.stride_bytes)
            self._cursor = sig.data_base + offset
            # Inlined random.Random.expovariate (identical arithmetic).
            run = int(-_log(1.0 - rng.random()) / self._run_lambd)
            self._run_left = run if run > 0 else 0
        if self._cursor > self._limit:
            self._cursor = sig.data_base
        return self._cursor


class SyntheticCodeGenerator:
    """Infinite deterministic instruction stream for one code signature."""

    def __init__(
        self,
        signature: CodeSignature,
        seed: int = 0,
        *,
        service: str | None = None,
    ) -> None:
        self.signature = signature
        self._seed = seed
        # zlib.crc32, not hash(): str hashing is randomised per process
        # and would break cross-session reproducibility.
        name_hash = zlib.crc32(signature.name.encode())
        self._rng = random.Random(name_hash ^ seed)
        self._dep_lambd = 1.0 / signature.dependency_distance
        self._data = _DataAddressModel(signature, self._rng)
        self._service = service
        self._recent_dests: list[int] = []
        self._int_cursor = 0
        self._fp_cursor = 0
        self._functions: dict[int, _FunctionSpec] = {}

    # ------------------------------------------------------------------
    # Register model (dynamic: varies between visits to the same code)
    # ------------------------------------------------------------------

    def _alloc_dest(self, fp: bool) -> int:
        if fp:
            self._fp_cursor = (self._fp_cursor + 1) % len(_FP_POOL)
            reg = _FP_POOL[self._fp_cursor]
        else:
            self._int_cursor = (self._int_cursor + 1) % len(_INT_POOL)
            reg = _INT_POOL[self._int_cursor]
        self._recent_dests.append(reg)
        if len(self._recent_dests) > 64:
            del self._recent_dests[:32]
        return reg

    def _pick_src(self) -> int:
        recent = self._recent_dests
        if not recent:
            return 0
        # Inlined random.Random.expovariate (identical arithmetic).
        distance = int(-_log(1.0 - self._rng.random()) / self._dep_lambd)
        index = len(recent) - 1 - distance
        if index < 0:
            return 0
        return recent[index]

    def _pick_srcs(self, count: int = 2) -> tuple[int, ...]:
        if count == 2:
            return (self._pick_src(), self._pick_src())
        return tuple(self._pick_src() for _ in range(count))

    # ------------------------------------------------------------------
    # Static code-layout model (stable per site)
    # ------------------------------------------------------------------

    def _pick_region(self) -> int:
        sig = self.signature
        if self._rng.random() < sig.hot_code_fraction:
            span = sig.hot_code_bytes
        else:
            span = sig.code_footprint_bytes
        return sig.code_base + self._rng.randrange(0, span, 512)

    def _op_for_slot(self, rng: random.Random) -> OpClass:
        sig = self.signature
        roll = rng.random()
        if roll < sig.load_fraction:
            return OpClass.LOAD
        roll -= sig.load_fraction
        if roll < sig.store_fraction:
            return OpClass.STORE
        roll -= sig.store_fraction
        if roll < sig.fp_fraction:
            return OpClass.FMUL if rng.random() < 0.4 else OpClass.FALU
        roll -= sig.fp_fraction
        if roll < sig.imul_fraction:
            return OpClass.IMUL
        return OpClass.IALU

    def _build_function(self, base_pc: int) -> _FunctionSpec:
        """Generate the static shape of the function at ``base_pc``.

        The shape is derived from an RNG seeded by the site address, so
        it is identical on every visit and across generator instances
        with the same seed.
        """
        sig = self.signature
        site_rng = random.Random(base_pc ^ (self._seed * 0x9E3779B1) ^ 0xC0DE)
        loops: list[_LoopSpec] = []
        call_sites: list[tuple[int, int]] = []
        offset = 0
        for _ in range(site_rng.randint(1, 3)):
            body_len = min(28, max(2, int(site_rng.expovariate(1.0 / sig.loop_body_mean))))
            iterations = min(512, max(1, int(site_rng.expovariate(1.0 / sig.loop_iterations_mean))))
            has_irregular = (
                body_len >= 4 and site_rng.random() < sig.irregular_branch_fraction
            )
            body_ops = tuple(self._op_for_slot(site_rng) for _ in range(body_len))
            loop = _LoopSpec(
                offset=offset,
                body_ops=body_ops,
                iterations=iterations,
                irregular_slot=body_len // 2 if has_irregular else -1,
            )
            loops.append(loop)
            offset += 4 * loop.static_len
            if site_rng.random() < sig.call_fraction:
                # Call target fixed per site (static call graph).
                callee_rng = site_rng.random()
                if callee_rng < sig.hot_code_fraction:
                    span = sig.hot_code_bytes
                else:
                    span = sig.code_footprint_bytes
                callee = sig.code_base + site_rng.randrange(0, span, 512)
                if callee != base_pc:
                    call_sites.append((offset, callee))
                    offset += 4
        return _FunctionSpec(
            base_pc=base_pc,
            loops=tuple(loops),
            call_sites=tuple(call_sites),
            return_offset=offset,
        )

    def _function_spec(self, base_pc: int) -> _FunctionSpec:
        spec = self._functions.get(base_pc)
        if spec is None:
            spec = self._build_function(base_pc)
            if len(self._functions) >= _MAX_CACHED_FUNCTIONS:
                self._functions.clear()
            self._functions[base_pc] = spec
        return spec

    # ------------------------------------------------------------------
    # Dynamic execution of the static shapes
    # ------------------------------------------------------------------

    def _make_instruction(self, pc: int, op: OpClass) -> Instruction:
        if op is OpClass.LOAD:
            return Instruction(
                pc=pc,
                op=op,
                dest=self._alloc_dest(fp=False),
                srcs=(self._pick_src(),),
                address=self._data.next_address(),
                size=self.signature.stride_bytes,
                service=self._service,
            )
        if op is OpClass.STORE:
            return Instruction(
                pc=pc,
                op=op,
                srcs=self._pick_srcs(2),
                address=self._data.next_address(),
                size=self.signature.stride_bytes,
                service=self._service,
            )
        fp = op.is_fp
        return Instruction(
            pc=pc,
            op=op,
            dest=self._alloc_dest(fp=fp),
            srcs=self._pick_srcs(2),
            service=self._service,
        )

    def _run_loop(self, base_pc: int, spec: _LoopSpec) -> Iterator[Instruction]:
        service = self._service
        body_ops = spec.body_ops
        body_len = len(body_ops)
        head = base_pc + spec.offset
        counter_pc = head + 4 * body_len
        branch_pc = counter_pc + 4
        iterations = spec.iterations
        irregular_slot = spec.irregular_slot
        make = self._make_instruction
        # The loop tail is static — the counter update and the back
        # branch carry no per-iteration state — so the (frozen)
        # instructions are built once and re-yielded every iteration.
        counter_instr = Instruction(
            pc=counter_pc, op=OpClass.IALU, dest=2, srcs=(2,), service=service
        )
        back_taken = Instruction(
            pc=branch_pc, op=OpClass.BRANCH, srcs=(2,), target=head,
            taken=True, service=service,
        )
        back_exit = Instruction(
            pc=branch_pc, op=OpClass.BRANCH, srcs=(2,), target=head,
            taken=False, service=service,
        )
        last_iteration = iterations - 1
        for iteration in range(iterations):
            if irregular_slot < 0:
                # Straight-line body: no data-dependent control flow.
                pc = head
                for op in body_ops:
                    yield make(pc, op)
                    pc += 4
            else:
                pc = head
                slot = 0
                while slot < body_len:
                    if slot == irregular_slot:
                        skip = self._rng.random() < 0.5
                        yield Instruction(
                            pc=pc,
                            op=OpClass.BRANCH,
                            srcs=(self._pick_src(),),
                            target=pc + 12,
                            taken=skip,
                            service=service,
                        )
                        if skip:
                            advance = min(3, body_len - slot)
                            pc += 4 * advance
                            slot += advance
                        else:
                            pc += 4
                            slot += 1
                        continue
                    yield make(pc, body_ops[slot])
                    pc += 4
                    slot += 1
            yield counter_instr
            yield back_taken if iteration != last_iteration else back_exit

    def _run_function(
        self, base_pc: int, depth: int, return_pc: int
    ) -> Iterator[Instruction]:
        spec = self._function_spec(base_pc)
        service = self._service
        call_sites = dict(spec.call_sites)
        for loop in spec.loops:
            yield from self._run_loop(base_pc, loop)
            after = loop.offset + 4 * loop.static_len
            callee = call_sites.get(after)
            if callee is not None:
                call_pc = base_pc + after
                if depth < _MAX_CALL_DEPTH:
                    yield Instruction(
                        pc=call_pc,
                        op=OpClass.CALL,
                        dest=RETURN_ADDRESS_REG,
                        target=callee,
                        taken=True,
                        service=service,
                    )
                    yield from self._run_function(callee, depth + 1, call_pc + 4)
        yield Instruction(
            pc=base_pc + spec.return_offset,
            op=OpClass.RETURN,
            srcs=(RETURN_ADDRESS_REG,),
            target=return_pc,
            taken=True,
            service=service,
        )

    def __iter__(self) -> Iterator[Instruction]:
        """Yield instructions forever."""
        next_region = self._pick_region()
        while True:
            region = next_region
            next_region = self._pick_region()
            # A top-level function "returns" to the dispatcher, which
            # immediately enters the next function: model that return
            # as landing directly on the next region.
            yield from self._run_function(region, depth=0, return_pc=next_region)
