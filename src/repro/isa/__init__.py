"""Abstract MIPS-like ISA: instructions, trace helpers, synthetic code."""

from repro.isa.instruction import (
    EXECUTION_LATENCY,
    FP_REG_BASE,
    FP_REG_COUNT,
    INT_REG_BASE,
    INT_REG_COUNT,
    RETURN_ADDRESS_REG,
    ZERO_REG,
    Instruction,
    OpClass,
    is_fp_register,
)
from repro.isa.stream import (
    InstructionStream,
    chain,
    copy_loop,
    counted_loop,
    memory_walk,
    spin_loop,
    straightline,
    take,
)
from repro.isa.generators import CodeSignature, SyntheticCodeGenerator

__all__ = [
    "EXECUTION_LATENCY",
    "FP_REG_BASE",
    "FP_REG_COUNT",
    "INT_REG_BASE",
    "INT_REG_COUNT",
    "RETURN_ADDRESS_REG",
    "ZERO_REG",
    "Instruction",
    "OpClass",
    "is_fp_register",
    "InstructionStream",
    "chain",
    "copy_loop",
    "counted_loop",
    "memory_walk",
    "spin_loop",
    "straightline",
    "take",
    "CodeSignature",
    "SyntheticCodeGenerator",
]
