"""Helpers for building dynamic instruction traces.

The CPU models consume *dynamic* instruction streams (iterators of
:class:`~repro.isa.instruction.Instruction`).  Loops therefore appear
unrolled in the stream, but every iteration of a loop re-uses the same
static PCs so that the I-cache and branch predictor see realistic
reference patterns.  The helpers here keep that bookkeeping in one
place; the kernel-service handler bodies and the synthetic workload
generators are built from them.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator

from repro.isa.instruction import Instruction, OpClass

InstructionStream = Iterator[Instruction]
"""A dynamic instruction trace."""

BodyEmitter = Callable[[int, int], Iterable[Instruction]]
"""Emits one loop-body iteration: ``(iteration, base_pc) -> instructions``.

The emitted body must have the same instruction count on every
iteration so that the loop's backward branch lands on a fixed PC.
"""


def straightline(
    base_pc: int,
    ops: Iterable[OpClass],
    *,
    dest_regs: Iterable[int] = itertools.repeat(1),
    srcs: tuple[int, ...] = (),
    service: str | None = None,
) -> Iterator[Instruction]:
    """Yield a straight-line sequence of non-memory instructions."""
    pc = base_pc
    for op, dest in zip(ops, dest_regs):
        if op.is_memory or op.is_control:
            raise ValueError(f"straightline cannot emit {op}; build it explicitly")
        yield Instruction(pc=pc, op=op, dest=dest, srcs=srcs, service=service)
        pc += 4


def counted_loop(
    base_pc: int,
    iterations: int,
    emit_body: BodyEmitter,
    *,
    counter_reg: int = 2,
    service: str | None = None,
) -> Iterator[Instruction]:
    """Yield ``iterations`` passes over a loop body plus its back branch.

    Each pass emits ``emit_body(iteration, base_pc)`` followed by a
    counter decrement and a backward conditional branch that is taken on
    every pass except the last — the classic counted-loop shape the
    2-bit branch predictor captures after one mispredict.
    """
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    body_len: int | None = None
    # The decrement and back branch are loop-invariant (the branch has
    # a taken and an exit variant); the frozen instructions are built
    # on the first pass and re-yielded.
    decrement = back_taken = back_exit = None
    last_iteration = iterations - 1
    for iteration in range(iterations):
        emitted = 0
        for instr in emit_body(iteration, base_pc):
            emitted += 1
            yield instr
        if body_len is None:
            body_len = emitted
            decrement_pc = base_pc + 4 * body_len
            decrement = Instruction(
                pc=decrement_pc,
                op=OpClass.IALU,
                dest=counter_reg,
                srcs=(counter_reg,),
                service=service,
            )
            back_taken = Instruction(
                pc=decrement_pc + 4,
                op=OpClass.BRANCH,
                srcs=(counter_reg,),
                target=base_pc,
                taken=True,
                service=service,
            )
            back_exit = Instruction(
                pc=decrement_pc + 4,
                op=OpClass.BRANCH,
                srcs=(counter_reg,),
                target=base_pc,
                taken=False,
                service=service,
            )
        elif emitted != body_len:
            raise ValueError(
                f"loop body emitted {emitted} instructions on iteration "
                f"{iteration}, expected {body_len}"
            )
        yield decrement
        yield back_taken if iteration != last_iteration else back_exit


_WALK_CACHE: dict[tuple, tuple[Instruction, ...]] = {}
_WALK_CACHE_MAX = 128


def memory_walk(
    base_pc: int,
    op: OpClass,
    start_address: int,
    count: int,
    *,
    stride: int = 8,
    size: int = 8,
    value_reg: int = 3,
    address_reg: int = 4,
    service: str | None = None,
) -> Iterator[Instruction]:
    """Yield a unit-body loop that walks memory with a fixed stride.

    This is the shape of ``bzero``/``bcopy``-style kernel inner loops
    (``demand_zero`` zeroing a page, ``read`` copying out of the file
    cache): one memory operation, one address increment, one backward
    branch per element.

    The whole unrolled loop is a pure function of the arguments (the
    addresses advance deterministically), so it is materialised once
    per distinct signature and re-yielded.
    """
    if op not in (OpClass.LOAD, OpClass.STORE):
        raise ValueError(f"memory_walk requires LOAD or STORE, got {op}")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    key = (base_pc, op, start_address, count, stride, size, value_reg, address_reg, service)
    cached = _WALK_CACHE.get(key)
    if cached is None:
        cached = tuple(
            _build_memory_walk(
                base_pc, op, start_address, count,
                stride=stride, size=size, value_reg=value_reg,
                address_reg=address_reg, service=service,
            )
        )
        if len(_WALK_CACHE) >= _WALK_CACHE_MAX:
            _WALK_CACHE.clear()
        _WALK_CACHE[key] = cached
    return iter(cached)


def _build_memory_walk(
    base_pc: int,
    op: OpClass,
    start_address: int,
    count: int,
    *,
    stride: int,
    size: int,
    value_reg: int,
    address_reg: int,
    service: str | None,
) -> Iterator[Instruction]:
    dest = value_reg if op is OpClass.LOAD else 0
    srcs = (address_reg,) if op is OpClass.LOAD else (value_reg, address_reg)
    # The address increment is loop-invariant; built once.
    increment = Instruction(
        pc=base_pc + 4,
        op=OpClass.IALU,
        dest=address_reg,
        srcs=(address_reg,),
        service=service,
    )

    def body(iteration: int, pc: int) -> Iterable[Instruction]:
        yield Instruction(
            pc=pc,
            op=op,
            dest=dest,
            srcs=srcs,
            address=start_address + iteration * stride,
            size=size,
            service=service,
        )
        yield increment

    yield from counted_loop(base_pc, count, body, service=service)


def copy_loop(
    base_pc: int,
    src_address: int,
    dst_address: int,
    nbytes: int,
    *,
    word: int = 8,
    service: str | None = None,
) -> Iterator[Instruction]:
    """Yield a load/store copy loop moving ``nbytes`` (rounded up to a word)."""
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    words = max(1, (nbytes + word - 1) // word)

    # The two pointer increments are loop-invariant; built once.
    incr_src = Instruction(
        pc=base_pc + 8, op=OpClass.IALU, dest=4, srcs=(4,), service=service
    )
    incr_dst = Instruction(
        pc=base_pc + 12, op=OpClass.IALU, dest=5, srcs=(5,), service=service
    )

    def body(iteration: int, pc: int) -> Iterable[Instruction]:
        offset = iteration * word
        yield Instruction(
            pc=pc,
            op=OpClass.LOAD,
            dest=3,
            srcs=(4,),
            address=src_address + offset,
            size=word,
            service=service,
        )
        yield Instruction(
            pc=pc + 4,
            op=OpClass.STORE,
            srcs=(3, 5),
            address=dst_address + offset,
            size=word,
            service=service,
        )
        yield incr_src
        yield incr_dst

    yield from counted_loop(base_pc, words, body, service=service)


def spin_loop(
    base_pc: int,
    lock_address: int,
    spins: int,
    *,
    service: str | None = None,
) -> Iterator[Instruction]:
    """Yield an ll/sc-style spin-wait: the kernel-synchronisation shape.

    Each pass performs a synchronising load of the lock word, a compare,
    and a backward branch — comparison and increment/decrement in a
    tight loop, intensely exercising the L1 I-cache and the ALUs
    (Section 3.2).
    """
    if spins <= 0:
        raise ValueError(f"spins must be positive, got {spins}")
    # Each ll observes the previous pass's test result: passes are
    # serially dependent, as in a real lock-polling loop.  Every pass
    # is the same four instructions plus the back branch (taken except
    # on the last pass), built once and re-yielded.
    body = (
        Instruction(
            pc=base_pc,
            op=OpClass.SYNC,
            dest=3,
            srcs=(5,),
            address=lock_address,
            size=4,
            service=service,
        ),
        Instruction(pc=base_pc + 4, op=OpClass.IALU, dest=5, srcs=(3,), service=service),
        Instruction(pc=base_pc + 8, op=OpClass.IALU, dest=6, srcs=(5,), service=service),
        Instruction(
            pc=base_pc + 12, op=OpClass.IALU, dest=7, srcs=(6,), service=service
        ),
    )
    back_taken = Instruction(
        pc=base_pc + 16, op=OpClass.BRANCH, srcs=(7,), target=base_pc,
        taken=True, service=service,
    )
    back_exit = Instruction(
        pc=base_pc + 16, op=OpClass.BRANCH, srcs=(7,), target=base_pc,
        taken=False, service=service,
    )
    for _ in range(spins - 1):
        yield from body
        yield back_taken
    yield from body
    yield back_exit


def chain(*streams: Iterable[Instruction]) -> Iterator[Instruction]:
    """Concatenate instruction streams."""
    return itertools.chain(*streams)


def take(stream: Iterable[Instruction], count: int) -> list[Instruction]:
    """Materialise the first ``count`` instructions of a stream."""
    return list(itertools.islice(stream, count))
