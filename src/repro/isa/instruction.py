"""Abstract MIPS-like instruction representation.

SoftWatt simulates real MIPS binaries under SimOS; our substitute is an
abstract ISA rich enough to drive the pipeline, branch-predictor,
cache, and TLB models: every instruction carries a PC, an operation
class, register operands, and (for memory operations) an effective
address.  See DESIGN.md section 2 for why this preserves the paper's
observable behaviour.
"""

from __future__ import annotations

import dataclasses
import enum


class OpClass(enum.Enum):
    """Operation classes recognised by the CPU models."""

    IALU = "ialu"          # integer add/sub/logic/compare
    IMUL = "imul"          # integer multiply/divide
    FALU = "falu"          # FP add/sub/compare
    FMUL = "fmul"          # FP multiply/divide/sqrt
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"      # conditional branch
    JUMP = "jump"          # unconditional direct jump
    CALL = "call"          # jal: pushes return address
    RETURN = "return"      # jr ra: pops return address
    SYSCALL = "syscall"    # trap into the kernel
    ERET = "eret"          # return from exception/trap
    SYNC = "sync"          # ll/sc-style synchronisation op
    CACHEOP = "cacheop"    # explicit cache flush/invalidate op
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        """True for operations that access the data cache."""
        return self in (OpClass.LOAD, OpClass.STORE, OpClass.SYNC, OpClass.CACHEOP)

    @property
    def is_control(self) -> bool:
        """True for operations that can redirect fetch."""
        return self in (
            OpClass.BRANCH,
            OpClass.JUMP,
            OpClass.CALL,
            OpClass.RETURN,
            OpClass.SYSCALL,
            OpClass.ERET,
        )

    @property
    def is_fp(self) -> bool:
        """True for operations executed on the FP units."""
        return self in (OpClass.FALU, OpClass.FMUL)


#: Execution latency in cycles on the issuing functional unit.
EXECUTION_LATENCY: dict[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.IMUL: 4,
    OpClass.FALU: 2,
    OpClass.FMUL: 4,
    OpClass.LOAD: 1,       # plus cache latency, added by the memory system
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.CALL: 1,
    OpClass.RETURN: 1,
    OpClass.SYSCALL: 1,
    OpClass.ERET: 1,
    OpClass.SYNC: 2,
    OpClass.CACHEOP: 1,
    OpClass.NOP: 1,
}


# ---------------------------------------------------------------------------
# Hot-path dispatch attributes.
#
# The cycle-level models consult per-op facts for every dynamic
# instruction; enum property calls and dict lookups (which hash the
# member name) dominate that path.  Plain member attributes reduce each
# consultation to a single instance-dict read.  The properties above
# remain the canonical definitions; these are derived from them once at
# import time.
# ---------------------------------------------------------------------------
for _op in OpClass:
    _op.latency = EXECUTION_LATENCY[_op]
    _op.extra_latency = EXECUTION_LATENCY[_op] - 1
    _op.is_mem = _op.is_memory
    _op.is_ctrl = _op.is_control
    _op.is_float = _op.is_fp
del _op


@dataclasses.dataclass(frozen=True, slots=True)
class Instruction:
    """One dynamic instruction.

    ``pc`` is a byte address (instructions are 4 bytes).  ``srcs`` and
    ``dest`` are architectural register numbers; by convention integer
    registers are 0..33 and FP registers 64..95, register 0 is the
    hard-wired zero and never creates a dependence.  ``address`` is the
    data effective address for memory operations.  For control
    operations, ``target`` is the (possibly predicted-against) actual
    next PC and ``taken`` records the resolved direction.
    """

    pc: int
    op: OpClass
    dest: int = 0
    srcs: tuple[int, ...] = ()
    address: int = 0
    size: int = 0
    target: int = 0
    taken: bool = False
    service: str | None = None
    """Optional label of the kernel service this instruction belongs to
    (used by the service-level accounting of Section 3.3)."""

    def __post_init__(self) -> None:
        if self.pc < 0 or self.pc % 4 != 0:
            raise ValueError(f"pc must be a non-negative multiple of 4, got {self.pc}")
        op = self.op
        if op.is_mem and op is not OpClass.CACHEOP and self.size <= 0:
            raise ValueError(f"memory op at pc={self.pc:#x} needs a positive size")

    @property
    def fall_through(self) -> int:
        """PC of the next sequential instruction."""
        return self.pc + 4

    @property
    def next_pc(self) -> int:
        """Resolved next PC (target if taken, else fall-through)."""
        if self.op.is_control and self.taken:
            return self.target
        return self.fall_through


# Register-file conventions shared by the generators and CPU models.
ZERO_REG = 0
INT_REG_BASE = 1
INT_REG_COUNT = 33        # 34 integer registers including the zero register
FP_REG_BASE = 64
FP_REG_COUNT = 32
RETURN_ADDRESS_REG = 31


def is_fp_register(reg: int) -> bool:
    """True if ``reg`` names an FP architectural register."""
    return reg >= FP_REG_BASE
