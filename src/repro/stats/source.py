"""The :class:`CounterSource` protocol and :class:`CounterBundle`.

SoftWatt's architecture is "simulators write logs, power models
post-process them" (Figure 1) — which means the pricing side of the
pipeline should not care *who produced* the counters it evaluates.
Historically it did: every pricing entry point reached into
simulator-owned :class:`~repro.stats.simlog.SimulationLog` /
:class:`~repro.stats.counters.AccessCounters` objects, so the ledger
could only ever see counters we simulated ourselves.

:class:`CounterSource` is the seam.  Anything that can answer "what
were the total counters, over how many cycles?" can be priced through
the :mod:`~repro.power.registry` — a simulation log, one of its
records, a :class:`CounterBundle` snapshot, or an
:class:`~repro.ingest.pricing.IngestedRun` built from an externally
measured counter log (Linux-perf style, see :mod:`repro.ingest`).

:class:`CounterBundle` is the minimal concrete source: a counter
vector, a cycle count, and a *provenance* string recording where the
numbers came from ("simulated", ``ingested:<path>``, ``mode:user``...)
so reports and exports can say which pipeline produced them.
"""

from __future__ import annotations

import dataclasses
from typing import Protocol, runtime_checkable

from repro.stats.counters import AccessCounters

PROVENANCE_SIMULATED = "simulated"
"""Provenance of counters produced by our own simulators."""

PROVENANCE_INGESTED_PREFIX = "ingested:"
"""Provenance prefix for externally measured counters; the remainder
names the source log (see :mod:`repro.ingest`)."""


@runtime_checkable
class CounterSource(Protocol):
    """Anything the pricing layer can evaluate: counters over cycles.

    Implemented by :class:`~repro.stats.simlog.SimulationLog`,
    :class:`~repro.stats.simlog.LogRecord`, :class:`CounterBundle`,
    and :class:`~repro.ingest.pricing.IngestedRun`.  The contract is
    read-only and total: ``total_counters()`` returns the accumulated
    :class:`~repro.stats.counters.AccessCounters` and
    ``total_cycles()`` the cycle count they were accumulated over.
    """

    def total_counters(self) -> AccessCounters: ...

    def total_cycles(self) -> float: ...


@dataclasses.dataclass(frozen=True)
class CounterBundle:
    """An immutable (counters, cycles, provenance) snapshot.

    The smallest object satisfying :class:`CounterSource`; used to
    hand a mode/label/interval slice of a run — or an externally
    ingested interval — to the pricing layer without dragging the
    producing simulator along.
    """

    counters: AccessCounters
    cycles: float
    provenance: str = PROVENANCE_SIMULATED
    duration_s: float | None = None
    """Wall-clock seconds the counters span, when known (enables
    average-power views; ``None`` for cycle-only slices)."""

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"cycles cannot be negative: {self.cycles}")
        if self.duration_s is not None and self.duration_s < 0:
            raise ValueError(
                f"duration_s cannot be negative: {self.duration_s}"
            )

    # -- CounterSource -------------------------------------------------

    def total_counters(self) -> AccessCounters:
        return self.counters

    def total_cycles(self) -> float:
        return self.cycles

    @property
    def ingested(self) -> bool:
        """True when the counters came from an external measurement."""
        return self.provenance.startswith(PROVENANCE_INGESTED_PREFIX)
