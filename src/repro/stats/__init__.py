"""Measurement infrastructure: counters, timing trees, logs, post-processing.

``counters`` and ``timing_tree`` are leaf modules imported eagerly;
``simlog`` and ``postprocess`` depend on the kernel and power packages,
so their names are loaded lazily (PEP 562) to keep the import graph
acyclic — low-level modules import ``repro.stats.counters`` without
dragging the whole stack in.
"""

from repro.stats.counters import (
    COUNTER_FIELDS,
    COUNTER_INDEX,
    AccessCounters,
    counters_row,
    rates_per_cycle,
)
from repro.stats.source import CounterBundle, CounterSource
from repro.stats.timing_tree import TimingNode, TimingTree

__all__ = [
    "COUNTER_FIELDS",
    "COUNTER_INDEX",
    "AccessCounters",
    "counters_row",
    "rates_per_cycle",
    "CounterBundle",
    "CounterSource",
    "TimingNode",
    "TimingTree",
    "LogRecord",
    "SimulationLog",
    "PowerTrace",
    "compute_power_trace",
    "total_energy_j",
]

_LAZY = {
    "LogRecord": "repro.stats.simlog",
    "SimulationLog": "repro.stats.simlog",
    "PowerTrace": "repro.stats.postprocess",
    "compute_power_trace": "repro.stats.postprocess",
    "total_energy_j": "repro.stats.postprocess",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    # Deliberately lazy: module-level re-export without eager imports.
    import importlib  # noqa: PLC0415

    module = importlib.import_module(module_name)
    return getattr(module, name)
