"""Hardware event counters.

Every simulated unit records its port activity into an
:class:`AccessCounters` instance.  The power post-processor later turns
these counts into energy via the analytical models — mirroring the
SoftWatt architecture, where the simulators are instrumented to count
accesses and power is computed from the logs after the fact.
"""

from __future__ import annotations

import operator
from typing import Iterator

#: Every counted event, one per port-class of a modelled unit.
COUNTER_FIELDS: tuple[str, ...] = (
    # Memory hierarchy
    "l1i_access",
    "l1i_miss",
    "l1d_access",
    "l1d_miss",
    "l2i_access",
    "l2d_access",
    "l2_miss",
    "mem_access",
    "tlb_access",
    "tlb_miss",
    # Out-of-order engine arrays
    "regfile_read",
    "regfile_write",
    "window_dispatch",
    "window_issue",
    "window_wakeup",
    "lsq_access",
    "rename_access",
    "rob_access",
    # Predictors
    "bpred_access",
    "btb_access",
    "ras_access",
    # Execution
    "ialu_access",
    "imul_access",
    "falu_access",
    "fmul_access",
    "resultbus_access",
    # Pipeline events (used for clock gating and reporting)
    "fetch_cycles",
    "active_cycles",
    "branches",
    "branch_mispredicts",
    "loads",
    "stores",
)

_FIELD_SET = frozenset(COUNTER_FIELDS)

COUNTER_INDEX: dict[str, int] = {
    name: index for index, name in enumerate(COUNTER_FIELDS)
}
"""Position of each counter in the fixed-order vector layout.

The vectorized timeline paths (:func:`counters_to_vector` /
:func:`counters_from_vector`) lay an :class:`AccessCounters` out as a
float64 vector in :data:`COUNTER_FIELDS` declaration order; this index
is the single definition of that layout (documented in DESIGN.md §9).
"""

_ROW_GETTER = operator.attrgetter(*COUNTER_FIELDS)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None


class UnknownCounterError(KeyError, AttributeError):
    """A counter name that is not one of :data:`COUNTER_FIELDS`.

    Subclasses both ``KeyError`` (mapping-style access) and
    ``AttributeError`` (attribute-style access) so either idiom can
    catch it; the message always names the offender and the valid set
    instead of silently reading 0.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


def _unknown_counter(name: str, context: str = "") -> UnknownCounterError:
    where = f" {context}" if context else ""
    return UnknownCounterError(
        f"unknown counter {name!r}{where}; valid counters: "
        f"{', '.join(COUNTER_FIELDS)}"
    )


class AccessCounters:
    """A bundle of monotonically-increasing event counts."""

    __slots__ = COUNTER_FIELDS

    def __init__(self, **initial: int) -> None:
        for field in COUNTER_FIELDS:
            setattr(self, field, 0)
        for name, value in initial.items():
            if name not in _FIELD_SET:
                raise _unknown_counter(name)
            if value < 0:
                raise ValueError(f"counter {name} cannot be negative")
            setattr(self, name, value)

    def add(self, other: "AccessCounters") -> None:
        """Accumulate ``other`` into this instance."""
        for field in COUNTER_FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))

    def copy(self) -> "AccessCounters":
        """Return an independent copy."""
        clone = AccessCounters()
        for field in COUNTER_FIELDS:
            setattr(clone, field, getattr(self, field))
        return clone

    def delta(self, earlier: "AccessCounters") -> "AccessCounters":
        """Return ``self - earlier`` (for interval sampling)."""
        diff = AccessCounters()
        for field in COUNTER_FIELDS:
            value = getattr(self, field) - getattr(earlier, field)
            if value < 0:
                raise ValueError(f"counter {field} went backwards")
            setattr(diff, field, value)
        return diff

    def get(self, name: str) -> int:
        """Counter value by name.

        Unlike ``as_dict().get(name, 0)``, an unknown name raises
        :class:`UnknownCounterError` instead of silently reading 0.
        """
        if name not in _FIELD_SET:
            raise _unknown_counter(name)
        return getattr(self, name)

    __getitem__ = get

    def as_dict(self) -> dict[str, int]:
        """A plain-dict snapshot (for logs and reports)."""
        return {field: getattr(self, field) for field in COUNTER_FIELDS}

    def items(self) -> Iterator[tuple[str, int]]:
        """Iterate (name, value) pairs."""
        for field in COUNTER_FIELDS:
            yield field, getattr(self, field)

    def total_events(self) -> int:
        """Sum of all counters (a quick sanity signal for tests)."""
        return sum(getattr(self, field) for field in COUNTER_FIELDS)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessCounters):
            return NotImplemented
        return all(
            getattr(self, field) == getattr(other, field) for field in COUNTER_FIELDS
        )

    def __repr__(self) -> str:
        nonzero = {name: value for name, value in self.items() if value}
        return f"AccessCounters({nonzero!r})"


def counters_row(counters: AccessCounters) -> tuple:
    """All counter values as a tuple in :data:`COUNTER_INDEX` order.

    The pure-Python sibling of :func:`counters_to_vector`: one C-level
    ``attrgetter`` call instead of a per-field Python loop, returning
    the values unchanged (no float64 conversion).  Exporters use this
    to build per-record counter rows on the fixed vector layout.
    """
    return _ROW_GETTER(counters)


def counters_to_vector(counters: AccessCounters):
    """The counters as a float64 vector in :data:`COUNTER_FIELDS` order.

    Counter values are IEEE-754 doubles either way (Python floats and
    int counts below 2**53 convert exactly), so arithmetic on the
    vector is bit-identical to per-field arithmetic on the instance.
    Raises :class:`RuntimeError` when numpy is unavailable — callers
    gate on availability and keep a pure-Python path.
    """
    if _np is None:  # pragma: no cover - numpy is a declared dependency
        raise RuntimeError("numpy is not available; use the per-field API")
    return _np.array(_ROW_GETTER(counters), dtype=_np.float64)


def counters_from_vector(vector) -> AccessCounters:
    """Rebuild an :class:`AccessCounters` from a fixed-order vector.

    Values become Python floats (an exact conversion from float64), so
    downstream consumers see the same numbers the per-field path
    produces.
    """
    counters = AccessCounters()
    if len(vector) != len(COUNTER_FIELDS):
        raise ValueError(
            f"vector has {len(vector)} entries for "
            f"{len(COUNTER_FIELDS)} counters"
        )
    for field, value in zip(COUNTER_FIELDS, vector):
        setattr(counters, field, float(value))
    return counters


def rates_per_cycle(counters: AccessCounters, cycles: int) -> dict[str, float]:
    """Convert counts to per-cycle rates over ``cycles`` cycles."""
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    return {name: value / cycles for name, value in counters.items()}
