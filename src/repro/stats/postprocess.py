"""The SoftWatt post-processor: simulation logs in, power traces out.

This is the right-hand side of the paper's Figure 1: the simulation
writes log files; the analytical power models turn them into power
statistics after the fact.  Only the disk is integrated during
simulation (handled by :mod:`repro.disk.power`).
"""

from __future__ import annotations

import dataclasses

from repro.power.processor import ProcessorPowerModel
from repro.power.registry import REGISTRY
from repro.stats.simlog import SimulationLog


@dataclasses.dataclass
class PowerTrace:
    """Per-interval power series, one list per category (watts)."""

    times_s: list[float]
    """Interval midpoints."""
    category_w: dict[str, list[float]]
    disk_w: list[float]

    def __post_init__(self) -> None:
        lengths = {len(series) for series in self.category_w.values()}
        lengths.add(len(self.times_s))
        lengths.add(len(self.disk_w))
        if len(lengths) > 1:
            raise ValueError("all trace series must have equal length")

    @property
    def total_w(self) -> list[float]:
        """Total CPU + memory power per interval (disk excluded)."""
        return [
            sum(self.category_w[name][i] for name in self.category_w)
            for i in range(len(self.times_s))
        ]

    @property
    def total_with_disk_w(self) -> list[float]:
        """Total system power per interval including the disk."""
        totals = self.total_w
        return [totals[i] + self.disk_w[i] for i in range(len(totals))]

    def average_w(self, category: str) -> float:
        """Time-weighted average power of one category (or "disk")."""
        series = self.disk_w if category == "disk" else self.category_w[category]
        if not series:
            return 0.0
        return sum(series) / len(series)


def compute_power_trace(
    log: SimulationLog,
    model: ProcessorPowerModel,
    *,
    disk_power_w: list[float] | None = None,
) -> PowerTrace:
    """Convert a simulation log into a power trace.

    ``disk_power_w`` optionally supplies the disk's average power per
    interval (measured event-exactly during simulation); when omitted
    the disk series is zero.
    """
    times: list[float] = []
    category_w: dict[str, list[float]] = {
        name: [] for name in REGISTRY.counter_categories
    }
    if disk_power_w is not None and len(disk_power_w) != len(log):
        raise ValueError(
            f"disk series has {len(disk_power_w)} entries for {len(log)} records"
        )
    for record in log:
        times.append((record.start_s + record.end_s) / 2.0)
        duration = record.duration_s
        # Each record is itself a CounterSource; pricing goes through
        # the same seam as whole logs and ingested bundles.
        ledger = model.price(record)
        if duration > 0:
            for name, watts in ledger.category_power_w(duration).items():
                category_w[name].append(watts)
        else:
            for series in category_w.values():
                series.append(0.0)
    disk = list(disk_power_w) if disk_power_w is not None else [0.0] * len(log)
    return PowerTrace(times_s=times, category_w=category_w, disk_w=disk)


def total_energy_j(log: SimulationLog, model: ProcessorPowerModel) -> float:
    """Total CPU + memory energy of a log."""
    energy = 0.0
    for record in log:
        energy += model.price(record).total_j
    return energy
