"""Simulation log files.

SoftWatt "takes a post-processing approach ... the simulation data is
read from the log-files, pre-processed, and is input to the power
models.  This approach causes the loss of per-cycle information, as
data is sampled and dumped to the simulation log-file at a coarser
granularity" (Section 2).

A :class:`SimulationLog` is exactly that artifact: a time-ordered list
of sample intervals, each carrying the cycle count, the per-unit access
counters accumulated in the interval, and the interval's software-mode
cycle split.  Everything the post-processor and the figures need — and
nothing finer.
"""

from __future__ import annotations

import collections
import dataclasses
import logging

from repro.kernel.modes import ExecutionMode
from repro.stats.counters import AccessCounters
from repro.stats.source import PROVENANCE_SIMULATED, CounterBundle

SIM_LOGGER = logging.getLogger("repro.sim")
"""Logger for simulation-infrastructure events (pool degradations,
cache quarantines).  Silent by default under the stdlib's default
configuration unless the host application configures logging; the
structured :class:`~repro.resilience.runreport.RunReport` is the
machine-readable channel for the same events."""

_RECENT_DEGRADATIONS: collections.deque[str] = collections.deque(maxlen=128)


def log_degradation(message: str) -> None:
    """Record an execution-layer degradation instead of hiding it.

    Emits a warning on :data:`SIM_LOGGER` and retains the message in a
    bounded in-process buffer (:func:`recent_degradations`) so tests and
    post-mortems can inspect what degraded without capturing logs.
    """
    SIM_LOGGER.warning(message)
    _RECENT_DEGRADATIONS.append(message)


def recent_degradations() -> tuple[str, ...]:
    """The most recent degradation messages, oldest first."""
    return tuple(_RECENT_DEGRADATIONS)


@dataclasses.dataclass
class LogRecord:
    """One sample interval of the simulation log."""

    start_s: float
    end_s: float
    cycles: float
    counters: AccessCounters
    mode_cycles: dict[ExecutionMode, float] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError(f"interval ends before it starts: {self}")
        if self.cycles < 0:
            raise ValueError("cycles cannot be negative")

    @property
    def duration_s(self) -> float:
        """Wall-clock length of the interval."""
        return self.end_s - self.start_s

    def dominant_mode(self) -> ExecutionMode:
        """The mode with the most cycles in this interval."""
        if not self.mode_cycles:
            return ExecutionMode.USER
        return max(self.mode_cycles, key=lambda mode: self.mode_cycles[mode])

    # -- CounterSource (one interval is itself priceable) --------------

    def total_counters(self) -> AccessCounters:
        """This interval's counters (the record *is* a CounterSource)."""
        return self.counters

    def total_cycles(self) -> float:
        """This interval's cycles."""
        return self.cycles


class SimulationLog:
    """Time-ordered sample records of one simulated run."""

    def __init__(self, sample_interval_s: float) -> None:
        if sample_interval_s <= 0:
            raise ValueError(f"sample interval must be positive: {sample_interval_s}")
        self.sample_interval_s = sample_interval_s
        self.records: list[LogRecord] = []

    def append(self, record: LogRecord) -> None:
        """Append a record; intervals must be time-ordered."""
        if self.records and record.start_s < self.records[-1].end_s - 1e-9:
            raise ValueError(
                f"record starting at {record.start_s} overlaps the previous "
                f"record ending at {self.records[-1].end_s}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration_s(self) -> float:
        """Wall-clock span of the log."""
        if not self.records:
            return 0.0
        return self.records[-1].end_s - self.records[0].start_s

    def total_cycles(self) -> float:
        """Cycles across all records."""
        return sum(record.cycles for record in self.records)

    def total_counters(self) -> AccessCounters:
        """Summed counters across all records."""
        total = AccessCounters()
        for record in self.records:
            total.add(record.counters)
        return total

    def counter_bundle(
        self, provenance: str = PROVENANCE_SIMULATED
    ) -> CounterBundle:
        """The whole log condensed into one provenance-carrying
        :class:`~repro.stats.source.CounterBundle` (for export and
        round-trip comparisons against ingested sources)."""
        return CounterBundle(
            counters=self.total_counters(),
            cycles=self.total_cycles(),
            provenance=provenance,
            duration_s=self.duration_s,
        )

    def mode_cycle_totals(self) -> dict[ExecutionMode, float]:
        """Cycles per software mode across the run."""
        totals: dict[ExecutionMode, float] = {mode: 0.0 for mode in ExecutionMode}
        for record in self.records:
            for mode, cycles in record.mode_cycles.items():
                totals[mode] += cycles
        return totals
