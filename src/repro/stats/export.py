"""Simulation-log and power-trace export.

SoftWatt's architecture revolves around simulation log files (Figure 1:
the simulators write logs; the power models post-process them).  This
module makes our logs and traces durable artifacts: CSV for spreadsheet
analysis and JSON for programmatic consumption, with a loader that
round-trips the JSON form back into a :class:`SimulationLog`.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import TYPE_CHECKING

from repro.kernel.modes import ExecutionMode
from repro.stats.counters import COUNTER_FIELDS, AccessCounters, counters_row
from repro.stats.postprocess import PowerTrace
from repro.stats.simlog import LogRecord, SimulationLog

if TYPE_CHECKING:
    # Deliberately lazy: stats must not import power at module scope.
    from repro.power.ledger import EnergyLedger  # noqa: PLC0415

LOG_SCHEMA_VERSION = 1


def write_log_csv(log: SimulationLog, path: str | pathlib.Path) -> None:
    """Write one row per sample interval: times, cycles, mode cycles,
    and every counter."""
    mode_columns = [f"cycles_{mode.value}" for mode in ExecutionMode]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["start_s", "end_s", "cycles", *mode_columns, *COUNTER_FIELDS]
        )
        for record in log:
            modes = [record.mode_cycles.get(mode, 0.0) for mode in ExecutionMode]
            # One attrgetter call on the COUNTER_INDEX vector layout
            # instead of a per-field getattr loop per record.
            writer.writerow(
                [record.start_s, record.end_s, record.cycles, *modes,
                 *counters_row(record.counters)]
            )


def write_log_json(log: SimulationLog, path: str | pathlib.Path) -> None:
    """Write the full log as a versioned JSON document."""
    document = {
        "version": LOG_SCHEMA_VERSION,
        "sample_interval_s": log.sample_interval_s,
        "records": [
            {
                "start_s": record.start_s,
                "end_s": record.end_s,
                "cycles": record.cycles,
                "mode_cycles": {
                    mode.value: cycles
                    for mode, cycles in record.mode_cycles.items()
                },
                "counters": {
                    name: value
                    for name, value in zip(
                        COUNTER_FIELDS, counters_row(record.counters)
                    )
                    if value
                },
            }
            for record in log
        ],
    }
    pathlib.Path(path).write_text(json.dumps(document))


def read_log_json(path: str | pathlib.Path) -> SimulationLog:
    """Load a log written by :func:`write_log_json`."""
    document = json.loads(pathlib.Path(path).read_text())
    if document.get("version") != LOG_SCHEMA_VERSION:
        raise ValueError(
            f"log schema version {document.get('version')!r} is not "
            f"{LOG_SCHEMA_VERSION}"
        )
    log = SimulationLog(document["sample_interval_s"])
    for payload in document["records"]:
        counters = AccessCounters()
        for name, value in payload["counters"].items():
            setattr(counters, name, value)
        log.append(
            LogRecord(
                start_s=payload["start_s"],
                end_s=payload["end_s"],
                cycles=payload["cycles"],
                counters=counters,
                mode_cycles={
                    ExecutionMode(name): cycles
                    for name, cycles in payload["mode_cycles"].items()
                },
            )
        )
    return log


def write_trace_csv(trace: PowerTrace, path: str | pathlib.Path) -> None:
    """Write the power trace: one row per interval, one column per
    category plus the disk and the system total.

    Columns follow the registry's report order (the order the trace's
    category series were built in)."""
    categories = list(trace.category_w)
    totals = trace.total_with_disk_w
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", *categories, "disk", "total"])
        for index, time_s in enumerate(trace.times_s):
            writer.writerow(
                [
                    time_s,
                    *(trace.category_w[name][index] for name in categories),
                    trace.disk_w[index],
                    totals[index],
                ]
            )


LEDGER_SCHEMA_VERSION = 1


def write_ledger_json(
    ledger: "EnergyLedger",
    path: str | pathlib.Path,
    *,
    seconds: float | None = None,
) -> None:
    """Write an :class:`~repro.power.ledger.EnergyLedger` as JSON.

    Per-component and per-category joules in registry order, plus the
    component→category mapping; pass ``seconds`` to also record the
    average per-category watts over that interval.
    """
    document: dict = {
        "version": LEDGER_SCHEMA_VERSION,
        "component_j": ledger.components,
        "component_category": {
            name: ledger.category_of(name) for name in ledger.components
        },
        "category_j": ledger.categories,
        "total_j": ledger.total_j,
    }
    if seconds is not None:
        document["seconds"] = seconds
        document["category_w"] = ledger.category_power_w(seconds)
    pathlib.Path(path).write_text(json.dumps(document, indent=2) + "\n")


def read_ledger_json(path: str | pathlib.Path) -> "EnergyLedger":
    """Load a ledger written by :func:`write_ledger_json`."""
    # Deliberately lazy: stats must not import power at module scope.
    from repro.power.ledger import EnergyLedger  # noqa: PLC0415

    document = json.loads(pathlib.Path(path).read_text())
    if document.get("version") != LEDGER_SCHEMA_VERSION:
        raise ValueError(
            f"ledger schema version {document.get('version')!r} is not "
            f"{LEDGER_SCHEMA_VERSION}"
        )
    return EnergyLedger(document["component_j"], document["component_category"])
