"""SimOS-style timing trees.

SimOS exposes a hierarchical decomposition of execution time — *timing
trees* [Herrod 98] — that SoftWatt uses to attribute cycles to nested
contexts (benchmark -> mode -> kernel service -> invocation).  This is
the bookkeeping structure behind Table 2's mode breakdown and Table 4's
per-service decomposition.

A tree node accumulates cycles and energy; entering a child context
pushes onto the path, exiting pops and rolls the interval up through
every open ancestor.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator


@dataclasses.dataclass
class TimingNode:
    """One context in the timing tree."""

    name: str
    cycles: float = 0.0
    energy_j: float = 0.0
    visits: int = 0
    children: dict[str, "TimingNode"] = dataclasses.field(default_factory=dict)

    def child(self, name: str) -> "TimingNode":
        """The named child, created on demand."""
        node = self.children.get(name)
        if node is None:
            node = TimingNode(name=name)
            self.children[name] = node
        return node

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "TimingNode"]]:
        """Depth-first traversal yielding (depth, node)."""
        yield depth, self
        for child in self.children.values():
            yield from child.walk(depth + 1)

    @property
    def self_cycles(self) -> float:
        """Cycles not attributed to any child."""
        return self.cycles - sum(child.cycles for child in self.children.values())


class TimingTree:
    """Accumulates (cycles, energy) intervals along a context path."""

    def __init__(self, root_name: str = "root") -> None:
        self.root = TimingNode(name=root_name)
        self._path: list[TimingNode] = [self.root]

    @property
    def current_path(self) -> tuple[str, ...]:
        """Names along the open context path."""
        return tuple(node.name for node in self._path)

    def enter(self, name: str) -> None:
        """Open a child context."""
        node = self._path[-1].child(name)
        node.visits += 1
        self._path.append(node)

    def exit(self, name: str) -> None:
        """Close the innermost context (must match ``name``)."""
        if len(self._path) == 1:
            raise RuntimeError("cannot exit the root context")
        if self._path[-1].name != name:
            raise RuntimeError(
                f"context mismatch: exiting {name!r} but innermost is "
                f"{self._path[-1].name!r}"
            )
        self._path.pop()

    def accrue(self, cycles: float, energy_j: float = 0.0) -> None:
        """Charge an interval to every open context."""
        if cycles < 0 or energy_j < 0:
            raise ValueError("cycles and energy must be non-negative")
        for node in self._path:
            node.cycles += cycles
            node.energy_j += energy_j

    def record(self, path: tuple[str, ...], cycles: float, energy_j: float = 0.0) -> None:
        """Charge an interval to an explicit path (batch interface)."""
        if cycles < 0 or energy_j < 0:
            raise ValueError("cycles and energy must be non-negative")
        node = self.root
        node.cycles += cycles
        node.energy_j += energy_j
        for name in path:
            node = node.child(name)
            node.cycles += cycles
            node.energy_j += energy_j

    def node(self, *path: str) -> TimingNode:
        """Look up a node by path; raises KeyError if absent."""
        node = self.root
        for name in path:
            if name not in node.children:
                raise KeyError(f"no node {'/'.join(path)!r}")
            node = node.children[name]
        return node

    def format(self) -> str:
        """A human-readable indented dump (for reports and debugging)."""
        lines = []
        total = self.root.cycles or 1.0
        for depth, node in self.root.walk():
            share = node.cycles / total * 100.0
            lines.append(
                f"{'  ' * depth}{node.name}: {node.cycles:.0f} cycles "
                f"({share:.1f}%), {node.energy_j:.4g} J, {node.visits} visits"
            )
        return "\n".join(lines)
