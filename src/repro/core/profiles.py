"""Detailed-window profiling: cycle-level simulation -> per-cycle rates.

The first half of the SoftWatt two-level methodology (DESIGN.md §2):
for every benchmark phase, run the interleaved workload (user code +
scheduled kernel activity + emergent utlb traps) on a cycle-level CPU
model and record per-label cycles and unit-access counters.  Phases run
*sequentially on one machine state*, so the startup phase executes with
cold caches (the paper's cold-start memory-power ramp) and later phases
inherit warmed state.

Each phase is measured in several sequential *chunks*; the chunk
sequence preserves within-phase ramps (cold -> warm) that the timeline
stitches back into the sampled log.

Per-invocation kernel-service profiles (Table 5 / Figure 8) are
measured separately by running isolated invocations against a
persistent machine state.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.config.system import FidelityTier, SystemConfig
from repro.cpu.atomic import AtomicProcessor
from repro.cpu.mipsy import MipsyProcessor
from repro.cpu.mxs import MXSProcessor
from repro.cpu.runstats import RunStats
from repro.cpu.sampled import SampledProcessor
from repro.isa.generators import SyntheticCodeGenerator
from repro.kernel.idle import IDLE_LOOP_LENGTH, idle_loop
from repro.kernel.kernel import Kernel
from repro.kernel.modes import ExecutionMode, mode_of_label
from repro.kernel.scheduler import InterleavedWorkload
from repro.mem.hierarchy import MemoryHierarchy
from repro.power.processor import ProcessorPowerModel
from repro.stats.counters import AccessCounters
from repro.workloads.jvm import PhaseSpec
from repro.workloads.specjvm98 import BenchmarkSpec

CPU_MODELS = ("mxs", "mipsy")


def make_cpu(model: str, config: SystemConfig, hierarchy, trap_client):
    """Instantiate a CPU model by name."""
    if model == "mxs":
        return MXSProcessor(config, hierarchy, trap_client=trap_client)
    if model == "mipsy":
        return MipsyProcessor(config, hierarchy, trap_client=trap_client)
    raise ValueError(f"unknown CPU model {model!r}; choose from {CPU_MODELS}")


def make_tier_cpu(model: str, config: SystemConfig, hierarchy, trap_client):
    """Instantiate a CPU at the fidelity tier requested by ``config``.

    ``detailed`` returns the plain cycle-level core (the path stays
    bit-identical to the golden pins); ``sampled`` wraps that core in a
    :class:`SampledProcessor`; ``atomic`` substitutes the functional
    :class:`AtomicProcessor` of the matching flavour.
    """
    tier = config.fidelity.tier
    if tier is FidelityTier.ATOMIC:
        if model not in CPU_MODELS:
            raise ValueError(f"unknown CPU model {model!r}; choose from {CPU_MODELS}")
        return AtomicProcessor(model, config, hierarchy, trap_client)
    cpu = make_cpu(model, config, hierarchy, trap_client)
    if tier is FidelityTier.SAMPLED:
        return SampledProcessor(cpu, config.fidelity)
    return cpu


@dataclasses.dataclass
class PhaseProfile:
    """Measured behaviour of one benchmark phase."""

    phase: PhaseSpec
    chunks: list[RunStats]
    invocations: dict[str, int]
    """Kernel-service invocations observed in the window (including the
    emergent utlb count)."""

    @property
    def aggregate(self) -> RunStats:
        """All chunks merged."""
        merged = self.chunks[0]
        for chunk in self.chunks[1:]:
            merged = merged.merged(chunk)
        return merged

    def mode_cycles(self) -> dict[ExecutionMode, float]:
        """Cycles per software mode in the measured window."""
        totals = {mode: 0.0 for mode in ExecutionMode}
        for label, stats in self.aggregate.labels.items():
            totals[mode_of_label(label)] += stats.cycles
        return totals


@dataclasses.dataclass
class IdleProfile:
    """Measured behaviour of the idle process."""

    stats: RunStats

    def rates(self) -> AccessCounters:
        """Counters of the window (normalise by ``stats.cycles``)."""
        return self.stats.total_counters()


@dataclasses.dataclass
class ServiceInvocationProfile:
    """Per-invocation statistics for one kernel service (Table 5)."""

    service: str
    cycles: list[float]
    energies_j: list[float]
    category_energy_j: dict[str, float]
    """Mean energy per invocation, split by power category (Figure 8)."""
    mean_counters: AccessCounters = dataclasses.field(default_factory=AccessCounters)
    """Mean per-invocation unit-access counts (for timeline scheduling)."""
    instructions_per_invocation: float = 0.0

    @property
    def invocations(self) -> int:
        """Number of measured invocations."""
        return len(self.cycles)

    @property
    def mean_energy_j(self) -> float:
        """Mean energy per invocation."""
        return statistics.fmean(self.energies_j)

    @property
    def mean_cycles(self) -> float:
        """Mean cycles per invocation."""
        return statistics.fmean(self.cycles)

    @property
    def coefficient_of_deviation(self) -> float:
        """Standard deviation over mean, as a percentage (Table 5)."""
        if len(self.energies_j) < 2:
            return 0.0
        mean = self.mean_energy_j
        if mean == 0.0:
            return 0.0
        return statistics.stdev(self.energies_j) / mean * 100.0

    def average_power_w(self, cycle_time_s: float) -> float:
        """Average power while the service runs (Figure 8)."""
        if self.mean_cycles == 0:
            return 0.0
        return self.mean_energy_j / (self.mean_cycles * cycle_time_s)


@dataclasses.dataclass
class BenchmarkProfile:
    """All measured windows for one benchmark on one CPU model."""

    spec: BenchmarkSpec
    cpu_model: str
    phases: dict[str, PhaseProfile]
    idle: IdleProfile
    config: SystemConfig

    def phase_profile(self, name: str) -> PhaseProfile:
        """The profile of the named phase."""
        return self.phases[name]


class Profiler:
    """Runs the detailed windows for benchmarks, idle, and services."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        *,
        cpu_model: str = "mxs",
        window_instructions: int = 60_000,
        startup_chunks: int = 4,
        steady_chunks: int = 2,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else SystemConfig.table1()
        if cpu_model not in CPU_MODELS:
            raise ValueError(f"unknown CPU model {cpu_model!r}")
        if window_instructions < 1000:
            raise ValueError("windows below 1000 instructions are meaningless")
        self.cpu_model = cpu_model
        self.window_instructions = window_instructions
        self.startup_chunks = startup_chunks
        self.steady_chunks = steady_chunks
        self.seed = seed
        self.detailed_runs = 0
        """Detailed cycle-level simulations performed by this profiler
        (benchmark windows + service characterisations).  Tests use this
        to assert that a warm profile cache skips simulation entirely."""
        self._idle_cache: IdleProfile | None = None

    # ------------------------------------------------------------------
    # Benchmark phases
    # ------------------------------------------------------------------

    def lane_task(self, spec: BenchmarkSpec):
        """This profiler's parameters as one lane of a lockstep batch.

        The returned :class:`~repro.cpu.batch.BatchTask` describes
        exactly the simulation :meth:`profile_benchmark` would run, so
        externally assembled lane sets (the campaign tier-S prebuild,
        the serve batch scheduler) stay bit-identical to profiling here.
        """
        from repro.cpu.batch import BatchTask  # noqa: PLC0415 — keep numpy lazy

        return BatchTask(
            spec=spec,
            config=self.config,
            window_instructions=self.window_instructions,
            startup_chunks=self.startup_chunks,
            steady_chunks=self.steady_chunks,
            seed=self.seed,
        )

    def profile_benchmark(self, spec: BenchmarkSpec) -> BenchmarkProfile:
        """Measure every phase of ``spec`` sequentially (cold start)."""
        self.detailed_runs += 1
        config = self.config
        counters = AccessCounters()
        hierarchy = MemoryHierarchy(config, counters)
        kernel = Kernel(config, hierarchy, seed=spec.seed ^ self.seed)
        # The paper warms the file caches and checkpoints before
        # profiling; class files are NOT pre-cached (their loads are the
        # initial idle periods), but the benchmark's data files are.
        for file_id in range(8):
            kernel.file_cache.warm(file_id, 512 * 1024)
        cpu = make_tier_cpu(self.cpu_model, config, hierarchy, kernel)

        phases: dict[str, PhaseProfile] = {}
        seen_invocations: dict[str, int] = {}
        for phase in spec.phases.phases:
            chunk_count = (
                self.startup_chunks if phase.cold_caches else self.steady_chunks
            )
            instructions = max(
                2000, int(self.window_instructions * phase.compute_fraction)
            )
            generator = SyntheticCodeGenerator(
                phase.signature, seed=spec.seed ^ self.seed
            )
            workload = InterleavedWorkload(
                generator,
                kernel,
                service_rates=phase.service_rates,
                syscalls=phase.syscalls,
                sync_mean_gap=phase.sync_mean_gap,
                seed=spec.seed ^ self.seed ^ 0xF00D,
            )
            stream = iter(workload)
            chunks = []
            per_chunk = max(500, instructions // chunk_count)
            generated = 0
            for _ in range(chunk_count):
                chunks.append(cpu.run(stream, max_instructions=per_chunk))
                generated += getattr(cpu, "stream_consumed", per_chunk)
            delta = {
                name: count - seen_invocations.get(name, 0)
                for name, count in kernel.invocations.items()
            }
            represented = per_chunk * chunk_count
            if generated and generated != represented:
                # Sub-detailed tiers generate only a sample of the
                # window; scheduled-service invocation counts accrue per
                # generated instruction, so extrapolate them to the
                # represented budget just like the chunk counters.
                ratio = represented / generated
                delta = {name: round(count * ratio) for name, count in delta.items()}
            delta["utlb"] = sum(chunk.traps for chunk in chunks)
            seen_invocations = dict(kernel.invocations)
            phases[phase.name] = PhaseProfile(
                phase=phase,
                chunks=chunks,
                invocations={k: v for k, v in delta.items() if v > 0},
            )
        idle = self.profile_idle()
        return BenchmarkProfile(
            spec=spec,
            cpu_model=self.cpu_model,
            phases=phases,
            idle=idle,
            config=config,
        )

    # ------------------------------------------------------------------
    # Idle process
    # ------------------------------------------------------------------

    def profile_idle(self, iterations: int | None = None) -> IdleProfile:
        """Measure the idle process (workload-independent, Section 3.3).

        The idle loop runs on a fresh machine state and depends only on
        the profiler's configuration, so the default-length measurement
        is performed once and shared by every benchmark profile — the
        result is bit-identical to re-measuring it per benchmark.
        """
        default_window = iterations is None
        if default_window:
            if self._idle_cache is not None:
                return self._idle_cache
            iterations = max(2000, self.window_instructions // 12)
        hierarchy = MemoryHierarchy(self.config, AccessCounters())
        cpu = make_tier_cpu(self.cpu_model, self.config, hierarchy, None)
        # Warm pass: the idle loop's two cache lines and its code.
        cpu.run(idle_loop(64))
        if self.config.fidelity.tier is FidelityTier.DETAILED:
            stats = cpu.run(idle_loop(iterations))
        else:
            # The idle loop is a fixed six-instruction body, so the
            # sub-detailed tiers can sample it with near-zero error;
            # the loop length gives them an exact budget to scale to.
            stats = cpu.run(
                idle_loop(iterations),
                max_instructions=iterations * IDLE_LOOP_LENGTH,
            )
        profile = IdleProfile(stats=stats)
        if default_window:
            self._idle_cache = profile
        return profile

    # ------------------------------------------------------------------
    # Per-invocation service profiles
    # ------------------------------------------------------------------

    def profile_service(
        self,
        service: str,
        model: ProcessorPowerModel,
        *,
        invocations: int = 60,
        warmup: int = 6,
        seed: int | None = None,
    ) -> ServiceInvocationProfile:
        """Measure per-invocation cycles and energy for one service."""
        if invocations < 2:
            raise ValueError("need at least two invocations for a deviation")
        self.detailed_runs += 1
        config = self.config
        hierarchy = MemoryHierarchy(config, AccessCounters())
        kernel = Kernel(config, hierarchy, seed=self.seed if seed is None else seed)
        cpu = make_cpu(self.cpu_model, config, hierarchy, kernel)
        cycles: list[float] = []
        energies: list[float] = []
        category_totals: dict[str, float] = {}
        counter_totals = AccessCounters()
        instruction_total = 0
        for index in range(warmup + invocations):
            body = kernel.invoke_service(service)
            stats = cpu.run(body)
            if index < warmup:
                continue
            run_cycles = max(1, stats.cycles)
            counters = stats.total_counters()
            ledger = model.ledger(counters, run_cycles)
            cycles.append(float(run_cycles))
            energies.append(ledger.total_j)
            counter_totals.add(counters)
            instruction_total += stats.instructions
            for name, value in ledger.categories.items():
                category_totals[name] = category_totals.get(name, 0.0) + value
        mean_categories = {
            name: value / invocations for name, value in category_totals.items()
        }
        mean_counters = AccessCounters()
        for name, value in counter_totals.items():
            setattr(mean_counters, name, value // invocations)
        return ServiceInvocationProfile(
            service=service,
            cycles=cycles,
            energies_j=energies,
            category_energy_j=mean_categories,
            mean_counters=mean_counters,
            instructions_per_invocation=instruction_total / invocations,
        )
