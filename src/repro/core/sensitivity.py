"""Configuration sensitivity analysis.

"The successful design and evaluation of such optimization techniques
is invariably tied to a broad and accurate set of rich tools"
(Section 1) — the point of a complete-machine power simulator is to
sweep design parameters and watch the *system* react.

The sweep implementation lives in :mod:`repro.core.campaign`, which
classifies every design point by the pipeline tier it invalidates
(ledger re-pricing, timeline replay, or full re-simulation) and
dispatches accordingly; this module re-exports the public API under
its historical name.
"""

from __future__ import annotations

from repro.core.campaign import (
    PARAMETERS,
    SPINDOWN_PARAMETER,
    ConfigTransform,
    SweepCampaign,
    SweepPoint,
    SweepResult,
    Tier,
    point_from_result,
    sweep_grid,
    sweep_parameter,
    sweep_spindown_threshold,
)

__all__ = [
    "PARAMETERS",
    "SPINDOWN_PARAMETER",
    "ConfigTransform",
    "SweepCampaign",
    "SweepPoint",
    "SweepResult",
    "Tier",
    "point_from_result",
    "sweep_grid",
    "sweep_parameter",
    "sweep_spindown_threshold",
]
