"""Configuration sensitivity analysis.

"The successful design and evaluation of such optimization techniques
is invariably tied to a broad and accurate set of rich tools"
(Section 1) — the point of a complete-machine power simulator is to
sweep design parameters and watch the *system* react.  This module
automates that: vary one structural parameter of the Table 1 machine
(cache sizes, window size, issue width, spin-down threshold...) and
collect energy, runtime, EDP, and the power budget at each point.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.config.diskcfg import DiskPowerPolicy
from repro.config.system import CacheConfig, SystemConfig
from repro.core.softwatt import SoftWatt


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One design point's results."""

    value: object
    energy_j: float
    duration_s: float
    average_power_w: float
    peak_power_w: float
    budget_shares: dict[str, float]
    kernel_share_pct: float = 0.0
    """Kernel mode's share of cycles at this point."""
    component_energy_j: dict[str, float] = dataclasses.field(default_factory=dict)
    """Per-PowerComponent joules (the full-run ledger, disk included)."""

    @property
    def energy_delay_product(self) -> float:
        """EDP at this design point."""
        return self.energy_j * self.duration_s


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """A full one-parameter sweep."""

    parameter: str
    benchmark: str
    points: list[SweepPoint]

    def best_by_energy(self) -> SweepPoint:
        """The design point with the lowest total energy."""
        return min(self.points, key=lambda point: point.energy_j)

    def best_by_edp(self) -> SweepPoint:
        """The design point with the lowest EDP."""
        return min(self.points, key=lambda point: point.energy_delay_product)

    def format(self) -> str:
        """A compact table of the sweep."""
        lines = [f"sweep of {self.parameter} on {self.benchmark}:"]
        lines.append(f"  {'value':>10s} {'energy J':>9s} {'dur s':>7s} "
                     f"{'avg W':>6s} {'EDP Js':>8s}")
        for point in self.points:
            lines.append(
                f"  {str(point.value):>10s} {point.energy_j:9.1f} "
                f"{point.duration_s:7.2f} {point.average_power_w:6.2f} "
                f"{point.energy_delay_product:8.1f}")
        return "\n".join(lines)


ConfigTransform = Callable[[SystemConfig, object], SystemConfig]


def _point(value, result) -> SweepPoint:
    from repro.kernel.modes import ExecutionMode

    modes = result.mode_breakdown()
    ledger = result.energy_ledger()
    return SweepPoint(
        value=value,
        energy_j=result.total_energy_j,
        duration_s=result.timeline.duration_s,
        average_power_w=result.average_power_w,
        peak_power_w=result.peak_power_w,
        budget_shares=result.power_budget_shares(),
        kernel_share_pct=modes[ExecutionMode.KERNEL].cycles_pct,
        component_energy_j=ledger.components,
    )


def _scale_cache(cache: CacheConfig, size_bytes: int) -> CacheConfig:
    return dataclasses.replace(cache, size_bytes=size_bytes)


def _with_core(config: SystemConfig, **core) -> SystemConfig:
    return dataclasses.replace(
        config, core=dataclasses.replace(config.core, **core))


#: Built-in parameter transforms: name -> (values hint, transform).
PARAMETERS: dict[str, ConfigTransform] = {
    "l1_size": lambda config, value: dataclasses.replace(
        config,
        l1i=_scale_cache(config.l1i, value),
        l1d=_scale_cache(config.l1d, value),
    ),
    "l2_size": lambda config, value: dataclasses.replace(
        config, l2=_scale_cache(config.l2, value)),
    "window_size": lambda config, value: _with_core(config, window_size=value),
    "issue_width": lambda config, value: _with_core(
        config, fetch_width=value, decode_width=value,
        issue_width=value, commit_width=value),
    "tlb_entries": lambda config, value: dataclasses.replace(
        config, tlb=dataclasses.replace(config.tlb, entries=value)),
}


def sweep_parameter(
    parameter: str,
    values: list,
    *,
    benchmark: str = "jess",
    disk: int | DiskPowerPolicy = 2,
    window_instructions: int = 15_000,
    seed: int = 1,
    transform: ConfigTransform | None = None,
) -> SweepResult:
    """Sweep one configuration parameter over ``values``.

    ``parameter`` names a built-in transform from :data:`PARAMETERS`,
    or pass a custom ``transform(config, value) -> config``.  Each point
    builds a fresh SoftWatt instance (profiles are config-dependent).
    """
    if transform is None:
        if parameter not in PARAMETERS:
            raise ValueError(
                f"unknown parameter {parameter!r}; built-ins: "
                f"{sorted(PARAMETERS)}")
        transform = PARAMETERS[parameter]
    if not values:
        raise ValueError("need at least one value to sweep")
    base = SystemConfig.table1()
    points: list[SweepPoint] = []
    for value in values:
        config = transform(base, value)
        softwatt = SoftWatt(config=config,
                            window_instructions=window_instructions, seed=seed)
        result = softwatt.run(benchmark, disk=disk)
        points.append(_point(value, result))
    return SweepResult(parameter=parameter, benchmark=benchmark, points=points)


def sweep_spindown_threshold(
    thresholds_s: list[float],
    *,
    benchmark: str = "compress",
    window_instructions: int = 15_000,
    seed: int = 1,
) -> SweepResult:
    """Sweep the disk spin-down threshold (one shared profile)."""
    if not thresholds_s:
        raise ValueError("need at least one threshold")
    softwatt = SoftWatt(window_instructions=window_instructions, seed=seed)
    points: list[SweepPoint] = []
    for threshold in thresholds_s:
        policy = DiskPowerPolicy(name=f"sweep-{threshold:g}s",
                                 spindown_threshold_s=threshold)
        result = softwatt.run(benchmark, disk=policy)
        points.append(_point(threshold, result))
    return SweepResult(parameter="spindown_threshold_s", benchmark=benchmark,
                       points=points)
