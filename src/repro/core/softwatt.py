"""The SoftWatt facade.

The paper's tool in one object: configure a system (Table 1 defaults),
pick a CPU model (MXS or Mipsy) and a disk power-management
configuration (Section 4), run a SPEC JVM98 benchmark, and read back
performance and power statistics — mode breakdowns, kernel-service
profiles, power budgets, and sampled time traces.

    >>> sw = SoftWatt()
    >>> result = sw.run("jess")
    >>> result.power_budget_shares()["disk"]   # doctest: +SKIP
    33.8

Profiles are cached per (benchmark, CPU model), so sweeping the four
disk configurations re-uses the expensive detailed simulation.  Two
optional accelerators sit on top:

* a persistent content-addressed profile cache (enabled by pointing
  ``REPRO_CACHE_DIR`` at a directory, or passing ``cache_dir=``) that
  lets a second process skip detailed simulation entirely, and
* a process-pool profiling fan-out (``workers=`` on the constructor or
  on :meth:`run_suite` / :meth:`service_profiles`) that produces
  bit-identical results to the serial path.
"""

from __future__ import annotations

from repro.config.diskcfg import DiskPowerPolicy, disk_configuration
from repro.config.system import FidelityConfig, FidelityTier, SystemConfig
from repro.core.checkpoint import (
    CheckpointError,
    ProfileCache,
    load_checkpoint,
    profile_cache_key,
    save_checkpoint,
    service_cache_key,
)
from repro.core.profiles import (
    BenchmarkProfile,
    Profiler,
    ServiceInvocationProfile,
)
from repro.core.report import BenchmarkResult
from repro.core.timeline import TimelineSimulator, disk_power_series
from repro.kernel.modes import KERNEL_SERVICES
from repro.power.processor import ProcessorPowerModel
from repro.resilience.faults import FaultPlan
from repro.resilience.runreport import ReportedMapping, RunReport
from repro.stats.postprocess import compute_power_trace
from repro.workloads.specjvm98 import BENCHMARK_NAMES, BenchmarkSpec, benchmark

MIPSY_SPEED_FACTOR = 2.3
"""Wall-time stretch for Mipsy runs relative to the MXS-calibrated
benchmark durations (the paper's jess profile spans ~8 s on Mipsy
against ~3.5 s on MXS, Figures 3 and 4)."""

SINGLE_ISSUE_SPEED_FACTOR = 2.2
"""Wall-time stretch for the single-issue MXS configuration: the same
work takes proportionally longer on the 1-wide machine, which is how
the kernel's cycle share comes out *lower* there (Section 3.2's 14.3 %
single-issue vs 21.0 % superscalar comparison)."""


def speed_factor(cpu_model: str, config: SystemConfig) -> float:
    """Wall-time stretch for a (CPU model, configuration) pair.

    The benchmark durations are calibrated for the 4-wide MXS machine;
    Mipsy and the single-issue configuration run the same work over a
    proportionally longer wall time.  The campaign engine's timeline
    tier reuses this so replays match :meth:`SoftWatt.run` exactly.
    """
    if cpu_model == "mipsy":
        return MIPSY_SPEED_FACTOR
    if config.core.issue_width == 1:
        return SINGLE_ISSUE_SPEED_FACTOR
    return 1.0


class SoftWatt:
    """Complete-system power simulator (CPU + memory hierarchy + disk)."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        *,
        cpu_model: str = "mxs",
        window_instructions: int = 60_000,
        sample_interval_s: float = 0.1,
        seed: int = 0,
        workers: int = 1,
        cache_dir=None,
        use_cache: bool = True,
        task_timeout: float | None = None,
        retries: int = 2,
        best_effort: bool = False,
        fault_plan: FaultPlan | None = None,
        fidelity: FidelityConfig | str | None = None,
    ) -> None:
        base_config = config if config is not None else SystemConfig.table1()
        if fidelity is not None:
            base_config = base_config.with_fidelity(fidelity)
        self.config = base_config.validate()
        self.cpu_model = cpu_model
        self.sample_interval_s = sample_interval_s
        self.seed = seed
        self.workers = workers
        self.task_timeout = task_timeout
        self.retries = retries
        self.best_effort = best_effort
        self.fault_plan = fault_plan
        self.run_report = RunReport()
        """Accumulated across every supervised stage this instance ran;
        per-call reports are attached to :meth:`profile_many`,
        :meth:`run_suite`, and :meth:`service_profiles` results."""
        self.profiler = Profiler(
            self.config,
            cpu_model=cpu_model,
            window_instructions=window_instructions,
            seed=seed,
        )
        self.model = ProcessorPowerModel(self.config)
        if not use_cache:
            self.cache = None
        elif cache_dir is not None:
            self.cache = ProfileCache(cache_dir)
        else:
            self.cache = ProfileCache.from_env()
        self._profiles: dict[str, BenchmarkProfile] = {}
        self._service_profiles: dict[str, ServiceInvocationProfile] | None = None

    # ------------------------------------------------------------------
    # Profiling (cached)
    # ------------------------------------------------------------------

    def _profile_key(self, spec: BenchmarkSpec) -> str:
        profiler = self.profiler
        return profile_cache_key(
            spec,
            self.config,
            cpu_model=self.cpu_model,
            window_instructions=profiler.window_instructions,
            startup_chunks=profiler.startup_chunks,
            steady_chunks=profiler.steady_chunks,
            seed=self.seed,
        )

    def profile(self, spec: BenchmarkSpec | str) -> BenchmarkProfile:
        """Detailed-window profile of a benchmark.

        Cached in memory per benchmark name, and — when the persistent
        cache is enabled — on disk under a content-addressed key, so a
        later process with the same spec, configuration, and profiling
        parameters skips the detailed simulation entirely.
        """
        if isinstance(spec, str):
            spec = benchmark(spec)
        cached = self._profiles.get(spec.name)
        if cached is not None and cached.spec == spec:
            return cached
        # Re-profile when a same-named spec differs (e.g. a
        # dataclasses.replace variant of a built-in benchmark).
        profile = None
        if self.cache is not None:
            key = self._profile_key(spec)
            profile = self.cache.load_profile(key, spec=spec, config=self.config)
        if profile is None:
            profile = self.profiler.profile_benchmark(spec)
            if self.cache is not None:
                self.cache.store_profile(key, profile)
        self._profiles[spec.name] = profile
        return profile

    def pending_lanes(
        self, names=BENCHMARK_NAMES
    ) -> "list[tuple[SoftWatt, BenchmarkSpec]]":
        """Uncached (instance, spec) pairs eligible for lockstep lanes.

        The prepared-lanes entry point below the campaign layer: callers
        (the campaign tier-S prebuild, the serve batch scheduler)
        assemble pairs from several instances, turn each into a
        :meth:`Profiler.lane_task`, and hand the set to
        :func:`~repro.cpu.batch.profile_benchmarks_batched`.  Pairs are
        eligible only on the detailed Mipsy tier (the SoA engine
        implements exactly that pipeline; sub-detailed tiers are already
        the fast path) and only when they miss both the in-memory and
        persistent caches — persistent-cache hits are loaded into memory
        as a side effect, so a later :meth:`profile` call is a hit.
        """
        if self.cpu_model != "mipsy":
            return []
        if self.config.fidelity.tier is not FidelityTier.DETAILED:
            return []
        pairs: list[tuple[SoftWatt, BenchmarkSpec]] = []
        for name in names:
            spec = benchmark(name) if isinstance(name, str) else name
            cached = self._profiles.get(spec.name)
            if cached is not None and cached.spec == spec:
                continue
            if self.cache is not None:
                profile = self.cache.load_profile(
                    self._profile_key(spec), spec=spec, config=self.config
                )
                if profile is not None:
                    self._profiles[spec.name] = profile
                    continue
            pairs.append((self, spec))
        return pairs

    def adopt_profile(self, spec: BenchmarkSpec, profile) -> None:
        """Store an externally computed lane profile into the caches.

        The profile must be bit-identical to what :meth:`profile` would
        compute (the batched SoA engine guarantees this); it is counted
        as a detailed run and persisted like a locally computed one.
        """
        self._profiles[spec.name] = profile
        self.profiler.detailed_runs += 1
        if self.cache is not None:
            self.cache.store_profile(self._profile_key(spec), profile)

    @staticmethod
    def prefetch_profiles(
        instances: "list[SoftWatt]",
        names=BENCHMARK_NAMES,
        *,
        min_runs: int | None = None,
    ) -> int:
        """Batch-profile uncached (instance, benchmark) pairs in lockstep.

        Every Mipsy run across ``instances`` × ``names`` that misses
        both the in-memory and persistent caches becomes one lane of the
        batched SoA engine (:mod:`repro.cpu.batch`); results — which
        are bit-identical to each instance profiling serially — are
        stored back into each instance's caches, so later
        :meth:`profile` calls are hits.  A structural sweep over many
        configurations therefore costs one lockstep simulation instead
        of one scalar simulation per point.

        No-op (returning 0) when the batched engine is disabled
        (``REPRO_PURE_PYTHON=1`` or no numpy) or when fewer than
        ``min_runs`` runs are pending — the scalar path wins below the
        lockstep breakeven.  ``min_runs`` defaults to the calibrated
        :func:`~repro.cpu.batch.batch_min_runs`.  Returns the number of
        profiles computed.
        """
        from repro.cpu.batch import (  # noqa: PLC0415 — keep numpy lazy
            batch_min_runs,
            batched_execution,
            profile_benchmarks_batched,
        )

        if not batched_execution():
            return 0
        pairs: list[tuple[SoftWatt, BenchmarkSpec]] = []
        for sw in instances:
            pairs.extend(sw.pending_lanes(names))
        if len(pairs) < (batch_min_runs() if min_runs is None else min_runs):
            return 0
        tasks = [sw.profiler.lane_task(spec) for sw, spec in pairs]
        profiles = profile_benchmarks_batched(tasks)
        for (sw, spec), profile in zip(pairs, profiles):
            sw.adopt_profile(spec, profile)
        return len(pairs)

    def profile_many(
        self,
        names: tuple[str, ...] = BENCHMARK_NAMES,
        *,
        workers: int | None = None,
    ) -> dict[str, BenchmarkProfile]:
        """Profile several benchmarks, fanning out across processes.

        With ``workers <= 1`` this is just :meth:`profile` in a loop on
        the shared profiler.  With more workers, benchmarks that miss
        every cache are profiled in child processes on fresh profilers;
        because each profile is built from fresh machine state seeded
        only by ``(spec.seed, profiler seed)``, the results are
        bit-identical to the serial path.  The parent stores the
        returned profiles into the persistent cache.
        """
        workers = self.workers if workers is None else workers
        specs = [benchmark(name) if isinstance(name, str) else name for name in names]
        report = RunReport()
        # Uncached mipsy runs past the lockstep breakeven go through the
        # batched SoA engine in one pass (bit-identical to the loop).
        SoftWatt.prefetch_profiles([self], specs)
        if workers <= 1:
            profiles = {spec.name: self.profile(spec) for spec in specs}
            return self._attach_report(profiles, report)

        # Deliberately lazy: workers <= 1 never touches the pool machinery.
        from repro.parallel import (  # noqa: PLC0415
            ProfileBenchmarkTask,
            profile_benchmarks,
        )

        pending: list[BenchmarkSpec] = []
        for spec in specs:
            cached = self._profiles.get(spec.name)
            if cached is not None and cached.spec == spec:
                continue
            if self.cache is not None:
                profile = self.cache.load_profile(
                    self._profile_key(spec), spec=spec, config=self.config
                )
                if profile is not None:
                    self._profiles[spec.name] = profile
                    continue
            pending.append(spec)
        profiler = self.profiler
        tasks = [
            ProfileBenchmarkTask(
                spec=spec,
                config=self.config,
                cpu_model=self.cpu_model,
                window_instructions=profiler.window_instructions,
                startup_chunks=profiler.startup_chunks,
                steady_chunks=profiler.steady_chunks,
                seed=self.seed,
            )
            for spec in pending
        ]
        results = profile_benchmarks(
            tasks, workers=workers, report=report, **self._supervision_kwargs()
        )
        for spec, profile in zip(pending, results):
            if profile is None:  # best-effort casualty, recorded in report
                continue
            self._profiles[spec.name] = profile
            if self.cache is not None:
                self.cache.store_profile(self._profile_key(spec), profile)
        profiles = {
            spec.name: self._profiles[spec.name]
            for spec in specs
            if spec.name in self._profiles
        }
        return self._attach_report(profiles, report)

    def _supervision_kwargs(self) -> dict:
        return {
            "task_timeout": self.task_timeout,
            "retries": self.retries,
            "best_effort": self.best_effort,
            "fault_plan": self.fault_plan,
        }

    def _attach_report(self, data: dict, report: RunReport) -> ReportedMapping:
        """Attach a per-call report and fold it into the session report."""
        self.run_report.merge(report)
        return ReportedMapping(data, report)

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------

    def run(
        self,
        spec: BenchmarkSpec | str,
        *,
        disk: DiskPowerPolicy | int = 1,
        annotations=None,
        idle_policy: str = "busywait",
    ) -> BenchmarkResult:
        """Simulate a benchmark's full profiled period.

        ``annotations`` optionally supplies an
        :class:`~repro.core.annotations.AnnotationSet` whose hooks fire
        on timeline events (phases, mode stretches, disk requests and
        transitions, log samples).
        """
        if isinstance(spec, str):
            spec = benchmark(spec)
        profile = self.profile(spec)
        policy = disk_configuration(disk) if isinstance(disk, int) else disk
        speed = speed_factor(self.cpu_model, self.config)
        simulator = TimelineSimulator(
            profile,
            disk_policy=policy,
            sample_interval_s=self.sample_interval_s,
            speed_factor=speed,
            service_profiles=self._cached_service_profiles(),
            annotations=annotations,
            idle_policy=idle_policy,
        )
        timeline = simulator.run()
        disk_series = disk_power_series(timeline.disk, timeline.log)
        trace = compute_power_trace(
            timeline.log, self.model, disk_power_w=disk_series
        )
        return BenchmarkResult(
            name=spec.name,
            cpu_model=self.cpu_model,
            disk_policy_name=policy.name,
            timeline=timeline,
            trace=trace,
            model=self.model,
        )

    def run_suite(
        self,
        *,
        disk: DiskPowerPolicy | int = 1,
        names: tuple[str, ...] = BENCHMARK_NAMES,
        workers: int | None = None,
    ) -> dict[str, BenchmarkResult]:
        """Run every benchmark under one disk configuration.

        The expensive profiling stage fans out over ``workers``
        processes (default: the constructor's ``workers``); the cheap
        timeline/power stage then runs serially, so the results are
        identical to a fully serial suite.  The returned mapping carries
        the profiling stage's :class:`RunReport` as ``.report``; under
        ``best_effort`` a benchmark whose profiling failed is absent
        from the mapping (and recorded in the report) instead of
        aborting the suite.
        """
        profiles = self.profile_many(names, workers=workers)
        results = {
            name: self.run(name, disk=disk) for name in names if name in profiles
        }
        return ReportedMapping(results, profiles.report)

    # ------------------------------------------------------------------
    # External counter sources
    # ------------------------------------------------------------------

    def price_counters(self, source) -> "EnergyLedger":
        """Price any :class:`~repro.stats.source.CounterSource` under
        this instance's power model.

        The source can be a simulated log, a single
        :class:`~repro.stats.source.CounterBundle`, or an
        :class:`~repro.ingest.pricing.IngestedRun` built from external
        perf-style measurements — the same registry arithmetic applies
        regardless of provenance, which is the point of the seam.
        Counter-driven components only; simulation-time components (the
        disk) need a timeline and are not attached here.
        """
        return self.model.price(source)

    # ------------------------------------------------------------------
    # Kernel-service characterisation (Section 3.3)
    # ------------------------------------------------------------------

    def _service_key(self, service: str, invocations: int) -> str:
        return service_cache_key(
            service,
            self.config,
            cpu_model=self.cpu_model,
            invocations=invocations,
            warmup=6,
            seed=self.seed,
        )

    def service_profiles(
        self,
        services: tuple[str, ...] = KERNEL_SERVICES,
        *,
        invocations: int = 60,
        workers: int | None = None,
    ) -> dict[str, ServiceInvocationProfile]:
        """Per-invocation energy statistics for the kernel services.

        Consults the persistent cache per service, and fans the cache
        misses out over ``workers`` processes; each service is measured
        on fresh machine state, so the fan-out is bit-identical to the
        serial loop.
        """
        workers = self.workers if workers is None else workers
        report = RunReport()
        profiles: dict[str, ServiceInvocationProfile] = {}
        pending: list[str] = []
        for service in services:
            cached = None
            if self.cache is not None:
                cached = self.cache.load_service(
                    self._service_key(service, invocations)
                )
            if cached is not None:
                profiles[service] = cached
            else:
                pending.append(service)
        if workers <= 1:
            for service in pending:
                profiles[service] = self.profiler.profile_service(
                    service, self.model, invocations=invocations
                )
        else:
            # Deliberately lazy: workers <= 1 never touches the pool
            # machinery.
            from repro.parallel import (  # noqa: PLC0415
                ProfileServiceTask,
                profile_services,
            )

            tasks = [
                ProfileServiceTask(
                    service=service,
                    config=self.config,
                    cpu_model=self.cpu_model,
                    invocations=invocations,
                    warmup=6,
                    seed=self.seed,
                )
                for service in pending
            ]
            results = profile_services(
                tasks, workers=workers, report=report,
                **self._supervision_kwargs(),
            )
            for service, profile in zip(pending, results):
                if profile is not None:
                    profiles[service] = profile
        if self.cache is not None:
            for service in pending:
                if service in profiles:
                    self.cache.store_service(
                        self._service_key(service, invocations),
                        profiles[service],
                    )
        return self._attach_report(
            {
                service: profiles[service]
                for service in services
                if service in profiles
            },
            report,
        )

    def _cached_service_profiles(self) -> dict[str, ServiceInvocationProfile]:
        """Service profiles used by every timeline run (computed once)."""
        if self._service_profiles is None:
            self._service_profiles = self.service_profiles(invocations=30)
        return self._service_profiles

    # ------------------------------------------------------------------
    # Checkpoints (Section 3.1 methodology)
    # ------------------------------------------------------------------

    def save_checkpoint(self, path) -> None:
        """Persist every cached profile to ``path`` (JSON).

        Mirrors the paper's checkpoint step: the expensive detailed
        simulation runs once; later sessions ``load_checkpoint`` and
        sweep disk policies or report formats instantly.
        """
        save_checkpoint(
            path,
            profiles=self._profiles,
            service_profiles=self._service_profiles,
            cpu_model=self.cpu_model,
        )

    def load_checkpoint(self, path) -> None:
        """Load profiles saved by :meth:`save_checkpoint` into the cache."""
        profiles, services, cpu_model = load_checkpoint(path, config=self.config)
        if cpu_model != self.cpu_model:
            raise CheckpointError(
                f"checkpoint was taken with cpu_model={cpu_model!r}, this "
                f"instance uses {self.cpu_model!r}"
            )
        self._profiles.update(profiles)
        if services:
            self._service_profiles = services

    # ------------------------------------------------------------------
    # Validation (Section 2)
    # ------------------------------------------------------------------

    def validate_max_power(self) -> float:
        """The R10000 maximum-power validation (~25.3 W)."""
        return self.model.max_power_w()
