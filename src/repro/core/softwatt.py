"""The SoftWatt facade.

The paper's tool in one object: configure a system (Table 1 defaults),
pick a CPU model (MXS or Mipsy) and a disk power-management
configuration (Section 4), run a SPEC JVM98 benchmark, and read back
performance and power statistics — mode breakdowns, kernel-service
profiles, power budgets, and sampled time traces.

    >>> sw = SoftWatt()
    >>> result = sw.run("jess")
    >>> result.power_budget_shares()["disk"]   # doctest: +SKIP
    33.8

Profiles are cached per (benchmark, CPU model), so sweeping the four
disk configurations re-uses the expensive detailed simulation.
"""

from __future__ import annotations

from repro.config.diskcfg import DiskPowerPolicy, disk_configuration
from repro.config.system import SystemConfig
from repro.core.profiles import (
    BenchmarkProfile,
    Profiler,
    ServiceInvocationProfile,
)
from repro.core.report import BenchmarkResult
from repro.core.timeline import TimelineSimulator, disk_power_series
from repro.kernel.modes import KERNEL_SERVICES
from repro.power.processor import ProcessorPowerModel
from repro.stats.postprocess import compute_power_trace
from repro.workloads.specjvm98 import BENCHMARK_NAMES, BenchmarkSpec, benchmark

MIPSY_SPEED_FACTOR = 2.3
"""Wall-time stretch for Mipsy runs relative to the MXS-calibrated
benchmark durations (the paper's jess profile spans ~8 s on Mipsy
against ~3.5 s on MXS, Figures 3 and 4)."""

SINGLE_ISSUE_SPEED_FACTOR = 2.2
"""Wall-time stretch for the single-issue MXS configuration: the same
work takes proportionally longer on the 1-wide machine, which is how
the kernel's cycle share comes out *lower* there (Section 3.2's 14.3 %
single-issue vs 21.0 % superscalar comparison)."""


class SoftWatt:
    """Complete-system power simulator (CPU + memory hierarchy + disk)."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        *,
        cpu_model: str = "mxs",
        window_instructions: int = 60_000,
        sample_interval_s: float = 0.1,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else SystemConfig.table1()
        self.cpu_model = cpu_model
        self.sample_interval_s = sample_interval_s
        self.seed = seed
        self.profiler = Profiler(
            self.config,
            cpu_model=cpu_model,
            window_instructions=window_instructions,
            seed=seed,
        )
        self.model = ProcessorPowerModel(self.config)
        self._profiles: dict[str, BenchmarkProfile] = {}
        self._service_profiles: dict[str, ServiceInvocationProfile] | None = None

    # ------------------------------------------------------------------
    # Profiling (cached)
    # ------------------------------------------------------------------

    def profile(self, spec: BenchmarkSpec | str) -> BenchmarkProfile:
        """Detailed-window profile of a benchmark (cached)."""
        if isinstance(spec, str):
            spec = benchmark(spec)
        cached = self._profiles.get(spec.name)
        if cached is None or cached.spec != spec:
            # Re-profile when a same-named spec differs (e.g. a
            # dataclasses.replace variant of a built-in benchmark).
            cached = self.profiler.profile_benchmark(spec)
            self._profiles[spec.name] = cached
        return cached

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------

    def run(
        self,
        spec: BenchmarkSpec | str,
        *,
        disk: DiskPowerPolicy | int = 1,
        annotations=None,
        idle_policy: str = "busywait",
    ) -> BenchmarkResult:
        """Simulate a benchmark's full profiled period.

        ``annotations`` optionally supplies an
        :class:`~repro.core.annotations.AnnotationSet` whose hooks fire
        on timeline events (phases, mode stretches, disk requests and
        transitions, log samples).
        """
        if isinstance(spec, str):
            spec = benchmark(spec)
        profile = self.profile(spec)
        policy = disk_configuration(disk) if isinstance(disk, int) else disk
        if self.cpu_model == "mipsy":
            speed = MIPSY_SPEED_FACTOR
        elif self.config.core.issue_width == 1:
            speed = SINGLE_ISSUE_SPEED_FACTOR
        else:
            speed = 1.0
        simulator = TimelineSimulator(
            profile,
            disk_policy=policy,
            sample_interval_s=self.sample_interval_s,
            speed_factor=speed,
            service_profiles=self._cached_service_profiles(),
            annotations=annotations,
            idle_policy=idle_policy,
        )
        timeline = simulator.run()
        disk_series = disk_power_series(timeline.disk, timeline.log)
        trace = compute_power_trace(
            timeline.log, self.model, disk_power_w=disk_series
        )
        return BenchmarkResult(
            name=spec.name,
            cpu_model=self.cpu_model,
            disk_policy_name=policy.name,
            timeline=timeline,
            trace=trace,
            model=self.model,
        )

    def run_suite(
        self,
        *,
        disk: DiskPowerPolicy | int = 1,
        names: tuple[str, ...] = BENCHMARK_NAMES,
    ) -> dict[str, BenchmarkResult]:
        """Run every benchmark under one disk configuration."""
        return {name: self.run(name, disk=disk) for name in names}

    # ------------------------------------------------------------------
    # Kernel-service characterisation (Section 3.3)
    # ------------------------------------------------------------------

    def service_profiles(
        self,
        services: tuple[str, ...] = KERNEL_SERVICES,
        *,
        invocations: int = 60,
    ) -> dict[str, ServiceInvocationProfile]:
        """Per-invocation energy statistics for the kernel services."""
        return {
            service: self.profiler.profile_service(
                service, self.model, invocations=invocations
            )
            for service in services
        }

    def _cached_service_profiles(self) -> dict[str, ServiceInvocationProfile]:
        """Service profiles used by every timeline run (computed once)."""
        if self._service_profiles is None:
            self._service_profiles = self.service_profiles(invocations=30)
        return self._service_profiles

    # ------------------------------------------------------------------
    # Checkpoints (Section 3.1 methodology)
    # ------------------------------------------------------------------

    def save_checkpoint(self, path) -> None:
        """Persist every cached profile to ``path`` (JSON).

        Mirrors the paper's checkpoint step: the expensive detailed
        simulation runs once; later sessions ``load_checkpoint`` and
        sweep disk policies or report formats instantly.
        """
        from repro.core.checkpoint import save_checkpoint

        save_checkpoint(
            path,
            profiles=self._profiles,
            service_profiles=self._service_profiles,
            cpu_model=self.cpu_model,
        )

    def load_checkpoint(self, path) -> None:
        """Load profiles saved by :meth:`save_checkpoint` into the cache."""
        from repro.core.checkpoint import CheckpointError, load_checkpoint

        profiles, services, cpu_model = load_checkpoint(path, config=self.config)
        if cpu_model != self.cpu_model:
            raise CheckpointError(
                f"checkpoint was taken with cpu_model={cpu_model!r}, this "
                f"instance uses {self.cpu_model!r}"
            )
        self._profiles.update(profiles)
        if services:
            self._service_profiles = services

    # ------------------------------------------------------------------
    # Validation (Section 2)
    # ------------------------------------------------------------------

    def validate_max_power(self) -> float:
        """The R10000 maximum-power validation (~25.3 W)."""
        return self.model.max_power_w()
