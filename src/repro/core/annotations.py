"""Annotation hooks: scriptable event observation (SimOS's TCL annotations).

SimOS exposes *annotations* — user scripts attached to simulator events
— and SoftWatt's Figure 1 routes its statistics collection through
them.  This module is the equivalent mechanism: an
:class:`AnnotationSet` carries callbacks for the events the timeline
and disk models emit, letting users collect custom statistics (or build
custom policies) without touching simulator code.

Events:

* ``on_phase(name, start_s, end_s)`` — a benchmark phase segment is laid
  out on the timeline,
* ``on_mode_switch(mode, start_s, end_s, cycles)`` — a contiguous
  stretch of one software mode,
* ``on_disk_request(result)`` — a disk request completed (a
  :class:`~repro.disk.manager.DiskRequestResult`),
* ``on_disk_transition(from_mode, to_mode, at_s)`` — the disk's
  operating mode changed,
* ``on_sample(record)`` — a log record was emitted.

Example::

    annotations = AnnotationSet()
    spikes = []

    @annotations.on_sample
    def catch_spikes(record):
        if record.cycles and record.counters.mem_access / record.cycles > 0.01:
            spikes.append(record.start_s)

    result = sw.run("jess", disk=1, annotations=annotations)
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.config.diskcfg import DiskMode
from repro.disk.manager import DiskRequestResult
from repro.kernel.modes import ExecutionMode
from repro.stats.simlog import LogRecord

PhaseHook = Callable[[str, float, float], None]
ModeHook = Callable[[ExecutionMode, float, float, float], None]
DiskRequestHook = Callable[[DiskRequestResult], None]
DiskTransitionHook = Callable[[DiskMode, DiskMode, float], None]
SampleHook = Callable[[LogRecord], None]


@dataclasses.dataclass
class AnnotationSet:
    """A bundle of event callbacks (all optional).

    Each ``on_*`` attribute holds a list of hooks; the decorator-style
    methods of the same name append to them and return the function, so
    both styles work::

        annotations.on_sample_hooks.append(fn)

        @annotations.on_sample
        def fn(record): ...
    """

    on_phase_hooks: list[PhaseHook] = dataclasses.field(default_factory=list)
    on_mode_switch_hooks: list[ModeHook] = dataclasses.field(default_factory=list)
    on_disk_request_hooks: list[DiskRequestHook] = dataclasses.field(
        default_factory=list)
    on_disk_transition_hooks: list[DiskTransitionHook] = dataclasses.field(
        default_factory=list)
    on_sample_hooks: list[SampleHook] = dataclasses.field(default_factory=list)

    # ------------------------------------------------------------------
    # Decorator-style registration
    # ------------------------------------------------------------------

    def on_phase(self, hook: PhaseHook) -> PhaseHook:
        """Register a phase-segment hook."""
        self.on_phase_hooks.append(hook)
        return hook

    def on_mode_switch(self, hook: ModeHook) -> ModeHook:
        """Register a mode-stretch hook."""
        self.on_mode_switch_hooks.append(hook)
        return hook

    def on_disk_request(self, hook: DiskRequestHook) -> DiskRequestHook:
        """Register a disk-request-completion hook."""
        self.on_disk_request_hooks.append(hook)
        return hook

    def on_disk_transition(self, hook: DiskTransitionHook) -> DiskTransitionHook:
        """Register a disk mode-transition hook."""
        self.on_disk_transition_hooks.append(hook)
        return hook

    def on_sample(self, hook: SampleHook) -> SampleHook:
        """Register a log-record hook."""
        self.on_sample_hooks.append(hook)
        return hook

    # ------------------------------------------------------------------
    # Emission (called by the timeline)
    # ------------------------------------------------------------------

    def emit_phase(self, name: str, start_s: float, end_s: float) -> None:
        """Fire the phase hooks."""
        for hook in self.on_phase_hooks:
            hook(name, start_s, end_s)

    def emit_mode_switch(
        self, mode: ExecutionMode, start_s: float, end_s: float, cycles: float
    ) -> None:
        """Fire the mode-stretch hooks."""
        for hook in self.on_mode_switch_hooks:
            hook(mode, start_s, end_s, cycles)

    def emit_disk_request(self, result: DiskRequestResult) -> None:
        """Fire the disk-request hooks."""
        for hook in self.on_disk_request_hooks:
            hook(result)

    def emit_disk_transitions(
        self, history: list[tuple[float, float, DiskMode]], from_index: int
    ) -> int:
        """Fire transition hooks for new history entries; returns the
        new high-water index."""
        if self.on_disk_transition_hooks:
            for index in range(max(1, from_index), len(history)):
                previous_mode = history[index - 1][2]
                start, _end, mode = history[index]
                if mode is not previous_mode:
                    for hook in self.on_disk_transition_hooks:
                        hook(previous_mode, mode, start)
        return len(history)

    def emit_sample(self, record: LogRecord) -> None:
        """Fire the sample hooks."""
        for hook in self.on_sample_hooks:
            hook(record)

    @property
    def empty(self) -> bool:
        """True when no hooks are registered."""
        return not (
            self.on_phase_hooks
            or self.on_mode_switch_hooks
            or self.on_disk_request_hooks
            or self.on_disk_transition_hooks
            or self.on_sample_hooks
        )
