"""Profile checkpoints: persist detailed-simulation state to disk.

The paper's methodology leans on checkpoints — "the file-caches were
warmed and a checkpoint was taken before the program was loaded"
(Section 3.1) — so that the expensive part of simulation runs once.
The expensive part of *this* reproduction is the detailed cycle-level
profiling; this module serialises its results (benchmark profiles and
per-invocation service profiles) to JSON so later sessions can sweep
disk policies, sample intervals, or report formats without
re-simulating.

Format: a single JSON document, versioned; counters are stored as plain
dicts, per-label stats keyed by label (``"__user__"`` stands for the
``None`` user label, which JSON cannot key).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.core.profiles import (
    BenchmarkProfile,
    IdleProfile,
    PhaseProfile,
    ServiceInvocationProfile,
)
from repro.config.system import SystemConfig
from repro.cpu.branch import BranchStats
from repro.cpu.runstats import LabelStats, RunStats
from repro.stats.counters import AccessCounters
from repro.workloads.specjvm98 import BenchmarkSpec, benchmark

CHECKPOINT_VERSION = 1
_USER_KEY = "__user__"


class CheckpointError(RuntimeError):
    """Raised when a checkpoint cannot be read back."""


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def _encode_counters(counters: AccessCounters) -> dict:
    return {name: value for name, value in counters.items() if value}


def _decode_counters(data: dict) -> AccessCounters:
    counters = AccessCounters()
    for name, value in data.items():
        if not hasattr(counters, name):
            raise CheckpointError(f"unknown counter {name!r} in checkpoint")
        setattr(counters, name, value)
    return counters


def _encode_label_stats(stats: LabelStats) -> dict:
    return {
        "cycles": stats.cycles,
        "instr_cycles": stats.instr_cycles,
        "stall_cycles": stats.stall_cycles,
        "instructions": stats.instructions,
        "counters": _encode_counters(stats.counters),
    }


def _decode_label_stats(data: dict) -> LabelStats:
    return LabelStats(
        cycles=data["cycles"],
        instr_cycles=data["instr_cycles"],
        stall_cycles=data["stall_cycles"],
        instructions=data["instructions"],
        counters=_decode_counters(data["counters"]),
    )


def _encode_run_stats(stats: RunStats) -> dict:
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "traps": stats.traps,
        "branch": dataclasses.asdict(stats.branch),
        "labels": {
            (label if label is not None else _USER_KEY): _encode_label_stats(s)
            for label, s in stats.labels.items()
        },
    }


def _decode_run_stats(data: dict) -> RunStats:
    stats = RunStats(
        cycles=data["cycles"],
        instructions=data["instructions"],
        traps=data["traps"],
        branch=BranchStats(**data["branch"]),
    )
    for label, payload in data["labels"].items():
        key = None if label == _USER_KEY else label
        stats.labels[key] = _decode_label_stats(payload)
    return stats


def _encode_phase(profile: PhaseProfile) -> dict:
    return {
        "phase": profile.phase.name,
        "chunks": [_encode_run_stats(chunk) for chunk in profile.chunks],
        "invocations": profile.invocations,
    }


def _encode_service(profile: ServiceInvocationProfile) -> dict:
    return {
        "service": profile.service,
        "cycles": profile.cycles,
        "energies_j": profile.energies_j,
        "category_energy_j": profile.category_energy_j,
        "mean_counters": _encode_counters(profile.mean_counters),
        "instructions_per_invocation": profile.instructions_per_invocation,
    }


def _decode_service(data: dict) -> ServiceInvocationProfile:
    return ServiceInvocationProfile(
        service=data["service"],
        cycles=data["cycles"],
        energies_j=data["energies_j"],
        category_energy_j=data["category_energy_j"],
        mean_counters=_decode_counters(data["mean_counters"]),
        instructions_per_invocation=data["instructions_per_invocation"],
    )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def save_checkpoint(
    path: str | pathlib.Path,
    *,
    profiles: dict[str, BenchmarkProfile],
    service_profiles: dict[str, ServiceInvocationProfile] | None = None,
    cpu_model: str = "mxs",
) -> None:
    """Write benchmark and service profiles to ``path`` as JSON."""
    document = {
        "version": CHECKPOINT_VERSION,
        "cpu_model": cpu_model,
        "benchmarks": {
            name: {
                "spec": profile.spec.name,
                "cpu_model": profile.cpu_model,
                "phases": {
                    phase_name: _encode_phase(phase)
                    for phase_name, phase in profile.phases.items()
                },
                "idle": _encode_run_stats(profile.idle.stats),
            }
            for name, profile in profiles.items()
        },
        "services": {
            name: _encode_service(profile)
            for name, profile in (service_profiles or {}).items()
        },
    }
    pathlib.Path(path).write_text(json.dumps(document))


def load_checkpoint(
    path: str | pathlib.Path,
    *,
    config: SystemConfig | None = None,
) -> tuple[dict[str, BenchmarkProfile], dict[str, ServiceInvocationProfile], str]:
    """Read ``path`` back; returns (profiles, service profiles, cpu model).

    Specs are re-resolved from the benchmark registry by name, so a
    checkpoint stays valid across sessions as long as the named
    benchmarks exist.
    """
    config = config if config is not None else SystemConfig.table1()
    try:
        document = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    if document.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {document.get('version')!r} is not "
            f"{CHECKPOINT_VERSION}"
        )
    profiles: dict[str, BenchmarkProfile] = {}
    for name, payload in document.get("benchmarks", {}).items():
        spec: BenchmarkSpec = benchmark(payload["spec"])
        phases = {}
        for phase_name, phase_payload in payload["phases"].items():
            phases[phase_name] = PhaseProfile(
                phase=spec.phases.phase(phase_name),
                chunks=[
                    _decode_run_stats(chunk) for chunk in phase_payload["chunks"]
                ],
                invocations=phase_payload["invocations"],
            )
        profiles[name] = BenchmarkProfile(
            spec=spec,
            cpu_model=payload["cpu_model"],
            phases=phases,
            idle=IdleProfile(stats=_decode_run_stats(payload["idle"])),
            config=config,
        )
    services = {
        name: _decode_service(payload)
        for name, payload in document.get("services", {}).items()
    }
    return profiles, services, document.get("cpu_model", "mxs")
