"""Profile checkpoints: persist detailed-simulation state to disk.

The paper's methodology leans on checkpoints — "the file-caches were
warmed and a checkpoint was taken before the program was loaded"
(Section 3.1) — so that the expensive part of simulation runs once.
The expensive part of *this* reproduction is the detailed cycle-level
profiling; this module serialises its results (benchmark profiles and
per-invocation service profiles) to JSON so later sessions can sweep
disk policies, sample intervals, or report formats without
re-simulating.

Format: a single JSON document, versioned; counters are stored as plain
dicts, per-label stats keyed by label (``"__user__"`` stands for the
``None`` user label, which JSON cannot key).

On top of the explicit checkpoint files, :class:`ProfileCache` provides
a *content-addressed* on-disk cache: each profile is stored under a key
that hashes everything the result depends on (benchmark spec, system
configuration, CPU model, window parameters, seed, and a model-version
stamp), so :class:`~repro.core.softwatt.SoftWatt` can consult it
transparently — a stale or mismatched entry simply misses and the
profile is re-simulated.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib

from repro.core.profiles import (
    BenchmarkProfile,
    IdleProfile,
    PhaseProfile,
    ServiceInvocationProfile,
)
from repro.config.system import SystemConfig
from repro.cpu.branch import BranchStats
from repro.cpu.runstats import LabelStats, RunStats
from repro.stats.counters import AccessCounters
from repro.stats.simlog import log_degradation
from repro.workloads.specjvm98 import BenchmarkSpec, benchmark

CHECKPOINT_VERSION = 1
_USER_KEY = "__user__"

MODEL_VERSION = 1
"""Stamp of the simulator semantics.  Bump whenever a change alters
simulation *results* (CPU timing, cache behaviour, workload generation,
power weights): every existing cache entry then misses and is evicted,
forcing a clean re-profile instead of serving stale numbers."""

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
"""Environment variable naming the persistent profile-cache directory.
The cache is disabled when it is unset (no surprise writes outside the
working tree)."""

QUARANTINE_SUBDIR = "quarantine"
"""Corrupt or stale cache entries are *moved* here, not deleted: a
reproducible corruption (torn write, bad disk, version skew) stays
available for a bug report instead of silently vanishing."""


class CheckpointError(RuntimeError):
    """Raised when a checkpoint cannot be read back."""


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def _encode_counters(counters: AccessCounters) -> dict:
    return {name: value for name, value in counters.items() if value}


def _decode_counters(data: dict) -> AccessCounters:
    counters = AccessCounters()
    for name, value in data.items():
        if not hasattr(counters, name):
            raise CheckpointError(f"unknown counter {name!r} in checkpoint")
        setattr(counters, name, value)
    return counters


def _encode_label_stats(stats: LabelStats) -> dict:
    return {
        "cycles": stats.cycles,
        "instr_cycles": stats.instr_cycles,
        "stall_cycles": stats.stall_cycles,
        "instructions": stats.instructions,
        "counters": _encode_counters(stats.counters),
    }


def _decode_label_stats(data: dict) -> LabelStats:
    return LabelStats(
        cycles=data["cycles"],
        instr_cycles=data["instr_cycles"],
        stall_cycles=data["stall_cycles"],
        instructions=data["instructions"],
        counters=_decode_counters(data["counters"]),
    )


def _encode_run_stats(stats: RunStats) -> dict:
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "traps": stats.traps,
        "branch": dataclasses.asdict(stats.branch),
        "labels": {
            (label if label is not None else _USER_KEY): _encode_label_stats(s)
            for label, s in stats.labels.items()
        },
    }


def _decode_run_stats(data: dict) -> RunStats:
    stats = RunStats(
        cycles=data["cycles"],
        instructions=data["instructions"],
        traps=data["traps"],
        branch=BranchStats(**data["branch"]),
    )
    for label, payload in data["labels"].items():
        key = None if label == _USER_KEY else label
        stats.labels[key] = _decode_label_stats(payload)
    return stats


def _encode_phase(profile: PhaseProfile) -> dict:
    return {
        "phase": profile.phase.name,
        "chunks": [_encode_run_stats(chunk) for chunk in profile.chunks],
        "invocations": profile.invocations,
    }


def _encode_service(profile: ServiceInvocationProfile) -> dict:
    return {
        "service": profile.service,
        "cycles": profile.cycles,
        "energies_j": profile.energies_j,
        "category_energy_j": profile.category_energy_j,
        "mean_counters": _encode_counters(profile.mean_counters),
        "instructions_per_invocation": profile.instructions_per_invocation,
    }


def _decode_service(data: dict) -> ServiceInvocationProfile:
    return ServiceInvocationProfile(
        service=data["service"],
        cycles=data["cycles"],
        energies_j=data["energies_j"],
        category_energy_j=data["category_energy_j"],
        mean_counters=_decode_counters(data["mean_counters"]),
        instructions_per_invocation=data["instructions_per_invocation"],
    )


def encode_profile(profile: BenchmarkProfile) -> dict:
    """Encode one benchmark profile as a JSON-serialisable dict."""
    return {
        "spec": profile.spec.name,
        "cpu_model": profile.cpu_model,
        "phases": {
            phase_name: _encode_phase(phase)
            for phase_name, phase in profile.phases.items()
        },
        "idle": _encode_run_stats(profile.idle.stats),
    }


def decode_profile(
    payload: dict, *, spec: BenchmarkSpec, config: SystemConfig
) -> BenchmarkProfile:
    """Rebuild a benchmark profile from :func:`encode_profile` output.

    ``spec`` and ``config`` are attached as the profile's identity; the
    caller is responsible for ensuring they match the payload (the
    profile cache guarantees this through its content-addressed key).
    """
    phases = {}
    for phase_name, phase_payload in payload["phases"].items():
        phases[phase_name] = PhaseProfile(
            phase=spec.phases.phase(phase_name),
            chunks=[_decode_run_stats(chunk) for chunk in phase_payload["chunks"]],
            invocations=phase_payload["invocations"],
        )
    return BenchmarkProfile(
        spec=spec,
        cpu_model=payload["cpu_model"],
        phases=phases,
        idle=IdleProfile(stats=_decode_run_stats(payload["idle"])),
        config=config,
    )


# ---------------------------------------------------------------------------
# Content-addressed cache keys
# ---------------------------------------------------------------------------

def _stable_hash(payload: dict) -> str:
    """SHA-256 of a canonical JSON encoding of ``payload``."""
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()


def profile_cache_key(
    spec: BenchmarkSpec,
    config: SystemConfig,
    *,
    cpu_model: str,
    window_instructions: int,
    startup_chunks: int,
    steady_chunks: int,
    seed: int,
) -> str:
    """Cache key for a benchmark profile.

    Hashes every input the detailed simulation depends on, plus the
    :data:`MODEL_VERSION` stamp — any difference in spec content (not
    just name), system configuration, profiling window, or simulator
    semantics produces a different key.
    """
    return _stable_hash(
        {
            "kind": "benchmark",
            "model_version": MODEL_VERSION,
            "spec": dataclasses.asdict(spec),
            "config": dataclasses.asdict(config),
            "cpu_model": cpu_model,
            "window_instructions": window_instructions,
            "startup_chunks": startup_chunks,
            "steady_chunks": steady_chunks,
            "seed": seed,
        }
    )


def service_cache_key(
    service: str,
    config: SystemConfig,
    *,
    cpu_model: str,
    invocations: int,
    warmup: int,
    seed: int,
) -> str:
    """Cache key for a per-invocation kernel-service profile."""
    return _stable_hash(
        {
            "kind": "service",
            "model_version": MODEL_VERSION,
            "service": service,
            "config": dataclasses.asdict(config),
            "cpu_model": cpu_model,
            "invocations": invocations,
            "warmup": warmup,
            "seed": seed,
        }
    )


# ---------------------------------------------------------------------------
# Persistent profile cache
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ProfileCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-ready counters (the serve ``/stats`` and drain flush)."""
        return dataclasses.asdict(self)


class ProfileCache:
    """Content-addressed on-disk cache of profiling results.

    One JSON file per entry, named by the cache key.  Entries whose
    model-version stamp no longer matches, or that cannot be decoded,
    are evicted on contact and reported as misses — the caller then
    re-profiles cleanly.  Evicted entries are quarantined under
    ``<cache-dir>/quarantine/`` (with a logged warning) rather than
    deleted, so reproducible corruption can be reported.  Writes are
    atomic (tmp file + rename) so a crashed or concurrent writer can
    never leave a torn entry.
    """

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)
        self.stats = CacheStats()

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.directory / QUARANTINE_SUBDIR

    @classmethod
    def from_env(cls) -> "ProfileCache | None":
        """The cache named by ``REPRO_CACHE_DIR``, or None if unset."""
        directory = os.environ.get(CACHE_DIR_ENV)
        if not directory:
            return None
        return cls(directory)

    # -- internals ------------------------------------------------------

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def _read(self, key: str, kind: str) -> dict | None:
        path = self._path(key)
        try:
            document = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._evict(path)
            return None
        if (
            not isinstance(document, dict)
            or document.get("model_version") != MODEL_VERSION
            or document.get("kind") != kind
        ):
            self._evict(path)
            return None
        return document

    def _evict(self, path: pathlib.Path) -> None:
        self.stats.misses += 1
        self._quarantine(path)

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a suspect entry aside (fall back to deleting it)."""
        self.stats.evictions += 1
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            destination = self.quarantine_dir / path.name
            suffix = 0
            while destination.exists():
                suffix += 1
                destination = self.quarantine_dir / f"{path.stem}.{suffix}{path.suffix}"
            os.replace(path, destination)
        except OSError:
            # A cache that cannot quarantine (read-only, cross-device
            # oddities) still must not serve the bad entry.
            try:
                path.unlink()
            except OSError:
                return
            log_degradation(
                f"cache-quarantine: deleted unreadable profile-cache entry "
                f"{path.name} (quarantine unavailable)"
            )
            return
        self.stats.quarantined += 1
        log_degradation(
            f"cache-quarantine: moved corrupt/stale profile-cache entry "
            f"{path.name} to {destination} — please report if reproducible"
        )

    def _write(self, key: str, document: dict) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
            tmp.write_text(json.dumps(document))
            os.replace(tmp, path)
        except OSError:
            # A read-only or full cache directory must never break the
            # simulation; the entry simply is not persisted.
            return
        self.stats.stores += 1

    # -- benchmark profiles ---------------------------------------------

    def load_profile(
        self, key: str, *, spec: BenchmarkSpec, config: SystemConfig
    ) -> BenchmarkProfile | None:
        """The cached profile under ``key``, or None on any miss."""
        document = self._read(key, "benchmark")
        if document is None:
            return None
        try:
            profile = decode_profile(document["profile"], spec=spec, config=config)
        except (KeyError, TypeError, ValueError, CheckpointError):
            self._evict(self._path(key))
            return None
        self.stats.hits += 1
        return profile

    def store_profile(self, key: str, profile: BenchmarkProfile) -> None:
        """Persist ``profile`` under ``key``."""
        self._write(
            key,
            {
                "kind": "benchmark",
                "model_version": MODEL_VERSION,
                "profile": encode_profile(profile),
            },
        )

    # -- service profiles -----------------------------------------------

    def load_service(self, key: str) -> ServiceInvocationProfile | None:
        """The cached service profile under ``key``, or None on any miss."""
        document = self._read(key, "service")
        if document is None:
            return None
        try:
            profile = _decode_service(document["profile"])
        except (KeyError, TypeError, ValueError, CheckpointError):
            self._evict(self._path(key))
            return None
        self.stats.hits += 1
        return profile

    def store_service(self, key: str, profile: ServiceInvocationProfile) -> None:
        """Persist ``profile`` under ``key``."""
        self._write(
            key,
            {
                "kind": "service",
                "model_version": MODEL_VERSION,
                "profile": _encode_service(profile),
            },
        )

    # -- maintenance ----------------------------------------------------

    def evict_stale(self) -> int:
        """Quarantine every entry with a stale model version or torn JSON.

        Returns the number of entries removed from the active cache.
        Entries written by a *newer* model version are also removed —
        the stamp is an exact match, not an ordering.
        """
        removed = 0
        if not self.directory.is_dir():
            return 0
        for path in self.directory.glob("*.json"):
            try:
                document = json.loads(path.read_text())
                stale = (
                    not isinstance(document, dict)
                    or document.get("model_version") != MODEL_VERSION
                )
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                stale = True
            if stale:
                self._quarantine(path)
                if not path.exists():
                    removed += 1
        return removed

    def quarantined_entries(self) -> list[pathlib.Path]:
        """The quarantined entry files, oldest name-order first."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(self.quarantine_dir.glob("*.json"))


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def save_checkpoint(
    path: str | pathlib.Path,
    *,
    profiles: dict[str, BenchmarkProfile],
    service_profiles: dict[str, ServiceInvocationProfile] | None = None,
    cpu_model: str = "mxs",
) -> None:
    """Write benchmark and service profiles to ``path`` as JSON."""
    document = {
        "version": CHECKPOINT_VERSION,
        "cpu_model": cpu_model,
        "benchmarks": {
            name: encode_profile(profile) for name, profile in profiles.items()
        },
        "services": {
            name: _encode_service(profile)
            for name, profile in (service_profiles or {}).items()
        },
    }
    pathlib.Path(path).write_text(json.dumps(document))


def load_checkpoint(
    path: str | pathlib.Path,
    *,
    config: SystemConfig | None = None,
) -> tuple[dict[str, BenchmarkProfile], dict[str, ServiceInvocationProfile], str]:
    """Read ``path`` back; returns (profiles, service profiles, cpu model).

    Specs are re-resolved from the benchmark registry by name, so a
    checkpoint stays valid across sessions as long as the named
    benchmarks exist.
    """
    config = config if config is not None else SystemConfig.table1()
    try:
        document = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    if document.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {document.get('version')!r} is not "
            f"{CHECKPOINT_VERSION}"
        )
    profiles: dict[str, BenchmarkProfile] = {}
    for name, payload in document.get("benchmarks", {}).items():
        spec: BenchmarkSpec = benchmark(payload["spec"])
        profiles[name] = decode_profile(payload, spec=spec, config=config)
    services = {
        name: _decode_service(payload)
        for name, payload in document.get("services", {}).items()
    }
    return profiles, services, document.get("cpu_model", "mxs")
