"""Invalidation-tiered sweep campaigns.

The point of a complete-machine power simulator is design-space
exploration (Section 1), but a naive sweep pays for a full detailed
simulation at every point even when the swept parameter cannot change
the counters.  This engine classifies each design point by what its
changes *invalidate* and dispatches to the cheapest sufficient tier:

* **Tier L (ledger)** — power/technology parameters (supply voltage,
  calibration, feature size).  The detailed simulators never read
  them, so the cached base timeline is re-priced through the
  :class:`~repro.power.registry.PowerRegistry` under a fresh
  :class:`~repro.power.processor.ProcessorPowerModel`.  No
  re-simulation; milliseconds per point.
* **Tier T (timeline)** — disk-policy and timeline-only parameters
  (spin-down threshold, clock frequency).  The shared detailed profile
  is replayed through a fresh
  :class:`~repro.core.timeline.TimelineSimulator`.
* **Tier S (structural)** — anything else (cache geometry, window
  size, issue width...).  Full detailed simulation, optionally fanned
  out across processes under the :mod:`repro.resilience` supervisor
  with the persistent profile cache warm across points.

Every tier is bit-identical to running the full pipeline at that
point — the cheaper tiers only skip work whose inputs are provably
unchanged (pinned by ``tests/test_campaign.py`` against the golden
energies).  The tier classification table lives in
:data:`LEDGER_LEAVES` / :data:`TIMELINE_LEAVES` and is documented in
DESIGN.md §9.

Below the structural tier sit two *fidelity rungs* (``tier="atomic"``
or ``tier="sampled"``, see :data:`FIDELITY_RUNGS` and DESIGN.md §11):
the point still re-simulates, but on a cheaper CPU execution tier
(:class:`~repro.config.system.FidelityTier`), trading bounded counter
error for an order-of-magnitude sweep speedup.  Unlike the
invalidation tiers these are approximations; the chosen fidelity is
recorded per point in :attr:`SweepResult.fidelities` and noted in the
:class:`~repro.resilience.runreport.RunReport`, and it rides inside
each point's config so profile-cache keys keep sub-detailed results
out of detailed caches.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.config.diskcfg import DiskPowerPolicy, disk_configuration
from repro.config.system import CacheConfig, FidelityTier, SystemConfig
from repro.core.report import BenchmarkResult
from repro.core.softwatt import SoftWatt, speed_factor
from repro.core.timeline import TimelineSimulator, disk_power_series
from repro.kernel.modes import ExecutionMode
from repro.power.processor import ProcessorPowerModel
from repro.resilience.faults import FaultPlan
from repro.resilience.runreport import RunReport
from repro.stats.postprocess import compute_power_trace

if TYPE_CHECKING:
    from repro.power.ledger import EnergyLedger
    from repro.stats.source import CounterSource


class Tier(enum.IntEnum):
    """How much of the pipeline a design point invalidates.

    Ordered: a point's tier is the maximum over its changed leaves, and
    forcing a sweep *below* its required tier is an error (it would
    silently reuse stale state).
    """

    LEDGER = 0
    TIMELINE = 1
    STRUCTURAL = 2


#: CLI/user-facing tier names (``full`` re-simulates everything).
TIER_BY_NAME: dict[str, Tier] = {
    "ledger": Tier.LEDGER,
    "timeline": Tier.TIMELINE,
    "full": Tier.STRUCTURAL,
}

#: Fidelity rungs below ``full``: the point still re-simulates
#: (structural tier), but on a cheaper CPU execution tier.  These are
#: accepted wherever a tier name is (``tier="atomic"``), mapping to
#: ``Tier.STRUCTURAL`` plus a campaign-wide fidelity override.
FIDELITY_RUNGS: frozenset[str] = frozenset({"atomic", "sampled"})

#: Config leaves (dot-paths into :class:`SystemConfig`) consumed only
#: by the power models: changing them re-prices cached counters.
LEDGER_LEAVES: frozenset[str] = frozenset({
    "technology.vdd",
    "technology.feature_size_um",
    "technology.calibration",
})

#: Config leaves consumed by the timeline replay but not by the
#: detailed simulators (which are cycle-level, not wall-clock-level).
TIMELINE_LEAVES: frozenset[str] = frozenset({
    "technology.clock_hz",
})


def changed_leaves(base: SystemConfig, other: SystemConfig) -> list[str]:
    """Dot-paths of the scalar config leaves that differ.

    Recurses through nested dataclasses (``core``, ``l1d``,
    ``technology``...), so a replaced sub-config reports only the
    fields that actually changed.
    """
    changed: list[str] = []

    def walk(a, b, prefix: str) -> None:
        for field in dataclasses.fields(a):
            va = getattr(a, field.name)
            vb = getattr(b, field.name)
            path = prefix + field.name
            if dataclasses.is_dataclass(va) and type(va) is type(vb):
                walk(va, vb, path + ".")
            elif va != vb:
                changed.append(path)

    walk(base, other, "")
    return changed


def classify(
    base: SystemConfig,
    config: SystemConfig,
    *,
    policy_changed: bool = False,
) -> Tier:
    """The cheapest tier that fully reflects ``config`` vs ``base``."""
    tier = Tier.TIMELINE if policy_changed else Tier.LEDGER
    for leaf in changed_leaves(base, config):
        if leaf in LEDGER_LEAVES:
            continue
        if leaf in TIMELINE_LEAVES:
            tier = max(tier, Tier.TIMELINE)
        else:
            return Tier.STRUCTURAL
    return tier


# ---------------------------------------------------------------------------
# Sweep results (moved here from repro.core.sensitivity, which now
# re-exports them).
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One design point's results."""

    value: object
    energy_j: float
    duration_s: float
    average_power_w: float
    peak_power_w: float
    budget_shares: dict[str, float]
    kernel_share_pct: float = 0.0
    """Kernel mode's share of cycles at this point."""
    component_energy_j: dict[str, float] = dataclasses.field(default_factory=dict)
    """Per-PowerComponent joules (the full-run ledger, disk included)."""

    @property
    def energy_delay_product(self) -> float:
        """EDP at this design point."""
        return self.energy_j * self.duration_s


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """A full sweep (one parameter, or a grid of several)."""

    parameter: str
    benchmark: str
    points: list[SweepPoint]
    tiers: tuple[str, ...] = ()
    """Per-point tier names (``LEDGER``/``TIMELINE``/``STRUCTURAL``),
    parallel to ``points``; empty for legacy construction."""
    fidelities: tuple[str, ...] = ()
    """Per-point execution fidelity (``detailed``/``sampled``/
    ``atomic``), parallel to ``points``; empty for legacy construction."""
    report: RunReport | None = None
    """Supervisor report from the structural fan-out, when one ran."""

    def best_by_energy(self) -> SweepPoint:
        """The design point with the lowest total energy."""
        return min(self.points, key=lambda point: point.energy_j)

    def best_by_edp(self) -> SweepPoint:
        """The design point with the lowest EDP."""
        return min(self.points, key=lambda point: point.energy_delay_product)

    def to_dict(self) -> dict:
        """JSON-ready form (the serve ``/sweep`` response body)."""
        return {
            "parameter": self.parameter,
            "benchmark": self.benchmark,
            "tiers": list(self.tiers),
            "fidelities": list(self.fidelities),
            "points": [
                {
                    "value": point.value,
                    "energy_j": point.energy_j,
                    "duration_s": point.duration_s,
                    "average_power_w": point.average_power_w,
                    "peak_power_w": point.peak_power_w,
                    "energy_delay_product": point.energy_delay_product,
                    "kernel_share_pct": point.kernel_share_pct,
                    "budget_shares": dict(point.budget_shares),
                }
                for point in self.points
            ],
            "run_report": self.report.to_dict() if self.report else None,
        }

    def format(self) -> str:
        """A compact table of the sweep."""
        lines = [f"sweep of {self.parameter} on {self.benchmark}:"]
        lines.append(f"  {'value':>10s} {'energy J':>9s} {'dur s':>7s} "
                     f"{'avg W':>6s} {'EDP Js':>8s}")
        for point in self.points:
            lines.append(
                f"  {str(point.value):>10s} {point.energy_j:9.1f} "
                f"{point.duration_s:7.2f} {point.average_power_w:6.2f} "
                f"{point.energy_delay_product:8.1f}")
        return "\n".join(lines)


ConfigTransform = Callable[[SystemConfig, object], SystemConfig]


def point_from_result(value, result: BenchmarkResult) -> SweepPoint:
    """Condense one :class:`BenchmarkResult` into a :class:`SweepPoint`."""
    modes = result.mode_breakdown()
    ledger = result.energy_ledger()
    return SweepPoint(
        value=value,
        energy_j=result.total_energy_j,
        duration_s=result.timeline.duration_s,
        average_power_w=result.average_power_w,
        peak_power_w=result.peak_power_w,
        budget_shares=result.power_budget_shares(),
        kernel_share_pct=modes[ExecutionMode.KERNEL].cycles_pct,
        component_energy_j=ledger.components,
    )


def _scale_cache(cache: CacheConfig, size_bytes: int) -> CacheConfig:
    return dataclasses.replace(cache, size_bytes=size_bytes)


def _with_core(config: SystemConfig, **core) -> SystemConfig:
    return dataclasses.replace(
        config, core=dataclasses.replace(config.core, **core))


def _with_technology(config: SystemConfig, **technology) -> SystemConfig:
    return dataclasses.replace(
        config,
        technology=dataclasses.replace(config.technology, **technology))


#: Built-in parameter transforms: name -> transform.
PARAMETERS: dict[str, ConfigTransform] = {
    "l1_size": lambda config, value: dataclasses.replace(
        config,
        l1i=_scale_cache(config.l1i, value),
        l1d=_scale_cache(config.l1d, value),
    ),
    "l2_size": lambda config, value: dataclasses.replace(
        config, l2=_scale_cache(config.l2, value)),
    "window_size": lambda config, value: _with_core(config, window_size=value),
    "issue_width": lambda config, value: _with_core(
        config, fetch_width=value, decode_width=value,
        issue_width=value, commit_width=value),
    "tlb_entries": lambda config, value: dataclasses.replace(
        config, tlb=dataclasses.replace(config.tlb, entries=value)),
    # Power/timeline-tier parameters (no re-simulation needed).
    "vdd": lambda config, value: _with_technology(config, vdd=value),
    "calibration": lambda config, value: _with_technology(
        config, calibration=value),
    "clock_hz": lambda config, value: _with_technology(
        config, clock_hz=value),
}

#: The disk-policy axis: swept via per-point policies, not the config.
SPINDOWN_PARAMETER = "spindown_threshold_s"


def _spindown_policy(threshold: float) -> DiskPowerPolicy:
    return DiskPowerPolicy(name=f"sweep-{threshold:g}s",
                           spindown_threshold_s=threshold)


@dataclasses.dataclass(frozen=True)
class PlannedPoint:
    """One design point, classified and ready to dispatch."""

    value: object
    label: str
    config: SystemConfig
    policy: DiskPowerPolicy
    tier: Tier
    fidelity: str = "detailed"
    """CPU execution tier the point simulates at (structural points
    only; the cheap tiers reuse the detailed base profile)."""


class SweepCampaign:
    """A sweep session over one base machine and benchmark.

    Holds the shared state the cheap tiers reuse — the base SoftWatt
    instance, its detailed profile, and its base-policy timeline — and
    dispatches each planned point to its tier.  ``tier`` forces every
    point through a named tier (``"full"`` reproduces the legacy
    re-simulate-everything sweep); forcing *below* a point's required
    tier raises ``ValueError``.
    """

    def __init__(
        self,
        *,
        base_config: SystemConfig | None = None,
        benchmark: str = "jess",
        disk: DiskPowerPolicy | int = 2,
        cpu_model: str = "mxs",
        window_instructions: int = 15_000,
        sample_interval_s: float = 0.1,
        seed: int = 1,
        idle_policy: str = "busywait",
        workers: int = 1,
        cache_dir=None,
        use_cache: bool = True,
        tier: Tier | str | None = None,
        fidelity: FidelityTier | str = FidelityTier.DETAILED,
        task_timeout: float | None = None,
        retries: int = 2,
        best_effort: bool = False,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.base_config = (
            base_config if base_config is not None else SystemConfig.table1()
        ).validate()
        self.benchmark = benchmark
        self.base_policy = (
            disk_configuration(disk) if isinstance(disk, int) else disk
        )
        self.cpu_model = cpu_model
        self.window_instructions = window_instructions
        self.sample_interval_s = sample_interval_s
        self.seed = seed
        self.idle_policy = idle_policy
        self.workers = workers
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        if isinstance(tier, str):
            if tier in FIDELITY_RUNGS:
                # Fidelity rung: structural everywhere, on the cheaper
                # execution tier.  An explicit conflicting ``fidelity``
                # kwarg would silently lose, so reject it.
                rung = FidelityTier.parse(tier)
                requested = FidelityTier.parse(fidelity)
                if requested not in (FidelityTier.DETAILED, rung):
                    raise ValueError(
                        f"tier {tier!r} conflicts with "
                        f"fidelity={requested.value!r}")
                fidelity = rung
                tier = Tier.STRUCTURAL
            elif tier not in TIER_BY_NAME:
                raise ValueError(
                    f"unknown tier {tier!r}; choose from "
                    f"{sorted(set(TIER_BY_NAME) | FIDELITY_RUNGS)}")
            else:
                tier = TIER_BY_NAME[tier]
        self.forced_tier = tier
        self.fidelity = FidelityTier.parse(fidelity)
        self.task_timeout = task_timeout
        self.retries = retries
        self.best_effort = best_effort
        self.fault_plan = fault_plan
        self._base_softwatt: SoftWatt | None = None
        self._base_result: BenchmarkResult | None = None
        self._base_disk_series: list[float] | None = None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _resolve_transform(
        self, parameter: str, transform: ConfigTransform | None
    ) -> ConfigTransform | None:
        """The config transform for an axis (None = disk-policy axis)."""
        if parameter == SPINDOWN_PARAMETER and transform is None:
            return None
        if transform is None:
            if parameter not in PARAMETERS:
                raise ValueError(
                    f"unknown parameter {parameter!r}; built-ins: "
                    f"{sorted(PARAMETERS) + [SPINDOWN_PARAMETER]}")
            transform = PARAMETERS[parameter]
        return transform

    def _classified(self, value, label, config, policy) -> PlannedPoint:
        policy_changed = policy != self.base_policy
        tier = classify(self.base_config, config, policy_changed=policy_changed)
        if self.forced_tier is not None:
            if self.forced_tier < tier:
                raise ValueError(
                    f"point {label} requires tier {tier.name} but "
                    f"{self.forced_tier.name} was forced; a lower tier "
                    f"would reuse stale simulation state")
            tier = self.forced_tier
        fidelity = "detailed"
        if (
            tier is Tier.STRUCTURAL
            and self.fidelity is not FidelityTier.DETAILED
        ):
            # Fidelity is applied *after* classification so the
            # tier decision (which diffs config leaves against the
            # base) never sees the fidelity sub-config, and only
            # points that actually re-simulate are downgraded.  The
            # fidelity travels inside the point's config, so both the
            # serial path and the parallel SweepPointTask path honour
            # it, and profile-cache keys (built from the full config)
            # keep sub-detailed results out of detailed caches.
            config = config.with_fidelity(self.fidelity).validate()
            fidelity = self.fidelity.value
        return PlannedPoint(
            value=value, label=label, config=config, policy=policy, tier=tier,
            fidelity=fidelity,
        )

    def plan(
        self,
        parameter: str,
        values: Sequence,
        *,
        transform: ConfigTransform | None = None,
    ) -> list[PlannedPoint]:
        """Classify every value of a one-parameter sweep."""
        if not values:
            raise ValueError("need at least one value to sweep")
        transform = self._resolve_transform(parameter, transform)
        plan: list[PlannedPoint] = []
        for value in values:
            if transform is None:
                config = self.base_config
                policy = _spindown_policy(value)
            else:
                config = transform(self.base_config, value).validate()
                policy = self.base_policy
            plan.append(
                self._classified(value, f"{parameter}={value}", config, policy)
            )
        return plan

    def plan_grid(
        self,
        axes: Mapping[str, Sequence],
        *,
        transforms: Mapping[str, ConfigTransform] | None = None,
    ) -> list[PlannedPoint]:
        """Classify the cartesian product of several axes."""
        if not axes:
            raise ValueError("need at least one axis to sweep")
        transforms = transforms or {}
        resolved = {
            name: self._resolve_transform(name, transforms.get(name))
            for name in axes
        }
        for name, values in axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")
        plan: list[PlannedPoint] = []
        for combo in itertools.product(*axes.values()):
            config = self.base_config
            policy = self.base_policy
            for name, value in zip(axes, combo):
                transform = resolved[name]
                if transform is None:
                    policy = _spindown_policy(value)
                else:
                    config = transform(config, value)
            config = config.validate()
            label = ",".join(
                f"{name}={value}" for name, value in zip(axes, combo)
            )
            plan.append(self._classified(combo, label, config, policy))
        return plan

    # ------------------------------------------------------------------
    # Shared base state (computed once, reused by the cheap tiers)
    # ------------------------------------------------------------------

    def base_softwatt(self) -> SoftWatt:
        """The lazily-built base-configuration SoftWatt instance."""
        if self._base_softwatt is None:
            self._base_softwatt = SoftWatt(
                config=self.base_config,
                cpu_model=self.cpu_model,
                window_instructions=self.window_instructions,
                sample_interval_s=self.sample_interval_s,
                seed=self.seed,
                cache_dir=self.cache_dir,
                use_cache=self.use_cache,
            )
        return self._base_softwatt

    def _base_run(self) -> BenchmarkResult:
        if self._base_result is None:
            self._base_result = self.base_softwatt().run(
                self.benchmark,
                disk=self.base_policy,
                idle_policy=self.idle_policy,
            )
        return self._base_result

    def _base_series(self) -> list[float]:
        if self._base_disk_series is None:
            timeline = self._base_run().timeline
            self._base_disk_series = disk_power_series(
                timeline.disk, timeline.log
            )
        return self._base_disk_series

    # ------------------------------------------------------------------
    # Tier evaluators
    # ------------------------------------------------------------------

    def _ledger_point(self, planned: PlannedPoint) -> SweepPoint:
        """Re-price the cached base timeline under a fresh power model."""
        base = self._base_run()
        if planned.config == self.base_config:
            model = self.base_softwatt().model
        else:
            model = ProcessorPowerModel(planned.config)
        trace = compute_power_trace(
            base.timeline.log, model, disk_power_w=self._base_series()
        )
        result = BenchmarkResult(
            name=base.name,
            cpu_model=self.cpu_model,
            disk_policy_name=planned.policy.name,
            timeline=base.timeline,
            trace=trace,
            model=model,
        )
        return point_from_result(planned.value, result)

    def _timeline_point(self, planned: PlannedPoint) -> SweepPoint:
        """Replay the shared detailed profile under new timeline inputs."""
        softwatt = self.base_softwatt()
        profile = softwatt.profile(self.benchmark)
        if planned.config == self.base_config:
            model = softwatt.model
        else:
            model = ProcessorPowerModel(planned.config)
        simulator = TimelineSimulator(
            profile,
            disk_policy=planned.policy,
            sample_interval_s=self.sample_interval_s,
            clock_hz=planned.config.technology.clock_hz,
            speed_factor=speed_factor(self.cpu_model, planned.config),
            service_profiles=softwatt._cached_service_profiles(),
            idle_policy=self.idle_policy,
        )
        timeline = simulator.run()
        series = disk_power_series(timeline.disk, timeline.log)
        trace = compute_power_trace(timeline.log, model, disk_power_w=series)
        result = BenchmarkResult(
            name=profile.spec.name,
            cpu_model=self.cpu_model,
            disk_policy_name=planned.policy.name,
            timeline=timeline,
            trace=trace,
            model=model,
        )
        return point_from_result(planned.value, result)

    def _point_softwatt(self, planned: PlannedPoint) -> SoftWatt:
        return SoftWatt(
            config=planned.config,
            cpu_model=self.cpu_model,
            window_instructions=self.window_instructions,
            sample_interval_s=self.sample_interval_s,
            seed=self.seed,
            cache_dir=self.cache_dir,
            use_cache=self.use_cache,
        )

    def _structural_point(
        self, planned: PlannedPoint, softwatt: SoftWatt | None = None
    ) -> SweepPoint:
        """Full detailed simulation at this point (fresh SoftWatt)."""
        if softwatt is None:
            softwatt = self._point_softwatt(planned)
        result = softwatt.run(
            self.benchmark, disk=planned.policy, idle_policy=self.idle_policy
        )
        return point_from_result(planned.value, result)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _note_fidelity(
        self, plan: Sequence[PlannedPoint], report: RunReport
    ) -> None:
        """Record sub-detailed simulation in the run report."""
        downgraded = sum(
            1 for planned in plan if planned.fidelity != "detailed"
        )
        if downgraded:
            report.add_note(
                f"{downgraded}/{len(plan)} point(s) simulated at "
                f"{self.fidelity.value} fidelity"
            )

    def run_plan(
        self, plan: Sequence[PlannedPoint], *, report: RunReport | None = None
    ) -> list[SweepPoint]:
        """Evaluate a plan, fanning structural points out when asked.

        Results keep plan order.  Under ``best_effort`` a structural
        point whose simulation failed is dropped (and recorded in
        ``report``) instead of aborting the sweep.
        """
        results: dict[int, SweepPoint | None] = {}
        structural = [
            (index, planned)
            for index, planned in enumerate(plan)
            if planned.tier is Tier.STRUCTURAL
        ]
        if self.workers > 1 and len(structural) > 1:
            from repro.parallel import SweepPointTask, sweep_points  # noqa: PLC0415

            tasks = [
                SweepPointTask(
                    value=planned.value,
                    config=planned.config,
                    policy=planned.policy,
                    benchmark=self.benchmark,
                    cpu_model=self.cpu_model,
                    window_instructions=self.window_instructions,
                    sample_interval_s=self.sample_interval_s,
                    seed=self.seed,
                    idle_policy=self.idle_policy,
                    cache_dir=self.cache_dir,
                    use_cache=self.use_cache,
                )
                for _, planned in structural
            ]
            points = sweep_points(
                tasks,
                workers=self.workers,
                labels=[planned.label for _, planned in structural],
                task_timeout=self.task_timeout,
                retries=self.retries,
                best_effort=self.best_effort,
                fault_plan=self.fault_plan,
                report=report,
            )
            for (index, _), point in zip(structural, points):
                results[index] = point
        # Structural points left for this process: with the in-order
        # model, profile them all in one lockstep batch (one lane per
        # point's (benchmark, config)) before walking the plan — the
        # per-point SoftWatt instances then hit their primed caches.
        prebuilt: dict[int, SoftWatt] = {}
        local_structural = [
            (index, planned)
            for index, planned in structural
            if index not in results
        ]
        if self.cpu_model == "mipsy" and len(local_structural) > 1:
            prebuilt = {
                index: self._point_softwatt(planned)
                for index, planned in local_structural
            }
            SoftWatt.prefetch_profiles(
                list(prebuilt.values()), (self.benchmark,)
            )
        for index, planned in enumerate(plan):
            if index in results:
                continue
            if planned.tier is Tier.STRUCTURAL:
                results[index] = self._structural_point(
                    planned, softwatt=prebuilt.get(index)
                )
            elif planned.tier is Tier.TIMELINE:
                results[index] = self._timeline_point(planned)
            else:
                results[index] = self._ledger_point(planned)
        return [
            results[index]
            for index in range(len(plan))
            if results[index] is not None
        ]

    def run(
        self,
        parameter: str,
        values: Sequence,
        *,
        transform: ConfigTransform | None = None,
    ) -> SweepResult:
        """Sweep one parameter over ``values``."""
        plan = self.plan(parameter, values, transform=transform)
        report = RunReport()
        self._note_fidelity(plan, report)
        points = self.run_plan(plan, report=report)
        return SweepResult(
            parameter=parameter,
            benchmark=self.benchmark,
            points=points,
            tiers=tuple(planned.tier.name for planned in plan),
            fidelities=tuple(planned.fidelity for planned in plan),
            report=report,
        )

    def run_grid(
        self,
        axes: Mapping[str, Sequence],
        *,
        transforms: Mapping[str, ConfigTransform] | None = None,
    ) -> SweepResult:
        """Sweep the cartesian product of several axes.

        Point values are tuples in axis order; the result's
        ``parameter`` is the comma-joined axis names.
        """
        plan = self.plan_grid(axes, transforms=transforms)
        report = RunReport()
        self._note_fidelity(plan, report)
        points = self.run_plan(plan, report=report)
        return SweepResult(
            parameter=",".join(axes),
            benchmark=self.benchmark,
            points=points,
            tiers=tuple(planned.tier.name for planned in plan),
            fidelities=tuple(planned.fidelity for planned in plan),
            report=report,
        )


# ---------------------------------------------------------------------------
# Convenience wrappers (the public sweep API, re-exported by
# repro.core.sensitivity for backwards compatibility)
# ---------------------------------------------------------------------------


def sweep_parameter(
    parameter: str,
    values: Sequence,
    *,
    benchmark: str = "jess",
    disk: int | DiskPowerPolicy = 2,
    window_instructions: int = 15_000,
    seed: int = 1,
    transform: ConfigTransform | None = None,
    **campaign_kwargs,
) -> SweepResult:
    """Sweep one configuration parameter over ``values``.

    ``parameter`` names a built-in transform from :data:`PARAMETERS`
    (or :data:`SPINDOWN_PARAMETER`), or pass a custom
    ``transform(config, value) -> config``.  Points are dispatched to
    their invalidation tier; ``campaign_kwargs`` forwards engine
    options (``workers``, ``cache_dir``, ``tier``, ``fault_plan``...)
    to :class:`SweepCampaign`.
    """
    campaign = SweepCampaign(
        benchmark=benchmark,
        disk=disk,
        window_instructions=window_instructions,
        seed=seed,
        **campaign_kwargs,
    )
    return campaign.run(parameter, values, transform=transform)


def sweep_spindown_threshold(
    thresholds_s: Sequence[float],
    *,
    benchmark: str = "compress",
    window_instructions: int = 15_000,
    seed: int = 1,
    **campaign_kwargs,
) -> SweepResult:
    """Sweep the disk spin-down threshold (one shared profile)."""
    campaign = SweepCampaign(
        benchmark=benchmark,
        window_instructions=window_instructions,
        seed=seed,
        **campaign_kwargs,
    )
    return campaign.run(SPINDOWN_PARAMETER, list(thresholds_s))


def sweep_source(
    source: "CounterSource",
    parameter: str,
    values: Sequence,
    *,
    base_config: SystemConfig | None = None,
    transform: ConfigTransform | None = None,
) -> list[tuple[object, "EnergyLedger"]]:
    """Re-price one counter source across ledger-tier parameter values.

    ``source`` is any :class:`~repro.stats.source.CounterSource` — most
    usefully an :class:`~repro.ingest.pricing.IngestedRun` of external
    perf-style measurements, which by construction *cannot* be
    re-simulated.  Each value builds a fresh
    :class:`~repro.power.processor.ProcessorPowerModel` and evaluates
    the registry over the unchanged counters: the campaign engine's
    tier-L path applied to counters that never came from a simulator.
    Milliseconds per point.

    Only ledger-tier parameters apply (``vdd``, ``calibration``,
    feature size — :data:`LEDGER_LEAVES`): a value whose config change
    would invalidate the counters themselves raises ``ValueError``
    naming the offending leaves, because there is no simulator behind
    an external source to regenerate them.
    """
    if not values:
        raise ValueError("need at least one value to sweep")
    base = (
        base_config if base_config is not None else SystemConfig.table1()
    ).validate()
    if transform is None:
        if parameter not in PARAMETERS:
            raise ValueError(
                f"unknown parameter {parameter!r}; built-ins: "
                f"{sorted(PARAMETERS)}")
        transform = PARAMETERS[parameter]
    points: list[tuple[object, "EnergyLedger"]] = []
    for value in values:
        config = transform(base, value).validate()
        tier = classify(base, config)
        if tier is not Tier.LEDGER:
            offending = [
                leaf for leaf in changed_leaves(base, config)
                if leaf not in LEDGER_LEAVES
            ]
            raise ValueError(
                f"{parameter}={value} changes {', '.join(offending)}, "
                f"which requires tier {tier.name}; an external counter "
                f"source cannot be re-simulated, so only ledger-tier "
                f"parameters ({', '.join(sorted(LEDGER_LEAVES))}) apply")
        model = ProcessorPowerModel(config)
        points.append((value, model.price(source)))
    return points


def sweep_grid(
    axes: Mapping[str, Sequence],
    *,
    benchmark: str = "jess",
    disk: int | DiskPowerPolicy = 2,
    window_instructions: int = 15_000,
    seed: int = 1,
    transforms: Mapping[str, ConfigTransform] | None = None,
    **campaign_kwargs,
) -> SweepResult:
    """Sweep the cartesian product of several parameters."""
    campaign = SweepCampaign(
        benchmark=benchmark,
        disk=disk,
        window_instructions=window_instructions,
        seed=seed,
        **campaign_kwargs,
    )
    return campaign.run_grid(axes, transforms=transforms)
