"""Result containers shaped like the paper's tables and figures.

A :class:`BenchmarkResult` wraps one full-run simulation and exposes
the exact quantities the evaluation section reports: the Table 2 mode
breakdown, the Table 3 cache-reference rates, the Table 4 kernel
service decomposition, the Figure 5/7 power budget, and the Figure 3/4
time profiles (via the power trace).
"""

from __future__ import annotations

import dataclasses

from repro.core.timeline import TimelineResult
from repro.kernel.modes import ExecutionMode
from repro.power.ledger import EnergyLedger
from repro.power.processor import ProcessorPowerModel
from repro.power.registry import REGISTRY
from repro.stats.postprocess import PowerTrace
from repro.stats.source import CounterBundle

MODE_ORDER = (
    ExecutionMode.USER,
    ExecutionMode.KERNEL,
    ExecutionMode.SYNC,
    ExecutionMode.IDLE,
)


@dataclasses.dataclass(frozen=True)
class ModeRow:
    """One mode's share of the run (a Table 2 cell pair)."""

    mode: ExecutionMode
    cycles: float
    energy_j: float
    cycles_pct: float
    energy_pct: float


@dataclasses.dataclass(frozen=True)
class ServiceRow:
    """One kernel service's contribution (a Table 4 row)."""

    service: str
    invocations: float
    cycles: float
    energy_j: float
    kernel_cycles_pct: float
    kernel_energy_pct: float


@dataclasses.dataclass(frozen=True)
class CacheRates:
    """L1 references per cycle for one mode (a Table 3 cell pair)."""

    il1_per_cycle: float
    dl1_per_cycle: float


@dataclasses.dataclass
class BenchmarkResult:
    """Full results of one benchmark run under one configuration."""

    name: str
    cpu_model: str
    disk_policy_name: str
    timeline: TimelineResult
    trace: PowerTrace
    model: ProcessorPowerModel

    # ------------------------------------------------------------------
    # Table 2: mode breakdown
    # ------------------------------------------------------------------

    def mode_breakdown(self) -> dict[ExecutionMode, ModeRow]:
        """Percentage of cycles and energy per software mode."""
        timeline = self.timeline
        total_cycles = timeline.total_cycles or 1.0
        energies: dict[ExecutionMode, float] = {}
        for mode in MODE_ORDER:
            cycles = timeline.mode_cycles.get(mode, 0.0)
            counters = timeline.mode_counters[mode]
            if cycles >= 1.0:
                bundle = CounterBundle(counters=counters, cycles=cycles)
                energy = self.model.price(bundle).total_j
            else:
                energy = 0.0
            energies[mode] = energy
        total_energy = sum(energies.values()) or 1.0
        return {
            mode: ModeRow(
                mode=mode,
                cycles=timeline.mode_cycles.get(mode, 0.0),
                energy_j=energies[mode],
                cycles_pct=timeline.mode_cycles.get(mode, 0.0) / total_cycles * 100.0,
                energy_pct=energies[mode] / total_energy * 100.0,
            )
            for mode in MODE_ORDER
        }

    def mode_average_power(self) -> dict[ExecutionMode, dict[str, float]]:
        """Average power per mode, split by category (Figure 6)."""
        result: dict[ExecutionMode, dict[str, float]] = {}
        cycle_time = self.model.technology.cycle_time_s
        for mode in MODE_ORDER:
            cycles = self.timeline.mode_cycles.get(mode, 0.0)
            if cycles < 1.0:
                result[mode] = {
                    name: 0.0 for name in REGISTRY.counter_categories
                }
                continue
            counters = self.timeline.mode_counters[mode]
            ledger = self.model.price(
                CounterBundle(counters=counters, cycles=cycles)
            )
            result[mode] = ledger.category_power_w(cycles * cycle_time)
        return result

    # ------------------------------------------------------------------
    # Table 3: cache references per cycle
    # ------------------------------------------------------------------

    def cache_rates(self) -> dict[ExecutionMode, CacheRates]:
        """L1 I/D references per cycle in each mode."""
        result = {}
        for mode in MODE_ORDER:
            cycles = self.timeline.mode_cycles.get(mode, 0.0)
            counters = self.timeline.mode_counters[mode]
            if cycles < 1.0:
                result[mode] = CacheRates(0.0, 0.0)
                continue
            result[mode] = CacheRates(
                il1_per_cycle=counters.l1i_access / cycles,
                dl1_per_cycle=counters.l1d_access / cycles,
            )
        return result

    # ------------------------------------------------------------------
    # Table 4: kernel services
    # ------------------------------------------------------------------

    def service_breakdown(self) -> list[ServiceRow]:
        """Kernel computation by service, cycles vs energy (Table 4)."""
        timeline = self.timeline
        rows: list[ServiceRow] = []
        kernel_cycles = 0.0
        energies: dict[str, float] = {}
        service_cycles: dict[str, float] = {}
        for label, cycles in timeline.label_cycles.items():
            if label is None or label in ("idle", "kernel_sync"):
                continue
            counters = timeline.label_counters[label]
            energy = (
                self.model.price(
                    CounterBundle(counters=counters, cycles=cycles)
                ).total_j
                if cycles >= 1.0
                else 0.0
            )
            energies[label] = energy
            service_cycles[label] = cycles
            kernel_cycles += cycles
        kernel_energy = sum(energies.values()) or 1.0
        kernel_cycles = kernel_cycles or 1.0
        for service, cycles in sorted(
            service_cycles.items(), key=lambda item: -item[1]
        ):
            rows.append(
                ServiceRow(
                    service=service,
                    invocations=timeline.invocations.get(service, 0.0),
                    cycles=cycles,
                    energy_j=energies[service],
                    kernel_cycles_pct=cycles / kernel_cycles * 100.0,
                    kernel_energy_pct=energies[service] / kernel_energy * 100.0,
                )
            )
        return rows

    # ------------------------------------------------------------------
    # Figures 5 and 7: the overall power budget
    # ------------------------------------------------------------------

    def energy_ledger(self) -> EnergyLedger:
        """The full-run ledger: every registry component plus the disk."""
        return self.timeline.energy_ledger(self.model)

    def power_budget(self) -> dict[str, float]:
        """Average system power by category, *including the disk*."""
        seconds = self.timeline.duration_s or 1.0
        return self.energy_ledger().category_power_w(seconds)

    def power_budget_shares(self) -> dict[str, float]:
        """The Figure 5/7 pie: percentage share per category."""
        budget = self.power_budget()
        total = sum(budget.values()) or 1.0
        return {name: value / total * 100.0 for name, value in budget.items()}

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------

    @property
    def total_energy_j(self) -> float:
        """CPU + memory + disk energy of the run."""
        return self.energy_ledger().total_j

    @property
    def disk_energy_j(self) -> float:
        """Disk-only energy (the Figure 9 bars)."""
        return self.timeline.disk.energy.energy_j

    @property
    def idle_cycles(self) -> float:
        """Cycles spent in the idle process (Figure 9, right chart)."""
        return self.timeline.mode_cycles.get(ExecutionMode.IDLE, 0.0)

    @property
    def energy_delay_product(self) -> float:
        """Energy-delay product in joule-seconds (Section 3.1's metric
        for energy-vs-performance design tradeoffs)."""
        return self.total_energy_j * self.timeline.duration_s

    @property
    def peak_power_w(self) -> float:
        """Peak sampled system power including the disk (Section 3.1:
        "Our tool can also be used to obtain the peak power consumption
        from the profiles")."""
        totals = self.trace.total_with_disk_w
        return max(totals) if totals else 0.0

    @property
    def average_power_w(self) -> float:
        """Average system power over the run, including the disk."""
        duration = self.timeline.duration_s
        return self.total_energy_j / duration if duration > 0 else 0.0

    def format_summary(self) -> str:
        """A compact human-readable run summary."""
        lines = [
            f"benchmark {self.name} on {self.cpu_model}, "
            f"disk={self.disk_policy_name}",
            f"  duration {self.timeline.duration_s:.2f} s "
            f"({self.timeline.idle_wait_s:.2f} s blocked on I/O)",
            f"  total energy {self.total_energy_j:.1f} J "
            f"(disk {self.disk_energy_j:.1f} J)",
        ]
        for mode, row in self.mode_breakdown().items():
            lines.append(
                f"  {mode.value:6s} cycles {row.cycles_pct:5.1f}%  "
                f"energy {row.energy_pct:5.1f}%"
            )
        return "\n".join(lines)
