"""Full-run timeline simulation.

The second half of the SoftWatt two-level methodology (DESIGN.md §2):
lay the benchmark's complete profiled period out in wall-clock time —
phases, disk requests, and the idle periods they induce — and sample it
into a :class:`~repro.stats.simlog.SimulationLog` at the paper's coarse
log granularity.  Compute segments draw their per-cycle behaviour from
the detailed phase profiles (chunk by chunk, preserving the cold-start
ramp); idle segments draw from the idle-process profile (which the
paper shows is workload-independent, justifying exactly this
fast-forwarding).  The disk is simulated event-exactly alongside.

Disk events in the benchmark spec are given in *compute progress*
seconds: a request issued after P seconds of computation.  Blocking
I/O stretches wall time (the process waits; the idle process runs), so
wall = progress + accumulated I/O waiting, matching how spin-up
penalties serialise with execution in the paper's Section 4 study.
"""

from __future__ import annotations

import dataclasses
import os
from typing import TYPE_CHECKING

from repro.config.diskcfg import (
    MK3003MAN_POWER_W,
    DiskPowerPolicy,
    disk_configuration,
)
from repro.core.profiles import (
    BenchmarkProfile,
    PhaseProfile,
    ServiceInvocationProfile,
)
from repro.cpu.runstats import RunStats
from repro.disk.manager import PowerManagedDisk
from repro.kernel.modes import ExecutionMode, mode_of_label
from repro.stats.counters import (
    COUNTER_FIELDS,
    AccessCounters,
    counters_from_vector,
    counters_to_vector,
)
from repro.stats.simlog import LogRecord, SimulationLog

if TYPE_CHECKING:
    from repro.power.ledger import EnergyLedger

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

_EPS = 1e-9

PURE_PYTHON_ENV = "REPRO_PURE_PYTHON"
"""Set to a non-empty value (other than ``0``) to force the pure-Python
sampling path even when numpy is importable.  The two paths are
bit-identical (pinned by ``tests/test_golden_energy.py`` and the
equivalence tests in ``tests/test_core.py``); the flag exists for
benchmarking the speedup and as an escape hatch."""


def vectorized_sampling() -> bool:
    """True when the numpy sampling/aggregation path is active."""
    if _np is None:
        return False
    return os.environ.get(PURE_PYTHON_ENV, "") in ("", "0")

IDLE_POLICIES = ("busywait", "halt")
"""How the CPU spends idle periods.

``busywait`` is IRIX behaviour (the idle process spins, burning real
power — the paper's default).  ``halt`` implements the paper's closing
suggestion: "This energy consumption can be reduced by transitioning
the CPU and the memory-subsystem to a low-power mode or by even
halting the processor, instead of executing the idle-process"
(Section 5) — idle cycles then exercise no units, leaving only the
clock spine and DRAM refresh."""


@dataclasses.dataclass(frozen=True)
class _Segment:
    """One homogeneous stretch of the run."""

    start_s: float
    end_s: float
    source: RunStats
    """Detailed-window stats whose rates fill this segment."""
    is_idle: bool
    phase: str | None = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclasses.dataclass
class TimelineResult:
    """Everything the report layer needs about one full run."""

    log: SimulationLog
    disk: PowerManagedDisk
    duration_s: float
    compute_duration_s: float
    idle_wait_s: float
    """Wall time the CPU spent idling on blocking disk I/O."""
    mode_cycles: dict[ExecutionMode, float]
    mode_counters: dict[ExecutionMode, AccessCounters]
    label_cycles: dict[str | None, float]
    label_counters: dict[str | None, AccessCounters]
    label_instructions: dict[str | None, float]
    invocations: dict[str, float]
    """Scaled kernel-service invocation counts over the full run."""

    @property
    def total_cycles(self) -> float:
        """All cycles in the run."""
        return sum(self.mode_cycles.values())

    def energy_ledger(self, model) -> "EnergyLedger":
        """The full-run :class:`~repro.power.ledger.EnergyLedger`.

        Counter-driven components come from pricing the whole log
        through the :class:`~repro.stats.source.CounterSource` seam;
        the disk — the one simulation-time component — is attached with
        its event-exact integrated energy.
        """
        ledger = model.price(self.log)
        return ledger.with_component("disk", "disk", self.disk.energy.energy_j)


def _dominant_mode(source: RunStats) -> ExecutionMode:
    """The software mode holding the most cycles of a segment source."""
    best_mode = ExecutionMode.USER
    best_cycles = -1.0
    for label, stats in source.labels.items():
        if stats.cycles > best_cycles:
            best_cycles = stats.cycles
            best_mode = mode_of_label(label)
    return best_mode


def _scale_counters(counters: AccessCounters, factor: float) -> AccessCounters:
    """Scale every counter by ``factor`` (values become floats).

    The timeline works with fractional expected counts (rates times
    durations); the power models consume them unchanged.
    """
    scaled = AccessCounters()
    for name, value in counters.items():
        setattr(scaled, name, value * factor)
    return scaled


class TimelineSimulator:
    """Composes phase profiles + disk model into a sampled full run."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        *,
        disk_policy: DiskPowerPolicy | int = 1,
        sample_interval_s: float = 0.1,
        clock_hz: float | None = None,
        speed_factor: float = 1.0,
        service_profiles: dict[str, ServiceInvocationProfile] | None = None,
        annotations=None,
        idle_policy: str = "busywait",
    ) -> None:
        self.profile = profile
        self.service_profiles = service_profiles or {}
        self.annotations = annotations
        if idle_policy not in IDLE_POLICIES:
            raise ValueError(
                f"idle_policy must be one of {IDLE_POLICIES}, got {idle_policy!r}"
            )
        self.idle_policy = idle_policy
        if isinstance(disk_policy, int):
            disk_policy = disk_configuration(disk_policy)
        self.disk_policy = disk_policy
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.sample_interval_s = sample_interval_s
        self.clock_hz = (
            clock_hz if clock_hz is not None else profile.config.technology.clock_hz
        )
        if speed_factor <= 0:
            raise ValueError("speed factor must be positive")
        # Mipsy-style runs take longer wall time for the same work; the
        # spec's durations are calibrated for the 4-wide MXS machine.
        self.speed_factor = speed_factor

    # ------------------------------------------------------------------
    # Segment assembly
    # ------------------------------------------------------------------

    def _phase_subsegments(self) -> list[tuple[float, float, RunStats, str]]:
        """(progress_start, progress_end, chunk stats, phase) in compute time.

        Each phase occupies its compute fraction of the run; within a
        phase, chunks split the duration in proportion to their cycle
        counts, preserving measured ramps.
        """
        spec = self.profile.spec
        duration = spec.compute_duration_s * self.speed_factor
        result: list[tuple[float, float, RunStats, str]] = []
        cursor = 0.0
        for phase_spec in spec.phases.phases:
            phase: PhaseProfile = self.profile.phases[phase_spec.name]
            phase_duration = phase_spec.compute_fraction * duration
            total_chunk_cycles = sum(chunk.cycles for chunk in phase.chunks) or 1
            for chunk in phase.chunks:
                share = chunk.cycles / total_chunk_cycles
                end = cursor + share * phase_duration
                result.append((cursor, end, chunk, phase_spec.name))
                cursor = end
        return result

    def _build_segments(
        self, disk: PowerManagedDisk
    ) -> tuple[list[_Segment], float, float]:
        """Lay compute sub-segments and idle waits out in wall time."""
        spec = self.profile.spec
        idle_source = self.profile.idle.stats
        compute = self._phase_subsegments()
        compute_duration = compute[-1][1] if compute else 0.0
        events = [
            (event.progress_s * self.speed_factor, event.nbytes)
            for event in spec.disk_events
        ]
        segments: list[_Segment] = []
        wall = 0.0
        progress = 0.0
        chunk_index = 0
        idle_wait = 0.0

        def emit_compute(until_progress: float) -> None:
            nonlocal wall, progress, chunk_index
            while progress < until_progress - _EPS and chunk_index < len(compute):
                chunk_start, chunk_end, stats, phase_name = compute[chunk_index]
                end = min(chunk_end, until_progress)
                if end > progress + _EPS:
                    duration = end - progress
                    segments.append(
                        _Segment(
                            start_s=wall,
                            end_s=wall + duration,
                            source=stats,
                            is_idle=False,
                            phase=phase_name,
                        )
                    )
                    wall += duration
                    progress = end
                if progress >= chunk_end - _EPS:
                    chunk_index += 1

        for event_progress, nbytes in events:
            emit_compute(min(event_progress, compute_duration))
            request = disk.request(wall, nbytes)
            if self.annotations is not None:
                self.annotations.emit_disk_request(request)
            if request.completion_s > wall + _EPS:
                segments.append(
                    _Segment(
                        start_s=wall,
                        end_s=request.completion_s,
                        source=idle_source,
                        is_idle=True,
                    )
                )
                idle_wait += request.completion_s - wall
                wall = request.completion_s
        emit_compute(compute_duration)
        disk.finish(wall)
        return segments, wall, idle_wait

    # ------------------------------------------------------------------
    # Scheduled kernel services (Table 4 densities x measured profiles)
    # ------------------------------------------------------------------

    def _service_plan(
        self, total_cycles: float, compute_cycles: float
    ) -> tuple[dict[str, tuple[float, float]], AccessCounters, float]:
        """Plan the scheduled kernel-service activity for this run.

        Returns ``(per-service (count, cycles), total scheduled counters,
        phi)`` where ``phi`` is the fraction of compute cycles consumed
        by scheduled services (window-derived activity is scaled by
        ``1 - phi`` to make room).
        """
        densities = self.profile.spec.service_densities()
        plan: dict[str, tuple[float, float]] = {}
        totals = AccessCounters()
        scheduled_cycles = 0.0
        # Invocation counts are a property of the *work* the benchmark
        # does, not of the machine running it: derive them from the
        # reference (4-wide MXS) run length so slower machines execute
        # the same number of reads/faults over a longer wall time.
        reference_cycles = self.profile.spec.compute_duration_s * self.clock_hz
        for service, density in densities.items():
            svc_profile = self.service_profiles.get(service)
            if svc_profile is None:
                continue
            count = density * reference_cycles
            cycles = count * svc_profile.mean_cycles
            plan[service] = (count, cycles)
            scheduled_cycles += cycles
            totals.add(_scale_counters(svc_profile.mean_counters, count))
        if compute_cycles <= 0:
            return plan, totals, 0.0
        phi = min(0.85, scheduled_cycles / compute_cycles)
        return plan, totals, phi

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _segment_rates(
        self, source: RunStats, *, halted: bool = False
    ) -> tuple[AccessCounters, dict[ExecutionMode, float]]:
        """Per-cycle counter rates and mode shares of a segment source.

        ``halted`` zeroes the unit activity (the Section 5 halt-on-idle
        extension): cycles still pass, but nothing switches beyond the
        clock spine and DRAM refresh."""
        cycles = max(1, source.cycles)
        counters = AccessCounters() if halted else source.total_counters()
        mode_share: dict[ExecutionMode, float] = {}
        for label, stats in source.labels.items():
            mode = mode_of_label(label)
            mode_share[mode] = mode_share.get(mode, 0.0) + stats.cycles / cycles
        return counters, mode_share

    def _sample(
        self,
        segments: list[_Segment],
        duration_s: float,
        *,
        phi: float = 0.0,
        scheduled_rate: AccessCounters | None = None,
    ) -> SimulationLog:
        """Chop segments into log records.

        ``phi`` is the compute-cycle fraction consumed by scheduled
        kernel services; ``scheduled_rate`` gives their per-compute-
        cycle counter rates, spread uniformly over compute segments
        (window-derived activity is diluted by ``1 - phi`` to make
        room).

        Dispatches to the numpy path when available: counters become
        fixed-order float64 vectors (``COUNTER_FIELDS`` order) so each
        segment overlap is one fused multiply-add instead of 33
        attribute round-trips.  Both paths perform the same IEEE-754
        operations in the same order, so outputs are bit-identical.
        """
        if vectorized_sampling():
            return self._sample_numpy(
                segments, duration_s, phi=phi, scheduled_rate=scheduled_rate
            )
        return self._sample_python(
            segments, duration_s, phi=phi, scheduled_rate=scheduled_rate
        )

    def _sample_python(
        self,
        segments: list[_Segment],
        duration_s: float,
        *,
        phi: float = 0.0,
        scheduled_rate: AccessCounters | None = None,
    ) -> SimulationLog:
        log = SimulationLog(self.sample_interval_s)
        if not segments:
            return log
        interval = self.sample_interval_s
        clock = self.clock_hz
        dilution = 1.0 - phi
        halt_idle = self.idle_policy == "halt"
        t = 0.0
        seg_iter = iter(segments)
        segment = next(seg_iter)
        seg_rates = self._segment_rates(
            segment.source, halted=halt_idle and segment.is_idle)
        while t < duration_s - _EPS:
            t_end = min(t + interval, duration_s)
            counters = AccessCounters()
            mode_cycles: dict[ExecutionMode, float] = {}
            cursor = t
            cycles_total = 0.0
            while cursor < t_end - _EPS:
                while segment.end_s <= cursor + _EPS:
                    try:
                        segment = next(seg_iter)
                    except StopIteration:
                        break
                    seg_rates = self._segment_rates(
                        segment.source, halted=halt_idle and segment.is_idle)
                overlap = min(segment.end_s, t_end) - cursor
                if overlap <= 0:
                    break
                seg_cycles = overlap * clock
                cycles_total += seg_cycles
                source_counters, mode_share = seg_rates
                source_cycles = max(1, segment.source.cycles)
                if segment.is_idle:
                    factor = seg_cycles / source_cycles
                    counters.add(_scale_counters(source_counters, factor))
                    mode_cycles[ExecutionMode.IDLE] = (
                        mode_cycles.get(ExecutionMode.IDLE, 0.0) + seg_cycles
                    )
                else:
                    factor = seg_cycles * dilution / source_cycles
                    counters.add(_scale_counters(source_counters, factor))
                    if scheduled_rate is not None:
                        counters.add(_scale_counters(scheduled_rate, seg_cycles))
                    for mode, share in mode_share.items():
                        mode_cycles[mode] = (
                            mode_cycles.get(mode, 0.0) + share * seg_cycles * dilution
                        )
                    if phi > 0.0:
                        mode_cycles[ExecutionMode.KERNEL] = (
                            mode_cycles.get(ExecutionMode.KERNEL, 0.0)
                            + phi * seg_cycles
                        )
                cursor += overlap
            log.append(
                LogRecord(
                    start_s=t,
                    end_s=t_end,
                    cycles=cycles_total,
                    counters=counters,
                    mode_cycles=mode_cycles,
                )
            )
            t = t_end
        return log

    def _sample_numpy(
        self,
        segments: list[_Segment],
        duration_s: float,
        *,
        phi: float = 0.0,
        scheduled_rate: AccessCounters | None = None,
    ) -> SimulationLog:
        # Mirrors _sample_python operation-for-operation; only the
        # counter accumulation is vectorized (`acc += vec * factor` is
        # per-element `acc[i] + vec[i] * factor`, the same IEEE-754
        # sequence as AccessCounters.add of _scale_counters output).
        log = SimulationLog(self.sample_interval_s)
        if not segments:
            return log
        interval = self.sample_interval_s
        clock = self.clock_hz
        dilution = 1.0 - phi
        halt_idle = self.idle_policy == "halt"
        width = len(COUNTER_FIELDS)
        sched_vec = (
            counters_to_vector(scheduled_rate)
            if scheduled_rate is not None
            else None
        )
        # Segment sources repeat (idle stats, per-chunk profiles), so
        # their rate vectors are converted once and reused.
        rate_cache: dict[tuple[int, bool], tuple[object, dict]] = {}

        def segment_rates(seg: _Segment) -> tuple[object, dict]:
            key = (id(seg.source), halt_idle and seg.is_idle)
            cached = rate_cache.get(key)
            if cached is None:
                counters, mode_share = self._segment_rates(
                    seg.source, halted=key[1]
                )
                cached = (counters_to_vector(counters), mode_share)
                rate_cache[key] = cached
            return cached

        t = 0.0
        seg_iter = iter(segments)
        segment = next(seg_iter)
        seg_vec, seg_share = segment_rates(segment)
        while t < duration_s - _EPS:
            t_end = min(t + interval, duration_s)
            acc = _np.zeros(width, dtype=_np.float64)
            mode_cycles: dict[ExecutionMode, float] = {}
            cursor = t
            cycles_total = 0.0
            while cursor < t_end - _EPS:
                while segment.end_s <= cursor + _EPS:
                    try:
                        segment = next(seg_iter)
                    except StopIteration:
                        break
                    seg_vec, seg_share = segment_rates(segment)
                overlap = min(segment.end_s, t_end) - cursor
                if overlap <= 0:
                    break
                seg_cycles = overlap * clock
                cycles_total += seg_cycles
                source_cycles = max(1, segment.source.cycles)
                if segment.is_idle:
                    factor = seg_cycles / source_cycles
                    acc += seg_vec * factor
                    mode_cycles[ExecutionMode.IDLE] = (
                        mode_cycles.get(ExecutionMode.IDLE, 0.0) + seg_cycles
                    )
                else:
                    factor = seg_cycles * dilution / source_cycles
                    acc += seg_vec * factor
                    if sched_vec is not None:
                        acc += sched_vec * seg_cycles
                    for mode, share in seg_share.items():
                        mode_cycles[mode] = (
                            mode_cycles.get(mode, 0.0) + share * seg_cycles * dilution
                        )
                    if phi > 0.0:
                        mode_cycles[ExecutionMode.KERNEL] = (
                            mode_cycles.get(ExecutionMode.KERNEL, 0.0)
                            + phi * seg_cycles
                        )
                cursor += overlap
            log.append(
                LogRecord(
                    start_s=t,
                    end_s=t_end,
                    cycles=cycles_total,
                    counters=counters_from_vector(acc),
                    mode_cycles=mode_cycles,
                )
            )
            t = t_end
        return log

    # ------------------------------------------------------------------
    # Run-level aggregation
    # ------------------------------------------------------------------

    def _aggregate(
        self,
        segments: list[_Segment],
        plan: dict[str, tuple[float, float]],
        phi: float,
    ) -> tuple[
        dict[ExecutionMode, float],
        dict[ExecutionMode, AccessCounters],
        dict[str | None, float],
        dict[str | None, AccessCounters],
        dict[str | None, float],
        dict[str, float],
    ]:
        if vectorized_sampling():
            return self._aggregate_numpy(segments, plan, phi)
        return self._aggregate_python(segments, plan, phi)

    def _aggregate_python(
        self,
        segments: list[_Segment],
        plan: dict[str, tuple[float, float]],
        phi: float,
    ) -> tuple[
        dict[ExecutionMode, float],
        dict[ExecutionMode, AccessCounters],
        dict[str | None, float],
        dict[str | None, AccessCounters],
        dict[str | None, float],
        dict[str, float],
    ]:
        clock = self.clock_hz
        mode_cycles: dict[ExecutionMode, float] = {mode: 0.0 for mode in ExecutionMode}
        mode_counters: dict[ExecutionMode, AccessCounters] = {
            mode: AccessCounters() for mode in ExecutionMode
        }
        label_cycles: dict[str | None, float] = {}
        label_counters: dict[str | None, AccessCounters] = {}
        label_instructions: dict[str | None, float] = {}
        invocations: dict[str, float] = {}

        # Scale factors per distinct source: wall seconds using that
        # source -> cycles, vs the source's measured cycles.
        source_walls: dict[int, float] = {}
        sources: dict[int, tuple[RunStats, bool]] = {}
        for segment in segments:
            key = id(segment.source)
            source_walls[key] = source_walls.get(key, 0.0) + segment.duration_s
            sources[key] = (segment.source, segment.is_idle)

        halt_idle = self.idle_policy == "halt"
        for key, wall_s in source_walls.items():
            source, is_idle = sources[key]
            if is_idle and halt_idle:
                mode_cycles[ExecutionMode.IDLE] += wall_s * clock
                label_cycles["idle"] = label_cycles.get("idle", 0.0) + wall_s * clock
                if "idle" not in label_counters:
                    label_counters["idle"] = AccessCounters()
                continue
            target_cycles = wall_s * clock
            factor = target_cycles / max(1, source.cycles)
            if not is_idle:
                # Scheduled kernel services displace part of every
                # compute segment.
                factor *= 1.0 - phi
            for label, stats in source.labels.items():
                mode = ExecutionMode.IDLE if is_idle else mode_of_label(label)
                cycles = stats.cycles * factor
                mode_cycles[mode] += cycles
                scaled = _scale_counters(stats.counters, factor)
                mode_counters[mode].add(scaled)
                label_cycles[label] = label_cycles.get(label, 0.0) + cycles
                if label not in label_counters:
                    label_counters[label] = AccessCounters()
                label_counters[label].add(scaled)
                label_instructions[label] = (
                    label_instructions.get(label, 0.0) + stats.instructions * factor
                )

        # Scaled invocation counts: phase windows -> full phases
        # (covers the emergent utlb traps and any window-scheduled
        # activity), diluted like their cycles.
        spec = self.profile.spec
        duration = spec.compute_duration_s * self.speed_factor
        for phase_spec in spec.phases.phases:
            phase = self.profile.phases[phase_spec.name]
            measured_cycles = max(1, phase.aggregate.cycles)
            full_cycles = phase_spec.compute_fraction * duration * clock
            factor = full_cycles * (1.0 - phi) / measured_cycles
            for service, count in phase.invocations.items():
                invocations[service] = invocations.get(service, 0.0) + count * factor

        # Scheduled services from the Table 4 densities.
        for service, (count, cycles) in plan.items():
            svc_profile = self.service_profiles[service]
            invocations[service] = invocations.get(service, 0.0) + count
            label_cycles[service] = label_cycles.get(service, 0.0) + cycles
            scaled = _scale_counters(svc_profile.mean_counters, count)
            if service not in label_counters:
                label_counters[service] = AccessCounters()
            label_counters[service].add(scaled)
            label_instructions[service] = (
                label_instructions.get(service, 0.0)
                + count * svc_profile.instructions_per_invocation
            )
            mode_cycles[ExecutionMode.KERNEL] += cycles
            mode_counters[ExecutionMode.KERNEL].add(scaled)
        return (
            mode_cycles,
            mode_counters,
            label_cycles,
            label_counters,
            label_instructions,
            invocations,
        )

    def _aggregate_numpy(
        self,
        segments: list[_Segment],
        plan: dict[str, tuple[float, float]],
        phi: float,
    ) -> tuple[
        dict[ExecutionMode, float],
        dict[ExecutionMode, AccessCounters],
        dict[str | None, float],
        dict[str | None, AccessCounters],
        dict[str | None, float],
        dict[str, float],
    ]:
        # Mirrors _aggregate_python operation-for-operation; per-mode
        # and per-label counter accumulators are float64 vectors that
        # are converted back once at the end.
        clock = self.clock_hz
        width = len(COUNTER_FIELDS)
        mode_cycles: dict[ExecutionMode, float] = {mode: 0.0 for mode in ExecutionMode}
        mode_vecs = {
            mode: _np.zeros(width, dtype=_np.float64) for mode in ExecutionMode
        }
        label_cycles: dict[str | None, float] = {}
        label_vecs: dict[str | None, object] = {}
        label_instructions: dict[str | None, float] = {}
        invocations: dict[str, float] = {}

        source_walls: dict[int, float] = {}
        sources: dict[int, tuple[RunStats, bool]] = {}
        for segment in segments:
            key = id(segment.source)
            source_walls[key] = source_walls.get(key, 0.0) + segment.duration_s
            sources[key] = (segment.source, segment.is_idle)

        halt_idle = self.idle_policy == "halt"
        for key, wall_s in source_walls.items():
            source, is_idle = sources[key]
            if is_idle and halt_idle:
                mode_cycles[ExecutionMode.IDLE] += wall_s * clock
                label_cycles["idle"] = label_cycles.get("idle", 0.0) + wall_s * clock
                if "idle" not in label_vecs:
                    label_vecs["idle"] = _np.zeros(width, dtype=_np.float64)
                continue
            target_cycles = wall_s * clock
            factor = target_cycles / max(1, source.cycles)
            if not is_idle:
                factor *= 1.0 - phi
            for label, stats in source.labels.items():
                mode = ExecutionMode.IDLE if is_idle else mode_of_label(label)
                cycles = stats.cycles * factor
                mode_cycles[mode] += cycles
                scaled = counters_to_vector(stats.counters) * factor
                mode_vecs[mode] += scaled
                label_cycles[label] = label_cycles.get(label, 0.0) + cycles
                if label not in label_vecs:
                    label_vecs[label] = _np.zeros(width, dtype=_np.float64)
                label_vecs[label] += scaled
                label_instructions[label] = (
                    label_instructions.get(label, 0.0) + stats.instructions * factor
                )

        spec = self.profile.spec
        duration = spec.compute_duration_s * self.speed_factor
        for phase_spec in spec.phases.phases:
            phase = self.profile.phases[phase_spec.name]
            measured_cycles = max(1, phase.aggregate.cycles)
            full_cycles = phase_spec.compute_fraction * duration * clock
            factor = full_cycles * (1.0 - phi) / measured_cycles
            for service, count in phase.invocations.items():
                invocations[service] = invocations.get(service, 0.0) + count * factor

        for service, (count, cycles) in plan.items():
            svc_profile = self.service_profiles[service]
            invocations[service] = invocations.get(service, 0.0) + count
            label_cycles[service] = label_cycles.get(service, 0.0) + cycles
            scaled = counters_to_vector(svc_profile.mean_counters) * count
            if service not in label_vecs:
                label_vecs[service] = _np.zeros(width, dtype=_np.float64)
            label_vecs[service] += scaled
            label_instructions[service] = (
                label_instructions.get(service, 0.0)
                + count * svc_profile.instructions_per_invocation
            )
            mode_cycles[ExecutionMode.KERNEL] += cycles
            mode_vecs[ExecutionMode.KERNEL] += scaled
        return (
            mode_cycles,
            {mode: counters_from_vector(vec) for mode, vec in mode_vecs.items()},
            label_cycles,
            {label: counters_from_vector(vec) for label, vec in label_vecs.items()},
            label_instructions,
            invocations,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def _fire_annotations(
        self, segments: list[_Segment], disk: PowerManagedDisk, log: SimulationLog
    ) -> None:
        annotations = self.annotations
        if annotations is None or annotations.empty:
            return
        current_phase: str | None = None
        phase_start = 0.0
        for segment in segments:
            if segment.phase != current_phase:
                if current_phase is not None:
                    annotations.emit_phase(current_phase, phase_start, segment.start_s)
                current_phase = segment.phase
                phase_start = segment.start_s
            mode = (
                ExecutionMode.IDLE
                if segment.is_idle
                else _dominant_mode(segment.source)
            )
            annotations.emit_mode_switch(
                mode, segment.start_s, segment.end_s,
                segment.duration_s * self.clock_hz,
            )
        if current_phase is not None and segments:
            annotations.emit_phase(current_phase, phase_start, segments[-1].end_s)
        annotations.emit_disk_transitions(disk.history, 0)
        for record in log:
            annotations.emit_sample(record)

    def run(self) -> TimelineResult:
        """Simulate the full profiled period."""
        disk = PowerManagedDisk(self.disk_policy, seed=self.profile.spec.seed)
        segments, duration, idle_wait = self._build_segments(disk)
        clock = self.clock_hz
        total_cycles = duration * clock
        compute_cycles = (duration - idle_wait) * clock
        plan, scheduled_counters, phi = self._service_plan(
            total_cycles, compute_cycles
        )
        scheduled_rate = (
            _scale_counters(scheduled_counters, 1.0 / compute_cycles)
            if compute_cycles > 0
            else None
        )
        log = self._sample(segments, duration, phi=phi, scheduled_rate=scheduled_rate)
        self._fire_annotations(segments, disk, log)
        (
            mode_cycles,
            mode_counters,
            label_cycles,
            label_counters,
            label_instructions,
            invocations,
        ) = self._aggregate(segments, plan, phi)
        compute_duration = self.profile.spec.compute_duration_s * self.speed_factor
        return TimelineResult(
            log=log,
            disk=disk,
            duration_s=duration,
            compute_duration_s=compute_duration,
            idle_wait_s=idle_wait,
            mode_cycles=mode_cycles,
            mode_counters=mode_counters,
            label_cycles=label_cycles,
            label_counters=label_counters,
            label_instructions=label_instructions,
            invocations=invocations,
        )


def disk_power_series(
    disk: PowerManagedDisk, log: SimulationLog
) -> list[float]:
    """Average disk power per log interval, from the disk history."""
    series: list[float] = []
    history = disk.history
    h_index = 0
    for record in log:
        energy = 0.0
        while h_index < len(history) and history[h_index][1] <= record.start_s + _EPS:
            h_index += 1
        scan = h_index
        while scan < len(history) and history[scan][0] < record.end_s - _EPS:
            start, end, mode = history[scan]
            overlap = min(end, record.end_s) - max(start, record.start_s)
            if overlap > 0:
                energy += MK3003MAN_POWER_W[mode] * overlap
            scan += 1
        duration = record.duration_s
        series.append(energy / duration if duration > 0 else 0.0)
    return series
