"""Paper-style text report generation.

Renders one run or a whole suite into the document structure of the
paper's evaluation section: validation, mode breakdown (Table 2), cache
rates (Table 3), kernel services (Table 4), the power budget (Figures
5/7), and the time profile (Figures 3/4) — each annotated with the
paper's published value where one exists.

Used by ``repro report`` and handy for regression review: two reports
generated from the same seed are byte-identical.
"""

from __future__ import annotations

import io

from repro.core.report import MODE_ORDER, BenchmarkResult
from repro.kernel.modes import ExecutionMode
from repro.workloads import paper_data

_RULE = "-" * 70


def _heading(out: io.StringIO, title: str) -> None:
    out.write(f"\n{title}\n{_RULE}\n")


def render_run(result: BenchmarkResult) -> str:
    """The full report for one benchmark run."""
    out = io.StringIO()
    out.write(f"SoftWatt report: {result.name} "
              f"(cpu={result.cpu_model}, disk={result.disk_policy_name})\n")
    out.write(_RULE + "\n")
    timeline = result.timeline
    out.write(f"profiled period  : {timeline.duration_s:.2f} s "
              f"({timeline.idle_wait_s:.2f} s blocked on I/O)\n")
    out.write(f"total energy     : {result.total_energy_j:.1f} J "
              f"(disk {result.disk_energy_j:.1f} J)\n")
    out.write(f"average power    : {result.average_power_w:.2f} W  "
              f"peak {result.peak_power_w:.2f} W  "
              f"EDP {result.energy_delay_product:.1f} Js\n")

    _heading(out, "Mode breakdown (Table 2)")
    paper2 = paper_data.TABLE2.get(result.name)
    out.write(f"{'mode':8s} {'%cycles':>9s} {'%energy':>9s}"
              + (f" {'paper c/e':>14s}\n" if paper2 else "\n"))
    paper_cells = {}
    if paper2:
        paper_cells = {
            ExecutionMode.USER: (paper2.user_cycles, paper2.user_energy),
            ExecutionMode.KERNEL: (paper2.kernel_cycles, paper2.kernel_energy),
            ExecutionMode.SYNC: (paper2.sync_cycles, paper2.sync_energy),
            ExecutionMode.IDLE: (paper2.idle_cycles, paper2.idle_energy),
        }
    for mode in MODE_ORDER:
        row = result.mode_breakdown()[mode]
        line = f"{mode.value:8s} {row.cycles_pct:9.2f} {row.energy_pct:9.2f}"
        if paper2:
            cycles, energy = paper_cells[mode]
            line += f" {cycles:6.1f}/{energy:6.1f}"
        out.write(line + "\n")

    _heading(out, "Cache references per cycle (Table 3)")
    paper3 = paper_data.TABLE3.get(result.name)
    rates = result.cache_rates()
    out.write(f"{'mode':8s} {'iL1/cyc':>8s} {'dL1/cyc':>8s}"
              + (f" {'paper i/d':>12s}\n" if paper3 else "\n"))
    paper_rate = {}
    if paper3:
        paper_rate = {
            ExecutionMode.USER: paper3.user,
            ExecutionMode.KERNEL: paper3.kernel,
            ExecutionMode.SYNC: paper3.sync,
            ExecutionMode.IDLE: paper3.idle,
        }
    for mode in MODE_ORDER:
        rate = rates[mode]
        line = f"{mode.value:8s} {rate.il1_per_cycle:8.2f} {rate.dl1_per_cycle:8.2f}"
        if paper3:
            i_rate, d_rate = paper_rate[mode]
            line += f" {i_rate:5.2f}/{d_rate:4.2f}"
        out.write(line + "\n")

    _heading(out, "Kernel services (Table 4)")
    shares4 = paper_data.TABLE4_SHARES.get(result.name, {})
    out.write(f"{'service':12s} {'invocations':>12s} {'%kern cyc':>10s} "
              f"{'%kern en':>9s} {'paper cyc/en':>14s}\n")
    for row in result.service_breakdown():
        paper_cell = shares4.get(row.service)
        reference = (
            f"{paper_cell[0]:6.2f}/{paper_cell[1]:6.2f}" if paper_cell else "-"
        )
        out.write(f"{row.service:12s} {row.invocations:12.0f} "
                  f"{row.kernel_cycles_pct:10.2f} {row.kernel_energy_pct:9.2f} "
                  f"{reference:>14s}\n")

    _heading(out, "Power budget (Figures 5/7)")
    budget = result.power_budget()
    shares = result.power_budget_shares()
    reference_shares = (
        paper_data.FIGURE5_SHARES
        if result.disk_policy_name == "baseline"
        else paper_data.FIGURE7_SHARES
    )
    out.write(f"{'category':10s} {'watts':>7s} {'share %':>8s} {'paper %':>8s}\n")
    for name in budget:  # registry legend order, disk included
        paper_share = reference_shares.get(name)
        reference = f"{paper_share:.0f}" if paper_share else "-"
        out.write(f"{name:10s} {budget[name]:7.2f} {shares[name]:8.1f} "
                  f"{reference:>8s}\n")

    _heading(out, "Power over time (Figures 3/4)")
    trace = result.trace
    step = max(1, len(trace.times_s) // 20)
    totals = trace.total_with_disk_w
    scale = 60.0 / max(totals) if totals and max(totals) > 0 else 1.0
    for index in range(0, len(trace.times_s), step):
        bar = "#" * int(totals[index] * scale)
        out.write(f"t={trace.times_s[index]:6.2f}s {totals[index]:6.2f} W |{bar}\n")
    return out.getvalue()


def render_suite(results: dict[str, BenchmarkResult]) -> str:
    """A cross-benchmark summary plus the suite-average budget."""
    out = io.StringIO()
    out.write("SoftWatt suite report\n")
    out.write(_RULE + "\n")
    out.write(f"{'benchmark':10s} {'dur s':>7s} {'energy J':>9s} "
              f"{'disk J':>7s} {'avg W':>6s} {'peak W':>7s} {'EDP Js':>8s}\n")
    for name, result in results.items():
        out.write(f"{name:10s} {result.timeline.duration_s:7.2f} "
                  f"{result.total_energy_j:9.1f} {result.disk_energy_j:7.1f} "
                  f"{result.average_power_w:6.2f} {result.peak_power_w:7.2f} "
                  f"{result.energy_delay_product:8.1f}\n")

    _heading(out, "Suite-average power budget")
    budgets = [result.power_budget() for result in results.values()]
    average = {
        key: sum(b[key] for b in budgets) / len(budgets) for key in budgets[0]
    }
    total = sum(average.values())
    out.write(f"{'category':10s} {'watts':>7s} {'share %':>8s}\n")
    for name in average:  # registry legend order, disk included
        out.write(f"{name:10s} {average[name]:7.2f} "
                  f"{average[name] / total * 100:8.1f}\n")
    return out.getvalue()
