"""The SoftWatt core: profiling, timeline simulation, the facade."""

from repro.core.campaign import (
    SweepCampaign,
    SweepPoint,
    SweepResult,
    Tier,
    sweep_grid,
    sweep_parameter,
    sweep_spindown_threshold,
)
from repro.core.profiles import (
    BenchmarkProfile,
    IdleProfile,
    PhaseProfile,
    Profiler,
    ServiceInvocationProfile,
)
from repro.core.report import (
    MODE_ORDER,
    BenchmarkResult,
    CacheRates,
    ModeRow,
    ServiceRow,
)
from repro.core.softwatt import MIPSY_SPEED_FACTOR, SoftWatt, speed_factor
from repro.core.timeline import (
    TimelineResult,
    TimelineSimulator,
    disk_power_series,
)

__all__ = [
    "BenchmarkProfile",
    "IdleProfile",
    "PhaseProfile",
    "Profiler",
    "ServiceInvocationProfile",
    "MODE_ORDER",
    "BenchmarkResult",
    "CacheRates",
    "ModeRow",
    "ServiceRow",
    "MIPSY_SPEED_FACTOR",
    "SoftWatt",
    "speed_factor",
    "SweepCampaign",
    "SweepPoint",
    "SweepResult",
    "Tier",
    "sweep_grid",
    "sweep_parameter",
    "sweep_spindown_threshold",
    "TimelineResult",
    "TimelineSimulator",
    "disk_power_series",
]
