"""MXS: the R10000-like out-of-order superscalar timing model.

SimOS's MXS emulates a MIPS R10000: multi-issue, out-of-order, with an
instruction window, load/store queue, and branch prediction.  This
module implements the same microarchitecture as a constraint-based
timing model: each dynamic instruction's fetch, dispatch, issue,
completion, and commit cycles are computed in program order subject to

* fetch bandwidth (``fetch_width``/cycle, fetch group broken by a
  taken branch), I-cache miss and I-TLB stalls,
* the instruction-window occupancy limit (fetch stalls when the window
  holds ``window_size`` uncommitted instructions) and LSQ occupancy,
* true data dependences through the (renamed) register file,
* issue bandwidth and functional-unit contention (2 INT, 2 FP, one
  data-cache port),
* in-order commit at ``commit_width``/cycle,
* branch mispredictions (front end re-steered when the branch
  resolves, plus the fixed redirect penalty), and
* precise TLB-miss traps: the pipeline drains, the kernel's ``utlb``
  handler runs inline in kernel space, the TLB is refilled, and the
  faulting access retries (Section 3.3's dominant kernel service).

This formulation reproduces the structural behaviour MXS gives the
paper — user/kernel IPC and branch-accuracy differences, cache
reference rates per cycle — while remaining fast enough for pure
Python.  All port activity is recorded per service label so the power
post-processor can attribute energy to software modes.
"""

from __future__ import annotations

from collections import deque

from repro.config.system import SystemConfig
from repro.cpu.branch import BranchPredictor
from repro.cpu.interfaces import InlineRefillClient, TrapClient
from repro.cpu.runstats import LabelStats, RunStats
from repro.isa.instruction import Instruction, OpClass
from repro.mem.hierarchy import MemoryHierarchy
from repro.stats.counters import AccessCounters

FRONT_END_DEPTH = 3
"""Cycles between fetch and dispatch (decode + rename stages)."""

TRAP_ENTRY_PENALTY = 3
"""Cycles to redirect fetch to the exception vector after a drain."""

_PRUNE_INTERVAL = 1 << 15


class MXSProcessor:
    """Out-of-order superscalar CPU model (see module docstring)."""

    def __init__(
        self,
        config: SystemConfig,
        hierarchy: MemoryHierarchy | None = None,
        trap_client: TrapClient | None = None,
    ) -> None:
        self.config = config
        self.core = config.core
        self.hierarchy = (
            hierarchy
            if hierarchy is not None
            else MemoryHierarchy(config, AccessCounters())
        )
        self.predictor = BranchPredictor(config.core)
        self.trap_client: TrapClient = (
            trap_client if trap_client is not None else InlineRefillClient()
        )
        self._reset_run_state()

    # ------------------------------------------------------------------
    # Run state
    # ------------------------------------------------------------------

    def _reset_run_state(self) -> None:
        self._reg_ready: dict[int, int] = {}
        self._fetch_cycle = 0
        self._fetched_this_cycle = 0
        self._fetch_block_until = 0
        self._commit_cycle = 0
        self._committed_this_cycle = 0
        self._last_commit = 0
        self._rob_commits: deque[int] = deque()
        self._lsq_commits: deque[int] = deque()
        self._issue_used: dict[int, int] = {}
        self._int_used: dict[int, int] = {}
        self._fp_used: dict[int, int] = {}
        self._mem_used: dict[int, int] = {}
        self._imul_used: dict[int, int] = {}
        self._since_prune = 0
        self._in_trap = False
        self._stats = RunStats()
        self._current_label: str | None = None
        self._label_stats: LabelStats = self._stats.label(None)
        self.hierarchy.counters = self._label_stats.counters

    def _prune(self) -> None:
        """Drop bandwidth bookkeeping older than the commit horizon."""
        horizon = self._last_commit - 4
        for used in (
            self._issue_used,
            self._int_used,
            self._fp_used,
            self._mem_used,
            self._imul_used,
        ):
            stale = [cycle for cycle in used if cycle < horizon]
            for cycle in stale:
                del used[cycle]

    def _switch_label(self, label: str | None) -> LabelStats:
        if label != self._current_label:
            self._current_label = label
            self._label_stats = self._stats.label(label)
            self.hierarchy.counters = self._label_stats.counters
        return self._label_stats

    # ------------------------------------------------------------------
    # Pipeline-stage helpers
    # ------------------------------------------------------------------

    def _next_fetch_slot(self) -> int:
        """Advance the fetch cursor to the cycle of the next fetch slot."""
        if self._fetch_block_until > self._fetch_cycle:
            self._fetch_cycle = self._fetch_block_until
            self._fetched_this_cycle = 0
        if self._fetched_this_cycle >= self.core.fetch_width:
            self._fetch_cycle += 1
            self._fetched_this_cycle = 0
        return self._fetch_cycle

    def _find_issue_cycle(self, ready: int, op: OpClass) -> int:
        """Earliest cycle >= ready with an issue slot and a free unit."""
        issue_width = self.core.issue_width
        if op.is_mem:
            unit_used, unit_count = self._mem_used, 1
        elif op is OpClass.IMUL:
            unit_used, unit_count = self._imul_used, 1
        elif op.is_float:
            unit_used, unit_count = self._fp_used, self.core.fp_alus
        else:
            unit_used, unit_count = self._int_used, self.core.int_alus
        cycle = ready
        issue_used = self._issue_used
        issue_get = issue_used.get
        unit_get = unit_used.get
        while (
            issue_get(cycle, 0) >= issue_width
            or unit_get(cycle, 0) >= unit_count
        ):
            cycle += 1
        issue_used[cycle] = issue_get(cycle, 0) + 1
        unit_used[cycle] = unit_get(cycle, 0) + 1
        return cycle

    def _commit_slot(self, earliest: int) -> int:
        """In-order commit respecting commit bandwidth."""
        cycle = max(earliest, self._commit_cycle)
        if cycle > self._commit_cycle:
            self._commit_cycle = cycle
            self._committed_this_cycle = 0
        if self._committed_this_cycle >= self.core.commit_width:
            self._commit_cycle += 1
            self._committed_this_cycle = 0
            cycle = self._commit_cycle
        self._committed_this_cycle += 1
        return cycle

    # ------------------------------------------------------------------
    # Trap handling
    # ------------------------------------------------------------------

    def _take_utlb_trap(self, faulting_address: int) -> int:
        """Drain, run the utlb handler inline, refill; returns end cycle."""
        if self._in_trap:
            raise RuntimeError(
                "nested TLB miss inside a trap handler: kernel-space code "
                "must not take TLB misses"
            )
        self._stats.traps += 1
        drain = self._last_commit + TRAP_ENTRY_PENALTY
        self._fetch_block_until = max(self._fetch_block_until, drain)
        self._in_trap = True
        outer_label = self._current_label
        try:
            for handler_instr in self.trap_client.utlb_handler(faulting_address):
                self._process(handler_instr)
        finally:
            self._in_trap = False
            self._switch_label(outer_label)
        self.hierarchy.tlb_refill(faulting_address)
        return self._last_commit

    # ------------------------------------------------------------------
    # Per-instruction timing
    # ------------------------------------------------------------------

    def _process(self, instr: Instruction) -> None:
        # Per-instruction pipeline state is carried in locals and only
        # written back at trap boundaries (the utlb handler re-enters
        # _process) and at the end — the single biggest win in the hot
        # loop.  _next_fetch_slot, _find_issue_cycle, and _commit_slot
        # remain the readable definitions of the logic inlined here.
        core = self.core
        if instr.service != self._current_label:
            self._switch_label(instr.service)
        label_stats = self._label_stats
        counters = label_stats.counters
        pc = instr.pc

        # --- Fetch (inline of _next_fetch_slot) ------------------------
        fetch_cycle = self._fetch_cycle
        fetched = self._fetched_this_cycle
        block_until = self._fetch_block_until
        if block_until > fetch_cycle:
            fetch_cycle = block_until
            fetched = 0
        if fetched >= core.fetch_width:
            fetch_cycle += 1
            fetched = 0
        fetch_result = self.hierarchy.fetch(pc)
        if fetch_result.tlb_miss:
            self._fetch_cycle = fetch_cycle
            self._fetched_this_cycle = fetched
            self._take_utlb_trap(pc)
            label_stats = self._switch_label(instr.service)
            counters = label_stats.counters
            fetch_cycle = self._next_fetch_slot()
            fetched = self._fetched_this_cycle
            fetch_result = self.hierarchy.fetch(pc)
            if fetch_result.tlb_miss:
                raise RuntimeError(f"TLB refill for pc {pc:#x} did not stick")
        if fetch_result.latency:
            # Blocking I-cache miss: the whole front end waits.
            fetch_cycle += fetch_result.latency
            fetched = 0
        fetched += 1

        op = instr.op

        # --- Branch prediction -----------------------------------------
        mispredicted = False
        if op.is_ctrl:
            counters.bpred_access += 1
            if op is OpClass.CALL or op is OpClass.RETURN:
                counters.ras_access += 1
            if op is not OpClass.BRANCH or instr.taken:
                counters.btb_access += 1
            correct = self.predictor.predict(instr)
            if op is OpClass.BRANCH:
                counters.branches += 1
                if not correct:
                    counters.branch_mispredicts += 1
            mispredicted = not correct
            if correct and instr.taken:
                # Correctly-predicted taken branch still ends the group.
                fetched = core.fetch_width

        # --- Dispatch (window/ROB/LSQ occupancy) -----------------------
        dispatch = fetch_cycle + FRONT_END_DEPTH
        rob = self._rob_commits
        if len(rob) >= core.window_size:
            oldest_commit = rob.popleft()
            if oldest_commit + 1 > dispatch:
                # Window full: fetch is back-pressured.
                dispatch = oldest_commit + 1
        is_mem = op.is_mem
        if is_mem:
            lsq = self._lsq_commits
            if len(lsq) >= core.lsq_size:
                oldest_mem = lsq.popleft()
                if oldest_mem + 1 > dispatch:
                    dispatch = oldest_mem + 1
        srcs = instr.srcs
        counters.rename_access += 1
        counters.window_dispatch += 1
        counters.rob_access += 1
        counters.regfile_read += len(srcs)

        # --- Ready (register dependences) -------------------------------
        ready = dispatch
        reg_ready = self._reg_ready
        for src in srcs:
            if src:
                producer = reg_ready.get(src, 0)
                if producer > ready:
                    ready = producer

        # --- Issue / execute (inline of _find_issue_cycle) --------------
        if is_mem:
            unit_used, unit_count = self._mem_used, 1
        elif op is OpClass.IMUL:
            unit_used, unit_count = self._imul_used, 1
        elif op.is_float:
            unit_used, unit_count = self._fp_used, core.fp_alus
        else:
            unit_used, unit_count = self._int_used, core.int_alus
        issue_width = core.issue_width
        issue_used = self._issue_used
        issue_get = issue_used.get
        unit_get = unit_used.get
        issue = ready
        while (
            issue_get(issue, 0) >= issue_width
            or unit_get(issue, 0) >= unit_count
        ):
            issue += 1
        issue_used[issue] = issue_get(issue, 0) + 1
        unit_used[issue] = unit_get(issue, 0) + 1

        counters.window_issue += 1
        latency = op.latency
        complete = issue + latency
        if is_mem:
            counters.lsq_access += 1
            address = instr.address
            write = op is OpClass.STORE
            access = self.hierarchy.data_access(address, write=write)
            if access.tlb_miss:
                # Precise data trap: drain, handle, retry the access.
                self._fetch_cycle = fetch_cycle
                self._fetched_this_cycle = fetched
                trap_end = self._take_utlb_trap(address)
                label_stats = self._switch_label(instr.service)
                counters = label_stats.counters
                access = self.hierarchy.data_access(address, write=write)
                if access.tlb_miss:
                    raise RuntimeError(
                        f"TLB refill for address {address:#x} did not stick"
                    )
                complete = trap_end + latency + access.latency + self.config.l1d.latency_cycles
                # The handler advanced the front end; pick up its state
                # so the write-back below does not roll it back.
                fetch_cycle = self._fetch_cycle
                fetched = self._fetched_this_cycle
            elif write:
                # Stores drain through the write buffer; the miss does
                # not hold up completion.
                complete = issue + latency
            else:
                # Loads see the pipelined L1 latency even on a hit
                # (2-cycle load-use on the R10000).
                complete = issue + latency + access.latency + self.config.l1d.latency_cycles
            if op is OpClass.LOAD:
                counters.loads += 1
            elif write:
                counters.stores += 1

        if op is OpClass.IMUL:
            counters.imul_access += 1
        elif op is OpClass.FMUL:
            counters.fmul_access += 1
        elif op.is_float:
            counters.falu_access += 1
        elif not is_mem:
            # Everything that is neither FP nor a memory op executes on
            # the integer units (the _INT_OPS set).
            counters.ialu_access += 1

        # --- Writeback ---------------------------------------------------
        dest = instr.dest
        if dest:
            reg_ready[dest] = complete
            counters.regfile_write += 1
            counters.resultbus_access += 1
            counters.window_wakeup += 1

        # --- Commit (inline of _commit_slot) ------------------------------
        earliest = complete + 1
        commit = self._commit_cycle
        if earliest > commit:
            commit = earliest
            self._commit_cycle = earliest
            self._committed_this_cycle = 1
        elif self._committed_this_cycle >= core.commit_width:
            commit += 1
            self._commit_cycle = commit
            self._committed_this_cycle = 1
        else:
            self._committed_this_cycle += 1
        counters.rob_access += 1
        rob.append(commit)
        if is_mem:
            self._lsq_commits.append(commit)

        # --- Front-end redirects -------------------------------------------
        if mispredicted:
            redirect = complete + core.branch_mispredict_penalty
            if redirect > self._fetch_block_until:
                # Until the branch resolves, the front end fetches down
                # the wrong path: those are real I-cache references
                # (this is why kernel code, with its worse prediction
                # accuracy, shows proportionally more L1I activity --
                # Section 3.2 / Table 3).
                wrong_path_cycles = redirect - fetch_cycle - 1
                if wrong_path_cycles < 0:
                    wrong_path_cycles = 0
                wrong_path_fetches = min(
                    int(wrong_path_cycles * core.fetch_width * 0.9),
                    4 * core.fetch_width,
                )
                counters.l1i_access += wrong_path_fetches
                self._fetch_block_until = redirect
        elif op is OpClass.SYSCALL or op is OpClass.ERET:
            # Serialising instructions restart fetch after they commit.
            if commit + 1 > self._fetch_block_until:
                self._fetch_block_until = commit + 1

        self._fetch_cycle = fetch_cycle
        self._fetched_this_cycle = fetched

        # --- Accounting ------------------------------------------------------
        gap = commit - self._last_commit
        self._last_commit = commit
        useful = 1.0 / core.commit_width
        label_stats.cycles += gap
        label_stats.instructions += 1
        if gap >= useful:
            label_stats.instr_cycles += useful
            label_stats.stall_cycles += gap - useful
        else:
            label_stats.instr_cycles += gap
        self._stats.instructions += 1

        since = self._since_prune + 1
        if since >= _PRUNE_INTERVAL:
            self._since_prune = 0
            self._prune()
        else:
            self._since_prune = since

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        stream,
        *,
        max_instructions: int | None = None,
    ) -> RunStats:
        """Execute ``stream`` and return the run statistics.

        ``stream`` is any iterable of instructions; execution stops when
        it is exhausted or after ``max_instructions`` instructions
        (handler instructions injected by traps do not count against
        the limit, mirroring how SimOS attributes them to the kernel).
        """
        self._reset_run_state()
        process = self._process
        if max_instructions is None:
            for instr in stream:
                process(instr)
        else:
            remaining = max_instructions
            for instr in stream:
                if remaining <= 0:
                    break
                process(instr)
                remaining -= 1
        self._stats.cycles = self._last_commit
        self._stats.branch = self.predictor.stats
        return self._stats

    @property
    def stats(self) -> RunStats:
        """Statistics of the current/most recent run."""
        return self._stats
