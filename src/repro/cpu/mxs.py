"""MXS: the R10000-like out-of-order superscalar timing model.

SimOS's MXS emulates a MIPS R10000: multi-issue, out-of-order, with an
instruction window, load/store queue, and branch prediction.  This
module implements the same microarchitecture as a constraint-based
timing model: each dynamic instruction's fetch, dispatch, issue,
completion, and commit cycles are computed in program order subject to

* fetch bandwidth (``fetch_width``/cycle, fetch group broken by a
  taken branch), I-cache miss and I-TLB stalls,
* the instruction-window occupancy limit (fetch stalls when the window
  holds ``window_size`` uncommitted instructions) and LSQ occupancy,
* true data dependences through the (renamed) register file,
* issue bandwidth and functional-unit contention (2 INT, 2 FP, one
  data-cache port),
* in-order commit at ``commit_width``/cycle,
* branch mispredictions (front end re-steered when the branch
  resolves, plus the fixed redirect penalty), and
* precise TLB-miss traps: the pipeline drains, the kernel's ``utlb``
  handler runs inline in kernel space, the TLB is refilled, and the
  faulting access retries (Section 3.3's dominant kernel service).

This formulation reproduces the structural behaviour MXS gives the
paper — user/kernel IPC and branch-accuracy differences, cache
reference rates per cycle — while remaining fast enough for pure
Python.  All port activity is recorded per service label so the power
post-processor can attribute energy to software modes.

The out-of-order event ordering is inherently scalar (each
instruction's issue cycle feeds the next one's dependence chain), so
unlike the in-order Mipsy core this model is not batched across runs.
Instead the per-window constraint evaluation — the issue-bandwidth and
functional-unit contention scans — is vectorized *within* a run: when
numpy is available the five per-cycle dict tables are replaced by
tag-validated ring buffers (:class:`_IssueRing`) probed scalar-first
and scanned in chunks.  ``REPRO_PURE_PYTHON=1`` forces the dict path;
both are bit-identical.
"""

from __future__ import annotations

import array
import os
from collections import deque

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.config.system import SystemConfig
from repro.cpu.branch import BranchPredictor
from repro.cpu.interfaces import InlineRefillClient, TrapClient
from repro.cpu.runstats import LabelStats, RunStats
from repro.isa.instruction import Instruction, OpClass
from repro.mem.hierarchy import MemoryHierarchy
from repro.stats.counters import AccessCounters

FRONT_END_DEPTH = 3
"""Cycles between fetch and dispatch (decode + rename stages)."""

TRAP_ENTRY_PENALTY = 3
"""Cycles to redirect fetch to the exception vector after a drain."""

_PRUNE_INTERVAL = 1 << 15

PURE_PYTHON_ENV = "REPRO_PURE_PYTHON"

_RING_BITS = 15
_RING_SIZE = 1 << _RING_BITS
_RING_MASK = _RING_SIZE - 1

_ROW_MEM, _ROW_IMUL, _ROW_FP, _ROW_INT = 1, 2, 3, 4
"""Functional-unit rows in :class:`_IssueRing` (row 0 is issue
bandwidth)."""


def vectorized_issue() -> bool:
    """True when the numpy issue/FU contention tables are active.

    Requires numpy and ``REPRO_PURE_PYTHON`` unset/""/"0"; the dict
    tables remain the semantic reference and both paths are pinned
    bit-identical by the golden and property suites.
    """
    if _np is None:
        return False
    return os.environ.get(PURE_PYTHON_ENV, "0") in ("", "0")


class _IssueRing:
    """Tag-validated ring buffers for the per-cycle bandwidth tables.

    Row 0 is the shared issue-bandwidth table; rows 1-4 are the
    functional-unit tables (data-cache port, integer multiplier, FP
    ALUs, integer ALUs).  A slot counts for cycle ``c`` only while its
    tag equals ``c`` — stale entries read as zero and are reclaimed by
    the next write, so the periodic ``_prune`` pass the dict tables
    need becomes a no-op.  ``_RING_SIZE`` (32768 cycles) exceeds the
    maximum span of simultaneously live issue cycles (window occupancy
    times worst-case memory latency, a few hundred cycles) by two
    orders of magnitude, so a wrap can never clobber a cycle that is
    still reachable by a scan.

    The rings are ``array.array`` (scalar probes of the common
    free-at-``ready`` case stay at list speed, where numpy element
    access would dominate) with zero-copy numpy views layered on top
    via ``np.frombuffer`` for the chunked contention scans — writes
    through the arrays are immediately visible to the views.
    """

    __slots__ = ("issue_width", "vals", "tags", "nvals", "ntags")

    def __init__(self, issue_width: int) -> None:
        self.issue_width = issue_width
        self.vals = [
            array.array("q", bytes(8 * _RING_SIZE)) for _ in range(5)
        ]
        self.tags = [array.array("q", [-1]) * _RING_SIZE for _ in range(5)]
        self.nvals = [_np.frombuffer(a, dtype=_np.int64) for a in self.vals]
        self.ntags = [_np.frombuffer(a, dtype=_np.int64) for a in self.tags]

    def claim(self, ready: int, unit: int, unit_count: int) -> int:
        """Earliest cycle >= ``ready`` with an issue slot and a free
        unit; books one slot in both tables at that cycle."""
        val0, tag0 = self.vals[0], self.tags[0]
        valu, tagu = self.vals[unit], self.tags[unit]
        slot = ready & _RING_MASK
        iv = val0[slot] if tag0[slot] == ready else 0
        uv = valu[slot] if tagu[slot] == ready else 0
        if iv < self.issue_width and uv < unit_count:
            cycle = ready
        else:
            cycle = self._scan(ready + 1, unit, unit_count)
            slot = cycle & _RING_MASK
            iv = val0[slot] if tag0[slot] == cycle else 0
            uv = valu[slot] if tagu[slot] == cycle else 0
        val0[slot] = iv + 1
        tag0[slot] = cycle
        valu[slot] = uv + 1
        tagu[slot] = cycle
        return cycle

    def _scan(self, start: int, unit: int, unit_count: int) -> int:
        """Find the first satisfying cycle past a busy ``ready`` slot.

        Contention runs are almost always a handful of cycles (the
        measured distribution tops out below ~30), so probe a short
        scalar prefix first; the geometric numpy chunks only engage
        for pathological back-pressure, where they win.
        """
        sval0, stag0 = self.vals[0], self.tags[0]
        svalu, stagu = self.vals[unit], self.tags[unit]
        issue_width = self.issue_width
        for cycle in range(start, start + 32):
            slot = cycle & _RING_MASK
            iv = sval0[slot] if stag0[slot] == cycle else 0
            if iv < issue_width:
                uv = svalu[slot] if stagu[slot] == cycle else 0
                if uv < unit_count:
                    return cycle
        start = cycle + 1
        val0, tag0 = self.nvals[0], self.ntags[0]
        valu, tagu = self.nvals[unit], self.ntags[unit]
        chunk = 32
        cycle = start
        while True:
            cycles = _np.arange(cycle, cycle + chunk, dtype=_np.int64)
            slots = cycles & _RING_MASK
            iv = _np.where(tag0[slots] == cycles, val0[slots], 0)
            uv = _np.where(tagu[slots] == cycles, valu[slots], 0)
            ok = (iv < self.issue_width) & (uv < unit_count)
            hit = int(ok.argmax())
            if ok[hit]:
                return cycle + hit
            cycle += chunk
            chunk = min(chunk * 4, 4096)


class MXSProcessor:
    """Out-of-order superscalar CPU model (see module docstring)."""

    def __init__(
        self,
        config: SystemConfig,
        hierarchy: MemoryHierarchy | None = None,
        trap_client: TrapClient | None = None,
    ) -> None:
        self.config = config
        self.core = config.core
        self.hierarchy = (
            hierarchy
            if hierarchy is not None
            else MemoryHierarchy(config, AccessCounters())
        )
        self.predictor = BranchPredictor(config.core)
        self.trap_client: TrapClient = (
            trap_client if trap_client is not None else InlineRefillClient()
        )
        self._reset_run_state()

    # ------------------------------------------------------------------
    # Run state
    # ------------------------------------------------------------------

    def _reset_run_state(self) -> None:
        self._reg_ready: dict[int, int] = {}
        self._fetch_cycle = 0
        self._fetched_this_cycle = 0
        self._fetch_block_until = 0
        self._commit_cycle = 0
        self._committed_this_cycle = 0
        self._last_commit = 0
        self._rob_commits: deque[int] = deque()
        self._lsq_commits: deque[int] = deque()
        self._issue_used: dict[int, int] = {}
        self._int_used: dict[int, int] = {}
        self._fp_used: dict[int, int] = {}
        self._mem_used: dict[int, int] = {}
        self._imul_used: dict[int, int] = {}
        # When the ring tables are active the dicts above stay empty
        # (and _prune is a free pass over them).  Re-evaluated per run
        # so REPRO_PURE_PYTHON toggles take effect without a rebuild.
        self._vec_issue = (
            _IssueRing(self.core.issue_width) if vectorized_issue() else None
        )
        self._since_prune = 0
        self._in_trap = False
        self._stats = RunStats()
        self._current_label: str | None = None
        self._label_stats: LabelStats = self._stats.label(None)
        self.hierarchy.counters = self._label_stats.counters

    def _prune(self) -> None:
        """Drop bandwidth bookkeeping older than the commit horizon."""
        horizon = self._last_commit - 4
        for used in (
            self._issue_used,
            self._int_used,
            self._fp_used,
            self._mem_used,
            self._imul_used,
        ):
            stale = [cycle for cycle in used if cycle < horizon]
            for cycle in stale:
                del used[cycle]

    def _switch_label(self, label: str | None) -> LabelStats:
        if label != self._current_label:
            self._current_label = label
            self._label_stats = self._stats.label(label)
            self.hierarchy.counters = self._label_stats.counters
        return self._label_stats

    # ------------------------------------------------------------------
    # Pipeline-stage helpers
    # ------------------------------------------------------------------

    def _next_fetch_slot(self) -> int:
        """Advance the fetch cursor to the cycle of the next fetch slot."""
        if self._fetch_block_until > self._fetch_cycle:
            self._fetch_cycle = self._fetch_block_until
            self._fetched_this_cycle = 0
        if self._fetched_this_cycle >= self.core.fetch_width:
            self._fetch_cycle += 1
            self._fetched_this_cycle = 0
        return self._fetch_cycle

    def _find_issue_cycle(self, ready: int, op: OpClass) -> int:
        """Earliest cycle >= ready with an issue slot and a free unit."""
        issue_width = self.core.issue_width
        if op.is_mem:
            row, unit_used, unit_count = _ROW_MEM, self._mem_used, 1
        elif op is OpClass.IMUL:
            row, unit_used, unit_count = _ROW_IMUL, self._imul_used, 1
        elif op.is_float:
            row, unit_used, unit_count = (
                _ROW_FP, self._fp_used, self.core.fp_alus
            )
        else:
            row, unit_used, unit_count = (
                _ROW_INT, self._int_used, self.core.int_alus
            )
        if self._vec_issue is not None:
            return self._vec_issue.claim(ready, row, unit_count)
        cycle = ready
        issue_used = self._issue_used
        issue_get = issue_used.get
        unit_get = unit_used.get
        while (
            issue_get(cycle, 0) >= issue_width
            or unit_get(cycle, 0) >= unit_count
        ):
            cycle += 1
        issue_used[cycle] = issue_get(cycle, 0) + 1
        unit_used[cycle] = unit_get(cycle, 0) + 1
        return cycle

    def _commit_slot(self, earliest: int) -> int:
        """In-order commit respecting commit bandwidth."""
        cycle = max(earliest, self._commit_cycle)
        if cycle > self._commit_cycle:
            self._commit_cycle = cycle
            self._committed_this_cycle = 0
        if self._committed_this_cycle >= self.core.commit_width:
            self._commit_cycle += 1
            self._committed_this_cycle = 0
            cycle = self._commit_cycle
        self._committed_this_cycle += 1
        return cycle

    # ------------------------------------------------------------------
    # Trap handling
    # ------------------------------------------------------------------

    def _take_utlb_trap(self, faulting_address: int) -> int:
        """Drain, run the utlb handler inline, refill; returns end cycle."""
        if self._in_trap:
            raise RuntimeError(
                "nested TLB miss inside a trap handler: kernel-space code "
                "must not take TLB misses"
            )
        self._stats.traps += 1
        drain = self._last_commit + TRAP_ENTRY_PENALTY
        self._fetch_block_until = max(self._fetch_block_until, drain)
        self._in_trap = True
        outer_label = self._current_label
        try:
            for handler_instr in self.trap_client.utlb_handler(faulting_address):
                self._process(handler_instr)
        finally:
            self._in_trap = False
            self._switch_label(outer_label)
        self.hierarchy.tlb_refill(faulting_address)
        return self._last_commit

    # ------------------------------------------------------------------
    # Per-instruction timing
    # ------------------------------------------------------------------

    def _process(self, instr: Instruction) -> None:
        # Per-instruction pipeline state is carried in locals and only
        # written back at trap boundaries (the utlb handler re-enters
        # _process) and at the end — the single biggest win in the hot
        # loop.  _next_fetch_slot, _find_issue_cycle, and _commit_slot
        # remain the readable definitions of the logic inlined here.
        core = self.core
        if instr.service != self._current_label:
            self._switch_label(instr.service)
        label_stats = self._label_stats
        counters = label_stats.counters
        pc = instr.pc

        # --- Fetch (inline of _next_fetch_slot) ------------------------
        fetch_cycle = self._fetch_cycle
        fetched = self._fetched_this_cycle
        block_until = self._fetch_block_until
        if block_until > fetch_cycle:
            fetch_cycle = block_until
            fetched = 0
        if fetched >= core.fetch_width:
            fetch_cycle += 1
            fetched = 0
        fetch_result = self.hierarchy.fetch(pc)
        if fetch_result.tlb_miss:
            self._fetch_cycle = fetch_cycle
            self._fetched_this_cycle = fetched
            self._take_utlb_trap(pc)
            label_stats = self._switch_label(instr.service)
            counters = label_stats.counters
            fetch_cycle = self._next_fetch_slot()
            fetched = self._fetched_this_cycle
            fetch_result = self.hierarchy.fetch(pc)
            if fetch_result.tlb_miss:
                raise RuntimeError(f"TLB refill for pc {pc:#x} did not stick")
        if fetch_result.latency:
            # Blocking I-cache miss: the whole front end waits.
            fetch_cycle += fetch_result.latency
            fetched = 0
        fetched += 1

        op = instr.op

        # --- Branch prediction -----------------------------------------
        mispredicted = False
        if op.is_ctrl:
            counters.bpred_access += 1
            if op is OpClass.CALL or op is OpClass.RETURN:
                counters.ras_access += 1
            if op is not OpClass.BRANCH or instr.taken:
                counters.btb_access += 1
            correct = self.predictor.predict(instr)
            if op is OpClass.BRANCH:
                counters.branches += 1
                if not correct:
                    counters.branch_mispredicts += 1
            mispredicted = not correct
            if correct and instr.taken:
                # Correctly-predicted taken branch still ends the group.
                fetched = core.fetch_width

        # --- Dispatch (window/ROB/LSQ occupancy) -----------------------
        dispatch = fetch_cycle + FRONT_END_DEPTH
        rob = self._rob_commits
        if len(rob) >= core.window_size:
            oldest_commit = rob.popleft()
            if oldest_commit + 1 > dispatch:
                # Window full: fetch is back-pressured.
                dispatch = oldest_commit + 1
        is_mem = op.is_mem
        if is_mem:
            lsq = self._lsq_commits
            if len(lsq) >= core.lsq_size:
                oldest_mem = lsq.popleft()
                if oldest_mem + 1 > dispatch:
                    dispatch = oldest_mem + 1
        srcs = instr.srcs
        counters.rename_access += 1
        counters.window_dispatch += 1
        counters.rob_access += 1
        counters.regfile_read += len(srcs)

        # --- Ready (register dependences) -------------------------------
        ready = dispatch
        reg_ready = self._reg_ready
        for src in srcs:
            if src:
                producer = reg_ready.get(src, 0)
                if producer > ready:
                    ready = producer

        # --- Issue / execute (inline of _find_issue_cycle) --------------
        vec = self._vec_issue
        if vec is not None:
            if is_mem:
                row, unit_count = _ROW_MEM, 1
            elif op is OpClass.IMUL:
                row, unit_count = _ROW_IMUL, 1
            elif op.is_float:
                row, unit_count = _ROW_FP, core.fp_alus
            else:
                row, unit_count = _ROW_INT, core.int_alus
            # Inline of _IssueRing.claim — the free-at-ready case is
            # ~80% of claims and a method call there costs as much as
            # the probe itself.
            val0, tag0 = vec.vals[0], vec.tags[0]
            valu, tagu = vec.vals[row], vec.tags[row]
            slot = ready & _RING_MASK
            iv = val0[slot] if tag0[slot] == ready else 0
            uv = valu[slot] if tagu[slot] == ready else 0
            if iv < core.issue_width and uv < unit_count:
                issue = ready
            else:
                issue = vec._scan(ready + 1, row, unit_count)
                slot = issue & _RING_MASK
                iv = val0[slot] if tag0[slot] == issue else 0
                uv = valu[slot] if tagu[slot] == issue else 0
            val0[slot] = iv + 1
            tag0[slot] = issue
            valu[slot] = uv + 1
            tagu[slot] = issue
        else:
            if is_mem:
                unit_used, unit_count = self._mem_used, 1
            elif op is OpClass.IMUL:
                unit_used, unit_count = self._imul_used, 1
            elif op.is_float:
                unit_used, unit_count = self._fp_used, core.fp_alus
            else:
                unit_used, unit_count = self._int_used, core.int_alus
            issue_width = core.issue_width
            issue_used = self._issue_used
            issue_get = issue_used.get
            unit_get = unit_used.get
            issue = ready
            while (
                issue_get(issue, 0) >= issue_width
                or unit_get(issue, 0) >= unit_count
            ):
                issue += 1
            issue_used[issue] = issue_get(issue, 0) + 1
            unit_used[issue] = unit_get(issue, 0) + 1

        counters.window_issue += 1
        latency = op.latency
        complete = issue + latency
        if is_mem:
            counters.lsq_access += 1
            address = instr.address
            write = op is OpClass.STORE
            access = self.hierarchy.data_access(address, write=write)
            if access.tlb_miss:
                # Precise data trap: drain, handle, retry the access.
                self._fetch_cycle = fetch_cycle
                self._fetched_this_cycle = fetched
                trap_end = self._take_utlb_trap(address)
                label_stats = self._switch_label(instr.service)
                counters = label_stats.counters
                access = self.hierarchy.data_access(address, write=write)
                if access.tlb_miss:
                    raise RuntimeError(
                        f"TLB refill for address {address:#x} did not stick"
                    )
                complete = trap_end + latency + access.latency + self.config.l1d.latency_cycles
                # The handler advanced the front end; pick up its state
                # so the write-back below does not roll it back.
                fetch_cycle = self._fetch_cycle
                fetched = self._fetched_this_cycle
            elif write:
                # Stores drain through the write buffer; the miss does
                # not hold up completion.
                complete = issue + latency
            else:
                # Loads see the pipelined L1 latency even on a hit
                # (2-cycle load-use on the R10000).
                complete = issue + latency + access.latency + self.config.l1d.latency_cycles
            if op is OpClass.LOAD:
                counters.loads += 1
            elif write:
                counters.stores += 1

        if op is OpClass.IMUL:
            counters.imul_access += 1
        elif op is OpClass.FMUL:
            counters.fmul_access += 1
        elif op.is_float:
            counters.falu_access += 1
        elif not is_mem:
            # Everything that is neither FP nor a memory op executes on
            # the integer units (the _INT_OPS set).
            counters.ialu_access += 1

        # --- Writeback ---------------------------------------------------
        dest = instr.dest
        if dest:
            reg_ready[dest] = complete
            counters.regfile_write += 1
            counters.resultbus_access += 1
            counters.window_wakeup += 1

        # --- Commit (inline of _commit_slot) ------------------------------
        earliest = complete + 1
        commit = self._commit_cycle
        if earliest > commit:
            commit = earliest
            self._commit_cycle = earliest
            self._committed_this_cycle = 1
        elif self._committed_this_cycle >= core.commit_width:
            commit += 1
            self._commit_cycle = commit
            self._committed_this_cycle = 1
        else:
            self._committed_this_cycle += 1
        counters.rob_access += 1
        rob.append(commit)
        if is_mem:
            self._lsq_commits.append(commit)

        # --- Front-end redirects -------------------------------------------
        if mispredicted:
            redirect = complete + core.branch_mispredict_penalty
            if redirect > self._fetch_block_until:
                # Until the branch resolves, the front end fetches down
                # the wrong path: those are real I-cache references
                # (this is why kernel code, with its worse prediction
                # accuracy, shows proportionally more L1I activity --
                # Section 3.2 / Table 3).
                wrong_path_cycles = redirect - fetch_cycle - 1
                if wrong_path_cycles < 0:
                    wrong_path_cycles = 0
                wrong_path_fetches = min(
                    int(wrong_path_cycles * core.fetch_width * 0.9),
                    4 * core.fetch_width,
                )
                counters.l1i_access += wrong_path_fetches
                self._fetch_block_until = redirect
        elif op is OpClass.SYSCALL or op is OpClass.ERET:
            # Serialising instructions restart fetch after they commit.
            if commit + 1 > self._fetch_block_until:
                self._fetch_block_until = commit + 1

        self._fetch_cycle = fetch_cycle
        self._fetched_this_cycle = fetched

        # --- Accounting ------------------------------------------------------
        gap = commit - self._last_commit
        self._last_commit = commit
        useful = 1.0 / core.commit_width
        label_stats.cycles += gap
        label_stats.instructions += 1
        if gap >= useful:
            label_stats.instr_cycles += useful
            label_stats.stall_cycles += gap - useful
        else:
            label_stats.instr_cycles += gap
        self._stats.instructions += 1

        since = self._since_prune + 1
        if since >= _PRUNE_INTERVAL:
            self._since_prune = 0
            self._prune()
        else:
            self._since_prune = since

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        stream,
        *,
        max_instructions: int | None = None,
    ) -> RunStats:
        """Execute ``stream`` and return the run statistics.

        ``stream`` is any iterable of instructions; execution stops when
        it is exhausted or after ``max_instructions`` instructions
        (handler instructions injected by traps do not count against
        the limit, mirroring how SimOS attributes them to the kernel).
        """
        self._reset_run_state()
        process = self._process
        if max_instructions is None:
            for instr in stream:
                process(instr)
        else:
            remaining = max_instructions
            for instr in stream:
                if remaining <= 0:
                    break
                process(instr)
                remaining -= 1
        self._stats.cycles = self._last_commit
        self._stats.branch = self.predictor.stats
        return self._stats

    @property
    def stats(self) -> RunStats:
        """Statistics of the current/most recent run."""
        return self._stats
