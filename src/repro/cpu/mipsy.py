"""Mipsy: the R4000-like single-issue in-order timing model.

SimOS's Mipsy "consists of a simple pipeline with blocking caches"
(Section 2) and is what the paper uses to collect memory-subsystem
statistics (the fast first pass of every benchmark, and the left two
profiles of Figure 3).  This model is an in-order, one-instruction-
per-cycle pipeline:

* every instruction pays one fetch (I-cache reference); an I-cache
  miss blocks the pipeline for the full miss latency,
* loads and synchronising operations block until the data returns
  (blocking caches — no overlap, no MLP),
* taken control transfers pay a fixed refill bubble (no dynamic
  prediction; the R4000 exposes branches architecturally),
* TLB misses trap to the kernel ``utlb`` handler exactly as on MXS.

Like MXS, all activity is recorded per service label.
"""

from __future__ import annotations

from repro.config.system import SystemConfig
from repro.cpu.interfaces import InlineRefillClient, TrapClient
from repro.cpu.runstats import LabelStats, RunStats
from repro.isa.instruction import Instruction, OpClass
from repro.mem.hierarchy import MemoryHierarchy
from repro.stats.counters import AccessCounters

TAKEN_BRANCH_BUBBLE = 1
"""Pipeline refill cycles after a taken control transfer."""

TRAP_ENTRY_PENALTY = 4
"""Cycles to enter the exception vector."""


class MipsyProcessor:
    """Single-issue in-order CPU model with blocking caches."""

    def __init__(
        self,
        config: SystemConfig,
        hierarchy: MemoryHierarchy | None = None,
        trap_client: TrapClient | None = None,
    ) -> None:
        self.config = config
        self.hierarchy = (
            hierarchy
            if hierarchy is not None
            else MemoryHierarchy(config, AccessCounters())
        )
        self.trap_client: TrapClient = (
            trap_client if trap_client is not None else InlineRefillClient()
        )
        self._reset_run_state()

    def _reset_run_state(self) -> None:
        self._cycle = 0
        self._in_trap = False
        self._stats = RunStats()
        self._current_label: str | None = None
        self._label_stats: LabelStats = self._stats.label(None)
        self.hierarchy.counters = self._label_stats.counters

    def _switch_label(self, label: str | None) -> LabelStats:
        if label != self._current_label:
            self._current_label = label
            self._label_stats = self._stats.label(label)
            self.hierarchy.counters = self._label_stats.counters
        return self._label_stats

    def _take_utlb_trap(self, faulting_address: int) -> None:
        if self._in_trap:
            raise RuntimeError(
                "nested TLB miss inside a trap handler: kernel-space code "
                "must not take TLB misses"
            )
        self._stats.traps += 1
        self._cycle += TRAP_ENTRY_PENALTY
        self._in_trap = True
        outer_label = self._current_label
        try:
            for handler_instr in self.trap_client.utlb_handler(faulting_address):
                self._process(handler_instr)
        finally:
            self._in_trap = False
            self._switch_label(outer_label)
        self.hierarchy.tlb_refill(faulting_address)

    def _process(self, instr: Instruction) -> None:
        if instr.service != self._current_label:
            self._switch_label(instr.service)
        label_stats = self._label_stats
        counters = label_stats.counters
        start_cycle = self._cycle

        # --- Fetch (blocking) -------------------------------------------
        fetch_result = self.hierarchy.fetch(instr.pc)
        if fetch_result.tlb_miss:
            self._take_utlb_trap(instr.pc)
            label_stats = self._switch_label(instr.service)
            counters = label_stats.counters
            start_cycle = self._cycle
            fetch_result = self.hierarchy.fetch(instr.pc)
            if fetch_result.tlb_miss:
                raise RuntimeError(f"TLB refill for pc {instr.pc:#x} did not stick")
        self._cycle += 1 + fetch_result.latency

        op = instr.op

        # --- Execute / memory (blocking) ----------------------------------
        extra = op.extra_latency
        if extra > 0:
            self._cycle += extra
        if op.is_mem:
            write = op is OpClass.STORE
            access = self.hierarchy.data_access(instr.address, write=write)
            if access.tlb_miss:
                self._take_utlb_trap(instr.address)
                label_stats = self._switch_label(instr.service)
                counters = label_stats.counters
                access = self.hierarchy.data_access(instr.address, write=write)
                if access.tlb_miss:
                    raise RuntimeError(
                        f"TLB refill for address {instr.address:#x} did not stick"
                    )
            if op is not OpClass.STORE:
                # Blocking load: wait for the data (plus the pipelined
                # L1 hit latency).
                self._cycle += access.latency + self.config.l1d.latency_cycles
            if op is OpClass.LOAD:
                counters.loads += 1
            elif op is OpClass.STORE:
                counters.stores += 1

        if op is OpClass.BRANCH:
            counters.branches += 1
        if op.is_ctrl and instr.taken:
            self._cycle += TAKEN_BRANCH_BUBBLE

        # --- Per-unit activity --------------------------------------------
        counters.regfile_read += len(instr.srcs)
        if op is OpClass.IMUL:
            counters.imul_access += 1
        elif op is OpClass.FMUL:
            counters.fmul_access += 1
        elif op.is_float:
            counters.falu_access += 1
        else:
            counters.ialu_access += 1
        if instr.dest:
            counters.regfile_write += 1
            counters.resultbus_access += 1

        # --- Accounting ------------------------------------------------------
        gap = self._cycle - start_cycle
        label_stats.cycles += gap
        label_stats.instructions += 1
        label_stats.instr_cycles += 1.0
        label_stats.stall_cycles += gap - 1.0
        self._stats.instructions += 1

    def run(
        self,
        stream,
        *,
        max_instructions: int | None = None,
    ) -> RunStats:
        """Execute ``stream`` and return the run statistics."""
        self._reset_run_state()
        process = self._process
        if max_instructions is None:
            for instr in stream:
                process(instr)
        else:
            remaining = max_instructions
            for instr in stream:
                if remaining <= 0:
                    break
                process(instr)
                remaining -= 1
        self._stats.cycles = self._cycle
        return self._stats

    @property
    def stats(self) -> RunStats:
        """Statistics of the current/most recent run."""
        return self._stats
