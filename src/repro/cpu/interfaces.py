"""CPU <-> kernel trap interface.

On MIPS the TLB is software managed: a miss traps to the operating
system, whose ``utlb`` handler performs the translation, reloads the
TLB, and restarts the faulting access (Section 3.3).  The CPU models
are decoupled from the kernel through this small interface: when a
translation misses, the CPU asks its :class:`TrapClient` for the
handler's instruction stream, executes it inline (in kernel address
space, which bypasses the TLB), performs the refill, and retries.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.isa.instruction import Instruction, OpClass
from repro.mem.hierarchy import KSEG_BASE

UTLB_HANDLER_PC = KSEG_BASE + 0x180
"""Exception vector of the fast TLB-refill handler (kernel space)."""


class TrapClient(Protocol):
    """Supplies kernel handler code for CPU-detected traps."""

    def utlb_handler(self, faulting_address: int) -> Iterable[Instruction]:
        """Instruction stream of the TLB-refill handler for one miss."""


class InlineRefillClient:
    """Minimal stand-alone trap client (used when no kernel is attached).

    Emits a fixed handler body in kernel space: context save, page-table
    walk (one kernel-space load of the PTE), TLB write, and exception
    return.  The full kernel model in :mod:`repro.kernel.services`
    supersedes this with a richer, service-accounted handler.
    """

    PTE_BASE = KSEG_BASE + 0x0100_0000

    def utlb_handler(self, faulting_address: int) -> Iterable[Instruction]:
        pc = UTLB_HANDLER_PC
        pte_address = self.PTE_BASE + ((faulting_address >> 12) & 0xFFFF) * 8
        service = "utlb"
        body = [
            Instruction(pc=pc, op=OpClass.IALU, dest=26, srcs=(0,), service=service),
            Instruction(pc=pc + 4, op=OpClass.IALU, dest=27, srcs=(26,), service=service),
            Instruction(
                pc=pc + 8,
                op=OpClass.LOAD,
                dest=26,
                srcs=(27,),
                address=pte_address,
                size=8,
                service=service,
            ),
            Instruction(pc=pc + 12, op=OpClass.IALU, dest=27, srcs=(26,), service=service),
            Instruction(pc=pc + 16, op=OpClass.IALU, dest=26, srcs=(27,), service=service),
            Instruction(pc=pc + 20, op=OpClass.ERET, taken=True, target=0, service=service),
        ]
        return body
