"""Sampled execution tier: SMARTS-style periodic detailed sampling.

Out of every ``sample_period`` instructions of budget, the sampled tier
runs ``warmup + sample_window`` instructions on the *wrapped detailed
core* and fast-forwards the rest of the period by simply not consuming
them from the instruction stream — skipped instructions are never
generated, which is what makes the tier fast (instruction generation is
the dominant cost of a detailed mipsy run).

Semantics per period:

* **warmup** instructions run detailed but are discarded from the
  measurement.  Because the wrapped core's :class:`MemoryHierarchy` and
  :class:`BranchPredictor` persist across ``run()`` calls, the warmup
  re-trains that state after the fast-forward gap before measurement
  starts.
* **sample_window** instructions run detailed and are measured.
* the remaining ``period - warmup - window`` instructions are skipped.

The measured windows are merged and extrapolated to the full budget
with :meth:`RunStats.scaled`; a leftover budget smaller than ``warmup +
window`` is simply run detailed in full (small chunks degenerate to the
detailed tier, which keeps the error, not the speedup).
"""

from __future__ import annotations

from repro.config.system import FidelityConfig
from repro.cpu.runstats import RunStats


class SampledProcessor:
    """Periodic-sampling wrapper around a detailed CPU model.

    Same ``run(stream, *, max_instructions)`` contract as the cores it
    wraps; :attr:`stream_consumed` reports how many instructions were
    actually generated (warmup + measured), which the profiler uses to
    rescale kernel-invocation deltas.
    """

    def __init__(self, cpu, fidelity: FidelityConfig) -> None:
        self.cpu = cpu
        self.fidelity = fidelity
        self.stream_consumed = 0

    @property
    def hierarchy(self):
        return self.cpu.hierarchy

    @property
    def predictor(self):
        return getattr(self.cpu, "predictor", None)

    def _measured(self, stats: RunStats, snapshot: dict[str, int] | None) -> RunStats:
        """Replace cumulative predictor stats with this run's delta."""
        predictor = self.predictor
        if predictor is not None and snapshot is not None:
            stats.branch = predictor.stats.since(snapshot)
        return stats

    def run(
        self,
        stream,
        *,
        max_instructions: int | None = None,
    ) -> RunStats:
        cpu = self.cpu
        if max_instructions is None:
            # Unbounded streams (idle warm passes, service bodies) run
            # fully detailed: there is no budget to extrapolate to.
            stats = cpu.run(stream)
            self.stream_consumed = stats.instructions
            return stats

        fidelity = self.fidelity
        period = fidelity.sample_period
        warmup = fidelity.warmup
        window = fidelity.sample_window
        detailed_quota = warmup + window

        predictor = self.predictor
        consumed = 0
        measured_instructions = 0
        merged: RunStats | None = None
        remaining = max_instructions
        exhausted = False
        while remaining > 0 and not exhausted:
            budget = min(period, remaining)
            if budget <= detailed_quota:
                # Tail (or small chunk): no room to skip, run it all.
                snapshot = predictor.stats.snapshot() if predictor else None
                stats = self._measured(
                    cpu.run(stream, max_instructions=budget), snapshot
                )
                exhausted = stats.instructions < budget
            else:
                if warmup:
                    warm = cpu.run(stream, max_instructions=warmup)
                    consumed += warm.instructions
                    if warm.instructions < warmup:
                        break
                snapshot = predictor.stats.snapshot() if predictor else None
                stats = self._measured(
                    cpu.run(stream, max_instructions=window), snapshot
                )
                exhausted = stats.instructions < window
            consumed += stats.instructions
            measured_instructions += stats.instructions
            merged = stats if merged is None else merged.merged(stats)
            remaining -= budget
        self.stream_consumed = consumed
        if merged is None:
            return RunStats()
        represented = max_instructions - max(0, remaining)
        if exhausted:
            # The stream ended inside a measured window: nothing was
            # skipped after that point, so represent only what ran.
            represented = consumed
        if measured_instructions and represented > measured_instructions:
            return merged.scaled(represented / measured_instructions)
        return merged

    @property
    def stats(self) -> RunStats:
        """Statistics of the wrapped core's most recent run."""
        return self.cpu.stats
