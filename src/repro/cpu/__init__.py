"""CPU models: MXS (out-of-order superscalar) and Mipsy (in-order)."""

from repro.cpu.branch import BranchPredictor, BranchStats
from repro.cpu.interfaces import UTLB_HANDLER_PC, InlineRefillClient, TrapClient
from repro.cpu.mipsy import MipsyProcessor
from repro.cpu.mxs import MXSProcessor
from repro.cpu.runstats import LabelStats, RunStats

__all__ = [
    "BranchPredictor",
    "BranchStats",
    "UTLB_HANDLER_PC",
    "InlineRefillClient",
    "TrapClient",
    "MipsyProcessor",
    "MXSProcessor",
    "LabelStats",
    "RunStats",
]
