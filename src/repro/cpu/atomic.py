"""Atomic/functional execution tier (gem5's AtomicSimpleCPU analogue).

The detailed mipsy/mxs cores pay per-cycle (mxs) or closed-form
per-instruction (mipsy) pipeline accounting for every instruction of
every profiling chunk.  Measurement shows the *instruction generation*
itself — the synthetic-code generator plus kernel interleaving — costs
almost as much as detailed mipsy execution, so a tier that streams the
whole chunk functionally can never be much faster than detailed.  The
atomic tier therefore samples: it functionally executes only a leading
*slice* of each chunk (``max(ATOMIC_MIN_SLICE, chunk //
ATOMIC_SLICE_DIVISOR)`` instructions), then extrapolates every counter
and cycle total to the full chunk budget via :meth:`RunStats.scaled`.
The remaining instructions are never generated at all, which is where
the speedup comes from.

Within the slice the execution is honest:

* every fetch and data access goes through the *real*
  :class:`MemoryHierarchy` (so cache/TLB miss rates are measured, not
  assumed, and machine state carries across chunks and phases exactly
  like a detailed run),
* TLB misses trap into the real kernel ``utlb`` handler,
* the mxs flavour runs the real :class:`BranchPredictor`, and
* the op-mix counters (register file, ALUs, window, LSQ, ...) follow
  the same per-instruction bump rules as the detailed core of the same
  flavour.

What is *not* modelled is the per-cycle pipeline.  Cycle totals come
from an analytic model instead: the mipsy flavour re-uses mipsy's exact
closed-form per-instruction latency (so its only error versus detailed
mipsy is sampling error), while the mxs flavour advances float-valued
cursors for fetch/issue/commit bandwidth, functional-unit contention,
register dependences, and window occupancy — one pass, no per-cycle
tables.
"""

from __future__ import annotations

from repro.config.system import SystemConfig
from repro.cpu.branch import BranchPredictor
from repro.cpu.interfaces import InlineRefillClient, TrapClient
from repro.cpu.mipsy import TAKEN_BRANCH_BUBBLE, TRAP_ENTRY_PENALTY
from repro.cpu.mxs import (
    FRONT_END_DEPTH,
    TRAP_ENTRY_PENALTY as MXS_TRAP_ENTRY_PENALTY,
)
from repro.cpu.runstats import LabelStats, RunStats
from repro.isa.instruction import Instruction, OpClass
from repro.mem.hierarchy import MemoryHierarchy
from repro.stats.counters import AccessCounters

ATOMIC_SLICE_DIVISOR = 16
"""Fraction of each chunk that is functionally executed (1/16)."""

ATOMIC_MIN_SLICE = 150
"""Floor on the executed slice so tiny chunks keep a usable sample."""

ATOMIC_MXS_CYCLE_CALIBRATION = 0.58
"""Deflator applied to the mxs-flavour analytic cycle totals.

Sparse slicing trains the branch predictor and TLB on only 1/16 of the
stream, so the slice sees structurally colder predictors than a
detailed run — mispredict-driven fetch bubbles inflate the raw cursor
model's cycle count by a stable ~1.7x across the whole suite.  This
constant was calibrated against detailed mxs on the six SPEC JVM98
benchmarks (seed 1); the useful-commit share (``instr_cycles``) is
exact and left untouched, so only the stall share is deflated.
"""


class AtomicProcessor:
    """Functional streaming CPU model with analytic cycle accounting.

    Drop-in replacement for :class:`MipsyProcessor`/:class:`MXSProcessor`
    in the profiler: same constructor shape, same ``run(stream, *,
    max_instructions)`` contract, same :class:`RunStats` result.  After
    each run :attr:`stream_consumed` reports how many instructions were
    actually pulled from the stream (the slice), which the profiler
    uses to rescale kernel-invocation deltas.
    """

    def __init__(
        self,
        cpu_model: str,
        config: SystemConfig,
        hierarchy: MemoryHierarchy | None = None,
        trap_client: TrapClient | None = None,
    ) -> None:
        if cpu_model not in ("mxs", "mipsy"):
            raise ValueError(f"unknown CPU model flavour {cpu_model!r}")
        self.cpu_model = cpu_model
        self.config = config
        self.core = config.core
        self.hierarchy = (
            hierarchy
            if hierarchy is not None
            else MemoryHierarchy(config, AccessCounters())
        )
        self.trap_client: TrapClient = (
            trap_client if trap_client is not None else InlineRefillClient()
        )
        self.predictor = (
            BranchPredictor(config.core) if cpu_model == "mxs" else None
        )
        self._process = (
            self._process_mxs if cpu_model == "mxs" else self._process_mipsy
        )
        self.stream_consumed = 0
        self._reset_run_state()

    # ------------------------------------------------------------------
    # Run state
    # ------------------------------------------------------------------

    def _reset_run_state(self) -> None:
        core = self.core
        # Mipsy-flavour integer cycle counter.
        self._cycle = 0
        # MXS-flavour analytic cursors (all in fractional cycles).
        self._fetch_time = 0.0
        self._issue_free = 0.0
        self._int_free = 0.0
        self._fp_free = 0.0
        self._mem_free = 0.0
        self._imul_free = 0.0
        self._commit_free = 0.0
        self._last_commit = 0.0
        self._reg_ready: dict[int, float] = {}
        self._rob: list[float] = []
        self._rob_head = 0
        self._lsq: list[float] = []
        self._lsq_head = 0
        self._inv_fetch = 1.0 / core.fetch_width
        self._inv_issue = 1.0 / core.issue_width
        self._inv_commit = 1.0 / core.commit_width
        self._inv_int = 1.0 / core.int_alus
        self._inv_fp = 1.0 / core.fp_alus
        self._in_trap = False
        self._stats = RunStats()
        self._current_label: str | None = None
        self._label_stats: LabelStats = self._stats.label(None)
        self.hierarchy.counters = self._label_stats.counters
        if self.predictor is not None:
            self._branch_snapshot = self.predictor.stats.snapshot()

    def _switch_label(self, label: str | None) -> LabelStats:
        if label != self._current_label:
            self._current_label = label
            self._label_stats = self._stats.label(label)
            self.hierarchy.counters = self._label_stats.counters
        return self._label_stats

    # ------------------------------------------------------------------
    # Trap handling
    # ------------------------------------------------------------------

    def _take_utlb_trap(self, faulting_address: int) -> None:
        """Run the kernel utlb handler functionally, then refill."""
        if self._in_trap:
            raise RuntimeError(
                "nested TLB miss inside a trap handler: kernel-space code "
                "must not take TLB misses"
            )
        self._stats.traps += 1
        if self.cpu_model == "mipsy":
            self._cycle += TRAP_ENTRY_PENALTY
        else:
            drain = self._last_commit + MXS_TRAP_ENTRY_PENALTY
            if drain > self._fetch_time:
                self._fetch_time = drain
        self._in_trap = True
        outer_label = self._current_label
        try:
            for handler_instr in self.trap_client.utlb_handler(faulting_address):
                self._process(handler_instr)
        finally:
            self._in_trap = False
            self._switch_label(outer_label)
        self.hierarchy.tlb_refill(faulting_address)

    # ------------------------------------------------------------------
    # Mipsy flavour: exact closed-form in-order latency
    # ------------------------------------------------------------------

    def _process_mipsy(self, instr: Instruction) -> None:
        # Mirrors MipsyProcessor._process exactly — the single-issue
        # blocking-cache latency is already a closed form, so the only
        # atomic-tier error on mipsy is slice-sampling error.
        if instr.service != self._current_label:
            self._switch_label(instr.service)
        label_stats = self._label_stats
        counters = label_stats.counters
        start_cycle = self._cycle

        fetch_result = self.hierarchy.fetch(instr.pc)
        if fetch_result.tlb_miss:
            self._take_utlb_trap(instr.pc)
            label_stats = self._switch_label(instr.service)
            counters = label_stats.counters
            start_cycle = self._cycle
            fetch_result = self.hierarchy.fetch(instr.pc)
            if fetch_result.tlb_miss:
                raise RuntimeError(f"TLB refill for pc {instr.pc:#x} did not stick")
        self._cycle += 1 + fetch_result.latency

        op = instr.op
        extra = op.extra_latency
        if extra > 0:
            self._cycle += extra
        if op.is_mem:
            write = op is OpClass.STORE
            access = self.hierarchy.data_access(instr.address, write=write)
            if access.tlb_miss:
                self._take_utlb_trap(instr.address)
                label_stats = self._switch_label(instr.service)
                counters = label_stats.counters
                access = self.hierarchy.data_access(instr.address, write=write)
                if access.tlb_miss:
                    raise RuntimeError(
                        f"TLB refill for address {instr.address:#x} did not stick"
                    )
            if op is not OpClass.STORE:
                self._cycle += access.latency + self.config.l1d.latency_cycles
            if op is OpClass.LOAD:
                counters.loads += 1
            elif op is OpClass.STORE:
                counters.stores += 1

        if op is OpClass.BRANCH:
            counters.branches += 1
        if op.is_ctrl and instr.taken:
            self._cycle += TAKEN_BRANCH_BUBBLE

        counters.regfile_read += len(instr.srcs)
        if op is OpClass.IMUL:
            counters.imul_access += 1
        elif op is OpClass.FMUL:
            counters.fmul_access += 1
        elif op.is_float:
            counters.falu_access += 1
        else:
            counters.ialu_access += 1
        if instr.dest:
            counters.regfile_write += 1
            counters.resultbus_access += 1

        gap = self._cycle - start_cycle
        label_stats.cycles += gap
        label_stats.instructions += 1
        label_stats.instr_cycles += 1.0
        label_stats.stall_cycles += gap - 1.0
        self._stats.instructions += 1

    # ------------------------------------------------------------------
    # MXS flavour: one-pass analytic out-of-order model
    # ------------------------------------------------------------------

    def _process_mxs(self, instr: Instruction) -> None:
        # Same counter-bump rules and structural constraints as
        # MXSProcessor._process, but bandwidth and contention are
        # approximated by fractional-cycle cursors instead of per-cycle
        # reservation tables — no window walk, no issue-table scan.
        core = self.core
        if instr.service != self._current_label:
            self._switch_label(instr.service)
        label_stats = self._label_stats
        counters = label_stats.counters
        pc = instr.pc

        fetch_result = self.hierarchy.fetch(pc)
        if fetch_result.tlb_miss:
            self._take_utlb_trap(pc)
            label_stats = self._switch_label(instr.service)
            counters = label_stats.counters
            fetch_result = self.hierarchy.fetch(pc)
            if fetch_result.tlb_miss:
                raise RuntimeError(f"TLB refill for pc {pc:#x} did not stick")
        fetch_time = self._fetch_time
        if fetch_result.latency:
            # Blocking I-cache miss: the whole front end waits.
            fetch_time += fetch_result.latency
        fetch_time += self._inv_fetch

        op = instr.op

        mispredicted = False
        if op.is_ctrl:
            counters.bpred_access += 1
            if op is OpClass.CALL or op is OpClass.RETURN:
                counters.ras_access += 1
            if op is not OpClass.BRANCH or instr.taken:
                counters.btb_access += 1
            correct = self.predictor.predict(instr)
            if op is OpClass.BRANCH:
                counters.branches += 1
                if not correct:
                    counters.branch_mispredicts += 1
            mispredicted = not correct
            if correct and instr.taken:
                # Correctly-predicted taken branch still ends the group.
                fetch_time = float(int(fetch_time)) + 1.0

        dispatch = fetch_time + FRONT_END_DEPTH
        rob = self._rob
        if len(rob) - self._rob_head >= core.window_size:
            oldest = rob[self._rob_head]
            self._rob_head += 1
            if self._rob_head > 4096:
                del rob[: self._rob_head]
                self._rob_head = 0
            if oldest + 1.0 > dispatch:
                dispatch = oldest + 1.0
        is_mem = op.is_mem
        if is_mem:
            lsq = self._lsq
            if len(lsq) - self._lsq_head >= core.lsq_size:
                oldest_mem = lsq[self._lsq_head]
                self._lsq_head += 1
                if self._lsq_head > 4096:
                    del lsq[: self._lsq_head]
                    self._lsq_head = 0
                if oldest_mem + 1.0 > dispatch:
                    dispatch = oldest_mem + 1.0
        srcs = instr.srcs
        counters.rename_access += 1
        counters.window_dispatch += 1
        counters.rob_access += 1
        counters.regfile_read += len(srcs)

        ready = dispatch
        reg_ready = self._reg_ready
        for src in srcs:
            if src:
                producer = reg_ready.get(src, 0.0)
                if producer > ready:
                    ready = producer

        # Issue: shared issue bandwidth plus per-class unit throughput,
        # both modelled as next-free-time cursors.
        if is_mem:
            unit_free, unit_step = self._mem_free, 1.0
        elif op is OpClass.IMUL:
            unit_free, unit_step = self._imul_free, 1.0
        elif op.is_float:
            unit_free, unit_step = self._fp_free, self._inv_fp
        else:
            unit_free, unit_step = self._int_free, self._inv_int
        issue = ready
        if unit_free > issue:
            issue = unit_free
        if self._issue_free > issue:
            issue = self._issue_free
        next_unit_free = issue + unit_step
        if is_mem:
            self._mem_free = next_unit_free
        elif op is OpClass.IMUL:
            self._imul_free = next_unit_free
        elif op.is_float:
            self._fp_free = next_unit_free
        else:
            self._int_free = next_unit_free
        self._issue_free = issue + self._inv_issue

        counters.window_issue += 1
        latency = op.latency
        complete = issue + latency
        if is_mem:
            counters.lsq_access += 1
            address = instr.address
            write = op is OpClass.STORE
            access = self.hierarchy.data_access(address, write=write)
            if access.tlb_miss:
                self._fetch_time = fetch_time
                self._take_utlb_trap(address)
                label_stats = self._switch_label(instr.service)
                counters = label_stats.counters
                access = self.hierarchy.data_access(address, write=write)
                if access.tlb_miss:
                    raise RuntimeError(
                        f"TLB refill for address {address:#x} did not stick"
                    )
                complete = (
                    self._last_commit
                    + latency
                    + access.latency
                    + self.config.l1d.latency_cycles
                )
                fetch_time = self._fetch_time
            elif not write:
                # Loads see the pipelined L1 latency even on a hit.
                complete = (
                    issue + latency + access.latency + self.config.l1d.latency_cycles
                )
            if op is OpClass.LOAD:
                counters.loads += 1
            elif write:
                counters.stores += 1

        if op is OpClass.IMUL:
            counters.imul_access += 1
        elif op is OpClass.FMUL:
            counters.fmul_access += 1
        elif op.is_float:
            counters.falu_access += 1
        elif not is_mem:
            counters.ialu_access += 1

        dest = instr.dest
        if dest:
            reg_ready[dest] = complete
            counters.regfile_write += 1
            counters.resultbus_access += 1
            counters.window_wakeup += 1

        # In-order commit at commit_width per cycle.
        commit = self._commit_free + self._inv_commit
        earliest = complete + 1.0
        if earliest > commit:
            commit = earliest
        self._commit_free = commit
        counters.rob_access += 1
        rob.append(commit)
        if is_mem:
            self._lsq.append(commit)

        if mispredicted:
            redirect = complete + core.branch_mispredict_penalty
            if redirect > fetch_time:
                wrong_path_cycles = redirect - fetch_time - 1.0
                if wrong_path_cycles < 0.0:
                    wrong_path_cycles = 0.0
                counters.l1i_access += min(
                    int(wrong_path_cycles * core.fetch_width * 0.9),
                    4 * core.fetch_width,
                )
                fetch_time = redirect
        elif op is OpClass.SYSCALL or op is OpClass.ERET:
            # Serialising instructions restart fetch after they commit.
            if commit + 1.0 > fetch_time:
                fetch_time = commit + 1.0

        self._fetch_time = fetch_time

        gap = commit - self._last_commit
        self._last_commit = commit
        useful = self._inv_commit
        label_stats.cycles += gap
        label_stats.instructions += 1
        if gap >= useful:
            label_stats.instr_cycles += useful
            label_stats.stall_cycles += gap - useful
        else:
            label_stats.instr_cycles += gap
        self._stats.instructions += 1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        stream,
        *,
        max_instructions: int | None = None,
    ) -> RunStats:
        """Execute a slice of ``stream`` and extrapolate to the budget.

        Without ``max_instructions`` the entire stream is executed
        functionally (no extrapolation).  With a budget, only the
        leading slice is pulled from the stream; the returned RunStats
        is scaled so cycle totals, counters, and trap counts represent
        the full budget.  Handler instructions injected by traps do not
        count against the slice, mirroring the detailed cores.
        """
        self._reset_run_state()
        process = self._process
        executed = 0
        if max_instructions is None:
            for instr in stream:
                process(instr)
                executed += 1
            budget = executed
        else:
            budget = max_instructions
            slice_n = min(
                budget, max(ATOMIC_MIN_SLICE, budget // ATOMIC_SLICE_DIVISOR)
            )
            iterator = iter(stream)
            while executed < slice_n:
                instr = next(iterator, None)
                if instr is None:
                    break
                process(instr)
                executed += 1
        self.stream_consumed = executed
        stats = self._stats
        if self.cpu_model == "mipsy":
            stats.cycles = self._cycle
        else:
            calibration = ATOMIC_MXS_CYCLE_CALIBRATION
            stats.cycles = round(self._last_commit * calibration)
            for bucket in stats.labels.values():
                bucket.cycles *= calibration
                stall = bucket.cycles - bucket.instr_cycles
                bucket.stall_cycles = stall if stall > 0.0 else 0.0
            stats.branch = self.predictor.stats.since(self._branch_snapshot)
        if executed and budget > executed:
            stats = stats.scaled(budget / executed)
            self._stats = stats
        return stats

    @property
    def stats(self) -> RunStats:
        """Statistics of the current/most recent run."""
        return self._stats
