"""Branch prediction: 2-bit BHT, BTB, and return-address stack.

Table 1 specifies a 1024-entry branch history table, a 1024-entry
branch target address table, and a 32-entry return address stack.  The
BHT uses the classic 2-bit saturating counters; the BTB is direct
mapped on the branch PC.  Kernel code's worse prediction accuracy
relative to user code (Section 3.2) emerges from its larger fraction of
data-dependent branches.
"""

from __future__ import annotations

import dataclasses

from repro.config.system import CoreConfig
from repro.isa.instruction import Instruction, OpClass


@dataclasses.dataclass(slots=True)
class BranchStats:
    """Prediction accuracy statistics."""

    conditional: int = 0
    conditional_mispredicts: int = 0
    targets: int = 0
    target_mispredicts: int = 0
    returns: int = 0
    return_mispredicts: int = 0

    @property
    def total(self) -> int:
        """All predicted control transfers."""
        return self.conditional + self.targets + self.returns

    @property
    def mispredicts(self) -> int:
        """All mispredictions."""
        return (
            self.conditional_mispredicts
            + self.target_mispredicts
            + self.return_mispredicts
        )

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (1.0 when nothing predicted)."""
        if self.total == 0:
            return 1.0
        return 1.0 - self.mispredicts / self.total

    def snapshot(self) -> dict[str, int]:
        """Current field values (for interval deltas)."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(BranchStats)
        }

    def since(self, snapshot: dict[str, int]) -> "BranchStats":
        """A new BranchStats covering only the events after ``snapshot``.

        The predictor accumulates into one live :class:`BranchStats`
        across every ``run()`` call; the sub-detailed tiers need per-run
        deltas so extrapolation does not double-count earlier runs.
        """
        delta = BranchStats()
        for field in dataclasses.fields(BranchStats):
            setattr(
                delta, field.name,
                getattr(self, field.name) - snapshot[field.name],
            )
        return delta


class BranchPredictor:
    """2-bit BHT + direct-mapped BTB + return-address stack."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.stats = BranchStats()
        # 2-bit counters initialised weakly taken (2).
        self._bht = [2] * config.bht_entries
        self._btb: list[tuple[int, int] | None] = [None] * config.btb_entries
        self._ras: list[int] = []

    def _bht_index(self, pc: int) -> int:
        return (pc >> 2) % len(self._bht)

    def _btb_index(self, pc: int) -> int:
        return (pc >> 2) % len(self._btb)

    def predict(self, instr: Instruction) -> bool:
        """Predict ``instr``; returns True iff the prediction was correct.

        Updates predictor state with the resolved outcome (the timing
        model charges the misprediction penalty; training here is
        immediate, the standard trace-driven simplification).
        """
        op = instr.op
        if op is OpClass.BRANCH:
            return self._predict_conditional(instr)
        if op is OpClass.CALL:
            self._push_return(instr.fall_through)
            return self._predict_target(instr)
        if op is OpClass.RETURN:
            return self._predict_return(instr)
        if op is OpClass.JUMP:
            return self._predict_target(instr)
        if op in (OpClass.SYSCALL, OpClass.ERET):
            # Serialising control flow; never speculated past.
            return True
        raise ValueError(f"{op} is not a control operation")

    # ------------------------------------------------------------------
    # Conditional branches
    # ------------------------------------------------------------------

    def _predict_conditional(self, instr: Instruction) -> bool:
        index = self._bht_index(instr.pc)
        counter = self._bht[index]
        predicted_taken = counter >= 2
        # Train the 2-bit counter toward the outcome.
        if instr.taken:
            self._bht[index] = min(3, counter + 1)
        else:
            self._bht[index] = max(0, counter - 1)
        self.stats.conditional += 1
        correct = predicted_taken == instr.taken
        if correct and instr.taken:
            # Direction right; the target must also come from the BTB.
            correct = self._btb_lookup_and_train(instr)
        elif instr.taken:
            self._btb_train(instr)
        if not correct:
            self.stats.conditional_mispredicts += 1
        return correct

    # ------------------------------------------------------------------
    # Direct jumps and calls
    # ------------------------------------------------------------------

    def _predict_target(self, instr: Instruction) -> bool:
        self.stats.targets += 1
        correct = self._btb_lookup_and_train(instr)
        if not correct:
            self.stats.target_mispredicts += 1
        return correct

    def _btb_lookup_and_train(self, instr: Instruction) -> bool:
        index = self._btb_index(instr.pc)
        entry = self._btb[index]
        hit = entry is not None and entry[0] == instr.pc and entry[1] == instr.target
        self._btb[index] = (instr.pc, instr.target)
        return hit

    def _btb_train(self, instr: Instruction) -> None:
        self._btb[self._btb_index(instr.pc)] = (instr.pc, instr.target)

    # ------------------------------------------------------------------
    # Returns
    # ------------------------------------------------------------------

    def _push_return(self, return_pc: int) -> None:
        if len(self._ras) >= self.config.ras_entries:
            del self._ras[0]
        self._ras.append(return_pc)

    def _predict_return(self, instr: Instruction) -> bool:
        self.stats.returns += 1
        predicted = self._ras.pop() if self._ras else None
        correct = predicted == instr.target
        if not correct:
            self.stats.return_mispredicts += 1
        return correct

    def flush_ras(self) -> None:
        """Clear the return-address stack (trap entry)."""
        self._ras.clear()
