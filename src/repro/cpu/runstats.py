"""Run statistics shared by the CPU models.

A run produces total cycle/instruction counts plus a per-*label*
decomposition, where a label is the kernel-service name carried by each
instruction (``None`` for user code).  This is the raw material for the
paper's mode and service accounting: the timeline and report layers map
labels onto the four software modes (user / kernel / sync / idle) and
onto the named kernel services of Section 3.3.
"""

from __future__ import annotations

import dataclasses

from repro.cpu.branch import BranchStats
from repro.stats.counters import COUNTER_FIELDS, AccessCounters

USER_LABEL: str | None = None
"""Label carried by user-mode instructions."""


@dataclasses.dataclass(slots=True)
class LabelStats:
    """Per-label (per-service) accounting."""

    cycles: float = 0.0
    instr_cycles: float = 0.0
    """Cycles attributable to useful commit bandwidth."""
    stall_cycles: float = 0.0
    """Cycles the commit stage waited (miss/dependence/mispredict)."""
    instructions: int = 0
    counters: AccessCounters = dataclasses.field(default_factory=AccessCounters)

    @property
    def ipc(self) -> float:
        """Instructions per cycle within this label (0.0 when empty)."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles


@dataclasses.dataclass(slots=True)
class RunStats:
    """Results of one detailed CPU simulation."""

    cycles: int = 0
    instructions: int = 0
    labels: dict[str | None, LabelStats] = dataclasses.field(default_factory=dict)
    branch: BranchStats = dataclasses.field(default_factory=BranchStats)
    traps: int = 0
    """Number of TLB-miss traps taken (software-managed TLB)."""

    def label(self, name: str | None) -> LabelStats:
        """The stats bucket for ``name``, created on demand."""
        bucket = self.labels.get(name)
        if bucket is None:
            bucket = LabelStats()
            self.labels[name] = bucket
        return bucket

    @property
    def ipc(self) -> float:
        """Whole-run instructions per cycle (0.0 when empty)."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    def total_counters(self) -> AccessCounters:
        """Sum of all labels' counters."""
        total = AccessCounters()
        for stats in self.labels.values():
            total.add(stats.counters)
        return total

    def merged(self, other: "RunStats") -> "RunStats":
        """A new RunStats combining this run and ``other``."""
        result = RunStats(
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            traps=self.traps + other.traps,
        )
        for source in (self, other):
            for name, stats in source.labels.items():
                bucket = result.label(name)
                bucket.cycles += stats.cycles
                bucket.instr_cycles += stats.instr_cycles
                bucket.stall_cycles += stats.stall_cycles
                bucket.instructions += stats.instructions
                bucket.counters.add(stats.counters)
        for field in dataclasses.fields(BranchStats):
            setattr(
                result.branch,
                field.name,
                getattr(self.branch, field.name) + getattr(other.branch, field.name),
            )
        return result

    def scaled(self, factor: float) -> "RunStats":
        """A new RunStats extrapolated by ``factor`` (>= 0).

        Used by the sub-detailed fidelity tiers to blow a measured
        sample up to the instruction budget it represents.  Integer
        quantities (instruction counts, event counters, traps, branch
        outcomes, total cycles) are rounded so the result encodes and
        caches exactly like a detailed run; the per-label cycle floats
        scale exactly.
        """
        if factor < 0:
            raise ValueError(f"scale factor cannot be negative, got {factor}")
        result = RunStats(
            cycles=round(self.cycles * factor),
            instructions=round(self.instructions * factor),
            traps=round(self.traps * factor),
        )
        for name, stats in self.labels.items():
            bucket = result.label(name)
            bucket.cycles = stats.cycles * factor
            bucket.instr_cycles = stats.instr_cycles * factor
            bucket.stall_cycles = stats.stall_cycles * factor
            bucket.instructions = round(stats.instructions * factor)
            for field in COUNTER_FIELDS:
                value = getattr(stats.counters, field)
                if value:
                    setattr(bucket.counters, field, round(value * factor))
        for field in dataclasses.fields(BranchStats):
            setattr(
                result.branch, field.name,
                round(getattr(self.branch, field.name) * factor),
            )
        return result
