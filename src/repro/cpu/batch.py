"""Batched structure-of-arrays execution engine for Mipsy.

Advances many independent Mipsy runs in lockstep: one batch axis over
(benchmark, seed, structural configuration), instruction streams
pre-decoded into fixed-order SoA numpy arrays, per-label counters as
2-D float64 arrays, and per-run active masks so runs that finish or
trap drop out of the fused operations without breaking lockstep
(DESIGN.md §10).

The engine is bit-identical to the scalar
:class:`~repro.cpu.mipsy.MipsyProcessor` driven by
:meth:`~repro.core.profiles.Profiler.profile_benchmark`:

* **Decode** replays the exact generation protocol (kernel, file-cache
  warming, per-phase generators and workload interleavers, per-chunk
  pull-and-drop) *without* a CPU, recording every executed instruction
  into SoA arrays plus the side-band events that depend only on
  generation order (service first-invocation pulls, cacheflush
  events).  Generation is configuration-independent except for the
  cacheflush sweep length, so lanes that share L1 geometry share one
  decoded stream.
* **Execute** advances every lane one instruction per step.  Cache and
  TLB state live in stamp-LRU arrays (``[lanes, sets, ways]``); the
  monotone stamp order reproduces the ordered-dict recency order of the
  scalar models exactly.  TLB-miss traps redirect a lane into a 48-row
  ``utlb`` handler template appended to the instruction arena, with the
  precise abort/redo (fetch trap) and partial-gap/resume (data trap)
  semantics of the scalar model.
* **Materialise** rebuilds per-chunk :class:`RunStats` with the exact
  label-dict insertion order (first-appearance order, with ``utlb``
  entering immediately after the first faulting instruction's label)
  and per-phase invocation dicts in the kernel's first-count order —
  the timeline aggregation is order-sensitive, so dict order is part of
  bit-identity.

``REPRO_PURE_PYTHON=1`` (or a missing numpy) disables the engine;
callers fall back to the scalar path.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Sequence

from repro.config.system import SystemConfig
from repro.core.profiles import (
    BenchmarkProfile,
    IdleProfile,
    PhaseProfile,
    Profiler,
)
from repro.cpu.mipsy import TAKEN_BRANCH_BUBBLE, TRAP_ENTRY_PENALTY
from repro.cpu.runstats import LabelStats, RunStats
from repro.isa.generators import SyntheticCodeGenerator
from repro.isa.instruction import OpClass
from repro.kernel.kernel import Kernel
from repro.kernel.scheduler import InterleavedWorkload
from repro.kernel.services import KernelServices, PTE_TABLE_BASE
from repro.mem.hierarchy import KSEG_BASE
from repro.stats.counters import COUNTER_FIELDS, COUNTER_INDEX
from repro.workloads.specjvm98 import BenchmarkSpec

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

PURE_PYTHON_ENV = "REPRO_PURE_PYTHON"

BATCH_MIN_RUNS = 24
"""Fallback lockstep breakeven: below this many uncached runs the
per-step numpy call overhead outweighs the batching win and callers
keep the scalar path (measured ~1.1x at 24 lanes, 1.7x at 48, 4x at
144 on a 1-core host; see ``scripts/bench.py`` ``batched_suite``).
Callers should prefer :func:`batch_min_runs`, which substitutes the
machine's own measured breakeven when bench data is available."""

BENCH_FILE_ENV = "REPRO_BENCH_FILE"
MIN_RUNS_ENV = "REPRO_BATCH_MIN_RUNS"
_MIN_RUNS_FLOOR = 4
_MIN_RUNS_CEIL = 512
_calibrated_min_runs: int | None = None


def _bench_candidates() -> list[str]:
    explicit = os.environ.get(BENCH_FILE_ENV)
    if explicit:
        return [explicit]
    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return [
        os.path.join(os.getcwd(), "BENCH_profiling.json"),
        os.path.join(repo_root, "BENCH_profiling.json"),
    ]


def batch_min_runs(*, refresh: bool = False) -> int:
    """Serial-vs-batched breakeven lane count.

    Resolution order: the ``REPRO_BATCH_MIN_RUNS`` environment variable,
    then the ``calibrated_min_runs`` figure the ``batched_suite`` bench
    stage fits from this machine's own measurements (two batched arms at
    different lane counts give the fixed per-step overhead and the
    per-lane cost; the breakeven is where the serial line crosses that
    fit), then :data:`BATCH_MIN_RUNS`.  The choice only selects serial
    vs lockstep execution — outputs are bit-identical either way.
    """
    global _calibrated_min_runs
    env = os.environ.get(MIN_RUNS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    if _calibrated_min_runs is not None and not refresh:
        return _calibrated_min_runs
    value = BATCH_MIN_RUNS
    for path in _bench_candidates():
        try:
            with open(path) as handle:
                stage = json.load(handle).get("batched_suite", {})
            fitted = stage.get("calibrated_min_runs")
            if isinstance(fitted, int) and fitted > 0:
                value = min(max(fitted, _MIN_RUNS_FLOOR), _MIN_RUNS_CEIL)
                break
        except (OSError, ValueError):
            continue
    _calibrated_min_runs = value
    return value

_NCOUNTERS = len(COUNTER_FIELDS)
_COL_CYC = _NCOUNTERS
_COL_INS = _NCOUNTERS + 1
_NCOLS = _NCOUNTERS + 2

_C_L1I_ACC = COUNTER_INDEX["l1i_access"]
_C_L1I_MISS = COUNTER_INDEX["l1i_miss"]
_C_L1D_ACC = COUNTER_INDEX["l1d_access"]
_C_L1D_MISS = COUNTER_INDEX["l1d_miss"]
_C_L2I = COUNTER_INDEX["l2i_access"]
_C_L2D = COUNTER_INDEX["l2d_access"]
_C_L2_MISS = COUNTER_INDEX["l2_miss"]
_C_MEM = COUNTER_INDEX["mem_access"]
_C_TLB_ACC = COUNTER_INDEX["tlb_access"]
_C_TLB_MISS = COUNTER_INDEX["tlb_miss"]

_HANDLER_LEN = 48
_HANDLER_LOAD_OFFSET = 22


def batched_execution() -> bool:
    """True when the batched SoA engine may be used.

    Mirrors the timeline's vectorization gate: numpy must be importable
    and ``REPRO_PURE_PYTHON`` must be unset/"0"/"" — the scalar path is
    the reference and stays selectable for verification.
    """
    if _np is None:
        return False
    return os.environ.get(PURE_PYTHON_ENV, "0") in ("", "0")


@dataclasses.dataclass(frozen=True)
class BatchTask:
    """One lane of a batched profile: a (spec, config) pair plus the
    profiling parameters of the :class:`Profiler` it replaces."""

    spec: BenchmarkSpec
    config: SystemConfig
    window_instructions: int = 60_000
    startup_chunks: int = 4
    steady_chunks: int = 2
    seed: int = 0


# ---------------------------------------------------------------------------
# Decode: replay the generation protocol, pack SoA arrays
# ---------------------------------------------------------------------------


class _FlushRecorder:
    """Stands in for the MemoryHierarchy during decode.

    The kernel only touches the hierarchy through
    ``services.cacheflush``, which calls ``flush_caches()`` while the
    consumer pulls the sweep's final ERET — so a flush event's position
    in the pull order fully determines when the architectural flush
    applies.
    """

    def __init__(self) -> None:
        self.fired = 0

    def flush_caches(self) -> int:
        self.fired += 1
        return 0


@dataclasses.dataclass
class _PhaseMeta:
    phase: object
    chunk_ids: list[int]
    chunk_lengths: list[int]
    end_pull: int
    snapshot: dict[str, int]


class _DecodedStream:
    """One benchmark's executed-instruction arena plus side-band events.

    Shared by every lane whose generation is identical: same spec,
    profiler parameters, and L1 cache geometry (the cacheflush sweep is
    the only configuration-dependent part of generation).
    """

    def __init__(self, task: BatchTask) -> None:
        spec = task.spec
        self.spec = spec
        self.window_instructions = task.window_instructions
        self.startup_chunks = task.startup_chunks
        self.steady_chunks = task.steady_chunks
        self.seed = task.seed
        cfg = task.config
        self.geometry_key = (
            cfg.l1i.num_lines,
            cfg.l1d.num_lines,
            cfg.l1i.line_bytes,
        )

        self._labels: dict[str | None, int] = {None: 0}
        self.label_names: list[str | None] = [None]
        self._classes: dict[tuple, int] = {}
        self._class_rows: list[tuple] = []

        cls_l: list[int] = []
        pc_l: list[int] = []
        addr_l: list[int] = []
        label_l: list[int] = []
        chunk_l: list[int] = []
        pull_l: list[int] = []

        recorder = _FlushRecorder()
        kernel = Kernel(cfg, recorder, seed=spec.seed ^ task.seed)
        for file_id in range(8):
            kernel.file_cache.warm(file_id, 512 * 1024)

        self.svc_events: list[tuple[int, str]] = []
        self.flush_events: list[int] = []
        self.phase_meta: list[_PhaseMeta] = []

        known_services = 0
        invocations = kernel.invocations
        pull = 0
        chunk_id = 0
        # Per-chunk first-appearance order of labels, as (local executed
        # index, label id) pairs — the scalar label-dict insertion order.
        self.chunk_first: list[list[tuple[int, int]]] = []

        classes = self._classes
        class_of = self._class_of
        label_of = self._label_of

        for phase in spec.phases.phases:
            chunk_count = (
                task.startup_chunks if phase.cold_caches else task.steady_chunks
            )
            instructions = max(
                2000, int(task.window_instructions * phase.compute_fraction)
            )
            generator = SyntheticCodeGenerator(
                phase.signature, seed=spec.seed ^ task.seed
            )
            workload = InterleavedWorkload(
                generator,
                kernel,
                service_rates=phase.service_rates,
                syscalls=phase.syscalls,
                sync_mean_gap=phase.sync_mean_gap,
                seed=spec.seed ^ task.seed ^ 0xF00D,
            )
            stream = iter(workload)
            per_chunk = max(500, instructions // chunk_count)
            chunk_ids: list[int] = []
            chunk_lengths: list[int] = []
            for _ in range(chunk_count):
                first_seen: dict[int, int] = {}
                executed = 0
                for i in range(per_chunk + 1):
                    pull += 1
                    try:
                        instr = next(stream)
                    except StopIteration:  # pragma: no cover - streams are infinite
                        pull -= 1
                        break
                    if len(invocations) != known_services:
                        known_services = self._note_new_services(
                            invocations, known_services, pull
                        )
                    if recorder.fired:
                        for _f in range(recorder.fired):
                            self.flush_events.append(len(cls_l))
                        recorder.fired = 0
                    if i >= per_chunk:
                        break
                    op = instr.op
                    key = (
                        instr.pc < KSEG_BASE,
                        op.is_mem,
                        op is OpClass.STORE,
                        op is OpClass.LOAD,
                        op is OpClass.BRANCH,
                        op.is_ctrl and instr.taken,
                        len(instr.srcs),
                        bool(instr.dest),
                        op,
                        op.is_mem and instr.address < KSEG_BASE,
                    )
                    cid = classes.get(key)
                    if cid is None:
                        cid = class_of(key)
                    lid = label_of(instr.service)
                    local = executed
                    if lid not in first_seen:
                        first_seen[lid] = local
                    cls_l.append(cid)
                    pc_l.append(instr.pc)
                    addr_l.append(instr.address)
                    label_l.append(lid)
                    chunk_l.append(chunk_id)
                    pull_l.append(pull)
                    executed += 1
                order = sorted((pos, lid) for lid, pos in first_seen.items())
                self.chunk_first.append(order)
                chunk_ids.append(chunk_id)
                chunk_lengths.append(executed)
                chunk_id += 1
            self.phase_meta.append(
                _PhaseMeta(
                    phase=phase,
                    chunk_ids=chunk_ids,
                    chunk_lengths=chunk_lengths,
                    end_pull=pull,
                    snapshot=dict(invocations),
                )
            )

        self.n_executed = len(cls_l)
        self.n_chunks = chunk_id
        self.utlb_label = label_of("utlb")
        # Starting executed index of each chunk (for chunk-local label
        # positions during materialisation).
        self.chunk_start: list[int] = []
        total = 0
        for meta in self.phase_meta:
            for length in meta.chunk_lengths:
                self.chunk_start.append(total)
                total += length

        # Append the 48-row utlb handler template.  Only the PTE load's
        # address varies per trap; it is overridden per-lane at runtime.
        for hi, instr in enumerate(KernelServices._build_utlb(PTE_TABLE_BASE)):
            op = instr.op
            key = (
                instr.pc < KSEG_BASE,
                op.is_mem,
                op is OpClass.STORE,
                op is OpClass.LOAD,
                op is OpClass.BRANCH,
                op.is_ctrl and instr.taken,
                len(instr.srcs),
                bool(instr.dest),
                op,
                op.is_mem and instr.address < KSEG_BASE,
            )
            cid = classes.get(key)
            if cid is None:
                cid = class_of(key)
            cls_l.append(cid)
            pc_l.append(instr.pc)
            addr_l.append(instr.address)
            label_l.append(self.utlb_label)
            chunk_l.append(-1)
            pull_l.append(-1)
        if len(cls_l) - self.n_executed != _HANDLER_LEN:  # pragma: no cover
            raise RuntimeError("unexpected utlb handler length")

        self.cls = _np.asarray(cls_l, dtype=_np.int64)
        self.pc = _np.asarray(pc_l, dtype=_np.int64)
        self.addr = _np.asarray(addr_l, dtype=_np.int64)
        self.label = _np.asarray(label_l, dtype=_np.int64)
        self.chunk_of = _np.asarray(chunk_l, dtype=_np.int64)
        self.pull_of = _np.asarray(pull_l, dtype=_np.int64)
        self.n_labels = len(self.label_names)

        # Per-class static vectors (see module docstring): the fetch
        # part applies on every (re)fetch, the post part at completion;
        # cycle components are kept separate because resume semantics
        # rebuild the gap from the saved partial value.
        nk = len(self._class_rows)
        self.tab_fetch = _np.zeros((nk, _NCOLS), dtype=_np.float64)
        self.tab_post = _np.zeros((nk, _NCOLS), dtype=_np.float64)
        self.static_cycles = _np.zeros(nk, dtype=_np.int64)
        self.base_cycles = _np.zeros(nk, dtype=_np.int64)
        self.is_mem_cls = _np.zeros(nk, dtype=bool)
        self.is_store_cls = _np.zeros(nk, dtype=bool)
        for cid, key in enumerate(self._class_rows):
            (pc_user, is_mem, is_store, is_load, is_branch,
             taken_ctrl, n_srcs, has_dest, op, addr_user) = key
            fetch = self.tab_fetch[cid]
            post = self.tab_post[cid]
            if pc_user:
                fetch[_C_TLB_ACC] = 1
            fetch[_C_L1I_ACC] = 1
            if is_mem:
                post[_C_L1D_ACC] = 1
                if addr_user:
                    post[_C_TLB_ACC] = 1
            if is_load:
                post[COUNTER_INDEX["loads"]] = 1
            elif is_store:
                post[COUNTER_INDEX["stores"]] = 1
            if is_branch:
                post[COUNTER_INDEX["branches"]] = 1
            post[COUNTER_INDEX["regfile_read"]] = n_srcs
            if op is OpClass.IMUL:
                post[COUNTER_INDEX["imul_access"]] = 1
            elif op is OpClass.FMUL:
                post[COUNTER_INDEX["fmul_access"]] = 1
            elif op.is_float:
                post[COUNTER_INDEX["falu_access"]] = 1
            else:
                post[COUNTER_INDEX["ialu_access"]] = 1
            if has_dest:
                post[COUNTER_INDEX["regfile_write"]] = 1
                post[COUNTER_INDEX["resultbus_access"]] = 1
            post[_COL_INS] = 1
            extra = op.extra_latency
            self.base_cycles[cid] = 1 + extra
            self.static_cycles[cid] = (
                1 + extra + (TAKEN_BRANCH_BUBBLE if taken_ctrl else 0)
            )
            self.is_mem_cls[cid] = is_mem
            self.is_store_cls[cid] = is_store
        self.tab_full = self.tab_fetch + self.tab_post

    def _note_new_services(
        self, invocations: dict[str, int], known: int, pull: int
    ) -> int:
        names = list(invocations)
        for name in names[known:]:
            self.svc_events.append((pull, name))
        return len(names)

    def _label_of(self, name: str | None) -> int:
        lid = self._labels.get(name)
        if lid is None:
            lid = len(self.label_names)
            self._labels[name] = lid
            self.label_names.append(name)
        return lid

    def _class_of(self, key: tuple) -> int:
        cid = len(self._class_rows)
        self._classes[key] = cid
        self._class_rows.append(key)
        return cid

    def matches(self, task: BatchTask) -> bool:
        cfg = task.config
        return (
            self.spec == task.spec
            and self.window_instructions == task.window_instructions
            and self.startup_chunks == task.startup_chunks
            and self.steady_chunks == task.steady_chunks
            and self.seed == task.seed
            and self.geometry_key
            == (cfg.l1i.num_lines, cfg.l1d.num_lines, cfg.l1i.line_bytes)
        )


# ---------------------------------------------------------------------------
# Batched stamp-LRU cache and TLB state
# ---------------------------------------------------------------------------


class _BatchedCaches:
    """Set-associative caches for all lanes of one level.

    ``tags`` is -1 for an invalid way and -2 for a way beyond a lane's
    associativity (never free, never a victim).  Monotone stamps
    reproduce the ordered-dict LRU order of :class:`repro.mem.cache.Cache`
    exactly: a hit re-stamps (recency move), the victim is the
    minimum-stamp valid way, eviction happens only when no way is free.
    """

    def __init__(self, configs) -> None:
        lanes = len(configs)
        self.offset_bits = _np.array(
            [c.line_bytes.bit_length() - 1 for c in configs], dtype=_np.int64
        )
        self.index_mask = _np.array(
            [c.num_sets - 1 for c in configs], dtype=_np.int64
        )
        self.tag_shift = _np.array(
            [(c.num_sets - 1).bit_length() for c in configs], dtype=_np.int64
        )
        self.write_back = _np.array([c.write_back for c in configs], dtype=bool)
        smax = max(c.num_sets for c in configs)
        wmax = max(c.associativity for c in configs)
        self.tags = _np.full((lanes, smax, wmax), -1, dtype=_np.int64)
        self.dirty = _np.zeros((lanes, smax, wmax), dtype=bool)
        self.stamp = _np.zeros((lanes, smax, wmax), dtype=_np.int64)
        for lane, c in enumerate(configs):
            self.tags[lane, :, c.associativity:] = -2
            self.stamp[lane, :, c.associativity:] = _np.iinfo(_np.int64).max
            self.tags[lane, c.num_sets:, :] = -2
            self.stamp[lane, c.num_sets:, :] = _np.iinfo(_np.int64).max

    def access(self, lanes, addrs, write, tick):
        """Vector access; returns (hit, victim_dirty) bool arrays.

        ``tick`` may be a scalar or a per-element array; arrays let one
        call carry probes of disjoint per-lane structures (the merged
        L1I+L1D virtual-lane call) at distinct logical times.  Within a
        call every (lane, set) pair must be unique.
        """
        scalar_tick = not isinstance(tick, _np.ndarray)
        block = addrs >> self.offset_bits[lanes]
        sidx = block & self.index_mask[lanes]
        tag = block >> self.tag_shift[lanes]
        rows = self.tags[lanes, sidx]
        match = rows == tag[:, None]
        hit = match.any(axis=1)
        all_hit = hit.all()
        if all_hit:
            way = match.argmax(axis=1)
            self.stamp[lanes, sidx, way] = tick
            if write is not None:
                mark = write & self.write_back[lanes]
                if mark.any():
                    self.dirty[lanes[mark], sidx[mark], way[mark]] = True
            return hit, _np.zeros(len(lanes), dtype=bool)
        if hit.any():
            hl = lanes[hit]
            hs = sidx[hit]
            way = match[hit].argmax(axis=1)
            self.stamp[hl, hs, way] = tick if scalar_tick else tick[hit]
            if write is not None:
                mark = write[hit] & self.write_back[hl]
                if mark.any():
                    self.dirty[hl[mark], hs[mark], way[mark]] = True
        miss = ~hit
        victim_dirty = _np.zeros(len(lanes), dtype=bool)
        if miss.any():
            ml = lanes[miss]
            ms = sidx[miss]
            free = rows[miss] == -1
            has_free = free.any(axis=1)
            victim_way = _np.where(
                has_free,
                free.argmax(axis=1),
                self.stamp[ml, ms].argmin(axis=1),
            )
            victim_dirty[miss] = self.dirty[ml, ms, victim_way] & ~has_free
            self.tags[ml, ms, victim_way] = tag[miss]
            if write is None:
                self.dirty[ml, ms, victim_way] = False
            else:
                self.dirty[ml, ms, victim_way] = (
                    write[miss] & self.write_back[ml]
                )
            self.stamp[ml, ms, victim_way] = tick if scalar_tick else tick[miss]
        return hit, victim_dirty

    def invalidate_lane(self, lane: int) -> None:
        real = self.tags[lane] != -2
        self.tags[lane][real] = -1
        self.dirty[lane][real] = False


class _BatchedTLB:
    """Fully-associative software-managed TLBs, one per lane."""

    def __init__(self, configs) -> None:
        lanes = len(configs)
        self.page_shift = _np.array(
            [c.page_bytes.bit_length() - 1 for c in configs], dtype=_np.int64
        )
        emax = max(c.entries for c in configs)
        self.pages = _np.full((lanes, emax), -1, dtype=_np.int64)
        self.stamp = _np.zeros((lanes, emax), dtype=_np.int64)
        for lane, c in enumerate(configs):
            self.pages[lane, c.entries:] = -2
            self.stamp[lane, c.entries:] = _np.iinfo(_np.int64).max

    def access(self, lanes, addrs, tick: int):
        page = addrs >> self.page_shift[lanes]
        match = self.pages[lanes] == page[:, None]
        hit = match.any(axis=1)
        if hit.any():
            hl = lanes[hit]
            slot = match[hit].argmax(axis=1)
            self.stamp[hl, slot] = tick
        return hit

    def lookup(self, lanes, addrs):
        """Match-only probe: ``(hit, slot)`` without restamping.

        The caller restamps hits itself, in scalar program order (fetch
        probes before data probes), so one merged lookup can serve both
        probe points of a step and still keep the per-lane recency order
        exact — including the case where a lane's fetch and data probes
        hit the same entry, and the case where a fetch trap means the
        data probe must never touch the TLB at all.
        """
        page = addrs >> self.page_shift[lanes]
        match = self.pages[lanes] == page[:, None]
        hit = match.any(axis=1)
        if hit.all():
            return hit, match.argmax(axis=1)
        slot = _np.zeros(len(lanes), dtype=_np.int64)
        if hit.any():
            slot[hit] = match[hit].argmax(axis=1)
        return hit, slot

    def refill(self, lanes, addrs, tick: int) -> None:
        page = addrs >> self.page_shift[lanes]
        rows = self.pages[lanes]
        match = rows == page[:, None]
        present = match.any(axis=1)
        if present.any():
            pl = lanes[present]
            slot = match[present].argmax(axis=1)
            self.stamp[pl, slot] = tick
        absent = ~present
        if absent.any():
            al = lanes[absent]
            free = rows[absent] == -1
            has_free = free.any(axis=1)
            slot = _np.where(
                has_free,
                free.argmax(axis=1),
                self.stamp[al].argmin(axis=1),
            )
            self.pages[al, slot] = page[absent]
            self.stamp[al, slot] = tick


# ---------------------------------------------------------------------------
# Lockstep execution
# ---------------------------------------------------------------------------


class _BatchedMipsyEngine:
    """Executes decoded lanes in lockstep and materialises profiles."""

    def __init__(self, tasks: Sequence[BatchTask]) -> None:
        if _np is None:  # pragma: no cover - callers gate on batched_execution()
            raise RuntimeError("numpy is required for the batched engine")
        self.tasks = list(tasks)
        self.streams: list[_DecodedStream] = []
        self.stream_of: list[int] = []
        for task in self.tasks:
            for si, stream in enumerate(self.streams):
                if stream.matches(task):
                    self.stream_of.append(si)
                    break
            else:
                self.stream_of.append(len(self.streams))
                self.streams.append(_DecodedStream(task))
        self._build_arena()
        self._build_lanes()

    def _build_arena(self) -> None:
        # Concatenate each stream's rows (executed + handler template)
        # into one global arena; lanes address it by global position.
        self.stream_base: list[int] = []
        base = 0
        for stream in self.streams:
            self.stream_base.append(base)
            base += stream.n_executed + _HANDLER_LEN
        self.a_cls = _np.concatenate([s.cls for s in self.streams])
        self.a_pc = _np.concatenate([s.pc for s in self.streams])
        self.a_addr = _np.concatenate([s.addr for s in self.streams])
        self.a_label = _np.concatenate([s.label for s in self.streams])
        self.a_chunk = _np.concatenate([s.chunk_of for s in self.streams])
        # Static class tables are per-stream; remap class ids into one
        # global table (streams are few, classes are few dozen).
        offsets = []
        total = 0
        for s in self.streams:
            offsets.append(total)
            total += len(s._class_rows)
        self.tab_fetch = _np.concatenate([s.tab_fetch for s in self.streams])
        self.tab_post = _np.concatenate([s.tab_post for s in self.streams])
        self.tab_full = _np.concatenate([s.tab_full for s in self.streams])
        self.static_cycles = _np.concatenate(
            [s.static_cycles for s in self.streams]
        )
        self.base_cycles = _np.concatenate([s.base_cycles for s in self.streams])
        self.is_mem_cls = _np.concatenate([s.is_mem_cls for s in self.streams])
        self.is_store_cls = _np.concatenate(
            [s.is_store_cls for s in self.streams]
        )
        cursor = 0
        for s, off in zip(self.streams, offsets):
            rows = s.n_executed + _HANDLER_LEN
            if off:
                self.a_cls[cursor:cursor + rows] += off
            cursor += rows

    def _build_lanes(self) -> None:
        lanes = len(self.tasks)
        sb = self.stream_base
        si = self.stream_of
        streams = self.streams
        self.run_start = _np.array(
            [sb[si[r]] for r in range(lanes)], dtype=_np.int64
        )
        self.run_end = _np.array(
            [sb[si[r]] + streams[si[r]].n_executed for r in range(lanes)],
            dtype=_np.int64,
        )
        self.h_start = self.run_end
        self.h_load = self.h_start + _HANDLER_LOAD_OFFSET
        self.h_eret = self.h_start + _HANDLER_LEN - 1
        self.utlb_label = _np.array(
            [streams[si[r]].utlb_label for r in range(lanes)], dtype=_np.int64
        )

        configs = [task.config for task in self.tasks]
        # L1I and L1D share one structure over 2*lanes virtual lanes
        # (vlane r = lane r's L1I, vlane lanes+r = its L1D) so the fast
        # path probes both levels in a single fused call; the halves are
        # disjoint, so stamp order within each lane's cache is preserved.
        self.nlanes = lanes
        self.l1x = _BatchedCaches(
            [c.l1i for c in configs] + [c.l1d for c in configs]
        )
        self.l2 = _BatchedCaches([c.l2 for c in configs])
        self.tlb = _BatchedTLB([c.tlb for c in configs])
        self.sw_tlb = _np.array(
            [c.tlb.software_managed for c in configs], dtype=bool
        )
        self.l2_lat = _np.array(
            [c.l2.latency_cycles for c in configs], dtype=_np.int64
        )
        self.l1d_lat = _np.array(
            [c.l1d.latency_cycles for c in configs], dtype=_np.int64
        )
        self.mem_lat = _np.array(
            [c.memory.access_latency_cycles for c in configs], dtype=_np.int64
        )

        # Accumulators: one [n_labels] stripe per (lane, chunk).
        self.acc_base = _np.zeros(lanes, dtype=_np.int64)
        self.mc_base = _np.zeros(lanes, dtype=_np.int64)
        acc_rows = 0
        mc_rows = 0
        for r in range(lanes):
            s = streams[si[r]]
            self.acc_base[r] = acc_rows
            self.mc_base[r] = mc_rows
            acc_rows += s.n_chunks * s.n_labels
            mc_rows += s.n_chunks
        self.n_labels = _np.array(
            [streams[si[r]].n_labels for r in range(lanes)], dtype=_np.int64
        )
        self.acc = _np.zeros((acc_rows, _NCOLS), dtype=_np.float64)
        self.mc = _np.zeros(mc_rows, dtype=_np.int64)
        self.trapc = _np.zeros(mc_rows, dtype=_np.int64)

        self.pos = self.run_start.copy()
        self.active = self.run_end > self.run_start
        self.cur_chunk = _np.zeros(lanes, dtype=_np.int64)
        self.saved_pos = _np.zeros(lanes, dtype=_np.int64)
        self.fault_addr = _np.zeros(lanes, dtype=_np.int64)
        self.pte_addr = _np.zeros(lanes, dtype=_np.int64)
        self.partial_gap = _np.zeros(lanes, dtype=_np.int64)
        self.in_data_trap = _np.zeros(lanes, dtype=bool)
        self.data_resume = _np.zeros(lanes, dtype=bool)
        self.first_trap_pull = _np.full(lanes, -1, dtype=_np.int64)
        self.first_trap_pos = [
            _np.full(streams[si[r]].n_chunks, -1, dtype=_np.int64)
            for r in range(lanes)
        ]
        self.next_flush = [0] * lanes
        # Local executed index of each lane's next pending cacheflush
        # (sentinel when none remain) — lets the advance path test for
        # due flushes with one vector compare instead of a python loop.
        sentinel = _np.iinfo(_np.int64).max
        self.flush_pos = _np.full(lanes, sentinel, dtype=_np.int64)
        for r in range(lanes):
            events = streams[si[r]].flush_events
            if events:
                self.flush_pos[r] = events[0]
        self._tick = 0
        # Fast-path state: lanes currently inside the utlb handler (so
        # trap-free steps skip handler checks) and the cached active-set
        # gathers, refreshed only when a lane finishes.
        self._n_trapped = 0
        self._act_dirty = True
        self._act = None

    def _refresh_act(self) -> None:
        act = _np.nonzero(self.active)[0]
        self._act = act
        self._acc_base_a = self.acc_base[act]
        self._mc_base_a = self.mc_base[act]
        self._nl_a = self.n_labels[act]
        self._h_start_a = self.h_start[act]
        self._h_load_a = self.h_load[act]
        self._flush_live = bool(
            (self.flush_pos[act] != _np.iinfo(_np.int64).max).any()
        )
        self._act_dirty = False

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def run(self) -> None:
        if bool(self.sw_tlb.all()):
            # Software-managed TLBs everywhere: the fused-probe fast
            # path applies (hardware refill would have to interleave
            # between the fetch and data halves of the merged probe).
            step = self._step_fast
            self._act_dirty = True
            while True:
                if self._act_dirty:
                    self._refresh_act()
                    if not len(self._act):
                        return
                step()
        else:
            step = self._step
            while self.active.any():
                step()

    def _step(self) -> None:
        np = _np
        act = np.nonzero(self.active)[0]
        p = self.pos[act]
        cl = self.a_cls[p]
        resume = self.data_resume[act]
        not_resume = ~resume
        m = len(act)
        fetch_lat = np.zeros(m, dtype=np.int64)
        data_lat = np.zeros(m, dtype=np.int64)
        trapped = np.zeros(m, dtype=bool)
        incs = self.tab_full[cl].copy()
        if resume.any():
            incs[resume] = self.tab_post[cl[resume]]

        pcs = self.a_pc[p]

        # --- Fetch: TLB ------------------------------------------------
        ft = not_resume & (pcs < KSEG_BASE)
        if ft.any():
            fl = act[ft]
            hit = self.tlb.access(fl, pcs[ft], self._next_tick())
            if not hit.all():
                miss = ~hit
                miss_lanes = fl[miss]
                sw = self.sw_tlb[miss_lanes]
                if not sw.all():
                    # Hardware-refill lanes: install invisibly, carry on.
                    hw = miss_lanes[~sw]
                    self.tlb.refill(hw, pcs[ft][miss][~sw], self._next_tick())
                    idx = np.nonzero(ft)[0][miss][~sw]
                    incs[idx, _C_TLB_MISS] += 1.0
                if sw.any():
                    # Fetch trap: abort before any cycle accrues; only
                    # the TLB probe was counted.  The instruction redoes
                    # from scratch after the handler (REDO).
                    idx = np.nonzero(ft)[0][miss][sw]
                    trapped[idx] = True
                    tl = act[idx]
                    tvec = np.zeros((len(tl), _NCOLS), dtype=np.float64)
                    tvec[:, _C_TLB_ACC] = 1.0
                    tvec[:, _C_TLB_MISS] = 1.0
                    incs[idx] = tvec
                    self._enter_trap(
                        tl, self.pos[tl], self.a_pc[self.pos[tl]],
                        data_trap=False,
                    )

        # --- Fetch: L1I / L2 -------------------------------------------
        fi = not_resume & ~trapped
        if fi.any():
            il = act[fi]
            hit, _vd = self.l1x.access(il, pcs[fi], None, self._next_tick())
            if not hit.all():
                miss = ~hit
                idx = np.nonzero(fi)[0][miss]
                ml = il[miss]
                incs[idx, _C_L1I_MISS] += 1.0
                incs[idx, _C_L2I] += 1.0
                l2hit, l2vd = self.l2.access(
                    ml, pcs[fi][miss], np.zeros(len(ml), dtype=bool),
                    self._next_tick(),
                )
                lat = self.l2_lat[ml].copy()
                if not l2hit.all():
                    l2m = ~l2hit
                    incs[idx[l2m], _C_L2_MISS] += 1.0
                    incs[idx[l2m], _C_MEM] += 1.0
                    lat[l2m] += self.mem_lat[ml[l2m]]
                if l2vd.any():
                    incs[idx[l2vd], _C_MEM] += 1.0
                fetch_lat[idx] = lat

        # --- Data access ------------------------------------------------
        dm = self.is_mem_cls[cl] & ~trapped
        if dm.any():
            dl = act[dm]
            dp = p[dm]
            addrs = self.a_addr[dp].copy()
            on_load = dp == self.h_load[dl]
            if on_load.any():
                addrs[on_load] = self.pte_addr[dl[on_load]]
            du = addrs < KSEG_BASE
            dmiss = np.zeros(len(dl), dtype=bool)
            if du.any():
                ul = dl[du]
                hit = self.tlb.access(ul, addrs[du], self._next_tick())
                if not hit.all():
                    tmiss = ~hit
                    miss_lanes = ul[tmiss]
                    sw = self.sw_tlb[miss_lanes]
                    if not sw.all():
                        hw = miss_lanes[~sw]
                        self.tlb.refill(hw, addrs[du][tmiss][~sw],
                                        self._next_tick())
                        idx = np.nonzero(dm)[0][np.nonzero(du)[0][tmiss][~sw]]
                        incs[idx, _C_TLB_MISS] += 1.0
                    if sw.any():
                        # Data trap: fetch and extra latency already
                        # accrued; the faulting access retries after the
                        # handler with the gap resumed, not restarted.
                        sub = np.nonzero(du)[0][tmiss][sw]
                        idx = np.nonzero(dm)[0][sub]
                        trapped[idx] = True
                        dmiss[sub] = True
                        tl = dl[sub]
                        # Roll the not-yet-earned completion part back
                        # off the scatter row: keep the fetch increments
                        # (they already happened, including any L2
                        # victim writeback) plus the faulting TLB probe.
                        # All values are small integers in float64, so
                        # the subtraction is exact.
                        incs[idx] -= self.tab_post[cl[idx]]
                        incs[idx, _C_TLB_ACC] += 1.0
                        incs[idx, _C_TLB_MISS] += 1.0
                        self.partial_gap[tl] = (
                            self.base_cycles[cl[idx]]
                            + fetch_lat[idx]
                            + TRAP_ENTRY_PENALTY
                        )
                        self._enter_trap(
                            tl, self.pos[tl], addrs[sub], data_trap=True
                        )
            dok = ~dmiss
            if dok.any():
                ok_lanes = dl[dok]
                ok_addrs = addrs[dok]
                write = self.is_store_cls[cl[dm]][dok]
                idx = np.nonzero(dm)[0][dok]
                hit, vd = self.l1x.access(
                    ok_lanes + self.nlanes, ok_addrs, write, self._next_tick()
                )
                if not hit.all():
                    miss = ~hit
                    midx = idx[miss]
                    ml = ok_lanes[miss]
                    incs[midx, _C_L1D_MISS] += 1.0
                    incs[midx, _C_L2D] += 1.0
                    l2hit, l2vd = self.l2.access(
                        ml, ok_addrs[miss], np.zeros(len(ml), dtype=bool),
                        self._next_tick(),
                    )
                    lat = self.l2_lat[ml].copy()
                    if not l2hit.all():
                        l2m = ~l2hit
                        incs[midx[l2m], _C_L2_MISS] += 1.0
                        incs[midx[l2m], _C_MEM] += 1.0
                        lat[l2m] += self.mem_lat[ml[l2m]]
                    if l2vd.any():
                        incs[midx[l2vd], _C_MEM] += 1.0
                    data_lat[midx] = lat
                    if vd[miss].any():
                        # Dirty L1D victim drains to L2: counted as one
                        # L2D access; the L2 state mutates but the
                        # drain's own miss/writeback is not counted.
                        dvm = vd[miss]
                        incs[midx[dvm], _C_L2D] += 1.0
                        drain_lanes = ml[dvm]
                        self.l2.access(
                            drain_lanes,
                            ok_addrs[miss][dvm] ^ (1 << 20),
                            np.ones(len(drain_lanes), dtype=bool),
                            self._next_tick(),
                        )
                # Stores complete without waiting for the data.
                st = self.is_store_cls[cl[idx]]
                data_lat[idx] = np.where(
                    st, 0, data_lat[idx] + self.l1d_lat[ok_lanes]
                )

        # --- Completion -------------------------------------------------
        done = ~trapped
        if done.any():
            didx = np.nonzero(done)[0]
            lanes = act[didx]
            gap = np.where(
                resume[didx],
                self.partial_gap[lanes] + data_lat[didx],
                self.static_cycles[cl[didx]] + fetch_lat[didx] + data_lat[didx],
            )
            incs[didx, _COL_CYC] = gap.astype(np.float64)
            rows = (
                self.acc_base[lanes]
                + self.cur_chunk[lanes] * self.n_labels[lanes]
                + self.a_label[p[didx]]
            )
            self.acc[rows] += incs[didx]
            mcd = np.where(resume[didx], data_lat[didx], gap)
            self.mc[self.mc_base[lanes] + self.cur_chunk[lanes]] += mcd
            # A handler instruction completing inside a data trap grows
            # the outer instruction's pending gap too (the scalar gap
            # spans the whole trap).
            in_handler = p[didx] >= self.h_start[lanes]
            hd = in_handler & self.in_data_trap[lanes]
            if hd.any():
                self.partial_gap[lanes[hd]] += gap[hd]
            self._advance(lanes, p[didx], resume[didx])

        # Trap lanes: scatter their trap-step increments.
        if trapped.any():
            tidx = np.nonzero(trapped)[0]
            lanes = act[tidx]
            rows = (
                self.acc_base[lanes]
                + self.cur_chunk[lanes] * self.n_labels[lanes]
                + self.a_label[p[tidx]]
            )
            self.acc[rows] += incs[tidx]
            mcd = np.where(
                self.in_data_trap[lanes],
                self.partial_gap[lanes],
                TRAP_ENTRY_PENALTY,
            )
            self.mc[self.mc_base[lanes] + self.cur_chunk[lanes]] += mcd

    def _step_fast(self) -> None:
        """Hot path for all-software-managed TLBs.

        Semantics are identical to :meth:`_step`; the numpy call count
        per step is roughly halved by fusing probes and scattering
        increments straight into ``acc`` (no per-step increment matrix):

        * one merged TLB probe carries the fetch probes (tick ``t1``)
          and data probes (tick ``t2``) together; a fetch trap undoes
          its lane's speculative data restamp exactly.
        * one merged L1I+L1D access over the virtual-lane structure.
        * static per-class counter rows scatter once for the fetch part
          and once at completion; rare events (misses, traps, victim
          writebacks) scatter single columns.
        """
        np = _np
        act = self._act
        n = self.nlanes
        p = self.pos[act]
        cl = self.a_cls[p]
        m = len(act)
        resume = self.data_resume[act]
        has_resume = bool(resume.any())
        pcs = self.a_pc[p]
        cc = self.cur_chunk[act]
        rows = self._acc_base_a + cc * self._nl_a + self.a_label[p]
        mcrow = self._mc_base_a + cc
        any_handler = self._n_trapped > 0
        in_handler = (p >= self._h_start_a) if any_handler else None
        is_mem = self.is_mem_cls[cl]

        # --- Merged TLB lookup -----------------------------------------
        ft = pcs < KSEG_BASE
        if has_resume:
            ft &= ~resume
        addrs = None
        if is_mem.any():
            addrs = self.a_addr[p]
            if any_handler:
                on_load = p == self._h_load_a
                if on_load.any():
                    addrs = addrs.copy()
                    addrs[on_load] = self.pte_addr[act[on_load]]
            du = is_mem & (addrs < KSEG_BASE)
            didx = np.nonzero(du)[0]
        else:
            didx = np.zeros(0, dtype=np.int64)
        fidx = np.nonzero(ft)[0]
        nf = len(fidx)
        nd_probe = len(didx)
        t1 = self._next_tick()
        t2 = self._next_tick()
        fetch_trap = np.zeros(m, dtype=bool)
        data_trap = np.zeros(m, dtype=bool)
        any_fetch_trap = False
        if nf or nd_probe:
            if nd_probe:
                probe_idx = np.concatenate((fidx, didx))
                probe_addr = np.concatenate((pcs[fidx], addrs[didx]))
            else:
                probe_idx = fidx
                probe_addr = pcs[fidx]
            hit, slot = self.tlb.lookup(act[probe_idx], probe_addr)
            f_hit = hit[:nf]
            if nf:
                # Restamp fetch hits first (scalar probe order: fetch
                # before data, so a duplicate entry keeps the data tick).
                if f_hit.all():
                    self.tlb.stamp[act[fidx], slot[:nf]] = t1
                else:
                    fetch_trap[fidx[~f_hit]] = True
                    any_fetch_trap = True
                    fh = np.nonzero(f_hit)[0]
                    self.tlb.stamp[act[fidx[fh]], slot[fh]] = t1
            if nd_probe:
                d_hit = hit[nf:]
                dok = d_hit
                if any_fetch_trap:
                    # A fetch-trapped instruction never reaches its data
                    # access: neither restamp nor data trap for it.
                    ok = ~fetch_trap[didx]
                    dok = d_hit & ok
                    dmiss = ~d_hit & ok
                else:
                    dmiss = ~d_hit
                if dok.all():
                    self.tlb.stamp[act[didx], slot[nf:]] = t2
                elif dok.any():
                    dh = np.nonzero(dok)[0]
                    self.tlb.stamp[act[didx[dh]], slot[nf:][dh]] = t2
                if dmiss.any():
                    data_trap[didx[dmiss]] = True

        if any_fetch_trap:
            tr = rows[fetch_trap]
            self.acc[tr, _C_TLB_ACC] += 1.0
            self.acc[tr, _C_TLB_MISS] += 1.0
            self.mc[mcrow[fetch_trap]] += TRAP_ENTRY_PENALTY
            self._enter_trap(
                act[fetch_trap], p[fetch_trap], pcs[fetch_trap],
                data_trap=False,
            )

        # --- Merged L1I + L1D access -----------------------------------
        if any_fetch_trap or has_resume:
            fet = ~fetch_trap
            if has_resume:
                fet &= ~resume
            fl_idx = np.nonzero(fet)[0]
            ivl = act[fl_idx]
            iva = pcs[fl_idx]
        else:
            fet = None
            fl_idx = None
            ivl = act
            iva = pcs
        nfi = len(ivl)
        any_data_trap = bool(data_trap.any())
        if any_fetch_trap or any_data_trap:
            dacc = is_mem & ~fetch_trap & ~data_trap
        else:
            dacc = is_mem
        dl_idx = np.nonzero(dacc)[0]
        nd = len(dl_idx)
        if nd:
            st = self.is_store_cls[cl[dl_idx]]
            vl = np.concatenate((ivl, act[dl_idx] + n))
            va = np.concatenate((iva, addrs[dl_idx]))
            vw = np.concatenate((np.zeros(nfi, dtype=bool), st))
        else:
            st = None
            vl = ivl
            va = iva
            vw = np.zeros(nfi, dtype=bool)
        chit, cvd = self.l1x.access(vl, va, vw, self._next_tick())

        fetch_lat = np.zeros(m, dtype=np.int64)
        ihit = chit[:nfi]
        if not ihit.all():
            mi = np.nonzero(~ihit)[0]
            if fl_idx is not None:
                mi = fl_idx[mi]
            ml = act[mi]
            r = rows[mi]
            self.acc[r, _C_L1I_MISS] += 1.0
            self.acc[r, _C_L2I] += 1.0
            l2hit, l2vd = self.l2.access(
                ml, pcs[mi], np.zeros(len(ml), dtype=bool),
                self._next_tick(),
            )
            lat = self.l2_lat[ml].copy()
            if not l2hit.all():
                l2m = ~l2hit
                rr = rows[mi[l2m]]
                self.acc[rr, _C_L2_MISS] += 1.0
                self.acc[rr, _C_MEM] += 1.0
                lat[l2m] += self.mem_lat[ml[l2m]]
            if l2vd.any():
                self.acc[rows[mi[l2vd]], _C_MEM] += 1.0
            fetch_lat[mi] = lat

        data_lat = np.zeros(m, dtype=np.int64)
        if nd:
            dhit = chit[nfi:]
            if not dhit.all():
                dmi = dl_idx[~dhit]
                ml = act[dmi]
                r = rows[dmi]
                self.acc[r, _C_L1D_MISS] += 1.0
                self.acc[r, _C_L2D] += 1.0
                l2hit, l2vd = self.l2.access(
                    ml, addrs[dmi], np.zeros(len(ml), dtype=bool),
                    self._next_tick(),
                )
                lat = self.l2_lat[ml].copy()
                if not l2hit.all():
                    l2m = ~l2hit
                    rr = rows[dmi[l2m]]
                    self.acc[rr, _C_L2_MISS] += 1.0
                    self.acc[rr, _C_MEM] += 1.0
                    lat[l2m] += self.mem_lat[ml[l2m]]
                if l2vd.any():
                    self.acc[rows[dmi[l2vd]], _C_MEM] += 1.0
                data_lat[dmi] = lat
                dvm = cvd[nfi:][~dhit]
                if dvm.any():
                    self.acc[rows[dmi[dvm]], _C_L2D] += 1.0
                    drain_lanes = ml[dvm]
                    self.l2.access(
                        drain_lanes,
                        addrs[dmi[dvm]] ^ (1 << 20),
                        np.ones(len(drain_lanes), dtype=bool),
                        self._next_tick(),
                    )
            data_lat[dl_idx] = np.where(
                st, 0, data_lat[dl_idx] + self.l1d_lat[act[dl_idx]]
            )

        # --- Data traps (fetch side already earned and kept) -----------
        if any_data_trap:
            dti = np.nonzero(data_trap)[0]
            tl = act[dti]
            r = rows[dti]
            self.acc[r] += self.tab_fetch[cl[dti]]
            self.acc[r, _C_TLB_ACC] += 1.0
            self.acc[r, _C_TLB_MISS] += 1.0
            pg = (
                self.base_cycles[cl[dti]]
                + fetch_lat[dti]
                + TRAP_ENTRY_PENALTY
            )
            self.partial_gap[tl] = pg
            self.mc[mcrow[dti]] += pg
            self._enter_trap(tl, p[dti], addrs[dti], data_trap=True)

        # --- Completion -------------------------------------------------
        if any_fetch_trap or any_data_trap:
            done = ~(fetch_trap | data_trap)
            di = np.nonzero(done)[0]
            if not len(di):
                return
            lanes = act[di]
            cld = cl[di]
            rd = rows[di]
            if has_resume:
                rs = resume[di]
                gap = np.where(
                    rs,
                    self.partial_gap[lanes] + data_lat[di],
                    self.static_cycles[cld] + fetch_lat[di] + data_lat[di],
                )
                nr = ~rs
                self.acc[rd[nr]] += self.tab_full[cld[nr]]
                self.acc[rd[rs]] += self.tab_post[cld[rs]]
                self.mc[mcrow[di]] += np.where(rs, data_lat[di], gap)
            else:
                gap = self.static_cycles[cld] + fetch_lat[di] + data_lat[di]
                self.acc[rd] += self.tab_full[cld]
                self.mc[mcrow[di]] += gap
            self.acc[rd, _COL_CYC] += gap
            if any_handler:
                hd = in_handler[di] & self.in_data_trap[lanes]
                if hd.any():
                    self.partial_gap[lanes[hd]] += gap[hd]
            self._advance_fast(lanes, p[di], resume[di], has_resume,
                               any_handler)
        else:
            if has_resume:
                gap = np.where(
                    resume,
                    self.partial_gap[act] + data_lat,
                    self.static_cycles[cl] + fetch_lat + data_lat,
                )
                self.mc[mcrow] += np.where(resume, data_lat, gap)
                nr = ~resume
                self.acc[rows[nr]] += self.tab_full[cl[nr]]
                self.acc[rows[resume]] += self.tab_post[cl[resume]]
            else:
                gap = self.static_cycles[cl] + fetch_lat + data_lat
                self.mc[mcrow] += gap
                self.acc[rows] += self.tab_full[cl]
            self.acc[rows, _COL_CYC] += gap
            if any_handler:
                hd = in_handler & self.in_data_trap[act]
                if hd.any():
                    self.partial_gap[act[hd]] += gap[hd]
            self._advance_fast(act, p, resume, has_resume, any_handler)

    def _advance_fast(self, lanes, p, resume, has_resume, any_handler):
        """Advance completing lanes; handler-free steps skip the ERET
        and chunk-boundary special cases entirely."""
        np = _np
        if has_resume and resume.any():
            rl = lanes[resume]
            self.data_resume[rl] = False
            self.in_data_trap[rl] = False
        new_pos = p + 1
        if any_handler:
            on_eret = p == self.h_eret[lanes]
            if on_eret.any():
                el = lanes[on_eret]
                self._n_trapped -= len(el)
                self.tlb.refill(el, self.fault_addr[el], self._next_tick())
                self.data_resume[el] = self.in_data_trap[el]
                new_pos[on_eret] = self.saved_pos[el]
            self.pos[lanes] = new_pos
            in_main = (new_pos < self.run_end[lanes]) & ~on_eret
            if in_main.any():
                il = lanes[in_main]
                ip = new_pos[in_main]
                self.cur_chunk[il] = self.a_chunk[ip]
                if self._flush_live:
                    self._check_flush(il, ip)
            finished = new_pos == self.run_end[lanes]
            if finished.any():
                self.active[lanes[finished]] = False
                self._act_dirty = True
            return
        self.pos[lanes] = new_pos
        finished = new_pos == self.run_end[lanes]
        if not finished.any():
            self.cur_chunk[lanes] = self.a_chunk[new_pos]
            if self._flush_live:
                self._check_flush(lanes, new_pos)
            return
        in_main = ~finished
        il = lanes[in_main]
        ip = new_pos[in_main]
        self.cur_chunk[il] = self.a_chunk[ip]
        if self._flush_live:
            self._check_flush(il, ip)
        self.active[lanes[finished]] = False
        self._act_dirty = True

    def _check_flush(self, il, ip):
        """Apply any cacheflush events the advancing lanes just crossed."""
        np = _np
        local = ip - self.run_start[il]
        due = local >= self.flush_pos[il]
        if due.any():
            for lane, loc in zip(il[due], local[due]):
                lane = int(lane)
                stream = self.streams[self.stream_of[lane]]
                events = stream.flush_events
                nf = self.next_flush[lane]
                while nf < len(events) and events[nf] <= loc:
                    self.l1x.invalidate_lane(lane)
                    self.l1x.invalidate_lane(lane + self.nlanes)
                    nf += 1
                self.next_flush[lane] = nf
                self.flush_pos[lane] = (
                    events[nf] if nf < len(events)
                    else np.iinfo(np.int64).max
                )
            self._flush_live = bool(
                (self.flush_pos[self._act] != np.iinfo(np.int64).max).any()
            )

    def _enter_trap(self, lanes, fault_pos, fault_addrs, *, data_trap: bool):
        np = _np
        self.saved_pos[lanes] = fault_pos
        self.fault_addr[lanes] = fault_addrs
        self.pte_addr[lanes] = (
            PTE_TABLE_BASE + ((fault_addrs >> 12) & 0x3FF) * 8
        )
        self.in_data_trap[lanes] = data_trap
        self.pos[lanes] = self.h_start[lanes]
        self._n_trapped += len(lanes)
        mrows = self.mc_base[lanes] + self.cur_chunk[lanes]
        self.trapc[mrows] += 1
        # First-trap bookkeeping (rare; a short python loop is fine).
        for i, lane in enumerate(lanes):
            lane = int(lane)
            stream = self.streams[self.stream_of[lane]]
            local = int(fault_pos[i]) - int(self.run_start[lane])
            pull = int(stream.pull_of[local])
            if self.first_trap_pull[lane] < 0:
                self.first_trap_pull[lane] = pull
            chunk = int(self.cur_chunk[lane])
            if self.first_trap_pos[lane][chunk] < 0:
                self.first_trap_pos[lane][chunk] = local

    def _advance(self, lanes, p, resume) -> None:
        np = _np
        if resume.any():
            rl = lanes[resume]
            self.data_resume[rl] = False
            self.in_data_trap[rl] = False
        on_eret = p == self.h_eret[lanes]
        new_pos = p + 1
        if on_eret.any():
            el = lanes[on_eret]
            self._n_trapped -= len(el)
            self.tlb.refill(el, self.fault_addr[el], self._next_tick())
            self.data_resume[el] = self.in_data_trap[el]
            new_pos[on_eret] = self.saved_pos[el]
        self.pos[lanes] = new_pos
        # ERET returns to the saved (already-entered) position: chunk
        # and flush state were updated when it was first reached.
        in_main = (new_pos < self.run_end[lanes]) & ~on_eret
        if in_main.any():
            il = lanes[in_main]
            ip = new_pos[in_main]
            self.cur_chunk[il] = self.a_chunk[ip]
            local = ip - self.run_start[il]
            due = local >= self.flush_pos[il]
            if due.any():
                for lane, loc in zip(il[due], local[due]):
                    lane = int(lane)
                    stream = self.streams[self.stream_of[lane]]
                    events = stream.flush_events
                    nf = self.next_flush[lane]
                    while nf < len(events) and events[nf] <= loc:
                        self.l1x.invalidate_lane(lane)
                        self.l1x.invalidate_lane(lane + self.nlanes)
                        nf += 1
                    self.next_flush[lane] = nf
                    self.flush_pos[lane] = (
                        events[nf] if nf < len(events)
                        else np.iinfo(np.int64).max
                    )
        finished = new_pos == self.run_end[lanes]
        if finished.any():
            self.active[lanes[finished]] = False
            self._act_dirty = True

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def profiles(self) -> list[BenchmarkProfile]:
        """Rebuild one scalar-identical BenchmarkProfile per lane."""
        idle_cache: list[tuple[SystemConfig, int, IdleProfile]] = []
        return [
            self._materialize(lane, idle_cache)
            for lane in range(len(self.tasks))
        ]

    def _materialize(
        self, lane: int, idle_cache: list
    ) -> BenchmarkProfile:
        task = self.tasks[lane]
        stream = self.streams[self.stream_of[lane]]
        # Global first-count order of kernel.invocations: services count
        # during generation of their pull (q, 0); the emergent utlb
        # service counts during *processing* of the first faulting pull
        # (p, 1) — generation of pull p precedes its processing, which
        # precedes generation of pull p+1.
        events: list[tuple[int, int, str]] = [
            (pull, 0, name) for pull, name in stream.svc_events
        ]
        first_trap_pull = int(self.first_trap_pull[lane])
        if first_trap_pull >= 0:
            events.append((first_trap_pull, 1, "utlb"))
            events.sort()
        phases: dict[str, PhaseProfile] = {}
        prev_snapshot: dict[str, int] = {}
        names_so_far: list[str] = []
        event_index = 0
        for meta in stream.phase_meta:
            while (
                event_index < len(events)
                and events[event_index][0] <= meta.end_pull
            ):
                names_so_far.append(events[event_index][2])
                event_index += 1
            phase_traps = sum(
                int(self.trapc[self.mc_base[lane] + chunk])
                for chunk in meta.chunk_ids
            )
            delta: dict[str, int] = {}
            for name in names_so_far:
                if name == "utlb":
                    delta["utlb"] = phase_traps
                else:
                    delta[name] = meta.snapshot.get(name, 0) - prev_snapshot.get(
                        name, 0
                    )
            if "utlb" not in delta:
                delta["utlb"] = phase_traps
            prev_snapshot = meta.snapshot
            chunks = [
                self._chunk_stats(lane, stream, chunk)
                for chunk in meta.chunk_ids
            ]
            phases[meta.phase.name] = PhaseProfile(
                phase=meta.phase,
                chunks=chunks,
                invocations={k: v for k, v in delta.items() if v > 0},
            )
        return BenchmarkProfile(
            spec=task.spec,
            cpu_model="mipsy",
            phases=phases,
            idle=self._idle_for(task, idle_cache),
            config=task.config,
        )

    def _chunk_stats(
        self, lane: int, stream: _DecodedStream, chunk: int
    ) -> RunStats:
        acc = self.acc
        base = int(self.acc_base[lane]) + chunk * stream.n_labels
        mrow = int(self.mc_base[lane]) + chunk
        stats = RunStats(
            cycles=int(self.mc[mrow]), traps=int(self.trapc[mrow])
        )
        # Scalar label-dict insertion order: the None bucket first (made
        # at reset), then first appearance within the chunk, with utlb
        # entering while the first faulting instruction is in flight —
        # after that instruction's own label, before any later first
        # appearance.
        entries = [
            (pos, 0, lid)
            for pos, lid in stream.chunk_first[chunk]
            if lid != 0
        ]
        first_trap = int(self.first_trap_pos[lane][chunk])
        if first_trap >= 0:
            entries.append(
                (first_trap - stream.chunk_start[chunk], 1, stream.utlb_label)
            )
            entries.sort()
        instructions = 0
        for lid in [0] + [entry[2] for entry in entries]:
            row = acc[base + lid]
            cycles = float(row[_COL_CYC])
            instr_cycles = float(row[_COL_INS])
            label_stats = LabelStats(
                cycles=cycles,
                instr_cycles=instr_cycles,
                stall_cycles=cycles - instr_cycles,
                instructions=int(row[_COL_INS]),
            )
            counters = label_stats.counters
            for index, field in enumerate(COUNTER_FIELDS):
                value = row[index]
                if value:
                    setattr(counters, field, int(value))
            stats.labels[stream.label_names[lid]] = label_stats
            instructions += label_stats.instructions
        stats.instructions = instructions
        return stats

    def _idle_for(self, task: BatchTask, idle_cache: list) -> IdleProfile:
        for config, window, profile in idle_cache:
            if window == task.window_instructions and config == task.config:
                return profile
        profiler = Profiler(
            task.config,
            cpu_model="mipsy",
            window_instructions=task.window_instructions,
            startup_chunks=task.startup_chunks,
            steady_chunks=task.steady_chunks,
            seed=task.seed,
        )
        profile = profiler.profile_idle()
        idle_cache.append((task.config, task.window_instructions, profile))
        return profile


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def profile_benchmarks_batched(
    tasks: Sequence[BatchTask],
) -> list[BenchmarkProfile]:
    """Profile many (benchmark, config) lanes in one lockstep pass.

    Returns one :class:`BenchmarkProfile` per task, in task order, each
    bit-identical to ``Profiler(task.config, cpu_model="mipsy",
    ...).profile_benchmark(task.spec)``.  Callers gate on
    :func:`batched_execution` and on having at least
    :data:`BATCH_MIN_RUNS` uncached runs.
    """
    if not batched_execution():
        raise RuntimeError(
            "batched execution is disabled (REPRO_PURE_PYTHON or no numpy)"
        )
    if not tasks:
        return []
    engine = _BatchedMipsyEngine(tasks)
    engine.run()
    return engine.profiles()

