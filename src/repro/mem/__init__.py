"""Memory hierarchy substrate: caches, TLB, DRAM, file cache."""

from repro.mem.cache import Cache, CacheStats
from repro.mem.dram import DRAMStats, MainMemory
from repro.mem.filecache import FileCache, FileCacheStats
from repro.mem.hierarchy import KSEG_BASE, AccessResult, MemoryHierarchy
from repro.mem.tlb import TLB, TLBStats

__all__ = [
    "Cache",
    "CacheStats",
    "DRAMStats",
    "MainMemory",
    "FileCache",
    "FileCacheStats",
    "KSEG_BASE",
    "AccessResult",
    "MemoryHierarchy",
    "TLB",
    "TLBStats",
]
