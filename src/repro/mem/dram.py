"""Main-memory model.

A flat-latency DRAM model: every L2 miss costs a fixed number of core
cycles and one counted memory access.  The per-access energy is high
relative to the on-chip structures (Section 3.2 observes that "the L2
cache and memory have a high per-access cost", which produces the steep
memory-power ramp during the cold-start period).
"""

from __future__ import annotations

import dataclasses

from repro.config.system import MemoryConfig


@dataclasses.dataclass
class DRAMStats:
    """Access statistics for main memory."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0


class MainMemory:
    """Fixed-latency main memory."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.stats = DRAMStats()

    def access(self, *, write: bool = False) -> int:
        """Perform one access; returns its latency in core cycles."""
        self.stats.accesses += 1
        if write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return self.config.access_latency_cycles
