"""Operating-system file (buffer) cache.

The paper's methodology boots the OS, *warms the file caches*, and
takes a checkpoint before profiling (Section 2).  During execution,
``read``/``write``/``open`` either hit in the file cache (a pure
memory-to-memory operation) or miss and go to the disk, which both
blocks the caller (scheduling the idle process) and spends disk energy.
After the initial class-loading period "the required data is found in
the file-cache most of the time" (Section 3.2).

The cache holds fixed-size pages of (file id, page index), LRU-evicted,
with a configurable capacity.
"""

from __future__ import annotations

import dataclasses

from repro.config.system import PAGE_SIZE


@dataclasses.dataclass
class FileCacheStats:
    """Hit/miss statistics for the file cache."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Hit ratio over all lookups (0.0 when idle)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class FileCache:
    """LRU page cache over (file id, page index) keys."""

    def __init__(self, capacity_pages: int = 4096, page_bytes: int = PAGE_SIZE) -> None:
        if capacity_pages <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_pages}")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError(f"page size must be a positive power of two")
        self.capacity_pages = capacity_pages
        self.page_bytes = page_bytes
        self.stats = FileCacheStats()
        self._pages: dict[tuple[int, int], None] = {}

    def _touch(self, key: tuple[int, int]) -> None:
        if key in self._pages:
            del self._pages[key]
        elif len(self._pages) >= self.capacity_pages:
            oldest = next(iter(self._pages))
            del self._pages[oldest]
        self._pages[key] = None

    def pages_for(self, offset: int, nbytes: int) -> range:
        """Page indices covering ``[offset, offset + nbytes)``."""
        if offset < 0 or nbytes <= 0:
            raise ValueError("offset must be >= 0 and nbytes > 0")
        first = offset // self.page_bytes
        last = (offset + nbytes - 1) // self.page_bytes
        return range(first, last + 1)

    def lookup(self, file_id: int, offset: int, nbytes: int) -> int:
        """Look up a byte range; returns the number of *missing* pages.

        Hit pages are LRU-promoted.  Missing pages are not inserted —
        the caller performs the disk I/O and then calls :meth:`insert`.
        """
        missing = 0
        for page in self.pages_for(offset, nbytes):
            key = (file_id, page)
            self.stats.lookups += 1
            if key in self._pages:
                self.stats.hits += 1
                self._touch(key)
            else:
                self.stats.misses += 1
                missing += 1
        return missing

    def insert(self, file_id: int, offset: int, nbytes: int) -> None:
        """Install the pages covering a byte range (after disk I/O)."""
        for page in self.pages_for(offset, nbytes):
            self._touch((file_id, page))

    def warm(self, file_id: int, nbytes: int) -> None:
        """Pre-populate a file's pages (checkpoint with warm caches)."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        self.insert(file_id, 0, nbytes)

    def contains(self, file_id: int, offset: int) -> bool:
        """True if the page holding ``offset`` is cached (no LRU update)."""
        return (file_id, offset // self.page_bytes) in self._pages

    @property
    def occupancy(self) -> int:
        """Number of resident pages."""
        return len(self._pages)
