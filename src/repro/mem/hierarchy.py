"""Memory hierarchy composition.

Wires the L1 I/D caches, the unified L2, main memory, and the unified
software-managed TLB into the two access paths the CPU models use:
instruction fetch and data access.  All port activity is recorded into
a shared :class:`~repro.stats.counters.AccessCounters` instance.

Address-space convention (MIPS-like): addresses at or above
``KSEG_BASE`` are kernel direct-mapped space and bypass the TLB — this
is how the real ``utlb`` handler can itself run and touch page tables
without recursively missing in the TLB.
"""

from __future__ import annotations

import dataclasses

from repro.config.system import SystemConfig
from repro.mem.cache import Cache
from repro.mem.dram import MainMemory
from repro.mem.tlb import TLB
from repro.stats.counters import AccessCounters

KSEG_BASE = 0x8000_0000
"""Start of the unmapped kernel segment (no TLB translation)."""


@dataclasses.dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int
    """Stall cycles beyond the pipelined L1 hit path."""
    tlb_miss: bool
    """True when the access needs a TLB refill before it can complete.

    Under a software-managed TLB the caller must raise the ``utlb``
    trap and retry; under hardware refill the latency already includes
    the refill cost and the access completed."""


_HIT = AccessResult(latency=0, tlb_miss=False)
_TLB_MISS = AccessResult(latency=0, tlb_miss=True)


class MemoryHierarchy:
    """Two-level cache hierarchy with a unified TLB in front."""

    def __init__(self, config: SystemConfig, counters: AccessCounters) -> None:
        self.config = config
        self.counters = counters
        self.l1i = Cache(config.l1i)
        self.l1d = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        self.tlb = TLB(config.tlb)
        self.memory = MainMemory(config.memory)

    # ------------------------------------------------------------------
    # TLB
    # ------------------------------------------------------------------

    def _translate(self, address: int) -> bool:
        """Look up ``address``; returns True if a software refill is needed."""
        if address >= KSEG_BASE:
            return False
        self.counters.tlb_access += 1
        if self.tlb.access(address):
            return False
        self.counters.tlb_miss += 1
        if self.config.tlb.software_managed:
            return True
        # Hardware refill: install the mapping invisibly.
        self.tlb.refill(address)
        return False

    def tlb_refill(self, address: int) -> None:
        """Install a mapping (called by the ``utlb`` handler)."""
        self.tlb.refill(address)

    # ------------------------------------------------------------------
    # Shared L2 path
    # ------------------------------------------------------------------

    def _l2_fill(self, address: int, *, from_instruction: bool, write: bool = False) -> int:
        """Access the L2 on an L1 miss; returns the total stall latency.

        ``from_instruction`` attributes the access to the L2's I-side
        or D-side for the paper's L2I/L2D energy split.
        """
        if from_instruction:
            self.counters.l2i_access += 1
        else:
            self.counters.l2d_access += 1
        hit, writeback = self.l2.access(address, write=write)
        latency = self.config.l2.latency_cycles
        if not hit:
            self.counters.l2_miss += 1
            self.counters.mem_access += 1
            latency += self.memory.access()
        if writeback:
            self.counters.mem_access += 1
            self.memory.access(write=True)
        return latency

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def fetch(self, pc: int) -> AccessResult:
        """Fetch the instruction at ``pc`` through the I-side."""
        counters = self.counters
        # Inline of _translate: this path runs once per fetched
        # instruction and dominates the hierarchy's cost.
        if pc < KSEG_BASE:
            counters.tlb_access += 1
            if not self.tlb.access(pc):
                counters.tlb_miss += 1
                if self.config.tlb.software_managed:
                    return _TLB_MISS
                self.tlb.refill(pc)
        counters.l1i_access += 1
        hit, _writeback = self.l1i.access(pc)
        if hit:
            return _HIT
        counters.l1i_miss += 1
        return AccessResult(
            latency=self._l2_fill(pc, from_instruction=True), tlb_miss=False
        )

    def data_access(self, address: int, *, write: bool = False) -> AccessResult:
        """Access data at ``address`` through the D-side."""
        counters = self.counters
        if address < KSEG_BASE:
            counters.tlb_access += 1
            if not self.tlb.access(address):
                counters.tlb_miss += 1
                if self.config.tlb.software_managed:
                    return _TLB_MISS
                self.tlb.refill(address)
        counters.l1d_access += 1
        hit, writeback = self.l1d.access(address, write=write)
        if hit:
            return _HIT
        self.counters.l1d_miss += 1
        latency = self._l2_fill(address, from_instruction=False)
        if writeback:
            # Dirty L1 victim drains to L2 via the write buffer.
            self.counters.l2d_access += 1
            self.l2.access(address ^ (1 << 20), write=True)
        return AccessResult(latency=latency, tlb_miss=False)

    # ------------------------------------------------------------------
    # Maintenance operations (kernel services)
    # ------------------------------------------------------------------

    def flush_caches(self) -> int:
        """Invalidate both L1 caches (the ``cacheflush`` service)."""
        return self.l1i.invalidate_all() + self.l1d.invalidate_all()

    def flush_tlb(self) -> int:
        """Drop all TLB entries (context switch)."""
        return self.tlb.flush()

    def warm(self, addresses: list[int]) -> None:
        """Pre-load lines and mappings without counting events.

        Used to model the paper's methodology of warming file caches
        and taking a checkpoint before profiling begins.  Counter state
        is restored afterwards so warming is invisible to the profile;
        per-cache hit/miss statistics are reset.
        """
        saved = self.counters.copy()
        for address in addresses:
            if address < KSEG_BASE:
                self.tlb.refill(address)
            self.l1d.access(address)
            self.l2.access(address)
        for name, value in saved.items():
            setattr(self.counters, name, value)
        for cache in (self.l1i, self.l1d, self.l2):
            cache.stats.accesses = 0
            cache.stats.hits = 0
            cache.stats.misses = 0
            cache.stats.writebacks = 0
        self.tlb.stats.accesses = 0
        self.tlb.stats.hits = 0
        self.tlb.stats.misses = 0
