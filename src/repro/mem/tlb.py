"""Unified, fully-associative, software-managed TLB.

MIPS processors expose TLB refills to software: on a miss the processor
traps and the operating system's ``utlb`` handler performs the address
translation, reloads the TLB, and restarts the faulting instruction
(Section 3.3).  This model implements the 64-entry fully-associative
unified TLB of Table 1 with true-LRU replacement.  Whether a miss is
serviced in software (raising a kernel event) or in hardware is decided
by the enclosing hierarchy from the TLB configuration.
"""

from __future__ import annotations

import dataclasses

from repro.config.system import TLBConfig


@dataclasses.dataclass
class TLBStats:
    """Access statistics."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Miss ratio over all accesses (0.0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class TLB:
    """Fully-associative translation lookaside buffer with LRU."""

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self.stats = TLBStats()
        self._page_shift = config.page_bytes.bit_length() - 1
        # dict preserves insertion order; last entry = most recently used.
        self._entries: dict[int, None] = {}

    def page_of(self, address: int) -> int:
        """Virtual page number containing ``address``."""
        return address >> self._page_shift

    def access(self, address: int) -> bool:
        """Translate ``address``; returns True on hit.

        On a miss, the entry is *not* inserted: on a software-managed
        TLB the refill is performed by the ``utlb`` handler, which must
        call :meth:`refill` explicitly.  (The hardware-refill ablation
        calls refill immediately from the hierarchy.)
        """
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        page = address >> self._page_shift
        stats = self.stats
        stats.accesses += 1
        entries = self._entries
        if page in entries:
            stats.hits += 1
            # MRU fast path: with 4 KB pages, consecutive accesses hit
            # the same page almost always; recency order is already
            # correct then and the delete/re-insert is skipped.
            if next(reversed(entries)) != page:
                del entries[page]
                entries[page] = None
            return True
        stats.misses += 1
        return False

    def refill(self, address: int) -> None:
        """Install the mapping for the page containing ``address``."""
        page = self.page_of(address)
        if page in self._entries:
            del self._entries[page]
        elif len(self._entries) >= self.config.entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[page] = None

    def contains(self, address: int) -> bool:
        """True if the page is mapped, without touching LRU state."""
        return self.page_of(address) in self._entries

    def flush(self) -> int:
        """Drop all entries (context switch); returns entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    @property
    def occupancy(self) -> int:
        """Number of valid entries."""
        return len(self._entries)
