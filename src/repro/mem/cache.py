"""Set-associative cache model.

A classic LRU set-associative cache with write-back/write-allocate or
write-through behaviour, used for the L1 I/D caches and the unified L2
of Table 1.  The model tracks hits, misses, and write-backs; access
counts are recorded by the enclosing :mod:`repro.mem.hierarchy` into
the shared counters.
"""

from __future__ import annotations

import dataclasses

from repro.config.system import CacheConfig


@dataclasses.dataclass
class CacheStats:
    """Hit/miss statistics for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        """Miss ratio over all accesses (0.0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """One level of set-associative cache with true-LRU replacement.

    Lines are identified by block address (``address // line_bytes``).
    Each set is an ordered dict from tag to a dirty bit; ordering
    encodes recency (last item = most recently used).
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = config.num_sets - 1
        self._tag_shift = self._index_mask.bit_length()
        self._write_back = config.write_back
        self._associativity = config.associativity
        self._sets: list[dict[int, bool]] = [dict() for _ in range(config.num_sets)]

    def _locate(self, address: int) -> tuple[dict[int, bool], int]:
        block = address >> self._offset_bits
        index = block & self._index_mask
        tag = block >> self._tag_shift
        return self._sets[index], tag

    def access(self, address: int, *, write: bool = False) -> tuple[bool, bool]:
        """Access the line containing ``address``.

        Returns ``(hit, writeback)`` where ``writeback`` reports whether
        a dirty line was evicted to make room.  On a miss the line is
        allocated (write-allocate).  Write-through caches never mark
        lines dirty, so they never produce writebacks.
        """
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        block = address >> self._offset_bits
        cache_set = self._sets[block & self._index_mask]
        tag = block >> self._tag_shift
        stats = self.stats
        stats.accesses += 1
        dirty_on_write = write and self._write_back
        if tag in cache_set:
            stats.hits += 1
            # MRU fast path: hot loops re-touch the most recently used
            # line of a set far more often than any other; recency order
            # is already correct then, so the pop/re-insert is skipped.
            if next(reversed(cache_set)) != tag:
                dirty = cache_set.pop(tag) or dirty_on_write
                cache_set[tag] = dirty
            elif dirty_on_write and not cache_set[tag]:
                cache_set[tag] = True
            return True, False
        stats.misses += 1
        writeback = False
        if len(cache_set) >= self._associativity:
            _victim_tag, victim_dirty = next(iter(cache_set.items()))
            del cache_set[_victim_tag]
            if victim_dirty:
                writeback = True
                stats.writebacks += 1
        cache_set[tag] = dirty_on_write
        return False, writeback

    def probe(self, address: int) -> bool:
        """Return True if the line is resident, without touching state."""
        cache_set, tag = self._locate(address)
        return tag in cache_set

    def invalidate_all(self) -> int:
        """Drop every line (the ``cacheflush`` service); returns lines dropped."""
        dropped = 0
        for cache_set in self._sets:
            dropped += len(cache_set)
            cache_set.clear()
        return dropped

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(cache_set) for cache_set in self._sets)

    def __repr__(self) -> str:
        return (
            f"Cache({self.config.name}, {self.config.size_bytes}B, "
            f"{self.config.associativity}-way, {self.stats.accesses} accesses)"
        )
