"""Command-line interface to the SoftWatt simulator.

Usage (after ``pip install -e .``)::

    repro validate
    repro run jess --disk 3 --export-trace jess.csv
    repro suite --disk 1
    repro services
    repro disk-study compress
    repro checkpoint --out profiles.json jess db

or equivalently ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from collections import Counter

from repro.config.diskcfg import DiskPowerPolicy
from repro.config.system import ConfigError, FidelityConfig, FidelityTier
from repro.core.report import MODE_ORDER, BenchmarkResult
from repro.core.softwatt import SoftWatt
from repro.kernel.modes import KERNEL_SERVICES
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import TaskExecutionError
from repro.workloads.specjvm98 import BENCHMARK_NAMES

_ACTIVE_SOFTWATT: SoftWatt | None = None
"""The command's SoftWatt instance, kept so a Ctrl-C handler can
summarise the partial run report even when the interrupt escaped the
supervisor (e.g. between supervised stages)."""


def _add_resilience(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per profiling task "
                             "(enforced in pool mode; default: none)")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries per profiling task after its first "
                             "attempt (default: 2)")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--strict", action="store_true",
                      help="exit non-zero when anything degraded (retry, "
                           "pool rebuild, serial fallback, cache quarantine)")
    mode.add_argument("--best-effort", action="store_true",
                      help="tolerate tasks that exhaust their retries: skip "
                           "them, report them, keep going")
    parser.add_argument("--fault-plan", metavar="SPEC",
                        help="inject deterministic faults into the profiling "
                             "stage, e.g. 'crash@1,hang@2x2' "
                             "(KIND@INDEX[xATTEMPTS]; exercises recovery)")


def _add_fidelity(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fidelity",
                        choices=("detailed", "sampled", "atomic"),
                        default="detailed",
                        help="execution tier for the profiling stage: "
                             "detailed cycle-level cores, SMARTS-style "
                             "periodic sampling, or the atomic functional "
                             "tier (default: detailed)")
    parser.add_argument("--sample-period", type=int, default=None,
                        metavar="N",
                        help="sampled tier: instructions per sampling "
                             "period (default: 7000)")
    parser.add_argument("--sample-window", type=int, default=None,
                        metavar="N",
                        help="sampled tier: detailed measured instructions "
                             "per period (default: 900)")
    parser.add_argument("--warmup", type=int, default=None, metavar="N",
                        help="sampled tier: detailed warmup instructions "
                             "before each measured window (default: 300)")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cpu", choices=("mxs", "mipsy"), default="mxs",
                        help="CPU timing model (default: mxs)")
    parser.add_argument("--window", type=int, default=40_000,
                        help="detailed-window instructions (default: 40000)")
    parser.add_argument("--seed", type=int, default=1)
    _add_fidelity(parser)
    parser.add_argument("--checkpoint", metavar="FILE",
                        help="load profiles from / save profiles to FILE")
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for the profiling stage (default: 1)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="persistent profile cache directory "
                             "(default: $REPRO_CACHE_DIR, or disabled)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the persistent profile cache")
    _add_resilience(parser)


def _resilience_kwargs(args: argparse.Namespace) -> dict:
    fault_plan = None
    if getattr(args, "fault_plan", None):
        fault_plan = FaultPlan.parse(args.fault_plan, hang_seconds=3600.0)
    return dict(
        task_timeout=getattr(args, "task_timeout", None),
        retries=getattr(args, "retries", 2),
        best_effort=getattr(args, "best_effort", False),
        fault_plan=fault_plan,
    )


def _finish(softwatt: SoftWatt, args: argparse.Namespace) -> int:
    """Surface the run report; the command's exit code under --strict."""
    report = softwatt.run_report
    cache = softwatt.cache
    if cache is not None and cache.stats.quarantined:
        report.add_degradation(
            "cache-quarantine",
            f"{cache.stats.quarantined} corrupt/stale cache entries moved "
            f"to {cache.quarantine_dir}",
        )
    if report.degraded:
        print()
        print(report.summary())
        if getattr(args, "strict", False):
            print("strict mode: degraded run, exiting non-zero")
            return 1
    return 0


def _fidelity_kwarg(args: argparse.Namespace):
    """The ``fidelity`` argument for SoftWatt, or None for the default.

    Returns None when the CLI asked for plain detailed execution so the
    config stays the pristine Table 1 default (and existing cache keys
    are untouched).
    """
    tier = getattr(args, "fidelity", None) or "detailed"
    overrides = {
        name: value
        for name in ("sample_period", "sample_window", "warmup")
        if (value := getattr(args, name, None)) is not None
    }
    if tier == "detailed" and not overrides:
        return None
    fidelity = FidelityConfig(tier=FidelityTier.parse(tier))
    if overrides:
        fidelity = dataclasses.replace(fidelity, **overrides)
    return fidelity


def _make_softwatt(args: argparse.Namespace) -> SoftWatt:
    global _ACTIVE_SOFTWATT
    softwatt = SoftWatt(cpu_model=args.cpu, window_instructions=args.window,
                        seed=args.seed,
                        fidelity=_fidelity_kwarg(args),
                        workers=getattr(args, "workers", 1),
                        cache_dir=getattr(args, "cache_dir", None),
                        use_cache=not getattr(args, "no_cache", False),
                        **_resilience_kwargs(args))
    _ACTIVE_SOFTWATT = softwatt
    if args.checkpoint:
        try:
            softwatt.load_checkpoint(args.checkpoint)
            print(f"(profiles loaded from {args.checkpoint})")
        except (OSError, Exception) as error:  # noqa: BLE001 - report and continue
            from repro.core.checkpoint import CheckpointError  # noqa: PLC0415

            if isinstance(error, CheckpointError) and "cannot read" in str(error):
                print(f"(no checkpoint at {args.checkpoint} yet; will create it)")
            else:
                raise
    return softwatt


def _maybe_save(softwatt: SoftWatt, args: argparse.Namespace) -> None:
    if args.checkpoint:
        softwatt.save_checkpoint(args.checkpoint)
        print(f"(profiles saved to {args.checkpoint})")


def _print_report(result: BenchmarkResult) -> None:
    print(result.format_summary())
    print(f"  peak power {result.peak_power_w:.2f} W, "
          f"average {result.average_power_w:.2f} W, "
          f"EDP {result.energy_delay_product:.1f} Js")
    print("\nmode breakdown:")
    for mode in MODE_ORDER:
        row = result.mode_breakdown()[mode]
        print(f"  {mode.value:8s} {row.cycles_pct:6.2f}% cycles  "
              f"{row.energy_pct:6.2f}% energy  ({row.energy_j:.2f} J)")
    print("\nkernel services:")
    for row in result.service_breakdown()[:8]:
        print(f"  {row.service:12s} num={row.invocations:12.0f}  "
              f"{row.kernel_cycles_pct:6.2f}% kernel cycles  "
              f"{row.kernel_energy_pct:6.2f}% kernel energy")
    print("\npower budget:")
    budget = result.power_budget()
    shares = result.power_budget_shares()
    for name in budget:  # registry legend order, disk included
        print(f"  {name:10s} {budget[name]:6.2f} W  {shares[name]:5.1f}%")


def cmd_validate(args: argparse.Namespace) -> int:
    softwatt = _make_softwatt(args)
    power = softwatt.validate_max_power()
    print(f"R10000 maximum power estimate: {power:.1f} W")
    print("paper SoftWatt: 25.3 W; R10000 datasheet: 30 W")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    softwatt = _make_softwatt(args)
    result = softwatt.run(args.benchmark, disk=args.disk,
                          idle_policy=args.idle_policy)
    _print_report(result)
    if args.export_log:
        from repro.stats.export import write_log_csv  # noqa: PLC0415

        write_log_csv(result.timeline.log, args.export_log)
        print(f"\nlog written to {args.export_log}")
    if args.export_trace:
        from repro.stats.export import write_trace_csv  # noqa: PLC0415

        write_trace_csv(result.trace, args.export_trace)
        print(f"trace written to {args.export_trace}")
    if args.export_budget:
        from repro.stats.export import write_ledger_json  # noqa: PLC0415

        write_ledger_json(result.energy_ledger(), args.export_budget,
                          seconds=result.timeline.duration_s)
        print(f"energy ledger written to {args.export_budget}")
    if args.export_counters:
        from repro.ingest import write_counter_log_json  # noqa: PLC0415

        write_counter_log_json(result.timeline.log, args.export_counters)
        print(f"counter log written to {args.export_counters} "
              f"(re-price with: repro ingest {args.export_counters} "
              f"--mapping identity)")
    _maybe_save(softwatt, args)
    return _finish(softwatt, args)


def cmd_components(args: argparse.Namespace) -> int:
    """List the PowerComponent registry (the accounting schema)."""
    from repro.power.registry import REGISTRY  # noqa: PLC0415

    if getattr(args, "json", False):
        import json  # noqa: PLC0415

        document = {
            "components": REGISTRY.schema(),
            "categories": list(REGISTRY.categories),
            "required_counters": list(REGISTRY.required_counters()),
        }
        print(json.dumps(document, indent=2))
        return 0
    print(f"{'component':10s} {'category':10s} counters")
    for component in REGISTRY:
        counters = (
            ", ".join(component.counters)
            if component.counters
            else "(integrated during simulation)"
        )
        print(f"{component.name:10s} {component.category:10s} {counters}")
    print(f"\ncategories (report order): {', '.join(REGISTRY.categories)}")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """Price an external counter log through a mapping file."""
    # Deliberately lazy: ingest pulls in the power registry.
    from repro.config.system import SystemConfig  # noqa: PLC0415
    from repro.ingest import (  # noqa: PLC0415
        CounterMapping,
        ingest_log,
        read_counter_log,
    )
    from repro.power.processor import ProcessorPowerModel  # noqa: PLC0415

    log = read_counter_log(args.log)
    if args.mapping == "identity":
        mapping = CounterMapping.identity()
    else:
        mapping = CounterMapping.load(args.mapping)
    run = ingest_log(log, mapping)
    model = ProcessorPowerModel(SystemConfig.table1())
    ledger = model.price(run)
    seconds = run.duration_s
    if args.json:
        import json  # noqa: PLC0415

        document = {
            "source": run.source,
            "mapping": mapping.source,
            "records": len(run),
            "duration_s": seconds,
            "cycles": run.total_cycles(),
            "total_j": ledger.total_j,
            "category_j": ledger.categories,
        }
        if seconds > 0:
            document["category_w"] = ledger.category_power_w(seconds)
        print(json.dumps(document, indent=2))
    else:
        print(f"ingested {run.source} through {mapping.source}: "
              f"{len(run)} interval(s), {run.total_cycles():.3g} cycles "
              f"over {seconds:.2f} s")
        print(f"counter-driven energy: {ledger.total_j:.2f} J "
              f"(no disk: simulation-time components need a timeline)")
        watts = ledger.category_power_w(seconds) if seconds > 0 else {}
        print(f"\n{'category':10s} {'energy J':>9s}" +
              (f" {'avg W':>7s}" if watts else ""))
        for name, joules in ledger.categories.items():
            line = f"{name:10s} {joules:9.2f}"
            if watts:
                line += f" {watts[name]:7.2f}"
            print(line)
    if args.export_budget:
        from repro.stats.export import write_ledger_json  # noqa: PLC0415

        write_ledger_json(ledger, args.export_budget,
                          seconds=seconds if seconds > 0 else None)
        print(f"\nenergy ledger written to {args.export_budget}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    softwatt = _make_softwatt(args)
    results = softwatt.run_suite(disk=args.disk, names=BENCHMARK_NAMES)
    print(f"{'benchmark':10s} {'dur s':>6s} {'energy J':>9s} {'disk J':>7s} "
          f"{'user%':>6s} {'kern%':>6s} {'idle%':>6s} {'disk%':>6s}")
    for name in BENCHMARK_NAMES:
        if name not in results:  # best-effort casualty, see run report
            print(f"{name:10s} {'SKIPPED':>6s}")
            continue
        result = results[name]
        modes = result.mode_breakdown()
        shares = result.power_budget_shares()
        user, kern, _sync, idle = (modes[m] for m in MODE_ORDER)
        print(f"{name:10s} {result.timeline.duration_s:6.2f} "
              f"{result.total_energy_j:9.1f} {result.disk_energy_j:7.1f} "
              f"{user.cycles_pct:6.1f} {kern.cycles_pct:6.1f} "
              f"{idle.cycles_pct:6.1f} {shares['disk']:6.1f}")
    _maybe_save(softwatt, args)
    return _finish(softwatt, args)


def cmd_services(args: argparse.Namespace) -> int:
    softwatt = _make_softwatt(args)
    cycle_time = softwatt.config.technology.cycle_time_s
    profiles = softwatt.service_profiles(invocations=args.invocations)
    print(f"{'service':12s} {'cycles':>8s} {'energy J':>11s} {'CoD %':>7s} "
          f"{'power W':>8s}")
    for name in KERNEL_SERVICES:
        profile = profiles[name]
        print(f"{name:12s} {profile.mean_cycles:8.0f} "
              f"{profile.mean_energy_j:11.4g} "
              f"{profile.coefficient_of_deviation:7.2f} "
              f"{profile.average_power_w(cycle_time):8.2f}")
    return _finish(softwatt, args)


def cmd_disk_study(args: argparse.Namespace) -> int:
    softwatt = _make_softwatt(args)
    print(f"{'policy':16s} {'disk J':>8s} {'total J':>8s} {'idle cyc':>10s} "
          f"{'spindowns':>10s} {'dur s':>7s}")
    for disk in (1, 2, 3, 4):
        result = softwatt.run(args.benchmark, disk=disk)
        print(f"{result.disk_policy_name:16s} {result.disk_energy_j:8.1f} "
              f"{result.total_energy_j:8.1f} {result.idle_cycles:10.3g} "
              f"{result.timeline.disk.state.spindowns:10d} "
              f"{result.timeline.duration_s:7.2f}")
    if args.threshold:
        for threshold in args.threshold:
            policy = DiskPowerPolicy(name=f"custom-{threshold:g}s",
                                     spindown_threshold_s=threshold)
            result = softwatt.run(args.benchmark, disk=policy)
            print(f"{policy.name:16s} {result.disk_energy_j:8.1f} "
                  f"{result.total_energy_j:8.1f} {result.idle_cycles:10.3g} "
                  f"{result.timeline.disk.state.spindowns:10d} "
                  f"{result.timeline.duration_s:7.2f}")
    _maybe_save(softwatt, args)
    return _finish(softwatt, args)


def cmd_report(args: argparse.Namespace) -> int:
    from repro.core.textreport import render_run, render_suite  # noqa: PLC0415

    softwatt = _make_softwatt(args)
    if args.benchmark == "suite":
        results = {
            name: softwatt.run(name, disk=args.disk)
            for name in BENCHMARK_NAMES
        }
        text = render_suite(results)
    else:
        text = render_run(softwatt.run(args.benchmark, disk=args.disk))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    _maybe_save(softwatt, args)
    return _finish(softwatt, args)


def _parse_sweep_value(text: str, parameter: str):
    """Sweep values are ints when integral, floats otherwise.

    The historical parser forced ``int()`` on everything but the
    spin-down threshold, so ``vdd 3.3`` crashed with a raw ValueError;
    junk now gets a message naming the offending parameter.
    """
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"invalid value {text!r} for parameter {parameter!r}; "
            f"expected an integer or a float"
        ) from None


def cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.core.campaign import SweepCampaign  # noqa: PLC0415

    try:
        values = [_parse_sweep_value(v, args.parameter) for v in args.values]
        axes = {args.parameter: values}
        for spec in args.grid or []:
            name, _, raw = spec.partition("=")
            if not name or not raw:
                raise ValueError(
                    f"invalid --grid spec {spec!r}; expected PARAM=V1,V2,...")
            axes[name] = [_parse_sweep_value(v, name) for v in raw.split(",")]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    campaign = SweepCampaign(
        benchmark=args.benchmark,
        disk=args.disk,
        window_instructions=args.window,
        seed=args.seed,
        workers=getattr(args, "workers", 1),
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_cache", False),
        tier=None if args.tier == "auto" else args.tier,
        **_resilience_kwargs(args),
    )
    try:
        if len(axes) > 1:
            result = campaign.run_grid(axes)
        else:
            result = campaign.run(args.parameter, values)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.format())
    if result.tiers:
        counts = Counter(result.tiers)
        summary = ", ".join(
            f"{tier.lower()} x{count}" for tier, count in counts.items()
        )
        print(f"tiers: {summary}")
    if any(fidelity != "detailed" for fidelity in result.fidelities):
        counts = Counter(result.fidelities)
        summary = ", ".join(
            f"{fidelity} x{count}" for fidelity, count in counts.items()
        )
        print(f"fidelity: {summary}")
    best = result.best_by_edp()
    print(f"best EDP at {result.parameter}={best.value}: "
          f"{best.energy_delay_product:.1f} Js")
    if result.report is not None and result.report.degraded:
        print()
        print(result.report.summary())
        if getattr(args, "strict", False):
            print("strict mode: degraded run, exiting non-zero")
            return 1
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    global _ACTIVE_SOFTWATT
    softwatt = SoftWatt(cpu_model=args.cpu, window_instructions=args.window,
                        seed=args.seed, workers=args.workers,
                        fidelity=_fidelity_kwarg(args),
                        cache_dir=args.cache_dir,
                        use_cache=not args.no_cache,
                        **_resilience_kwargs(args))
    _ACTIVE_SOFTWATT = softwatt
    names = tuple(args.benchmarks or BENCHMARK_NAMES)
    print(f"profiling {', '.join(names)}...")
    profiles = softwatt.profile_many(names)
    for name in names:
        if name not in profiles:
            print(f"  {name}: profiling FAILED, omitted from checkpoint")
    softwatt._cached_service_profiles()
    softwatt.save_checkpoint(args.out)
    print(f"checkpoint written to {args.out}")
    return _finish(softwatt, args)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the estimation server until drained (SIGTERM/SIGINT)."""
    # Deliberately lazy: no other command needs the serving stack.
    import logging  # noqa: PLC0415
    import os  # noqa: PLC0415
    import signal  # noqa: PLC0415

    from repro.resilience.faults import ServeFaultPlan  # noqa: PLC0415
    from repro.serve import (  # noqa: PLC0415
        BatchScheduler,
        CircuitBreaker,
        EstimationEngine,
        EstimationHTTPServer,
        UnixEstimationHTTPServer,
        serve_forever,
    )

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    fault_plan = None
    if args.serve_fault_plan:
        fault_plan = ServeFaultPlan.parse(
            args.serve_fault_plan, slow_seconds=args.slow_seconds
        )
    engine = EstimationEngine(
        window_instructions=args.window,
        seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        breaker=CircuitBreaker(
            failure_threshold=args.breaker_failures,
            cooldown_s=args.breaker_cooldown,
        ),
        default_deadline_s=args.default_deadline,
        retries=args.retries,
        fault_plan=fault_plan,
    )
    scheduler = None
    if not args.no_batching:
        scheduler = BatchScheduler(
            engine,
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
        )
    if args.socket:
        if os.path.exists(args.socket):
            os.unlink(args.socket)  # a previous run's stale socket
        server = UnixEstimationHTTPServer(
            args.socket, engine,
            queue_depth=args.queue_depth, retry_after_s=args.retry_after,
            scheduler=scheduler,
        )
        location = f"unix:{args.socket}"
    else:
        server = EstimationHTTPServer(
            (args.host, args.port), engine,
            queue_depth=args.queue_depth, retry_after_s=args.retry_after,
            scheduler=scheduler,
        )
        location = f"http://{args.host}:{server.server_address[1]}"

    def _drain(signum, frame):
        print(f"(received {signal.Signals(signum).name}; draining)",
              flush=True)
        server.begin_drain()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    if args.warm:
        primed = engine.warm(args.warm.split(","))
        print(f"(warmed {primed} benchmark(s))", flush=True)
    print(f"listening on {location}", flush=True)
    summary = serve_forever(server)
    if args.socket and os.path.exists(args.socket):
        os.unlink(args.socket)
    counters = summary["counters"]
    admission = summary["admission"]
    print(f"drained: {counters['requests']} request(s) "
          f"({counters['ok']} ok, {counters['degraded']} degraded, "
          f"{admission['rejected']} rejected at admission)")
    if "batching" in summary:
        batching = summary["batching"]
        print(f"batching: {batching['batches']} batch(es), "
              f"{batching['coalesced']} coalesced request(s), "
              f"single-flight hit rate "
              f"{batching['single_flight']['hit_rate']:.0%}")
    if summary["cache"] is not None:
        cache = summary["cache"]
        print(f"cache: {cache['hits']} hit(s), {cache['misses']} miss(es), "
              f"{cache['stores']} store(s), "
              f"{cache['quarantined']} quarantined")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SoftWatt: complete-machine software power estimation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="R10000 maximum-power validation")
    _add_common(p)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("run", help="simulate one benchmark")
    p.add_argument("benchmark", choices=BENCHMARK_NAMES)
    p.add_argument("--disk", type=int, choices=(1, 2, 3, 4), default=1,
                   help="disk configuration (Section 4; default: 1)")
    p.add_argument("--idle-policy", choices=("busywait", "halt"),
                   default="busywait",
                   help="busy-wait idle (IRIX) or halt the CPU (Section 5)")
    p.add_argument("--export-log", metavar="CSV",
                   help="write the simulation log as CSV")
    p.add_argument("--export-trace", metavar="CSV",
                   help="write the power trace as CSV")
    p.add_argument("--export-budget", metavar="JSON",
                   help="write the full-run energy ledger as JSON")
    p.add_argument("--export-counters", metavar="JSON",
                   help="write the run's counter log in the external "
                        "ingestion schema (repro ingest)")
    _add_common(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("components",
                       help="list the power-component registry")
    p.add_argument("--json", action="store_true",
                   help="machine-readable schema: per-component "
                        "required counters, categories")
    p.set_defaults(func=cmd_components)

    p = sub.add_parser("ingest",
                       help="price an external counter log (no simulation)")
    p.add_argument("log", metavar="LOG",
                   help="counter log: .json (export schema) or .csv "
                        "(perf-stat interval style: time_s,value,event)")
    p.add_argument("--mapping", required=True, metavar="FILE",
                   help="mapping file translating external event names "
                        "onto our counters, or the literal 'identity'")
    p.add_argument("--export-budget", metavar="JSON",
                   help="write the priced energy ledger as JSON")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary on stdout")
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser("suite", help="run all six benchmarks")
    p.add_argument("--disk", type=int, choices=(1, 2, 3, 4), default=1)
    _add_common(p)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("services", help="kernel-service characterisation")
    p.add_argument("--invocations", type=int, default=50)
    _add_common(p)
    p.set_defaults(func=cmd_services)

    p = sub.add_parser("disk-study", help="sweep the disk configurations")
    p.add_argument("benchmark", choices=BENCHMARK_NAMES)
    p.add_argument("--threshold", type=float, action="append",
                   help="additional custom spin-down thresholds (repeatable)")
    _add_common(p)
    p.set_defaults(func=cmd_disk_study)

    p = sub.add_parser("report", help="paper-style text report")
    p.add_argument("benchmark", choices=(*BENCHMARK_NAMES, "suite"))
    p.add_argument("--disk", type=int, choices=(1, 2, 3, 4), default=1)
    p.add_argument("--out", metavar="FILE", help="write to FILE (default: stdout)")
    _add_common(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("sensitivity", help="sweep one design parameter")
    p.add_argument("parameter",
                   help="l1_size | l2_size | window_size | issue_width | "
                        "tlb_entries | vdd | calibration | clock_hz | "
                        "spindown_threshold_s")
    p.add_argument("values", nargs="+", help="values to sweep")
    p.add_argument("--benchmark", choices=BENCHMARK_NAMES, default="jess")
    p.add_argument("--disk", type=int, choices=(1, 2, 3, 4), default=2)
    p.add_argument("--window", type=int, default=15_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--grid", metavar="PARAM=V1,V2,...", action="append",
                   help="additional axis for a multi-parameter grid sweep "
                        "(repeatable; points are the cartesian product)")
    p.add_argument("--tier",
                   choices=("auto", "ledger", "timeline", "full",
                            "sampled", "atomic"),
                   default="auto",
                   help="force every point through one tier (default: "
                        "classify each point by what it invalidates); "
                        "'sampled'/'atomic' re-simulate every point on "
                        "that cheaper execution tier")
    p.add_argument("--workers", type=int, default=1,
                   help="processes for structural points (default: 1)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="persistent profile cache directory "
                        "(default: $REPRO_CACHE_DIR, or disabled)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore the persistent profile cache")
    _add_resilience(p)
    p.set_defaults(func=cmd_sensitivity)

    p = sub.add_parser("serve",
                       help="long-running estimation server (HTTP)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8437,
                   help="TCP port (0 picks a free one; default: 8437)")
    p.add_argument("--socket", metavar="PATH",
                   help="serve on a Unix domain socket instead of TCP")
    p.add_argument("--queue-depth", type=int, default=4,
                   help="max in-flight requests before 429 (default: 4)")
    p.add_argument("--retry-after", type=float, default=2.0,
                   metavar="SECONDS",
                   help="Retry-After hint on 429 responses (default: 2)")
    p.add_argument("--breaker-failures", type=int, default=3,
                   help="consecutive detailed-tier failures before the "
                        "circuit breaker opens (default: 3)")
    p.add_argument("--breaker-cooldown", type=float, default=30.0,
                   metavar="SECONDS",
                   help="open time before a half-open probe (default: 30)")
    p.add_argument("--default-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="deadline for requests that carry none "
                        "(default: unlimited)")
    p.add_argument("--warm", metavar="BENCH1,BENCH2",
                   help="pre-simulate benchmarks before accepting traffic")
    p.add_argument("--batch-window-ms", type=float, default=0.0,
                   help="how long the batch scheduler holds a forming "
                        "batch open for more lanes (default: 0 — drain "
                        "whatever is queued, no added latency)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="max lanes per scheduler batch (default: 16)")
    p.add_argument("--no-batching", action="store_true",
                   help="serve every request alone (disable the batch "
                        "scheduler and single-flight deduplication)")
    p.add_argument("--window", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--cache-dir", metavar="DIR",
                   help="persistent profile cache directory "
                        "(default: $REPRO_CACHE_DIR, or disabled)")
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--retries", type=int, default=2)
    p.add_argument("--serve-fault-plan", metavar="SPEC",
                   help="inject deterministic server faults, e.g. "
                        "'slow@2x2,kill@5' (KIND@INDEX[xSPAN]; kinds: "
                        "slow, kill, flood)")
    p.add_argument("--slow-seconds", type=float, default=2.0,
                   help="duration of injected slow-request faults "
                        "(default: 2)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("checkpoint", help="profile benchmarks and save")
    p.add_argument("benchmarks", nargs="*",
                   help="benchmarks to profile (default: all six)")
    p.add_argument("--out", required=True, metavar="FILE")
    p.add_argument("--cpu", choices=("mxs", "mipsy"), default="mxs")
    p.add_argument("--window", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--cache-dir", metavar="DIR")
    p.add_argument("--no-cache", action="store_true")
    _add_fidelity(p)
    _add_resilience(p)
    p.set_defaults(func=cmd_checkpoint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Exit codes: 0 clean (or tolerated degradations without ``--strict``),
    1 degraded under ``--strict`` or a task failed after retries,
    2 invalid system configuration or fault-plan spec,
    130 interrupted (with a partial run-report summary, not a traceback).
    """
    global _ACTIVE_SOFTWATT
    _ACTIVE_SOFTWATT = None
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as error:
        print(f"configuration error: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        if "fault spec" in str(error):
            print(f"error: {error}", file=sys.stderr)
            return 2
        raise
    except TaskExecutionError as error:
        print(f"error: {error}", file=sys.stderr)
        print(error.report.summary(), file=sys.stderr)
        return 1
    except KeyboardInterrupt as error:
        print("interrupted", file=sys.stderr)
        report = getattr(error, "report", None)
        if report is None and _ACTIVE_SOFTWATT is not None:
            report = _ACTIVE_SOFTWATT.run_report
        if report is not None and (report.tasks or report.degraded):
            print(report.summary(), file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
