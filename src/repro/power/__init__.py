"""Analytical power models (the SoftWatt post-processing layer)."""

from repro.power.array import ArrayEnergyModel, CAMEnergyModel
from repro.power.bitlines import CacheEnergyBreakdown, CacheEnergyModel
from repro.power.clocktree import ClockNetworkModel
from repro.power.conditional import ClockedUnit, gating_factor, unit_activity
from repro.power.dvfs import (
    DVFSEvaluation,
    OperatingPoint,
    evaluate_at,
    operating_point,
    scaled_frequency_hz,
    sweep,
)
from repro.power.thermal import ThermalModel, ThermalProfile
from repro.power.functional import FunctionalUnitEnergyModel
from repro.power.ledger import EnergyLedger
from repro.power.memory_power import MemoryEnergyModel
from repro.power.processor import (
    ProcessorPowerModel,
    r10000_max_power,
)
from repro.power.registry import (
    CATEGORIES,
    POWER_COMPONENTS,
    REGISTRY,
    PowerComponent,
    PowerRegistry,
)

__all__ = [
    "ArrayEnergyModel",
    "CAMEnergyModel",
    "CacheEnergyBreakdown",
    "CacheEnergyModel",
    "ClockNetworkModel",
    "ClockedUnit",
    "gating_factor",
    "unit_activity",
    "DVFSEvaluation",
    "OperatingPoint",
    "evaluate_at",
    "operating_point",
    "scaled_frequency_hz",
    "sweep",
    "ThermalModel",
    "ThermalProfile",
    "FunctionalUnitEnergyModel",
    "MemoryEnergyModel",
    "CATEGORIES",
    "EnergyLedger",
    "POWER_COMPONENTS",
    "PowerComponent",
    "PowerRegistry",
    "REGISTRY",
    "ProcessorPowerModel",
    "r10000_max_power",
]
