"""Full-processor power model and its R10000 validation.

Assembles the per-structure analytical models into SoftWatt's
post-processing interface: given the access counters of any interval
(a whole run, a sample window, one kernel-service invocation), return
an :class:`~repro.power.ledger.EnergyLedger` — per-component joules
rolled up into the reported categories: ``datapath`` (window, LSQ,
rename, ROB, register file, result bus, ALUs, predictors, TLB — the
units the paper clubs together in its graphs), ``l1i``, ``l1d``,
``l2i``, ``l2d``, ``clock``, ``memory``.

Which counters feed which unit, and the energy arithmetic itself, live
in the declarative :data:`~repro.power.registry.REGISTRY`; this class
owns the per-structure analytical models the registry rules draw
energies from.

Validation (Section 2): configured to estimate the maximum power of
the R10000, SoftWatt reports 25.3 W against the 30 W datasheet figure;
:func:`r10000_max_power` reproduces that number with this model.
"""

from __future__ import annotations

from repro.config.system import SystemConfig
from repro.config.technology import DEFAULT_TECHNOLOGY, Technology
from repro.power.array import ArrayEnergyModel, CAMEnergyModel
from repro.power.bitlines import CacheEnergyModel
from repro.power.clocktree import ClockNetworkModel
from repro.power.conditional import ClockedUnit
from repro.power.functional import FunctionalUnitEnergyModel
from repro.power.ledger import EnergyLedger
from repro.power.memory_power import MemoryEnergyModel
from repro.power.registry import REGISTRY
from repro.stats.counters import AccessCounters

PIPELINE_LATCH_BITS = 4 * 6 * 200
"""Front/back-end pipeline latches: ~200 bits per slot, 4-wide, 6 deep."""

CACHE_CLOCK_WEIGHT = 4
"""Clocked precharge/sense load per active cache column, in
latch-bit equivalents."""

PHYS_TAG_BITS = 8
ADDRESS_BITS = 32
WORD_BITS = 64


class ProcessorPowerModel:
    """Post-processing power model for one system configuration."""

    def __init__(
        self,
        config: SystemConfig,
        technology: Technology | None = None,
    ) -> None:
        self.config = config
        self.technology = technology if technology is not None else config.technology
        tech = self.technology
        core = config.core

        self.l1i = CacheEnergyModel(
            config.l1i, output_bits=core.fetch_width * 32, technology=tech
        )
        self.l1d = CacheEnergyModel(config.l1d, output_bits=WORD_BITS, technology=tech)
        self.l2 = CacheEnergyModel(
            config.l2, output_bits=config.l1d.line_bytes * 8, technology=tech
        )
        self.tlb = CAMEnergyModel(
            "tlb",
            entries=config.tlb.entries,
            tag_bits=20,
            data_bits=24,
            technology=tech,
        )
        registers = core.int_registers + core.fp_registers
        self.regfile = ArrayEnergyModel(
            "regfile", rows=registers, bits_per_row=WORD_BITS, technology=tech
        )
        self.window_array = ArrayEnergyModel(
            "window", rows=core.window_size, bits_per_row=96, technology=tech
        )
        self.wakeup_cam = CAMEnergyModel(
            "wakeup",
            entries=core.window_size,
            tag_bits=PHYS_TAG_BITS,
            technology=tech,
        )
        self.lsq = CAMEnergyModel(
            "lsq",
            entries=core.lsq_size,
            tag_bits=ADDRESS_BITS,
            data_bits=WORD_BITS,
            technology=tech,
        )
        self.rename = ArrayEnergyModel(
            "rename", rows=64, bits_per_row=PHYS_TAG_BITS, technology=tech
        )
        self.rob = ArrayEnergyModel(
            "rob", rows=core.window_size, bits_per_row=40, technology=tech
        )
        self.bht = ArrayEnergyModel(
            "bht", rows=core.bht_entries, bits_per_row=2, technology=tech
        )
        self.btb = ArrayEnergyModel(
            "btb", rows=core.btb_entries, bits_per_row=ADDRESS_BITS + 20, technology=tech
        )
        self.ras = ArrayEnergyModel(
            "ras", rows=core.ras_entries, bits_per_row=ADDRESS_BITS, technology=tech
        )
        self.fus = FunctionalUnitEnergyModel(technology=tech)
        self.memory = MemoryEnergyModel(technology=tech)

        self.clocked_units: tuple[ClockedUnit, ...] = (
            ClockedUnit("pipeline", PIPELINE_LATCH_BITS, "window_dispatch", core.decode_width),
            ClockedUnit("l1i", self.l1i.data_columns, "l1i_access", core.fetch_width),
            ClockedUnit("l1d", self.l1d.data_columns, "l1d_access", 2),
            ClockedUnit("window", self.window_array.latch_bits, "window_issue", core.issue_width),
            ClockedUnit("lsq", self.lsq.latch_bits, "lsq_access", 1),
            ClockedUnit("regfile", self.regfile.latch_bits, "regfile_read", 2 * core.issue_width),
            ClockedUnit("rob", self.rob.latch_bits, "rob_access", 2 * core.commit_width),
            ClockedUnit("fus", 2800, "ialu_access", core.int_alus),
        )
        cache_clock_bits = CACHE_CLOCK_WEIGHT * (
            self.l1i.data_columns
            + self.l1i.tag_columns
            + self.l1d.data_columns
            + self.l1d.tag_columns
            + self.l2.data_columns
            + self.l2.tag_columns
        )
        clocked_bits = (
            PIPELINE_LATCH_BITS
            + cache_clock_bits
            + sum(
                model.latch_bits
                for model in (
                    self.regfile,
                    self.window_array,
                    self.wakeup_cam,
                    self.lsq,
                    self.rename,
                    self.rob,
                )
            )
        )
        self.clock = ClockNetworkModel(clocked_bits, technology=tech)

    # ------------------------------------------------------------------
    # Interval energy
    # ------------------------------------------------------------------

    def ledger(self, counters: AccessCounters, cycles: int) -> EnergyLedger:
        """Evaluate the component registry over an interval."""
        return REGISTRY.evaluate(self, counters, cycles)

    def price(self, source) -> EnergyLedger:
        """Evaluate the registry over any counter source.

        ``source`` satisfies the
        :class:`~repro.stats.source.CounterSource` protocol — a
        simulation log, a single log record, a
        :class:`~repro.stats.source.CounterBundle`, or an ingested
        external run.  The pricing side neither knows nor cares who
        produced the counters; that seam is what lets ``repro ingest``
        price perf-style measurements with the same arithmetic as a
        simulated run.
        """
        return REGISTRY.evaluate_source(self, source)

    def energy_by_category(
        self, counters: AccessCounters, cycles: int
    ) -> dict[str, float]:
        """Energy in joules per reported category over an interval."""
        return self.ledger(counters, cycles).categories

    def total_energy_j(self, counters: AccessCounters, cycles: int) -> float:
        """Total CPU + memory-hierarchy energy over an interval."""
        return self.ledger(counters, cycles).total_j

    def average_power_w(
        self, counters: AccessCounters, cycles: int
    ) -> dict[str, float]:
        """Average power in watts per category over an interval."""
        seconds = cycles * self.technology.cycle_time_s
        return self.ledger(counters, cycles).category_power_w(seconds)

    # ------------------------------------------------------------------
    # Validation (Section 2)
    # ------------------------------------------------------------------

    def max_power_counters(self, cycles: int = 1_000_000) -> AccessCounters:
        """Counters with every port of every unit busy every cycle."""
        core = self.config.core
        return AccessCounters(
            l1i_access=core.fetch_width * cycles,
            l1d_access=2 * cycles,
            l2i_access=cycles,
            l2d_access=cycles,
            tlb_access=(core.fetch_width + 2) * cycles,
            regfile_read=2 * core.issue_width * cycles,
            regfile_write=core.commit_width * cycles,
            window_dispatch=core.decode_width * cycles,
            window_issue=core.issue_width * cycles,
            window_wakeup=core.issue_width * cycles,
            lsq_access=cycles,
            rename_access=core.decode_width * cycles,
            rob_access=2 * core.commit_width * cycles,
            bpred_access=core.fetch_width * cycles,
            btb_access=core.fetch_width * cycles,
            ras_access=cycles,
            ialu_access=core.int_alus * cycles,
            imul_access=cycles,
            falu_access=core.fp_alus * cycles,
            fmul_access=core.fp_alus * cycles,
            resultbus_access=core.issue_width * cycles,
            loads=cycles // 2,
            stores=cycles // 2,
        )

    def max_power_w(self) -> float:
        """Maximum CPU power: all ports busy, clock ungated.

        Main-memory power is excluded — the validation target is the
        processor's datasheet maximum.
        """
        cycles = 1_000_000
        counters = self.max_power_counters(cycles)
        ledger = self.ledger(counters, cycles)
        seconds = cycles * self.technology.cycle_time_s
        on_chip = sum(
            value for name, value in ledger.categories.items() if name != "memory"
        )
        return on_chip / seconds


def r10000_max_power(technology: Technology | None = None) -> float:
    """The Section 2 validation number (~25.3 W vs the 30 W datasheet)."""
    config = SystemConfig.table1()
    tech = technology if technology is not None else DEFAULT_TECHNOLOGY
    return ProcessorPowerModel(config, technology=tech).max_power_w()
