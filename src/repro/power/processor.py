"""Full-processor power model and its R10000 validation.

Assembles the per-structure analytical models into SoftWatt's
post-processing interface: given the access counters of any interval
(a whole run, a sample window, one kernel-service invocation), return
the energy of each reported category —

``datapath`` (window, LSQ, rename, ROB, register file, result bus,
ALUs, predictors, TLB — the units the paper clubs together in its
graphs), ``l1i``, ``l1d``, ``l2i``, ``l2d``, ``clock``, ``memory``.

Validation (Section 2): configured to estimate the maximum power of
the R10000, SoftWatt reports 25.3 W against the 30 W datasheet figure;
:func:`r10000_max_power` reproduces that number with this model.
"""

from __future__ import annotations

from repro.config.system import SystemConfig
from repro.config.technology import DEFAULT_TECHNOLOGY, Technology
from repro.power.array import ArrayEnergyModel, CAMEnergyModel
from repro.power.bitlines import CacheEnergyModel
from repro.power.clocktree import ClockNetworkModel
from repro.power.conditional import ClockedUnit, gating_factor
from repro.power.functional import FunctionalUnitEnergyModel
from repro.power.memory_power import MemoryEnergyModel
from repro.stats.counters import AccessCounters

#: Categories reported by the model, in the paper's legend order.
CATEGORIES: tuple[str, ...] = (
    "datapath",
    "l1d",
    "l2d",
    "l1i",
    "l2i",
    "clock",
    "memory",
)

PIPELINE_LATCH_BITS = 4 * 6 * 200
"""Front/back-end pipeline latches: ~200 bits per slot, 4-wide, 6 deep."""

CACHE_CLOCK_WEIGHT = 4
"""Clocked precharge/sense load per active cache column, in
latch-bit equivalents."""

PHYS_TAG_BITS = 8
ADDRESS_BITS = 32
WORD_BITS = 64


class ProcessorPowerModel:
    """Post-processing power model for one system configuration."""

    def __init__(
        self,
        config: SystemConfig,
        technology: Technology | None = None,
    ) -> None:
        self.config = config
        self.technology = technology if technology is not None else config.technology
        tech = self.technology
        core = config.core

        self.l1i = CacheEnergyModel(
            config.l1i, output_bits=core.fetch_width * 32, technology=tech
        )
        self.l1d = CacheEnergyModel(config.l1d, output_bits=WORD_BITS, technology=tech)
        self.l2 = CacheEnergyModel(
            config.l2, output_bits=config.l1d.line_bytes * 8, technology=tech
        )
        self.tlb = CAMEnergyModel(
            "tlb",
            entries=config.tlb.entries,
            tag_bits=20,
            data_bits=24,
            technology=tech,
        )
        registers = core.int_registers + core.fp_registers
        self.regfile = ArrayEnergyModel(
            "regfile", rows=registers, bits_per_row=WORD_BITS, technology=tech
        )
        self.window_array = ArrayEnergyModel(
            "window", rows=core.window_size, bits_per_row=96, technology=tech
        )
        self.wakeup_cam = CAMEnergyModel(
            "wakeup",
            entries=core.window_size,
            tag_bits=PHYS_TAG_BITS,
            technology=tech,
        )
        self.lsq = CAMEnergyModel(
            "lsq",
            entries=core.lsq_size,
            tag_bits=ADDRESS_BITS,
            data_bits=WORD_BITS,
            technology=tech,
        )
        self.rename = ArrayEnergyModel(
            "rename", rows=64, bits_per_row=PHYS_TAG_BITS, technology=tech
        )
        self.rob = ArrayEnergyModel(
            "rob", rows=core.window_size, bits_per_row=40, technology=tech
        )
        self.bht = ArrayEnergyModel(
            "bht", rows=core.bht_entries, bits_per_row=2, technology=tech
        )
        self.btb = ArrayEnergyModel(
            "btb", rows=core.btb_entries, bits_per_row=ADDRESS_BITS + 20, technology=tech
        )
        self.ras = ArrayEnergyModel(
            "ras", rows=core.ras_entries, bits_per_row=ADDRESS_BITS, technology=tech
        )
        self.fus = FunctionalUnitEnergyModel(technology=tech)
        self.memory = MemoryEnergyModel(technology=tech)

        self.clocked_units: tuple[ClockedUnit, ...] = (
            ClockedUnit("pipeline", PIPELINE_LATCH_BITS, "window_dispatch", core.decode_width),
            ClockedUnit("l1i", self.l1i.data_columns, "l1i_access", core.fetch_width),
            ClockedUnit("l1d", self.l1d.data_columns, "l1d_access", 2),
            ClockedUnit("window", self.window_array.latch_bits, "window_issue", core.issue_width),
            ClockedUnit("lsq", self.lsq.latch_bits, "lsq_access", 1),
            ClockedUnit("regfile", self.regfile.latch_bits, "regfile_read", 2 * core.issue_width),
            ClockedUnit("rob", self.rob.latch_bits, "rob_access", 2 * core.commit_width),
            ClockedUnit("fus", 2800, "ialu_access", core.int_alus),
        )
        cache_clock_bits = CACHE_CLOCK_WEIGHT * (
            self.l1i.data_columns
            + self.l1i.tag_columns
            + self.l1d.data_columns
            + self.l1d.tag_columns
            + self.l2.data_columns
            + self.l2.tag_columns
        )
        clocked_bits = (
            PIPELINE_LATCH_BITS
            + cache_clock_bits
            + sum(
                model.latch_bits
                for model in (
                    self.regfile,
                    self.window_array,
                    self.wakeup_cam,
                    self.lsq,
                    self.rename,
                    self.rob,
                )
            )
        )
        self.clock = ClockNetworkModel(clocked_bits, technology=tech)

    # ------------------------------------------------------------------
    # Interval energy
    # ------------------------------------------------------------------

    def energy_by_category(
        self, counters: AccessCounters, cycles: int
    ) -> dict[str, float]:
        """Energy in joules per reported category over an interval."""
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        c = counters

        # Caches: reads and writes blended from the observed mix.
        data_writes = min(c.stores, c.l1d_access)
        l1d_energy = (c.l1d_access - data_writes) * self.l1d.read_energy_j() + (
            data_writes * self.l1d.write_energy_j()
        )
        l1i_energy = c.l1i_access * self.l1i.read_energy_j()
        l2i_energy = c.l2i_access * self.l2.read_energy_j()
        l2d_energy = c.l2d_access * self.l2.access_energy_j(write_fraction=0.3)

        datapath = (
            c.tlb_access * self.tlb.search_energy_j()
            + c.tlb_miss * self.tlb.write_energy_j()
            + c.regfile_read * self.regfile.access_energy_j()
            + c.regfile_write * self.regfile.access_energy_j(write=True)
            + c.window_dispatch * self.window_array.access_energy_j(write=True)
            + c.window_issue * self.window_array.access_energy_j()
            + c.window_wakeup * self.wakeup_cam.search_energy_j()
            + c.lsq_access * self.lsq.search_energy_j()
            + c.rename_access
            * (self.rename.access_energy_j() + self.rename.access_energy_j(write=True))
            / 2.0
            + c.rob_access * self.rob.access_energy_j(write=True) * 0.6
            + c.bpred_access * self.bht.access_energy_j()
            + c.btb_access * self.btb.access_energy_j()
            + c.ras_access * self.ras.access_energy_j()
            + c.ialu_access * self.fus.ialu_energy_j()
            + c.imul_access * self.fus.imul_energy_j()
            + c.falu_access * self.fus.falu_energy_j()
            + c.fmul_access * self.fus.fmul_energy_j()
            + c.resultbus_access * self.fus.result_bus_energy_j()
        )

        gate = gating_factor(counters, cycles, self.clocked_units)
        clock_energy = cycles * self.clock.energy_per_cycle_j(gating_factor=gate)

        memory_energy = self.memory.energy_j(c.mem_access, cycles)

        return {
            "datapath": datapath,
            "l1d": l1d_energy,
            "l2d": l2d_energy,
            "l1i": l1i_energy,
            "l2i": l2i_energy,
            "clock": clock_energy,
            "memory": memory_energy,
        }

    def total_energy_j(self, counters: AccessCounters, cycles: int) -> float:
        """Total CPU + memory-hierarchy energy over an interval."""
        return sum(self.energy_by_category(counters, cycles).values())

    def average_power_w(
        self, counters: AccessCounters, cycles: int
    ) -> dict[str, float]:
        """Average power in watts per category over an interval."""
        energies = self.energy_by_category(counters, cycles)
        seconds = cycles * self.technology.cycle_time_s
        return {name: value / seconds for name, value in energies.items()}

    # ------------------------------------------------------------------
    # Validation (Section 2)
    # ------------------------------------------------------------------

    def max_power_counters(self, cycles: int = 1_000_000) -> AccessCounters:
        """Counters with every port of every unit busy every cycle."""
        core = self.config.core
        return AccessCounters(
            l1i_access=core.fetch_width * cycles,
            l1d_access=2 * cycles,
            l2i_access=cycles,
            l2d_access=cycles,
            tlb_access=(core.fetch_width + 2) * cycles,
            regfile_read=2 * core.issue_width * cycles,
            regfile_write=core.commit_width * cycles,
            window_dispatch=core.decode_width * cycles,
            window_issue=core.issue_width * cycles,
            window_wakeup=core.issue_width * cycles,
            lsq_access=cycles,
            rename_access=core.decode_width * cycles,
            rob_access=2 * core.commit_width * cycles,
            bpred_access=core.fetch_width * cycles,
            btb_access=core.fetch_width * cycles,
            ras_access=cycles,
            ialu_access=core.int_alus * cycles,
            imul_access=cycles,
            falu_access=core.fp_alus * cycles,
            fmul_access=core.fp_alus * cycles,
            resultbus_access=core.issue_width * cycles,
            loads=cycles // 2,
            stores=cycles // 2,
        )

    def max_power_w(self) -> float:
        """Maximum CPU power: all ports busy, clock ungated.

        Main-memory power is excluded — the validation target is the
        processor's datasheet maximum.
        """
        cycles = 1_000_000
        counters = self.max_power_counters(cycles)
        energies = self.energy_by_category(counters, cycles)
        seconds = cycles * self.technology.cycle_time_s
        on_chip = sum(value for name, value in energies.items() if name != "memory")
        return on_chip / seconds


def r10000_max_power(technology: Technology | None = None) -> float:
    """The Section 2 validation number (~25.3 W vs the 30 W datasheet)."""
    from repro.config.system import SystemConfig

    config = SystemConfig.table1()
    tech = technology if technology is not None else DEFAULT_TECHNOLOGY
    return ProcessorPowerModel(config, technology=tech).max_power_w()
