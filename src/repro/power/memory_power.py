"""Main-memory (DRAM) energy model.

A flat per-access energy at the board level: row activation, column
access, and bus transfer for one cache-line fill.  The value is high
relative to on-chip structures — Section 3.2: "the L2 cache and memory
have a high per-access cost", which is what makes the memory
subsystem's average power spike during the cold-start period of every
profile.
"""

from __future__ import annotations

from repro.config.technology import (
    DEFAULT_TECHNOLOGY,
    DRAM_ENERGY_PER_ACCESS_J,
    Technology,
)

DRAM_REFRESH_POWER_W = 0.035
"""Background refresh power of the 128 MB array (watts)."""


class MemoryEnergyModel:
    """Energy for main-memory accesses plus background refresh."""

    def __init__(
        self,
        *,
        access_energy_j: float = DRAM_ENERGY_PER_ACCESS_J,
        refresh_power_w: float = DRAM_REFRESH_POWER_W,
        technology: Technology = DEFAULT_TECHNOLOGY,
    ) -> None:
        if access_energy_j <= 0 or refresh_power_w < 0:
            raise ValueError("memory energy parameters must be positive")
        self.access_energy_j = access_energy_j
        self.refresh_power_w = refresh_power_w
        self.technology = technology

    def energy_j(self, accesses: int, cycles: int) -> float:
        """Total memory energy over a window of ``cycles`` cycles."""
        if accesses < 0 or cycles < 0:
            raise ValueError("accesses and cycles cannot be negative")
        active = accesses * self.access_energy_j
        refresh = self.refresh_power_w * cycles * self.technology.cycle_time_s
        return active + refresh
