"""Clock generation and distribution network model.

"The clock generation and distribution network is modeled using the
technique proposed in [Duarte et al. 2001], which has an error-margin
of 10%" (Section 2).  The model sums three capacitance contributions:

* the H-tree distribution wiring across the die,
* the clock buffers driving each tree level,
* the clocked load: every pipeline latch and array port the tree
  terminates in.

The clock dissipates every cycle (the tree toggles twice per period,
folded into the per-cycle energy), but under SoftWatt's conditional
clocking only the portion of the tree feeding *active* units burns the
full load — the gating model lives in :mod:`repro.power.conditional`.
"""

from __future__ import annotations

import math

from repro.config.technology import (
    C_LATCH_PER_BIT,
    C_METAL_PER_UM,
    DEFAULT_TECHNOLOGY,
    DIE_SIZE_MM,
    Technology,
)

HTREE_LEVELS = 5
"""Levels of the H-tree distribution network."""

BUFFER_CAP_PER_LEVEL_F = 22e-12
"""Clock-buffer gate+drain capacitance per tree level (farads)."""


class ClockNetworkModel:
    """Per-cycle clock energy for a given clocked-bit load."""

    def __init__(
        self,
        clocked_bits: int,
        *,
        die_size_mm: float = DIE_SIZE_MM,
        technology: Technology = DEFAULT_TECHNOLOGY,
        load_derating: float = 0.55,
    ) -> None:
        if clocked_bits <= 0:
            raise ValueError(f"clocked_bits must be positive, got {clocked_bits}")
        if die_size_mm <= 0:
            raise ValueError(f"die size must be positive, got {die_size_mm}")
        if not 0.0 < load_derating <= 1.0:
            raise ValueError(f"load derating must be in (0, 1]: {load_derating}")
        self.clocked_bits = clocked_bits
        self.die_size_mm = die_size_mm
        self.technology = technology
        self.load_derating = load_derating

    @property
    def wire_capacitance_f(self) -> float:
        """H-tree wiring capacitance.

        Each level halves the segment length; total wire length for an
        H-tree over a die of edge D is ~3 * D * 2^(levels/2)."""
        die_um = self.die_size_mm * 1000.0
        total_length_um = 3.0 * die_um * math.sqrt(2.0**HTREE_LEVELS) / 2.0
        return total_length_um * C_METAL_PER_UM * 4.0

    @property
    def buffer_capacitance_f(self) -> float:
        """Clock-buffer capacitance over all tree levels."""
        return HTREE_LEVELS * BUFFER_CAP_PER_LEVEL_F

    @property
    def load_capacitance_f(self) -> float:
        """Capacitance of the clocked latches/ports the tree feeds.

        ``load_derating`` models banked clock distribution: only that
        fraction of a structure's storage bits sees the clock edge in a
        cycle (row-banked register arrays)."""
        return self.clocked_bits * C_LATCH_PER_BIT * self.load_derating

    @property
    def total_capacitance_f(self) -> float:
        """Total switched capacitance per clock transition."""
        return (
            self.wire_capacitance_f
            + self.buffer_capacitance_f
            + self.load_capacitance_f
        )

    def energy_per_cycle_j(self, *, gating_factor: float = 1.0) -> float:
        """Clock energy of one cycle.

        The tree toggles twice per period (factor 2).  The spine (wire
        + buffers) always switches; the latch load is scaled by the
        ``gating_factor`` in [0, 1] supplied by the conditional
        clocking model.
        """
        if not 0.0 <= gating_factor <= 1.0:
            raise ValueError(f"gating factor must be in [0, 1]: {gating_factor}")
        tech = self.technology
        spine = self.wire_capacitance_f + self.buffer_capacitance_f
        load = self.load_capacitance_f * gating_factor
        return 2.0 * tech.switching_energy(spine + load)

    def max_power_w(self) -> float:
        """Ungated clock power at the design-point frequency."""
        return self.energy_per_cycle_j(gating_factor=1.0) * self.technology.clock_hz
