"""Conditional clocking model.

"SoftWatt models a simple conditional clocking model.  It assumes that
full power is consumed if any of the ports of a unit is accessed;
otherwise no power is consumed." (Section 2.)

For the regular units this is realised by charging the per-access
energies of the unit whenever a port event is counted.  For the clock
network, conditional clocking determines what fraction of the clocked
latch load actually toggles in an interval: each unit's gate is open in
the cycles it is accessed, so its contribution is weighted by its
activity ratio (accesses per port per cycle, saturated at 1).
"""

from __future__ import annotations

import dataclasses

from repro.stats.counters import AccessCounters


@dataclasses.dataclass(frozen=True)
class ClockedUnit:
    """One gated load on the clock tree."""

    name: str
    latch_bits: int
    counter: str
    """Counter field whose rate measures the unit's activity."""
    ports: int = 1
    """Maximum port events per cycle (rate saturates at this)."""

    def __post_init__(self) -> None:
        if self.latch_bits <= 0 or self.ports <= 0:
            raise ValueError(f"{self.name}: latch bits and ports must be positive")


def unit_activity(counters: AccessCounters, cycles: int, unit: ClockedUnit) -> float:
    """Fraction of cycles the unit's clock gate is open, in [0, 1]."""
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    events = getattr(counters, unit.counter)
    return min(1.0, events / (cycles * unit.ports))


def gating_factor(
    counters: AccessCounters,
    cycles: int,
    units: tuple[ClockedUnit, ...],
) -> float:
    """Latch-load-weighted clock gating factor over an interval.

    1.0 means every clocked latch toggled every cycle (the validation
    maximum); real intervals gate down toward the activity of the
    busiest structures.
    """
    if not units:
        raise ValueError("need at least one clocked unit")
    total_bits = sum(unit.latch_bits for unit in units)
    weighted = sum(
        unit.latch_bits * unit_activity(counters, cycles, unit) for unit in units
    )
    return weighted / total_bits
