"""Typed energy accounting: the :class:`EnergyLedger`.

Every layer of the simulate→count→account→report pipeline used to
re-invent its own ``dict[str, float]`` of joules (per category, per
mode, per service, with or without the disk bolted on).  The ledger is
the one shape they all share now: per-component joules with category
rollups, plus the ``+`` / scale operators that window sampling and
service aggregation need.

Ledgers are produced by evaluating the
:mod:`~repro.power.registry` over an interval's
:class:`~repro.stats.counters.AccessCounters`; simulation-time
components (the disk, whose energy is integrated event-exactly during
the run) are attached afterwards with :meth:`EnergyLedger.with_component`.

Numerical contract: category values are accumulated term by term in
registry declaration order, so they are bit-identical to the historical
hand-written arithmetic (pinned by ``tests/test_golden_energy.py``).
:attr:`EnergyLedger.total_j` likewise accumulates categories in rollup
order.
"""

from __future__ import annotations

from typing import Iterator, Mapping


class EnergyLedger:
    """Per-component energies of one interval, with category rollups."""

    __slots__ = ("_component_j", "_category_j", "_component_category")

    def __init__(
        self,
        component_j: Mapping[str, float],
        component_category: Mapping[str, str],
    ) -> None:
        unknown = set(component_j) - set(component_category)
        if unknown:
            raise ValueError(
                f"components {sorted(unknown)} have no category mapping"
            )
        self._component_j = dict(component_j)
        self._component_category = dict(component_category)
        category_j: dict[str, float] = {}
        for name, energy in self._component_j.items():
            category = self._component_category[name]
            category_j[category] = category_j.get(category, 0.0) + energy
        self._category_j = category_j

    @classmethod
    def _raw(
        cls,
        component_j: dict[str, float],
        category_j: dict[str, float],
        component_category: dict[str, str],
    ) -> "EnergyLedger":
        """Build without re-deriving rollups (registry evaluation uses
        this to control the category accumulation order exactly)."""
        ledger = cls.__new__(cls)
        ledger._component_j = component_j
        ledger._category_j = category_j
        ledger._component_category = component_category
        return ledger

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def components(self) -> dict[str, float]:
        """Per-component joules, in registry declaration order."""
        return dict(self._component_j)

    @property
    def categories(self) -> dict[str, float]:
        """Per-category joules, in report rollup order."""
        return dict(self._category_j)

    def component(self, name: str) -> float:
        """Energy of one component, with a clear error when unknown."""
        try:
            return self._component_j[name]
        except KeyError:
            raise KeyError(
                f"unknown power component {name!r}; ledger has "
                f"{sorted(self._component_j)}"
            ) from None

    def category(self, name: str) -> float:
        """Energy of one report category, with a clear error when unknown."""
        try:
            return self._category_j[name]
        except KeyError:
            raise KeyError(
                f"unknown report category {name!r}; ledger has "
                f"{list(self._category_j)}"
            ) from None

    def category_of(self, component: str) -> str:
        """The report category a component rolls up to."""
        try:
            return self._component_category[component]
        except KeyError:
            raise KeyError(f"unknown power component {component!r}") from None

    def items(self) -> Iterator[tuple[str, float]]:
        """Iterate (component, joules) pairs in declaration order."""
        return iter(self._component_j.items())

    @property
    def total_j(self) -> float:
        """Total energy, accumulated in category rollup order."""
        total = 0.0
        for value in self._category_j.values():
            total += value
        return total

    def category_power_w(self, seconds: float) -> dict[str, float]:
        """Average watts per category over ``seconds``."""
        if seconds <= 0:
            raise ValueError(f"seconds must be positive, got {seconds}")
        return {name: value / seconds for name, value in self._category_j.items()}

    # ------------------------------------------------------------------
    # Aggregation algebra (window and service accumulation)
    # ------------------------------------------------------------------

    def __add__(self, other: "EnergyLedger") -> "EnergyLedger":
        if not isinstance(other, EnergyLedger):
            return NotImplemented
        component_category = dict(self._component_category)
        component_category.update(other._component_category)
        component_j = dict(self._component_j)
        for name, value in other._component_j.items():
            component_j[name] = component_j.get(name, 0.0) + value
        category_j = dict(self._category_j)
        for name, value in other._category_j.items():
            category_j[name] = category_j.get(name, 0.0) + value
        return EnergyLedger._raw(component_j, category_j, component_category)

    def scaled(self, factor: float) -> "EnergyLedger":
        """Every energy multiplied by ``factor`` (e.g. window weights)."""
        return EnergyLedger._raw(
            {name: value * factor for name, value in self._component_j.items()},
            {name: value * factor for name, value in self._category_j.items()},
            dict(self._component_category),
        )

    def __mul__(self, factor: float) -> "EnergyLedger":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return self.scaled(factor)

    __rmul__ = __mul__

    def with_component(
        self, name: str, category: str, energy_j: float
    ) -> "EnergyLedger":
        """A new ledger with one simulation-time component attached.

        Used for units whose energy is integrated during simulation
        rather than post-processed from counters (the disk).  The
        component must not already be present.
        """
        if name in self._component_j:
            raise ValueError(f"component {name!r} already in ledger")
        component_j = dict(self._component_j)
        component_j[name] = energy_j
        component_category = dict(self._component_category)
        component_category[name] = category
        category_j = dict(self._category_j)
        category_j[category] = category_j.get(category, 0.0) + energy_j
        return EnergyLedger._raw(component_j, category_j, component_category)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EnergyLedger):
            return NotImplemented
        return (
            self._component_j == other._component_j
            and self._component_category == other._component_category
        )

    def __repr__(self) -> str:
        budget = ", ".join(
            f"{name}={value:.3g}" for name, value in self._category_j.items()
        )
        return f"EnergyLedger({budget})"
